// geo_report: CLI over the bench-diff core (src/telemetry/bench_diff.hpp).
//
//   geo_report summary FILE...            print key scalars + attribution
//   geo_report diff BASE CURRENT [-v]     diff two BENCH_*.json files or
//                                         directories; exit 1 on regression
//
// BASE/CURRENT directories are matched by file name (every BENCH_*.json in
// BASE must exist in CURRENT; extras in CURRENT are reported, not gated).
// `scripts/bench_diff.py` mirrors the diff mode for environments without a
// built tree; docs/OBSERVABILITY.md documents the baseline workflow.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/bench_diff.hpp"
#include "telemetry/json.hpp"

namespace {

namespace fs = std::filesystem;
using geo::telemetry::DiffResult;
using geo::telemetry::Json;

int usage() {
  std::fprintf(stderr,
               "usage: geo_report summary FILE...\n"
               "       geo_report diff BASE CURRENT [-v]\n"
               "BASE/CURRENT: BENCH_*.json files, or directories of them\n");
  return 2;
}

void print_scalars(const Json& doc, const std::string& prefix, int depth) {
  for (const auto& [key, value] : doc.members()) {
    const std::string path = prefix.empty() ? key : prefix + "." + key;
    if (value.is_number()) {
      std::printf("  %-44s %.6g\n", path.c_str(), value.number());
    } else if (value.is_bool()) {
      std::printf("  %-44s %s\n", path.c_str(),
                  value.boolean() ? "true" : "false");
    } else if (value.is_object() && depth < 1 && key != "metrics" &&
               key != "attr") {
      print_scalars(value, path, depth + 1);
    }
  }
}

int summarize_file(const std::string& path) {
  const auto doc = Json::parse_file(path);
  if (!doc.has_value()) {
    std::fprintf(stderr, "geo_report: cannot parse %s\n", path.c_str());
    return 1;
  }
  const Json* bench = doc->find("bench");
  std::printf("== %s (%s)\n", path.c_str(),
              bench != nullptr ? bench->str().c_str() : "?");
  print_scalars(*doc, "", 0);
  if (const Json* attr = doc->find("attr"); attr != nullptr) {
    std::printf("  attribution (cycles):\n");
    std::printf("    %-18s %14s %14s %14s %14s\n", "layer", "generation",
                "execution", "stall", "memory");
    auto row = [](const char* name, const Json& a) {
      auto field = [&a](const char* k) {
        const Json* v = a.find(k);
        return v != nullptr ? v->number() : 0.0;
      };
      std::printf("    %-18s %14.0f %14.0f %14.0f %14.0f\n", name,
                  field("generation_cycles"), field("execution_cycles"),
                  field("stall_cycles"), field("memory_cycles"));
    };
    if (const Json* layers = attr->find("layers"); layers != nullptr)
      for (const Json& layer : layers->elements()) {
        const Json* name = layer.find("layer");
        row(name != nullptr ? name->str().c_str() : "?", layer);
      }
    row("TOTAL", *attr);
  }
  return 0;
}

std::vector<fs::path> bench_files(const fs::path& p) {
  std::vector<fs::path> out;
  if (fs::is_directory(p)) {
    for (const auto& entry : fs::directory_iterator(p)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && name.rfind("BENCH_", 0) == 0 &&
          name.size() > 5 && entry.path().extension() == ".json")
        out.push_back(entry.path());
    }
    std::sort(out.begin(), out.end());
  } else {
    out.push_back(p);
  }
  return out;
}

int diff_trees(const std::string& base_arg, const std::string& cur_arg,
               bool verbose) {
  const fs::path base_path(base_arg), cur_path(cur_arg);
  if (!fs::exists(base_path) || !fs::exists(cur_path)) {
    std::fprintf(stderr, "geo_report: missing input tree\n");
    return 2;
  }
  const auto rules = geo::telemetry::default_diff_rules();
  std::size_t total_regressions = 0, files = 0;
  for (const fs::path& base_file : bench_files(base_path)) {
    const fs::path cur_file = fs::is_directory(cur_path)
                                  ? cur_path / base_file.filename()
                                  : cur_path;
    std::printf("-- %s vs %s\n", base_file.string().c_str(),
                cur_file.string().c_str());
    if (!fs::exists(cur_file)) {
      std::printf("REGRESSION  missing from current tree\n");
      ++total_regressions;
      continue;
    }
    const auto base_doc = Json::parse_file(base_file.string());
    const auto cur_doc = Json::parse_file(cur_file.string());
    if (!base_doc.has_value() || !cur_doc.has_value()) {
      std::printf("REGRESSION  unparseable document\n");
      ++total_regressions;
      continue;
    }
    const DiffResult result =
        geo::telemetry::diff_documents(*base_doc, *cur_doc, rules);
    std::fputs(geo::telemetry::summarize_diff(result, verbose).c_str(),
               stdout);
    total_regressions += result.regressions;
    ++files;
  }
  std::printf("== %zu file(s): %zu regression(s)\n", files,
              total_regressions);
  return total_regressions == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string mode = argv[1];
  if (mode == "summary") {
    if (argc < 3) return usage();
    int rc = 0;
    for (int i = 2; i < argc; ++i) rc |= summarize_file(argv[i]);
    return rc;
  }
  if (mode == "diff") {
    if (argc < 4) return usage();
    bool verbose = false;
    for (int i = 4; i < argc; ++i)
      if (std::strcmp(argv[i], "-v") == 0) verbose = true;
    return diff_trees(argv[2], argv[3], verbose);
  }
  return usage();
}
