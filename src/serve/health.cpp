#include "serve/health.hpp"

#include <algorithm>

namespace geo::serve {

const char* to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

ReplicaHealth::ReplicaHealth(int replicas, int strikes_to_open,
                             int probe_after)
    : strikes_to_open_(std::max(1, strikes_to_open)),
      probe_after_(std::max(1, probe_after)),
      states_(static_cast<std::size_t>(std::max(1, replicas))) {}

bool ReplicaHealth::admit(int replica, bool* probe) {
  if (probe != nullptr) *probe = false;
  std::lock_guard lock(mu_);
  Replica& r = states_[static_cast<std::size_t>(replica)];
  switch (r.state) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kHalfOpen:
      // The probe slot is claimed; no further traffic until it resolves.
      return false;
    case BreakerState::kOpen: {
      // Probe when the countdown has drained — or unconditionally when no
      // other replica could serve (a fully-open fleet must not deadlock:
      // completions elsewhere are the only thing that drains countdowns).
      const bool forced = !other_candidate_locked(replica);
      if (r.probe_countdown > 0 && !forced) return false;
      r.state = BreakerState::kHalfOpen;
      if (probe != nullptr) *probe = true;
      return true;
    }
  }
  return false;
}

ReplicaHealth::Transition ReplicaHealth::on_outcome(int replica, bool clean) {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (static_cast<int>(i) == replica) continue;
    if (states_[i].state == BreakerState::kOpen && states_[i].probe_countdown > 0)
      --states_[i].probe_countdown;
  }
  Replica& r = states_[static_cast<std::size_t>(replica)];
  if (r.state == BreakerState::kHalfOpen) {
    if (clean) {
      r.state = BreakerState::kClosed;
      r.strikes = 0;
      return Transition::kClosed;
    }
    r.state = BreakerState::kOpen;
    r.probe_countdown = probe_after_;
    return Transition::kReopened;
  }
  // Closed (the only other state a serving replica can be in: each replica
  // reports its own outcomes, and its state cannot change underneath an
  // in-flight request).
  if (clean) {
    r.strikes = 0;
    return Transition::kNone;
  }
  if (++r.strikes < strikes_to_open_) return Transition::kNone;
  r.state = BreakerState::kOpen;
  r.strikes = 0;
  r.probe_countdown = probe_after_;
  return Transition::kOpened;
}

void ReplicaHealth::on_no_signal(int replica) {
  std::lock_guard lock(mu_);
  for (std::size_t i = 0; i < states_.size(); ++i) {
    if (static_cast<int>(i) == replica) continue;
    if (states_[i].state == BreakerState::kOpen && states_[i].probe_countdown > 0)
      --states_[i].probe_countdown;
  }
  Replica& r = states_[static_cast<std::size_t>(replica)];
  if (r.state == BreakerState::kHalfOpen) {
    // The probe request carried no signal; hand the slot back as
    // immediately probe-eligible rather than burning the probe.
    r.state = BreakerState::kOpen;
    r.probe_countdown = 0;
  }
}

BreakerState ReplicaHealth::state(int replica) const {
  std::lock_guard lock(mu_);
  return states_[static_cast<std::size_t>(replica)].state;
}

bool ReplicaHealth::other_candidate(int replica) const {
  std::lock_guard lock(mu_);
  return other_candidate_locked(replica);
}

bool ReplicaHealth::only_candidate(int replica) const {
  std::lock_guard lock(mu_);
  return !other_candidate_locked(replica);
}

bool ReplicaHealth::other_candidate_locked(int replica) const {
  for (std::size_t i = 0; i < states_.size(); ++i)
    if (static_cast<int>(i) != replica &&
        states_[i].state != BreakerState::kOpen)
      return true;
  return false;
}

}  // namespace geo::serve
