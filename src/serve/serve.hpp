// Fault-tolerant inference serving runtime (docs/SERVING.md).
//
// InferenceServer is the multi-tenant frontend over a pool of replicated
// GeoMachine backends. Each replica is one worker thread driving a
// ResilientExecutor; around the pool sit the serving policies:
//
//   admission    bounded request queue + per-tenant quotas; overload is
//                refused at the door with kResourceExhausted (load shedding)
//                instead of growing an unbounded backlog
//   deadlines    per-request budgets propagated into execution as a
//                cooperative exec::CancelToken polled at tile boundaries; an
//                expired request releases its replica mid-layer and charges
//                no further cycles
//   retries      a degraded outcome (persistent-fault signature: the
//                tile-retry budget drained on every rung) fails over to a
//                different replica under a bounded budget with exponential
//                backoff; transient faults are absorbed in place by the
//                resilience layer's same-replica tile retries
//   health       a per-replica circuit breaker (serve/health.hpp)
//                quarantines persistently-faulted replicas and re-admits
//                them through half-open probes
//   degradation  past the queue's high-water mark, admitted requests are
//                steered to a degraded rung (resilience::RunOptions::start)
//                instead of shed — reduced fidelity before reduced
//                availability
//
// The serving contract: every admitted request gets a terminal Response
// (ok, degraded-ok, or deadline-exceeded) — never a silent drop, and under
// any fault model expressible in GEO_FAULTS, zero failed requests.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "arch/compiler.hpp"
#include "arch/hw_config.hpp"
#include "arch/machine.hpp"
#include "core/status.hpp"
#include "exec/cancel.hpp"
#include "fault/fault_model.hpp"
#include "resilience/resilience.hpp"
#include "serve/health.hpp"

namespace geo::store {
class WeightStore;
}

namespace geo::serve {

// Serving knobs, overridable via GEO_SERVE_* (see from_env()).
struct ServeOptions {
  int replicas = 2;        // GEO_SERVE_REPLICAS: GeoMachine pool size
  int queue_capacity = 32; // GEO_SERVE_QUEUE: bounded request queue
  int tenant_quota = 16;   // GEO_SERVE_QUOTA: in-flight requests per tenant
  // GEO_SERVE_HIGH_WATER: queue depth at which admitted requests steer to
  // the degraded rung. 0 = auto (3/4 of queue_capacity); >= queue_capacity
  // disables steering.
  int high_water = 0;
  // GEO_SERVE_DEADLINE_US: default per-request deadline, 0 = none.
  std::int64_t default_deadline_us = 0;
  int retries = 1;  // GEO_SERVE_RETRIES: cross-replica failovers per request
  // GEO_SERVE_BACKOFF_US: wait before failover attempt k is eligible to be
  // re-dispatched (doubles per attempt).
  std::int64_t retry_backoff_us = 200;
  int breaker_strikes = 3;  // GEO_SERVE_STRIKES: dirty outcomes to quarantine
  int probe_after = 8;      // GEO_SERVE_PROBE_AFTER: completions elsewhere
                            // before a quarantined replica may probe
  // GEO_SERVE_STEER (pbw|fxp|reference): the rung overload traffic starts
  // on. kReference is the cheapest (pure software) and the default.
  resilience::Rung steer_rung = resilience::Rung::kReference;
  // GEO_SERVE_BATCH: max same-model requests coalesced into one dispatch
  // (shared conv preparation via resilience::run_conv_batch). 1 disables
  // batching — every request prepares its own conv, the pre-batching path.
  int batch = 1;
  // GEO_SERVE_BATCH_WAIT_US: how long a replica lingers for the batch to
  // fill once it holds at least one compatible request. 0 = dispatch
  // whatever is immediately coalescible (no added latency).
  std::int64_t batch_wait_us = 0;
  // GEO_SERVE_PREWARM (0|1): pre-warm the weight-store pin and stream-table
  // rows for an admitted request's model off the critical section
  // (exec::AsyncLane::io), so the first dispatch of a burst hits warm
  // caches.
  bool prewarm = true;

  static ServeOptions from_env();
  geo::Status validate() const;
  std::string to_string() const;

  int effective_high_water() const noexcept;
};

struct Request {
  std::string tenant = "default";
  arch::ConvShape shape;
  // Caller-owned; must outlive the Response future's completion.
  std::span<const float> weights;
  std::span<const float> input;
  std::span<const float> bn_scale;
  std::span<const float> bn_shift;
  std::uint64_t layer_salt = 0;
  // Out-of-core weights: when non-empty, `weights` is left empty and the
  // named layer is pinned from the attached store::WeightStore at dispatch
  // time (docs/STORAGE.md). Replicas share the store read-only; the store's
  // repair-or-fallback contract means the pin never fails, so the serving
  // "zero failed requests" invariant survives disk corruption too. The
  // load's modeled io stall is charged into the execution's memory bucket.
  std::string store_layer;
  // Per-request deadline: -1 = use ServeOptions::default_deadline_us,
  // 0 = none, > 0 = microseconds from submit.
  std::int64_t deadline_us = -1;
  std::string label;  // journal/metrics label; defaults to tenant
  // Test hook: > 0 arms the request's CancelToken to trip after N
  // cancellation polls (exec::CancelToken::trip_after), making mid-batch
  // deadline expiry deterministic regardless of wall-clock timing.
  std::int64_t trip_after_polls = 0;
};

struct Response {
  geo::Status status;              // terminal outcome (default OK)
  arch::MachineResult result;                     // valid when status.ok()
  bool degraded = false;  // served below the native rung (fault or steering)
  bool steered = false;   // degraded by overload steering, not by faults
  int replica = -1;       // replica that produced the terminal outcome
  int attempts = 0;       // executions across replicas (1 = no failover)
  double queue_us = 0.0;  // submit -> first dispatch
  double exec_us = 0.0;   // execution wall time of the final attempt
                          // (amortized batch wall time when batched)
  double total_us = 0.0;  // submit -> response
  bool batched = false;   // final attempt ran in a coalesced batch dispatch
};

// Monotone counters since construction (stats() snapshot).
struct ServeStats {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected_invalid = 0;  // failed pre-flight validation
  std::int64_t shed_queue = 0;        // refused: queue full
  std::int64_t shed_quota = 0;        // refused: tenant over quota
  std::int64_t completed = 0;         // terminal responses delivered
  std::int64_t ok = 0;                // completed at the native rung
  std::int64_t degraded = 0;          // completed below the native rung
  std::int64_t steered = 0;           // admitted past the high-water mark
  std::int64_t deadline_expired = 0;  // terminal kDeadlineExceeded
  std::int64_t failed = 0;            // any other terminal error (contract: 0)
  std::int64_t failovers = 0;         // cross-replica re-dispatches
  std::int64_t quarantines = 0;       // breaker open transitions
  std::int64_t probes = 0;            // half-open probes dispatched
  std::int64_t readmits = 0;          // probes that closed the breaker
  std::int64_t batches = 0;           // coalesced dispatches (size >= 2)
  std::int64_t batched_requests = 0;  // requests served inside those batches
  std::int64_t prewarms = 0;          // admission-time prewarm tasks scheduled
  std::int64_t prewarm_pins = 0;      // weight-store layers pinned warm
  std::int64_t prewarm_tables = 0;    // stream-table rows acquired warm
  std::int64_t queue_depth = 0;       // instantaneous
  std::vector<std::int64_t> served_by;  // executions per replica
};

// The serving frontend. Construction spawns one worker thread per replica;
// destruction drains every admitted request, then joins them. Thread-safe:
// any thread may submit.
class InferenceServer {
 public:
  explicit InferenceServer(const arch::HwConfig& hw,
                           ServeOptions options = ServeOptions::from_env());
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  // Admission: validates the request, applies quota and queue-capacity
  // checks, and either enqueues it (returning a future that always resolves
  // to a terminal Response) or refuses it with kInvalidArgument /
  // kResourceExhausted / kUnavailable. Never blocks on the queue.
  geo::StatusOr<std::future<Response>> submit(Request req);

  // submit + wait; admission refusals are folded into Response::status.
  Response run(Request req);

  // Attaches the shared out-of-core weight store that Request::store_layer
  // names resolve against. All replicas pin from this one store (it is
  // thread-safe and read-only from the serving side).
  void attach_store(std::shared_ptr<store::WeightStore> store);

  ServeStats stats() const;
  const ServeOptions& options() const noexcept { return options_; }
  BreakerState replica_state(int replica) const {
    return health_.state(replica);
  }

  // Test hooks. pause() holds dispatch (admission stays live) so tests can
  // fill the queue deterministically; set_replica_fault installs a
  // per-replica fault domain (the worker wraps each execution in a
  // ScopedFaultInjection, overriding GEO_FAULTS on that replica only).
  void pause();
  void resume();
  void set_replica_fault(int replica, std::optional<fault::FaultConfig> cfg);

 private:
  struct Pending;
  struct PrewarmCounters;

  void worker_main(int replica);
  void serve_one(int replica, std::unique_ptr<Pending> p);
  void serve_batch(int replica, std::vector<std::unique_ptr<Pending>> batch);
  // Shared post-execution tail of serve_one / serve_batch: attempt
  // bookkeeping, deadline/error handling, failover re-queue, breaker
  // signal, terminal respond.
  void finish_attempt(int replica, std::unique_ptr<Pending> p,
                      geo::StatusOr<arch::MachineResult> result,
                      bool degraded, double exec_us, bool batched);
  void schedule_prewarm(const Request& req);
  void respond(std::unique_ptr<Pending> p, Response resp);
  void apply_transition(ReplicaHealth::Transition t, int replica);

  arch::HwConfig hw_;
  ServeOptions options_;
  int high_water_;
  resilience::RetryPolicy retry_policy_;
  arch::GeoMachine validator_;
  ReplicaHealth health_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::unique_ptr<Pending>> queue_;
  std::map<std::string, std::int64_t> tenant_load_;
  std::vector<std::optional<fault::FaultConfig>> replica_fault_;
  std::shared_ptr<store::WeightStore> store_;  // guarded by mu_
  std::vector<std::int64_t> served_by_;
  bool stopping_ = false;
  bool paused_ = false;

  std::atomic<std::int64_t> submitted_{0}, admitted_{0}, rejected_invalid_{0},
      shed_queue_{0}, shed_quota_{0}, completed_{0}, ok_{0}, degraded_{0},
      steered_{0}, deadline_expired_{0}, failed_{0}, failovers_{0},
      quarantines_{0}, probes_{0}, readmits_{0}, batches_{0},
      batched_requests_{0};

  // Shared with detached prewarm tasks on exec::AsyncLane::io(), which may
  // outlive this server — they capture the shared_ptr, never `this`.
  std::shared_ptr<PrewarmCounters> prewarm_;

  std::vector<std::thread> workers_;
};

}  // namespace geo::serve
