#include "serve/serve.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string_view>

#include "core/env.hpp"

namespace geo::serve {

namespace {

resilience::Rung steer_from_env() {
  const char* raw = std::getenv("GEO_SERVE_STEER");
  if (raw == nullptr || raw[0] == '\0') return resilience::Rung::kReference;
  const std::string_view v(raw);
  if (v == "pbw") return resilience::Rung::kPbw;
  if (v == "fxp") return resilience::Rung::kFxp;
  if (v == "reference") return resilience::Rung::kReference;
  std::fprintf(stderr,
               "geo: GEO_SERVE_STEER='%s' is not pbw|fxp|reference; "
               "using reference\n",
               raw);
  return resilience::Rung::kReference;
}

}  // namespace

ServeOptions ServeOptions::from_env() {
  ServeOptions o;
  o.replicas =
      static_cast<int>(core::env_int("GEO_SERVE_REPLICAS", o.replicas, 1, 64));
  o.queue_capacity = static_cast<int>(
      core::env_int("GEO_SERVE_QUEUE", o.queue_capacity, 1, 1 << 16));
  o.tenant_quota = static_cast<int>(
      core::env_int("GEO_SERVE_QUOTA", o.tenant_quota, 1, 1 << 16));
  o.high_water = static_cast<int>(
      core::env_int("GEO_SERVE_HIGH_WATER", o.high_water, 0, 1 << 16));
  o.default_deadline_us = core::env_int(
      "GEO_SERVE_DEADLINE_US", o.default_deadline_us, 0, INT64_MAX / 2);
  o.retries =
      static_cast<int>(core::env_int("GEO_SERVE_RETRIES", o.retries, 0, 16));
  o.retry_backoff_us = core::env_int("GEO_SERVE_BACKOFF_US",
                                     o.retry_backoff_us, 0, 1'000'000'000);
  o.breaker_strikes = static_cast<int>(
      core::env_int("GEO_SERVE_STRIKES", o.breaker_strikes, 1, 1 << 16));
  o.probe_after = static_cast<int>(
      core::env_int("GEO_SERVE_PROBE_AFTER", o.probe_after, 1, 1 << 16));
  o.steer_rung = steer_from_env();
  o.batch = static_cast<int>(core::env_int("GEO_SERVE_BATCH", o.batch, 1, 64));
  o.batch_wait_us = core::env_int("GEO_SERVE_BATCH_WAIT_US", o.batch_wait_us,
                                  0, 1'000'000'000);
  o.prewarm = core::env_int("GEO_SERVE_PREWARM", o.prewarm ? 1 : 0, 0, 1) != 0;
  return o;
}

geo::Status ServeOptions::validate() const {
  if (replicas < 1) return geo::Status::invalid_argument("serve: replicas < 1");
  if (queue_capacity < 1)
    return geo::Status::invalid_argument("serve: queue_capacity < 1");
  if (tenant_quota < 1)
    return geo::Status::invalid_argument("serve: tenant_quota < 1");
  if (high_water < 0)
    return geo::Status::invalid_argument("serve: high_water < 0");
  if (default_deadline_us < 0)
    return geo::Status::invalid_argument("serve: default_deadline_us < 0");
  if (retries < 0) return geo::Status::invalid_argument("serve: retries < 0");
  if (retry_backoff_us < 0)
    return geo::Status::invalid_argument("serve: retry_backoff_us < 0");
  if (breaker_strikes < 1)
    return geo::Status::invalid_argument("serve: breaker_strikes < 1");
  if (probe_after < 1)
    return geo::Status::invalid_argument("serve: probe_after < 1");
  if (steer_rung == resilience::Rung::kNative)
    return geo::Status::invalid_argument(
        "serve: steer_rung must be a degraded rung");
  if (batch < 1) return geo::Status::invalid_argument("serve: batch < 1");
  if (batch_wait_us < 0)
    return geo::Status::invalid_argument("serve: batch_wait_us < 0");
  return geo::Status();
}

int ServeOptions::effective_high_water() const noexcept {
  if (high_water > 0) return high_water;
  return std::max(1, (queue_capacity * 3) / 4);
}

std::string ServeOptions::to_string() const {
  std::ostringstream os;
  os << "replicas=" << replicas << ",queue=" << queue_capacity
     << ",quota=" << tenant_quota << ",high_water=" << effective_high_water()
     << ",deadline_us=" << default_deadline_us << ",retries=" << retries
     << ",backoff_us=" << retry_backoff_us << ",strikes=" << breaker_strikes
     << ",probe_after=" << probe_after
     << ",steer=" << resilience::to_string(steer_rung) << ",batch=" << batch
     << ",batch_wait_us=" << batch_wait_us
     << ",prewarm=" << (prewarm ? 1 : 0);
  return os.str();
}

}  // namespace geo::serve
