// Pipeline-sharded serving of multi-layer networks (docs/SERVING.md).
//
// PipelineRouter splits a network's layers into contiguous stage ranges and
// gives each stage its own InferenceServer (replica pool + circuit breaker +
// failover — the full per-request serving policy applies per stage). Stages
// are chained over exec::AsyncLane handoffs and double-buffered: each stage
// admits at most two in-flight networks (one executing, one arriving), so
// stage N executes network b while stage N+1 receives b-1 — the paper's
// shadow-buffer overlap lifted from SNG buffers to the replica pool. An
// admitted network always gets a terminal NetworkResponse; per-stage
// failover keeps the zero-failed-requests contract even with a whole stage's
// replicas faulted (the stage degrades, the network completes).
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/async_lane.hpp"
#include "serve/serve.hpp"

namespace geo::serve {

// One layer of a multi-layer network request. Spans are caller-owned and
// must outlive the response future's completion.
struct LayerSpec {
  arch::ConvShape shape;
  std::span<const float> weights;
  std::span<const float> bn_scale;
  std::span<const float> bn_shift;
  std::uint64_t layer_salt = 0;
  // Out-of-core weights, resolved against the attached store at the owning
  // stage (see Request::store_layer). Mutually exclusive with `weights`.
  std::string store_layer;
};

struct NetworkRequest {
  std::string tenant = "default";
  // Layers in execution order; layer i+1's activations() must equal layer
  // i's outputs() (the router chains them through dequantization).
  std::vector<LayerSpec> layers;
  std::span<const float> input;  // layer 0's input, caller-owned
  std::int64_t deadline_us = 0;  // whole-network budget, 0 = none
  std::string label;
};

struct NetworkResponse {
  geo::Status status;          // terminal outcome (default OK)
  arch::MachineResult result;  // last layer's result, valid when status.ok()
  bool degraded = false;       // any layer served below the native rung
  int failovers = 0;           // cross-replica re-dispatches, all layers
  double total_us = 0.0;       // submit -> response
};

// Monotone counters since construction.
struct PipelineStats {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;         // terminal responses (any status)
  std::int64_t degraded = 0;          // completed with a degraded layer
  std::int64_t deadline_expired = 0;  // terminal kDeadlineExceeded
  std::int64_t failed = 0;            // other terminal errors (contract: 0)
  std::int64_t handoffs = 0;          // inter-stage activation handoffs
  std::int64_t stage_waits = 0;       // handoffs that blocked on a busy stage
};

class PipelineRouter {
 public:
  // `stages` stage servers, each running `options` (so the total replica
  // count is stages * options.replicas). Batching knobs apply per stage.
  PipelineRouter(const arch::HwConfig& hw, int stages,
                 ServeOptions options = ServeOptions::from_env());
  ~PipelineRouter();

  PipelineRouter(const PipelineRouter&) = delete;
  PipelineRouter& operator=(const PipelineRouter&) = delete;

  // Admission: validates the layer chain, then enqueues the network into
  // stage 0. Blocks only on stage 0's double-buffer gate (backpressure when
  // two networks are already in flight there); the returned future always
  // resolves to a terminal NetworkResponse.
  geo::StatusOr<std::future<NetworkResponse>> submit(NetworkRequest req);

  // submit + wait; admission refusals fold into NetworkResponse::status.
  NetworkResponse run(NetworkRequest req);

  // Attaches the store LayerSpec::store_layer names resolve against, on
  // every stage.
  void attach_store(std::shared_ptr<store::WeightStore> store);

  int stages() const noexcept { return stages_; }
  // The stage's server, for per-stage fault injection and breaker state.
  InferenceServer& stage(int s) { return *servers_[static_cast<std::size_t>(s)]; }

  PipelineStats stats() const;

 private:
  struct InFlight;
  struct StageGate;

  // First layer index of stage `s` for an `layers`-layer network
  // (contiguous balanced split).
  int stage_first(int s, int layers) const noexcept;
  void advance(std::shared_ptr<InFlight> net, int s);
  void fulfill(const std::shared_ptr<InFlight>& net, NetworkResponse resp);
  void acquire_gate(int s);
  void release_gate(int s);

  arch::HwConfig hw_;
  int stages_;
  std::vector<std::unique_ptr<InferenceServer>> servers_;
  std::vector<std::unique_ptr<StageGate>> gates_;
  // Declared after servers_/gates_ and reset front-to-back in the
  // destructor: draining lane s may hand off to lane s+1 and touch servers
  // and gates, so those must still be alive.
  std::vector<std::unique_ptr<exec::AsyncLane>> lanes_;

  std::atomic<std::int64_t> submitted_{0}, completed_{0}, degraded_{0},
      deadline_expired_{0}, failed_{0}, handoffs_{0}, stage_waits_{0};
};

}  // namespace geo::serve
