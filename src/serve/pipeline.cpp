#include "serve/pipeline.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "nn/quantize.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace geo::serve {

namespace {

using Clock = std::chrono::steady_clock;

void journal_event(std::string_view kind, std::string_view label,
                   std::initializer_list<telemetry::JournalArg> args = {},
                   std::string_view note = {}) {
  auto& journal = telemetry::Journal::instance();
  if (journal.enabled()) journal.record(kind, label, args, note);
}

}  // namespace

// One admitted network's lifetime across stages. Shared between the lane
// tasks; the caller holds only the future.
struct PipelineRouter::InFlight {
  NetworkRequest req;
  std::promise<NetworkResponse> promise;
  Clock::time_point submitted;
  Clock::time_point deadline;  // meaningful when has_deadline
  bool has_deadline = false;
  std::vector<float> act;  // inter-stage activation buffer (dequantized)
  bool degraded = false;
  int failovers = 0;

  const std::string& label() const {
    return req.label.empty() ? req.tenant : req.label;
  }
};

// Double-buffer admission gate: at most two networks in flight per stage
// (one executing, one arriving). Acquired before the handoff, released when
// the network leaves the stage — so stage N can execute b while it receives
// b+1, but b+2 waits.
struct PipelineRouter::StageGate {
  std::mutex mu;
  std::condition_variable cv;
  int in_flight = 0;
};

PipelineRouter::PipelineRouter(const arch::HwConfig& hw, int stages,
                               ServeOptions options)
    : hw_(hw), stages_(stages) {
  if (stages < 1)
    throw std::invalid_argument("PipelineRouter: stages < 1");
  auto& m = telemetry::MetricsRegistry::instance();
  for (const char* name :
       {"serve.pipeline", "serve.pipeline_completed",
        "serve.pipeline_degraded", "serve.pipeline_deadline",
        "serve.pipeline_failed", "serve.pipeline_handoff",
        "serve.pipeline_stall"})
    m.counter(name);
  servers_.reserve(static_cast<std::size_t>(stages));
  gates_.reserve(static_cast<std::size_t>(stages));
  lanes_.reserve(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    servers_.push_back(std::make_unique<InferenceServer>(hw, options));
    gates_.push_back(std::make_unique<StageGate>());
    lanes_.push_back(std::make_unique<exec::AsyncLane>());
  }
  journal_event("pipeline.start", "router",
                {{"stages", static_cast<double>(stages)},
                 {"replicas_per_stage", static_cast<double>(options.replicas)}});
}

PipelineRouter::~PipelineRouter() {
  // Drain front to back: a draining lane may hand off to the next lane and
  // still needs the downstream servers and gates alive.
  for (auto& lane : lanes_) lane.reset();
}

int PipelineRouter::stage_first(int s, int layers) const noexcept {
  return static_cast<int>((static_cast<std::int64_t>(s) * layers) / stages_);
}

void PipelineRouter::acquire_gate(int s) {
  StageGate& g = *gates_[static_cast<std::size_t>(s)];
  std::unique_lock lock(g.mu);
  if (g.in_flight >= 2) {
    stage_waits_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance()
        .counter("serve.pipeline_stall")
        .add();
    g.cv.wait(lock, [&] { return g.in_flight < 2; });
  }
  ++g.in_flight;
}

void PipelineRouter::release_gate(int s) {
  StageGate& g = *gates_[static_cast<std::size_t>(s)];
  {
    std::lock_guard lock(g.mu);
    --g.in_flight;
  }
  g.cv.notify_all();
}

geo::StatusOr<std::future<NetworkResponse>> PipelineRouter::submit(
    NetworkRequest req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  telemetry::MetricsRegistry::instance().counter("serve.pipeline").add();
  if (req.layers.empty())
    return geo::Status::invalid_argument("pipeline: network has no layers");
  if (static_cast<int>(req.layers.size()) < stages_)
    return geo::Status::invalid_argument(
        "pipeline: " + std::to_string(req.layers.size()) +
        " layer(s) across " + std::to_string(stages_) +
        " stages leaves a stage empty");
  if (req.input.size() !=
      static_cast<std::size_t>(req.layers.front().shape.activations()))
    return geo::Status::invalid_argument(
        "pipeline: input has " + std::to_string(req.input.size()) +
        " floats, layer 0 wants " +
        std::to_string(req.layers.front().shape.activations()));
  for (std::size_t i = 1; i < req.layers.size(); ++i) {
    if (req.layers[i].shape.activations() != req.layers[i - 1].shape.outputs())
      return geo::Status::invalid_argument(
          "pipeline: layer " + std::to_string(i) + " wants " +
          std::to_string(req.layers[i].shape.activations()) +
          " activations, layer " + std::to_string(i - 1) + " produces " +
          std::to_string(req.layers[i - 1].shape.outputs()));
  }
  if (req.deadline_us < 0)
    return geo::Status::invalid_argument("pipeline: deadline_us < 0");

  auto net = std::make_shared<InFlight>();
  net->req = std::move(req);
  net->submitted = Clock::now();
  net->has_deadline = net->req.deadline_us > 0;
  if (net->has_deadline)
    net->deadline =
        net->submitted + std::chrono::microseconds(net->req.deadline_us);
  std::future<NetworkResponse> future = net->promise.get_future();

  // Backpressure: blocks while stage 0 already holds two in-flight
  // networks. Admitted from here on — a terminal response is guaranteed.
  acquire_gate(0);
  lanes_.front()->submit([this, net] { advance(net, 0); });
  return future;
}

NetworkResponse PipelineRouter::run(NetworkRequest req) {
  auto future = submit(std::move(req));
  if (!future.ok()) {
    NetworkResponse r;
    r.status = future.status();
    return r;
  }
  return future->get();
}

void PipelineRouter::fulfill(const std::shared_ptr<InFlight>& net,
                             NetworkResponse resp) {
  resp.degraded = net->degraded;
  resp.failovers = net->failovers;
  resp.total_us = std::chrono::duration<double, std::micro>(Clock::now() -
                                                            net->submitted)
                      .count();
  completed_.fetch_add(1, std::memory_order_relaxed);
  auto& m = telemetry::MetricsRegistry::instance();
  m.counter("serve.pipeline_completed").add();
  if (resp.status.ok()) {
    if (resp.degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.pipeline_degraded").add();
    }
  } else if (resp.status.code() == geo::StatusCode::kDeadlineExceeded) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    m.counter("serve.pipeline_deadline").add();
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
    m.counter("serve.pipeline_failed").add();
  }
  net->promise.set_value(std::move(resp));
}

void PipelineRouter::advance(std::shared_ptr<InFlight> net, int s) {
  const int layer_count = static_cast<int>(net->req.layers.size());
  const int first = stage_first(s, layer_count);
  const int last = stage_first(s + 1, layer_count);

  std::span<const float> input =
      s == 0 ? net->req.input : std::span<const float>(net->act);
  std::vector<float> chained;

  for (int li = first; li < last; ++li) {
    std::int64_t remaining_us = 0;
    if (net->has_deadline) {
      remaining_us = std::chrono::duration_cast<std::chrono::microseconds>(
                         net->deadline - Clock::now())
                         .count();
      if (remaining_us <= 0) {
        NetworkResponse resp;
        resp.status = geo::Status::deadline_exceeded(
            "pipeline: deadline expired before layer " + std::to_string(li));
        fulfill(net, std::move(resp));
        release_gate(s);
        return;
      }
    }

    const LayerSpec& layer = net->req.layers[static_cast<std::size_t>(li)];
    Request r;
    r.tenant = net->req.tenant;
    r.shape = layer.shape;
    r.weights = layer.weights;
    r.input = input;
    r.bn_scale = layer.bn_scale;
    r.bn_shift = layer.bn_shift;
    r.layer_salt = layer.layer_salt;
    r.store_layer = layer.store_layer;
    r.deadline_us = net->has_deadline ? remaining_us : 0;
    r.label = net->label() + "/l" + std::to_string(li);

    Response resp = servers_[static_cast<std::size_t>(s)]->run(std::move(r));
    if (!resp.status.ok()) {
      NetworkResponse nresp;
      nresp.status = std::move(resp.status);
      fulfill(net, std::move(nresp));
      release_gate(s);
      return;
    }
    net->degraded = net->degraded || resp.degraded;
    net->failovers += std::max(0, resp.attempts - 1);

    if (li == layer_count - 1) {
      NetworkResponse nresp;
      nresp.result = std::move(resp.result);
      fulfill(net, std::move(nresp));
      release_gate(s);
      return;
    }

    // Chain: the next layer consumes this layer's activations dequantized
    // back to the unipolar float domain (same as serial layer-by-layer
    // execution).
    chained.resize(resp.result.activations.size());
    for (std::size_t i = 0; i < chained.size(); ++i)
      chained[i] = nn::dequantize_unsigned(resp.result.activations[i], 8);
    input = chained;
  }

  // Handoff to the next stage: park the activations in the network's
  // buffer, take the downstream double-buffer slot (blocking here is the
  // pipeline's backpressure), then free this stage for the next network.
  net->act = std::move(chained);
  handoffs_.fetch_add(1, std::memory_order_relaxed);
  telemetry::MetricsRegistry::instance().counter("serve.pipeline_handoff").add();
  journal_event("pipeline.stage", net->label(),
                {{"stage", static_cast<double>(s)},
                 {"next", static_cast<double>(s + 1)}});
  acquire_gate(s + 1);
  const int next = s + 1;
  lanes_[static_cast<std::size_t>(next)]->submit(
      [this, net, next] { advance(net, next); });
  release_gate(s);
}

void PipelineRouter::attach_store(std::shared_ptr<store::WeightStore> store) {
  for (auto& server : servers_) server->attach_store(store);
}

PipelineStats PipelineRouter::stats() const {
  PipelineStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.handoffs = handoffs_.load(std::memory_order_relaxed);
  s.stage_waits = stage_waits_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace geo::serve
