#include "serve/serve.hpp"

#include <algorithm>
#include <utility>

#include "store/weight_store.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace geo::serve {

namespace {

using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

void journal_event(std::string_view kind, std::string_view label,
                   std::initializer_list<telemetry::JournalArg> args = {},
                   std::string_view note = {}) {
  auto& journal = telemetry::Journal::instance();
  if (journal.enabled()) journal.record(kind, label, args, note);
}

}  // namespace

// One admitted request's lifetime across dispatches. Owned by the queue
// between dispatches and by the serving worker while executing; the caller
// holds only the future.
struct InferenceServer::Pending {
  Request req;
  std::promise<Response> promise;
  exec::CancelToken cancel;
  Clock::time_point submitted;
  Clock::time_point not_before;  // failover backoff gate
  double queue_us = 0.0;         // submit -> first dispatch
  int attempts = 0;              // executions so far
  int exclude = -1;              // replica the last attempt failed on
  bool dispatched = false;       // queue_us already latched
  bool steered = false;          // admitted past the high-water mark

  const std::string& label() const {
    return req.label.empty() ? req.tenant : req.label;
  }
};

InferenceServer::InferenceServer(const arch::HwConfig& hw,
                                 ServeOptions options)
    : hw_(hw),
      options_(std::move(options)),
      high_water_(options_.effective_high_water()),
      retry_policy_(resilience::RetryPolicy::from_env()),
      validator_(hw),
      health_(options_.replicas, options_.breaker_strikes,
              options_.probe_after) {
  if (const geo::Status s = options_.validate(); !s.ok())
    throw std::invalid_argument("InferenceServer: " + s.message());
  replica_fault_.resize(static_cast<std::size_t>(options_.replicas));
  served_by_.assign(static_cast<std::size_t>(options_.replicas), 0);
  // Pre-register every serve.* metric so snapshots have a deterministic
  // shape whether or not an event occurred.
  auto& m = telemetry::MetricsRegistry::instance();
  for (const char* name :
       {"serve.submitted", "serve.admitted", "serve.rejected_invalid",
        "serve.shed_queue", "serve.shed_quota", "serve.completed", "serve.ok",
        "serve.degraded", "serve.steered", "serve.deadline_expired",
        "serve.failed", "serve.failover", "serve.quarantine", "serve.probe",
        "serve.probe_failed", "serve.readmit"})
    m.counter(name);
  m.gauge("serve.queue_depth");
  m.histogram("serve.queue_us");
  m.histogram("serve.exec_us");
  m.histogram("serve.latency_us");
  journal_event("serve.start", "server", {}, options_.to_string());
  workers_.reserve(static_cast<std::size_t>(options_.replicas));
  for (int r = 0; r < options_.replicas; ++r)
    workers_.emplace_back([this, r] { worker_main(r); });
}

InferenceServer::~InferenceServer() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    paused_ = false;  // a paused server still drains on shutdown
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  journal_event("serve.stop", "server",
                {{"completed", static_cast<double>(
                                   completed_.load(std::memory_order_relaxed))}});
}

geo::StatusOr<std::future<Response>> InferenceServer::submit(Request req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  telemetry::MetricsRegistry::instance().counter("serve.submitted").add();
  // Validate at the door: a malformed request must never consume a replica.
  // A store-backed request carries no weights span yet; it is admitted only
  // if the named layer exists in the attached store with exactly the float
  // count the shape demands, so the dispatch-time pin cannot size-fail.
  auto reject = [&](geo::Status s) -> geo::Status {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance()
        .counter("serve.rejected_invalid")
        .add();
    journal_event("serve.reject", req.tenant, {}, s.message());
    return s;
  };
  std::vector<float> weight_stub;
  std::span<const float> validate_weights = req.weights;
  if (!req.store_layer.empty()) {
    std::shared_ptr<store::WeightStore> store;
    {
      std::lock_guard lock(mu_);
      store = store_;
    }
    if (store == nullptr)
      return reject(geo::Status::failed_precondition(
          "serve: request names store layer '" + req.store_layer +
          "' but no weight store is attached"));
    if (!req.weights.empty())
      return reject(geo::Status::invalid_argument(
          "serve: request has both a weights span and store layer '" +
          req.store_layer + "'"));
    const std::uint64_t floats = store->layer_floats(req.store_layer);
    if (floats == 0 ||
        floats != static_cast<std::uint64_t>(req.shape.weights()))
      return reject(geo::Status::invalid_argument(
          "serve: store layer '" + req.store_layer + "' has " +
          std::to_string(floats) + " floats, shape wants " +
          std::to_string(req.shape.weights())));
    // Size-only stand-in for the span checks below; the real bytes are
    // pinned by the worker at dispatch.
    weight_stub.resize(static_cast<std::size_t>(floats));
    validate_weights = weight_stub;
  }
  if (geo::Status s = validator_.validate_conv(req.shape, validate_weights,
                                               req.input, req.bn_scale,
                                               req.bn_shift);
      !s.ok())
    return reject(std::move(s));

  auto p = std::make_unique<Pending>();
  p->req = std::move(req);
  p->submitted = Clock::now();
  p->not_before = p->submitted;
  const std::int64_t deadline_us = p->req.deadline_us < 0
                                       ? options_.default_deadline_us
                                       : p->req.deadline_us;
  if (deadline_us > 0)
    p->cancel.set_deadline(p->submitted +
                           std::chrono::microseconds(deadline_us));
  std::future<Response> future = p->promise.get_future();

  {
    std::lock_guard lock(mu_);
    if (stopping_)
      return geo::Status::unavailable("serve: server is shutting down");
    if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      shed_queue_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.shed_queue").add();
      journal_event("serve.shed", p->req.tenant,
                    {{"depth", static_cast<double>(queue_.size())}}, "queue");
      return geo::Status::resource_exhausted(
          "serve: request queue full (" +
          std::to_string(options_.queue_capacity) + ")");
    }
    std::int64_t& load = tenant_load_[p->req.tenant];
    if (load >= options_.tenant_quota) {
      shed_quota_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.shed_quota").add();
      journal_event("serve.shed", p->req.tenant,
                    {{"load", static_cast<double>(load)}}, "quota");
      return geo::Status::resource_exhausted("serve: tenant '" +
                                             p->req.tenant + "' over quota (" +
                                             std::to_string(load) + ")");
    }
    ++load;
    // Graceful degradation: past the high-water mark, admit but steer to a
    // degraded rung instead of queueing full-fidelity work we cannot drain.
    p->steered = static_cast<int>(queue_.size()) >= high_water_;
    if (p->steered) {
      steered_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.steered").add();
      journal_event("serve.steer", p->req.tenant,
                    {{"depth", static_cast<double>(queue_.size())}},
                    resilience::to_string(options_.steer_rung));
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance().counter("serve.admitted").add();
    queue_.push_back(std::move(p));
    telemetry::MetricsRegistry::instance()
        .gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return future;
}

Response InferenceServer::run(Request req) {
  auto future = submit(std::move(req));
  if (!future.ok()) {
    Response r;
    r.status = future.status();
    return r;
  }
  return future->get();
}

void InferenceServer::worker_main(int replica) {
  for (;;) {
    std::unique_ptr<Pending> next;
    {
      std::unique_lock lock(mu_);
      for (;;) {
        auto wait_until = Clock::time_point::max();
        if (!paused_) {
          const auto now = Clock::now();
          auto pick = queue_.end();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if ((*it)->not_before > now) {
              wait_until = std::min(wait_until, (*it)->not_before);
              continue;
            }
            // A failed-over request avoids the replica it failed on —
            // waived when every other replica is quarantined (serving
            // degraded beats waiting for a probe that may never come).
            if ((*it)->exclude == replica && health_.other_candidate(replica))
              continue;
            pick = it;
            break;
          }
          if (pick != queue_.end()) {
            bool probe = false;
            if (health_.admit(replica, &probe)) {
              if (probe) {
                probes_.fetch_add(1, std::memory_order_relaxed);
                telemetry::MetricsRegistry::instance()
                    .counter("serve.probe")
                    .add();
                journal_event("serve.probe", (*pick)->label(),
                              {{"replica", static_cast<double>(replica)}});
              }
              next = std::move(*pick);
              queue_.erase(pick);
              telemetry::MetricsRegistry::instance()
                  .gauge("serve.queue_depth")
                  .set(static_cast<double>(queue_.size()));
              break;
            }
            // Quarantined and not probe-eligible: wait for completions
            // elsewhere (respond() notifies) to drain the countdown.
          }
        }
        if (stopping_ && queue_.empty()) return;
        if (wait_until == Clock::time_point::max())
          cv_.wait(lock);
        else
          cv_.wait_until(lock, wait_until);
      }
    }
    serve_one(replica, std::move(next));
  }
}

void InferenceServer::serve_one(int replica, std::unique_ptr<Pending> p) {
  const auto popped = Clock::now();
  if (!p->dispatched) {
    p->dispatched = true;
    p->queue_us = micros_between(p->submitted, popped);
  }

  // Deadline already expired while queued: release the replica without
  // charging a single cycle.
  if (p->cancel.cancelled()) {
    health_.on_no_signal(replica);
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance()
        .counter("serve.deadline_expired")
        .add();
    journal_event("serve.deadline", p->label(),
                  {{"replica", static_cast<double>(replica)},
                   {"attempt", static_cast<double>(p->attempts)}},
                  "expired-in-queue");
    Response resp;
    resp.status =
        geo::Status::deadline_exceeded("serve: deadline expired in queue");
    resp.replica = replica;
    resp.attempts = p->attempts;
    respond(std::move(p), std::move(resp));
    return;
  }

  // Per-replica fault domain: the scoped override beats GEO_FAULTS on this
  // thread, and the thread pool propagates it to any helper workers.
  std::optional<fault::FaultConfig> fault_cfg;
  {
    std::lock_guard lock(mu_);
    fault_cfg = replica_fault_[static_cast<std::size_t>(replica)];
  }
  std::optional<fault::ScopedFaultInjection> fault_scope;
  if (fault_cfg.has_value()) fault_scope.emplace(*fault_cfg);

  resilience::ResilientExecutor executor(hw_, retry_policy_);
  resilience::RunOptions run_options;
  run_options.cancel = &p->cancel;
  if (p->steered) run_options.start = options_.steer_rung;

  // Store-backed weights: pin here, on the worker, inside the fault scope —
  // the repair ladder (reread/rebuild/fallback) runs under whatever disk
  // faults this replica is subject to and still returns source-identical
  // bytes. Admission verified the layer, so a pin failure is a contract
  // break surfaced loudly below, never a silent drop.
  std::span<const float> weights = p->req.weights;
  store::Pinned pinned;
  if (!p->req.store_layer.empty()) {
    std::shared_ptr<store::WeightStore> store;
    {
      std::lock_guard lock(mu_);
      store = store_;
    }
    geo::StatusOr<store::Pinned> pin =
        store != nullptr ? store->pin(p->req.store_layer)
                         : geo::Status::failed_precondition(
                               "serve: weight store detached after admission");
    if (!pin.ok()) {
      apply_transition(health_.on_outcome(replica, false), replica);
      failed_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.failed").add();
      journal_event("serve.fail", p->label(),
                    {{"replica", static_cast<double>(replica)}},
                    pin.status().message());
      Response resp;
      resp.status = pin.status();
      resp.replica = replica;
      resp.attempts = p->attempts;
      respond(std::move(p), std::move(resp));
      return;
    }
    pinned = std::move(*pin);
    weights = pinned.span();
    // Charge the load's modeled io stall into the execution's ledger (zero
    // on cache hits), where attribution folds it into the memory bucket.
    run_options.io_stall_cycles = pinned.stats().io_stall_cycles;
  }

  const auto exec_start = Clock::now();
  auto result = executor.run_conv(p->req.shape, weights, p->req.input,
                                  p->req.bn_scale, p->req.bn_shift,
                                  p->req.layer_salt, p->label(), run_options);
  const double exec_us = micros_between(exec_start, Clock::now());
  ++p->attempts;
  {
    std::lock_guard lock(mu_);
    ++served_by_[static_cast<std::size_t>(replica)];
  }

  if (!result.ok()) {
    Response resp;
    resp.status = result.status();
    resp.replica = replica;
    resp.attempts = p->attempts;
    resp.exec_us = exec_us;
    if (result.status().code() == geo::StatusCode::kDeadlineExceeded) {
      // Cancelled mid-execution: the execution was abandoned at a tile
      // boundary and carries no health signal about the replica.
      health_.on_no_signal(replica);
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance()
          .counter("serve.deadline_expired")
          .add();
      journal_event("serve.deadline", p->label(),
                    {{"replica", static_cast<double>(replica)},
                     {"attempt", static_cast<double>(p->attempts)}},
                    "expired-mid-execution");
    } else {
      // Unreachable by design: admission validated the request and the
      // resilience ladder bottoms out in a rung that always succeeds. Fail
      // the request loudly rather than hide a contract break.
      apply_transition(health_.on_outcome(replica, false), replica);
      failed_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.failed").add();
      journal_event("serve.fail", p->label(),
                    {{"replica", static_cast<double>(replica)}},
                    result.status().message());
    }
    respond(std::move(p), std::move(resp));
    return;
  }

  const resilience::LayerOutcome* outcome = executor.last_outcome();
  const bool degraded = outcome != nullptr && outcome->degraded;
  // Steering chose the rung; only an unsteered degradation implicates the
  // replica (its tile-retry budget drained on hardware rungs).
  const bool clean = !degraded || p->steered;

  if (degraded && !p->steered && p->attempts <= options_.retries &&
      health_.other_candidate(replica) && !p->cancel.cancel_requested()) {
    // Persistent-fault signature with failover budget left: strike this
    // replica, back off, and re-dispatch elsewhere. The request keeps its
    // queue slot semantics (already admitted — re-enqueue bypasses
    // capacity so an admitted request can never be shed).
    apply_transition(health_.on_outcome(replica, false), replica);
    failovers_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance().counter("serve.failover").add();
    journal_event("serve.failover", p->label(),
                  {{"replica", static_cast<double>(replica)},
                   {"attempt", static_cast<double>(p->attempts)}});
    p->exclude = replica;
    p->not_before =
        Clock::now() + std::chrono::microseconds(
                           options_.retry_backoff_us
                           << std::min(p->attempts - 1, 20));
    {
      std::lock_guard lock(mu_);
      queue_.push_front(std::move(p));
      telemetry::MetricsRegistry::instance()
          .gauge("serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
    cv_.notify_all();
    return;
  }

  apply_transition(health_.on_outcome(replica, clean), replica);
  Response resp;
  resp.result = std::move(*result);
  resp.degraded = degraded;
  resp.steered = p->steered;
  resp.replica = replica;
  resp.attempts = p->attempts;
  resp.exec_us = exec_us;
  respond(std::move(p), std::move(resp));
}

void InferenceServer::respond(std::unique_ptr<Pending> p, Response resp) {
  resp.queue_us = p->queue_us;
  resp.total_us = micros_between(p->submitted, Clock::now());
  {
    std::lock_guard lock(mu_);
    auto it = tenant_load_.find(p->req.tenant);
    if (it != tenant_load_.end() && --it->second <= 0) tenant_load_.erase(it);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  auto& m = telemetry::MetricsRegistry::instance();
  m.counter("serve.completed").add();
  if (resp.status.ok()) {
    if (resp.degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.degraded").add();
    } else {
      ok_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.ok").add();
    }
  }
  m.histogram("serve.queue_us").observe(resp.queue_us);
  m.histogram("serve.exec_us").observe(resp.exec_us);
  m.histogram("serve.latency_us").observe(resp.total_us);
  p->promise.set_value(std::move(resp));
  // Completions drain quarantined replicas' probe countdowns and free a
  // queue slot — wake every worker.
  cv_.notify_all();
}

void InferenceServer::apply_transition(ReplicaHealth::Transition t,
                                       int replica) {
  auto& m = telemetry::MetricsRegistry::instance();
  switch (t) {
    case ReplicaHealth::Transition::kNone:
      return;
    case ReplicaHealth::Transition::kOpened:
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.quarantine").add();
      journal_event("serve.quarantine", "replica",
                    {{"replica", static_cast<double>(replica)}});
      return;
    case ReplicaHealth::Transition::kReopened:
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.probe_failed").add();
      journal_event("serve.quarantine", "replica",
                    {{"replica", static_cast<double>(replica)}},
                    "probe-failed");
      return;
    case ReplicaHealth::Transition::kClosed:
      readmits_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.readmit").add();
      journal_event("serve.readmit", "replica",
                    {{"replica", static_cast<double>(replica)}});
      return;
  }
}

ServeStats InferenceServer::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.shed_queue = shed_queue_.load(std::memory_order_relaxed);
  s.shed_quota = shed_quota_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.steered = steered_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.readmits = readmits_.load(std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  s.queue_depth = static_cast<std::int64_t>(queue_.size());
  s.served_by = served_by_;
  return s;
}

void InferenceServer::pause() {
  std::lock_guard lock(mu_);
  paused_ = true;
}

void InferenceServer::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void InferenceServer::attach_store(std::shared_ptr<store::WeightStore> store) {
  std::lock_guard lock(mu_);
  store_ = std::move(store);
}

void InferenceServer::set_replica_fault(int replica,
                                        std::optional<fault::FaultConfig> cfg) {
  std::lock_guard lock(mu_);
  replica_fault_[static_cast<std::size_t>(replica)] = std::move(cfg);
}

}  // namespace geo::serve
