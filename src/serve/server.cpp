#include "serve/serve.hpp"

#include <algorithm>
#include <utility>

#include "exec/async_lane.hpp"
#include "sc/seed_sharing.hpp"
#include "sc/stream_table.hpp"
#include "store/weight_store.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace geo::serve {

namespace {

using Clock = std::chrono::steady_clock;

double micros_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

void journal_event(std::string_view kind, std::string_view label,
                   std::initializer_list<telemetry::JournalArg> args = {},
                   std::string_view note = {}) {
  auto& journal = telemetry::Journal::instance();
  if (journal.enabled()) journal.record(kind, label, args, note);
}

// Span identity, not value equality: batch members must share the caller's
// actual weight/BN storage for the one-preparation dispatch to be sound.
bool same_span(std::span<const float> a, std::span<const float> b) {
  return a.data() == b.data() && a.size() == b.size();
}

bool same_shape(const arch::ConvShape& a, const arch::ConvShape& b) {
  return a.cin == b.cin && a.hin == b.hin && a.win == b.win &&
         a.cout == b.cout && a.kh == b.kh && a.kw == b.kw &&
         a.stride == b.stride && a.pad == b.pad && a.pool == b.pool &&
         a.output == b.output;
}

}  // namespace

// One admitted request's lifetime across dispatches. Owned by the queue
// between dispatches and by the serving worker while executing; the caller
// holds only the future.
struct InferenceServer::Pending {
  Request req;
  std::promise<Response> promise;
  exec::CancelToken cancel;
  Clock::time_point submitted;
  Clock::time_point not_before;  // failover backoff gate
  double queue_us = 0.0;         // submit -> first dispatch
  int attempts = 0;              // executions so far
  int exclude = -1;              // replica the last attempt failed on
  bool dispatched = false;       // queue_us already latched
  bool steered = false;          // admitted past the high-water mark

  const std::string& label() const {
    return req.label.empty() ? req.tenant : req.label;
  }
};

// Prewarm bookkeeping shared with detached exec::AsyncLane::io() tasks: a
// task may complete after the server is gone, so it holds this shared_ptr,
// never the server.
struct InferenceServer::PrewarmCounters {
  std::atomic<std::int64_t> scheduled{0};
  std::atomic<std::int64_t> pins{0};
  std::atomic<std::int64_t> tables{0};
};

InferenceServer::InferenceServer(const arch::HwConfig& hw,
                                 ServeOptions options)
    : hw_(hw),
      options_(std::move(options)),
      high_water_(options_.effective_high_water()),
      retry_policy_(resilience::RetryPolicy::from_env()),
      validator_(hw),
      health_(options_.replicas, options_.breaker_strikes,
              options_.probe_after) {
  if (const geo::Status s = options_.validate(); !s.ok())
    throw std::invalid_argument("InferenceServer: " + s.message());
  replica_fault_.resize(static_cast<std::size_t>(options_.replicas));
  served_by_.assign(static_cast<std::size_t>(options_.replicas), 0);
  // Pre-register every serve.* metric so snapshots have a deterministic
  // shape whether or not an event occurred.
  auto& m = telemetry::MetricsRegistry::instance();
  for (const char* name :
       {"serve.submitted", "serve.admitted", "serve.rejected_invalid",
        "serve.shed_queue", "serve.shed_quota", "serve.completed", "serve.ok",
        "serve.degraded", "serve.steered", "serve.deadline_expired",
        "serve.failed", "serve.failover", "serve.quarantine", "serve.probe",
        "serve.probe_failed", "serve.readmit", "serve.batch",
        "serve.batch_requests", "serve.prewarm", "serve.prewarm_pins",
        "serve.prewarm_tables"})
    m.counter(name);
  m.gauge("serve.queue_depth");
  m.histogram("serve.queue_us");
  m.histogram("serve.exec_us");
  m.histogram("serve.latency_us");
  m.histogram("serve.batch_occupancy");
  prewarm_ = std::make_shared<PrewarmCounters>();
  journal_event("serve.start", "server", {}, options_.to_string());
  workers_.reserve(static_cast<std::size_t>(options_.replicas));
  for (int r = 0; r < options_.replicas; ++r)
    workers_.emplace_back([this, r] { worker_main(r); });
}

InferenceServer::~InferenceServer() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
    paused_ = false;  // a paused server still drains on shutdown
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  journal_event("serve.stop", "server",
                {{"completed", static_cast<double>(
                                   completed_.load(std::memory_order_relaxed))}});
}

geo::StatusOr<std::future<Response>> InferenceServer::submit(Request req) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  telemetry::MetricsRegistry::instance().counter("serve.submitted").add();
  // Validate at the door: a malformed request must never consume a replica.
  // A store-backed request carries no weights span yet; it is admitted only
  // if the named layer exists in the attached store with exactly the float
  // count the shape demands, so the dispatch-time pin cannot size-fail.
  auto reject = [&](geo::Status s) -> geo::Status {
    rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance()
        .counter("serve.rejected_invalid")
        .add();
    journal_event("serve.reject", req.tenant, {}, s.message());
    return s;
  };
  std::vector<float> weight_stub;
  std::span<const float> validate_weights = req.weights;
  if (!req.store_layer.empty()) {
    std::shared_ptr<store::WeightStore> store;
    {
      std::lock_guard lock(mu_);
      store = store_;
    }
    if (store == nullptr)
      return reject(geo::Status::failed_precondition(
          "serve: request names store layer '" + req.store_layer +
          "' but no weight store is attached"));
    if (!req.weights.empty())
      return reject(geo::Status::invalid_argument(
          "serve: request has both a weights span and store layer '" +
          req.store_layer + "'"));
    const std::uint64_t floats = store->layer_floats(req.store_layer);
    if (floats == 0 ||
        floats != static_cast<std::uint64_t>(req.shape.weights()))
      return reject(geo::Status::invalid_argument(
          "serve: store layer '" + req.store_layer + "' has " +
          std::to_string(floats) + " floats, shape wants " +
          std::to_string(req.shape.weights())));
    // Size-only stand-in for the span checks below; the real bytes are
    // pinned by the worker at dispatch.
    weight_stub.resize(static_cast<std::size_t>(floats));
    validate_weights = weight_stub;
  }
  if (geo::Status s = validator_.validate_conv(req.shape, validate_weights,
                                               req.input, req.bn_scale,
                                               req.bn_shift);
      !s.ok())
    return reject(std::move(s));

  auto p = std::make_unique<Pending>();
  p->req = std::move(req);
  p->submitted = Clock::now();
  p->not_before = p->submitted;
  const std::int64_t deadline_us = p->req.deadline_us < 0
                                       ? options_.default_deadline_us
                                       : p->req.deadline_us;
  if (deadline_us > 0)
    p->cancel.set_deadline(p->submitted +
                           std::chrono::microseconds(deadline_us));
  if (p->req.trip_after_polls > 0)
    p->cancel.trip_after(p->req.trip_after_polls);
  std::future<Response> future = p->promise.get_future();

  {
    std::lock_guard lock(mu_);
    if (stopping_)
      return geo::Status::unavailable("serve: server is shutting down");
    if (static_cast<int>(queue_.size()) >= options_.queue_capacity) {
      shed_queue_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.shed_queue").add();
      journal_event("serve.shed", p->req.tenant,
                    {{"depth", static_cast<double>(queue_.size())}}, "queue");
      return geo::Status::resource_exhausted(
          "serve: request queue full (" +
          std::to_string(options_.queue_capacity) + ")");
    }
    std::int64_t& load = tenant_load_[p->req.tenant];
    if (load >= options_.tenant_quota) {
      shed_quota_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.shed_quota").add();
      journal_event("serve.shed", p->req.tenant,
                    {{"load", static_cast<double>(load)}}, "quota");
      return geo::Status::resource_exhausted("serve: tenant '" +
                                             p->req.tenant + "' over quota (" +
                                             std::to_string(load) + ")");
    }
    ++load;
    // Graceful degradation: past the high-water mark, admit but steer to a
    // degraded rung instead of queueing full-fidelity work we cannot drain.
    p->steered = static_cast<int>(queue_.size()) >= high_water_;
    if (p->steered) {
      steered_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.steered").add();
      journal_event("serve.steer", p->req.tenant,
                    {{"depth", static_cast<double>(queue_.size())}},
                    resilience::to_string(options_.steer_rung));
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance().counter("serve.admitted").add();
    // Warm the model's caches off the replica's critical section: by the
    // time a worker claims this request, the weight-store pin and
    // stream-table rows are (best-effort) already resident.
    if (options_.prewarm) schedule_prewarm(p->req);
    queue_.push_back(std::move(p));
    telemetry::MetricsRegistry::instance()
        .gauge("serve.queue_depth")
        .set(static_cast<double>(queue_.size()));
  }
  cv_.notify_all();
  return future;
}

Response InferenceServer::run(Request req) {
  auto future = submit(std::move(req));
  if (!future.ok()) {
    Response r;
    r.status = future.status();
    return r;
  }
  return future->get();
}

void InferenceServer::worker_main(int replica) {
  for (;;) {
    std::unique_ptr<Pending> next;
    std::vector<std::unique_ptr<Pending>> batch;
    {
      std::unique_lock lock(mu_);
      for (;;) {
        auto wait_until = Clock::time_point::max();
        if (!paused_) {
          const auto now = Clock::now();
          auto pick = queue_.end();
          for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            if ((*it)->not_before > now) {
              wait_until = std::min(wait_until, (*it)->not_before);
              continue;
            }
            // A failed-over request avoids the replica it failed on —
            // waived when every other replica is quarantined (serving
            // degraded beats waiting for a probe that may never come).
            if ((*it)->exclude == replica && health_.other_candidate(replica))
              continue;
            pick = it;
            break;
          }
          if (pick != queue_.end()) {
            bool probe = false;
            if (health_.admit(replica, &probe)) {
              if (probe) {
                probes_.fetch_add(1, std::memory_order_relaxed);
                telemetry::MetricsRegistry::instance()
                    .counter("serve.probe")
                    .add();
                journal_event("serve.probe", (*pick)->label(),
                              {{"replica", static_cast<double>(replica)}});
              }
              next = std::move(*pick);
              queue_.erase(pick);
              // Coalesce compatible requests behind the claimed leader into
              // one batch dispatch (probes stay solo: a probe's health
              // signal must be attributable to one request). Gathering
              // happens under the same lock hold as the claim, so without a
              // linger the batch is exactly what was queued at claim time.
              if (!probe && options_.batch > 1) {
                const auto compatible = [](const Pending& a,
                                           const Pending& b) {
                  return a.steered == b.steered &&
                         a.req.layer_salt == b.req.layer_salt &&
                         a.req.store_layer == b.req.store_layer &&
                         same_span(a.req.weights, b.req.weights) &&
                         same_span(a.req.bn_scale, b.req.bn_scale) &&
                         same_span(a.req.bn_shift, b.req.bn_shift) &&
                         same_shape(a.req.shape, b.req.shape);
                };
                const auto gather = [&] {
                  const auto gnow = Clock::now();
                  for (auto it = queue_.begin();
                       it != queue_.end() &&
                       1 + static_cast<int>(batch.size()) < options_.batch;) {
                    if ((*it)->not_before > gnow ||
                        ((*it)->exclude == replica &&
                         health_.other_candidate(replica)) ||
                        !compatible(*next, **it)) {
                      ++it;
                      continue;
                    }
                    batch.push_back(std::move(*it));
                    it = queue_.erase(it);
                  }
                };
                gather();
                if (options_.batch_wait_us > 0) {
                  // Linger for the batch to fill; every enqueue notifies
                  // cv_, so freshly admitted compatible requests join
                  // until the window closes or the batch is full.
                  const auto linger_until =
                      Clock::now() +
                      std::chrono::microseconds(options_.batch_wait_us);
                  while (1 + static_cast<int>(batch.size()) <
                             options_.batch &&
                         !stopping_ && !paused_) {
                    const bool timed_out =
                        cv_.wait_until(lock, linger_until) ==
                        std::cv_status::timeout;
                    gather();
                    if (timed_out) break;
                  }
                }
              }
              telemetry::MetricsRegistry::instance()
                  .gauge("serve.queue_depth")
                  .set(static_cast<double>(queue_.size()));
              break;
            }
            // Quarantined and not probe-eligible: wait for completions
            // elsewhere (respond() notifies) to drain the countdown.
          }
        }
        if (stopping_ && queue_.empty()) return;
        if (wait_until == Clock::time_point::max())
          cv_.wait(lock);
        else
          cv_.wait_until(lock, wait_until);
      }
    }
    if (batch.empty()) {
      serve_one(replica, std::move(next));
    } else {
      batch.insert(batch.begin(), std::move(next));
      serve_batch(replica, std::move(batch));
    }
  }
}

void InferenceServer::serve_one(int replica, std::unique_ptr<Pending> p) {
  const auto popped = Clock::now();
  if (!p->dispatched) {
    p->dispatched = true;
    p->queue_us = micros_between(p->submitted, popped);
  }

  // Deadline already expired while queued: release the replica without
  // charging a single cycle.
  if (p->cancel.cancelled()) {
    health_.on_no_signal(replica);
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance()
        .counter("serve.deadline_expired")
        .add();
    journal_event("serve.deadline", p->label(),
                  {{"replica", static_cast<double>(replica)},
                   {"attempt", static_cast<double>(p->attempts)}},
                  "expired-in-queue");
    Response resp;
    resp.status =
        geo::Status::deadline_exceeded("serve: deadline expired in queue");
    resp.replica = replica;
    resp.attempts = p->attempts;
    respond(std::move(p), std::move(resp));
    return;
  }

  // Per-replica fault domain: the scoped override beats GEO_FAULTS on this
  // thread, and the thread pool propagates it to any helper workers.
  std::optional<fault::FaultConfig> fault_cfg;
  {
    std::lock_guard lock(mu_);
    fault_cfg = replica_fault_[static_cast<std::size_t>(replica)];
  }
  std::optional<fault::ScopedFaultInjection> fault_scope;
  if (fault_cfg.has_value()) fault_scope.emplace(*fault_cfg);

  resilience::ResilientExecutor executor(hw_, retry_policy_);
  resilience::RunOptions run_options;
  run_options.cancel = &p->cancel;
  if (p->steered) run_options.start = options_.steer_rung;

  // Store-backed weights: pin here, on the worker, inside the fault scope —
  // the repair ladder (reread/rebuild/fallback) runs under whatever disk
  // faults this replica is subject to and still returns source-identical
  // bytes. Admission verified the layer, so a pin failure is a contract
  // break surfaced loudly below, never a silent drop.
  std::span<const float> weights = p->req.weights;
  store::Pinned pinned;
  if (!p->req.store_layer.empty()) {
    std::shared_ptr<store::WeightStore> store;
    {
      std::lock_guard lock(mu_);
      store = store_;
    }
    geo::StatusOr<store::Pinned> pin =
        store != nullptr ? store->pin(p->req.store_layer)
                         : geo::Status::failed_precondition(
                               "serve: weight store detached after admission");
    if (!pin.ok()) {
      apply_transition(health_.on_outcome(replica, false), replica);
      failed_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.failed").add();
      journal_event("serve.fail", p->label(),
                    {{"replica", static_cast<double>(replica)}},
                    pin.status().message());
      Response resp;
      resp.status = pin.status();
      resp.replica = replica;
      resp.attempts = p->attempts;
      respond(std::move(p), std::move(resp));
      return;
    }
    pinned = std::move(*pin);
    weights = pinned.span();
    // Charge the load's modeled io stall into the execution's ledger (zero
    // on cache hits), where attribution folds it into the memory bucket.
    run_options.io_stall_cycles = pinned.stats().io_stall_cycles;
  }

  const auto exec_start = Clock::now();
  auto result = executor.run_conv(p->req.shape, weights, p->req.input,
                                  p->req.bn_scale, p->req.bn_shift,
                                  p->req.layer_salt, p->label(), run_options);
  const double exec_us = micros_between(exec_start, Clock::now());
  const resilience::LayerOutcome* outcome = executor.last_outcome();
  const bool degraded = result.ok() && outcome != nullptr && outcome->degraded;
  finish_attempt(replica, std::move(p), std::move(result), degraded, exec_us,
                 /*batched=*/false);
}

void InferenceServer::finish_attempt(int replica, std::unique_ptr<Pending> p,
                                     geo::StatusOr<arch::MachineResult> result,
                                     bool degraded, double exec_us,
                                     bool batched) {
  ++p->attempts;
  {
    std::lock_guard lock(mu_);
    ++served_by_[static_cast<std::size_t>(replica)];
  }

  if (!result.ok()) {
    Response resp;
    resp.status = result.status();
    resp.replica = replica;
    resp.attempts = p->attempts;
    resp.exec_us = exec_us;
    resp.batched = batched;
    if (result.status().code() == geo::StatusCode::kDeadlineExceeded) {
      // Cancelled mid-execution: the execution was abandoned at a tile
      // boundary and carries no health signal about the replica.
      health_.on_no_signal(replica);
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance()
          .counter("serve.deadline_expired")
          .add();
      journal_event("serve.deadline", p->label(),
                    {{"replica", static_cast<double>(replica)},
                     {"attempt", static_cast<double>(p->attempts)}},
                    "expired-mid-execution");
    } else {
      // Unreachable by design: admission validated the request and the
      // resilience ladder bottoms out in a rung that always succeeds. Fail
      // the request loudly rather than hide a contract break.
      apply_transition(health_.on_outcome(replica, false), replica);
      failed_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance().counter("serve.failed").add();
      journal_event("serve.fail", p->label(),
                    {{"replica", static_cast<double>(replica)}},
                    result.status().message());
    }
    respond(std::move(p), std::move(resp));
    return;
  }

  // Steering chose the rung; only an unsteered degradation implicates the
  // replica (its tile-retry budget drained on hardware rungs).
  const bool clean = !degraded || p->steered;

  if (degraded && !p->steered && p->attempts <= options_.retries &&
      health_.other_candidate(replica) && !p->cancel.cancel_requested()) {
    // Persistent-fault signature with failover budget left: strike this
    // replica, back off, and re-dispatch elsewhere. The request keeps its
    // queue slot semantics (already admitted — re-enqueue bypasses
    // capacity so an admitted request can never be shed).
    apply_transition(health_.on_outcome(replica, false), replica);
    failovers_.fetch_add(1, std::memory_order_relaxed);
    telemetry::MetricsRegistry::instance().counter("serve.failover").add();
    journal_event("serve.failover", p->label(),
                  {{"replica", static_cast<double>(replica)},
                   {"attempt", static_cast<double>(p->attempts)}});
    p->exclude = replica;
    p->not_before =
        Clock::now() + std::chrono::microseconds(
                           options_.retry_backoff_us
                           << std::min(p->attempts - 1, 20));
    {
      std::lock_guard lock(mu_);
      queue_.push_front(std::move(p));
      telemetry::MetricsRegistry::instance()
          .gauge("serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
    }
    cv_.notify_all();
    return;
  }

  apply_transition(health_.on_outcome(replica, clean), replica);
  Response resp;
  resp.result = std::move(*result);
  resp.degraded = degraded;
  resp.steered = p->steered;
  resp.replica = replica;
  resp.attempts = p->attempts;
  resp.exec_us = exec_us;
  resp.batched = batched;
  respond(std::move(p), std::move(resp));
}

void InferenceServer::serve_batch(int replica,
                                  std::vector<std::unique_ptr<Pending>> batch) {
  const auto popped = Clock::now();
  std::vector<std::unique_ptr<Pending>> live;
  live.reserve(batch.size());
  for (auto& p : batch) {
    if (!p->dispatched) {
      p->dispatched = true;
      p->queue_us = micros_between(p->submitted, popped);
    }
    // Deadline already expired while queued: terminal response without
    // charging a cycle, exactly like the serve_one path.
    if (p->cancel.cancelled()) {
      health_.on_no_signal(replica);
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      telemetry::MetricsRegistry::instance()
          .counter("serve.deadline_expired")
          .add();
      journal_event("serve.deadline", p->label(),
                    {{"replica", static_cast<double>(replica)},
                     {"attempt", static_cast<double>(p->attempts)}},
                    "expired-in-queue");
      Response resp;
      resp.status =
          geo::Status::deadline_exceeded("serve: deadline expired in queue");
      resp.replica = replica;
      resp.attempts = p->attempts;
      respond(std::move(p), std::move(resp));
      continue;
    }
    live.push_back(std::move(p));
  }
  if (live.empty()) return;
  if (live.size() == 1) {
    // A batch that shrank to one member is just a request (queue_us is
    // latched; serve_one skips everything already done here).
    serve_one(replica, std::move(live.front()));
    return;
  }

  batches_.fetch_add(1, std::memory_order_relaxed);
  batched_requests_.fetch_add(static_cast<std::int64_t>(live.size()),
                              std::memory_order_relaxed);
  auto& m = telemetry::MetricsRegistry::instance();
  m.counter("serve.batch").add();
  m.counter("serve.batch_requests").add(static_cast<std::int64_t>(live.size()));
  m.histogram("serve.batch_occupancy").observe(static_cast<double>(live.size()));
  journal_event("serve.batch", live.front()->label(),
                {{"replica", static_cast<double>(replica)},
                 {"size", static_cast<double>(live.size())}});

  // Per-replica fault domain, one scope around the whole dispatch — batch
  // members share the replica's hardware and therefore its faults.
  std::optional<fault::FaultConfig> fault_cfg;
  {
    std::lock_guard lock(mu_);
    fault_cfg = replica_fault_[static_cast<std::size_t>(replica)];
  }
  std::optional<fault::ScopedFaultInjection> fault_scope;
  if (fault_cfg.has_value()) fault_scope.emplace(*fault_cfg);

  resilience::ResilientExecutor executor(hw_, retry_policy_);
  const Pending& leader = *live.front();
  const resilience::Rung start =
      leader.steered ? options_.steer_rung : resilience::Rung::kNative;

  // One store pin for the whole batch — the amortization batching exists
  // for. The pin's modeled io stall is charged once, to the first member
  // (the batch pays the wait once, not per member).
  std::span<const float> weights = leader.req.weights;
  store::Pinned pinned;
  std::int64_t io_stall_cycles = 0;
  if (!leader.req.store_layer.empty()) {
    std::shared_ptr<store::WeightStore> store;
    {
      std::lock_guard lock(mu_);
      store = store_;
    }
    geo::StatusOr<store::Pinned> pin =
        store != nullptr ? store->pin(leader.req.store_layer)
                         : geo::Status::failed_precondition(
                               "serve: weight store detached after admission");
    if (!pin.ok()) {
      for (auto& p : live) {
        apply_transition(health_.on_outcome(replica, false), replica);
        failed_.fetch_add(1, std::memory_order_relaxed);
        m.counter("serve.failed").add();
        journal_event("serve.fail", p->label(),
                      {{"replica", static_cast<double>(replica)}},
                      pin.status().message());
        Response resp;
        resp.status = pin.status();
        resp.replica = replica;
        resp.attempts = p->attempts;
        respond(std::move(p), std::move(resp));
      }
      return;
    }
    pinned = std::move(*pin);
    weights = pinned.span();
    io_stall_cycles = pinned.stats().io_stall_cycles;
  }

  std::vector<resilience::BatchItem> items;
  items.reserve(live.size());
  for (std::size_t i = 0; i < live.size(); ++i) {
    resilience::BatchItem item;
    item.input = live[i]->req.input;
    item.label = live[i]->label();
    item.cancel = &live[i]->cancel;
    item.io_stall_cycles = i == 0 ? io_stall_cycles : 0;
    items.push_back(std::move(item));
  }

  const auto exec_start = Clock::now();
  std::vector<resilience::BatchItemResult> results = executor.run_conv_batch(
      leader.req.shape, weights, leader.req.bn_scale, leader.req.bn_shift,
      leader.req.layer_salt, items, start);
  // Amortized per-request service time: the batch's wall time split evenly
  // (members share one preparation; finer attribution is not observable).
  const double exec_us = micros_between(exec_start, Clock::now()) /
                         static_cast<double>(live.size());

  for (std::size_t i = 0; i < live.size(); ++i)
    finish_attempt(replica, std::move(live[i]), std::move(results[i].result),
                   results[i].degraded, exec_us, /*batched=*/true);
}

void InferenceServer::schedule_prewarm(const Request& req) {
  // Called under mu_ from submit(). The task captures values and shared
  // ownership only — never `this` — so a server torn down with prewarms
  // still in the lane is safe; the counters outlive it.
  prewarm_->scheduled.fetch_add(1, std::memory_order_relaxed);
  telemetry::MetricsRegistry::instance().counter("serve.prewarm").add();
  std::shared_ptr<PrewarmCounters> counters = prewarm_;
  std::shared_ptr<store::WeightStore> store =
      req.store_layer.empty() ? nullptr : store_;
  const arch::HwConfig hw = hw_;
  const arch::ConvShape shape = req.shape;
  const std::uint64_t salt = req.layer_salt;
  const std::string store_layer = req.store_layer;
  exec::AsyncLane::io().submit([counters, store, hw, shape, salt,
                                store_layer] {
    auto& metrics = telemetry::MetricsRegistry::instance();
    if (store != nullptr) {
      // Pinning loads + verifies the layer's blocks into the store cache;
      // dropping the pin keeps the cached blocks warm for dispatch.
      if (auto pin = store->pin(store_layer); pin.ok()) {
        counters->pins.fetch_add(1, std::memory_order_relaxed);
        metrics.counter("serve.prewarm_pins").add();
      }
    }
    if (!sc::stream_table_enabled()) return;
    // Build the comparator tables dispatch will acquire: the layer's seed
    // layout is a pure function of (shape, salt, hw), so acquiring the
    // same specs here makes the dispatch-time acquires cache hits. Bounded
    // slice — at moderate sharing the spec space collapses to a handful of
    // distinct rows, so the first few coordinates cover the layer.
    const nn::ScLayerConfig cfg =
        arch::GeoMachine(hw).layer_config(shape, salt);
    const sc::SeedAllocator alloc(
        cfg.sharing, cfg.lfsr_bits(),
        sc::KernelExtents{shape.cout, shape.cin, shape.kh, shape.kw}, salt);
    auto& registry = sc::StreamTableRegistry::instance();
    std::vector<sc::SeedSpec> seen;
    std::int64_t acquired = 0;
    const auto acquire_once = [&](const sc::SeedSpec& spec) {
      if (std::find(seen.begin(), seen.end(), spec) != seen.end()) return;
      seen.push_back(spec);
      if (registry.acquire(cfg.rng, spec,
                           static_cast<std::size_t>(cfg.stream_len)) !=
          nullptr)
        ++acquired;
    };
    const int acts =
        static_cast<int>(std::min<std::int64_t>(shape.activations(), 64));
    for (int i = 0; i < acts; ++i) acquire_once(alloc.activation(i));
    for (int oc = 0; oc < std::min(shape.cout, 4); ++oc)
      for (int ic = 0; ic < std::min(shape.cin, 4); ++ic)
        for (int ky = 0; ky < shape.kh; ++ky)
          for (int kx = 0; kx < shape.kw; ++kx)
            acquire_once(alloc.weight(sc::WeightPos{oc, ic, ky, kx}));
    if (acquired > 0) {
      counters->tables.fetch_add(acquired, std::memory_order_relaxed);
      metrics.counter("serve.prewarm_tables").add(acquired);
    }
  });
}

void InferenceServer::respond(std::unique_ptr<Pending> p, Response resp) {
  resp.queue_us = p->queue_us;
  resp.total_us = micros_between(p->submitted, Clock::now());
  {
    std::lock_guard lock(mu_);
    auto it = tenant_load_.find(p->req.tenant);
    if (it != tenant_load_.end() && --it->second <= 0) tenant_load_.erase(it);
  }
  completed_.fetch_add(1, std::memory_order_relaxed);
  auto& m = telemetry::MetricsRegistry::instance();
  m.counter("serve.completed").add();
  if (resp.status.ok()) {
    if (resp.degraded) {
      degraded_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.degraded").add();
    } else {
      ok_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.ok").add();
    }
  }
  m.histogram("serve.queue_us").observe(resp.queue_us);
  m.histogram("serve.exec_us").observe(resp.exec_us);
  m.histogram("serve.latency_us").observe(resp.total_us);
  p->promise.set_value(std::move(resp));
  // Completions drain quarantined replicas' probe countdowns and free a
  // queue slot — wake every worker.
  cv_.notify_all();
}

void InferenceServer::apply_transition(ReplicaHealth::Transition t,
                                       int replica) {
  auto& m = telemetry::MetricsRegistry::instance();
  switch (t) {
    case ReplicaHealth::Transition::kNone:
      return;
    case ReplicaHealth::Transition::kOpened:
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.quarantine").add();
      journal_event("serve.quarantine", "replica",
                    {{"replica", static_cast<double>(replica)}});
      return;
    case ReplicaHealth::Transition::kReopened:
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.probe_failed").add();
      journal_event("serve.quarantine", "replica",
                    {{"replica", static_cast<double>(replica)}},
                    "probe-failed");
      return;
    case ReplicaHealth::Transition::kClosed:
      readmits_.fetch_add(1, std::memory_order_relaxed);
      m.counter("serve.readmit").add();
      journal_event("serve.readmit", "replica",
                    {{"replica", static_cast<double>(replica)}});
      return;
  }
}

ServeStats InferenceServer::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.rejected_invalid = rejected_invalid_.load(std::memory_order_relaxed);
  s.shed_queue = shed_queue_.load(std::memory_order_relaxed);
  s.shed_quota = shed_quota_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.steered = steered_.load(std::memory_order_relaxed);
  s.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.quarantines = quarantines_.load(std::memory_order_relaxed);
  s.probes = probes_.load(std::memory_order_relaxed);
  s.readmits = readmits_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.batched_requests = batched_requests_.load(std::memory_order_relaxed);
  s.prewarms = prewarm_->scheduled.load(std::memory_order_relaxed);
  s.prewarm_pins = prewarm_->pins.load(std::memory_order_relaxed);
  s.prewarm_tables = prewarm_->tables.load(std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  s.queue_depth = static_cast<std::int64_t>(queue_.size());
  s.served_by = served_by_;
  return s;
}

void InferenceServer::pause() {
  std::lock_guard lock(mu_);
  paused_ = true;
}

void InferenceServer::resume() {
  {
    std::lock_guard lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void InferenceServer::attach_store(std::shared_ptr<store::WeightStore> store) {
  std::lock_guard lock(mu_);
  store_ = std::move(store);
}

void InferenceServer::set_replica_fault(int replica,
                                        std::optional<fault::FaultConfig> cfg) {
  std::lock_guard lock(mu_);
  replica_fault_[static_cast<std::size_t>(replica)] = std::move(cfg);
}

}  // namespace geo::serve
