// Per-replica health tracking: a circuit breaker per GeoMachine replica.
//
// A replica that keeps producing degraded results (its retry budget drained
// on every rung — the persistent-fault signature) accumulates strikes; at
// `strikes_to_open` consecutive strikes its breaker opens and the scheduler
// stops routing requests to it (quarantine). Open breakers heal through a
// half-open probe: after `probe_after` requests complete on other replicas,
// the quarantined replica may take exactly one probe request — a clean
// outcome closes the breaker (re-admission), a dirty one re-opens it and
// the countdown restarts. When every replica is open the probe gate is
// forced, so a fully-quarantined fleet keeps serving (degraded) instead of
// deadlocking; the serving contract is "zero failed requests", not "zero
// degraded ones" (docs/SERVING.md).
//
// All methods are thread-safe; one instance is shared by every replica
// worker of an InferenceServer.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace geo::serve {

enum class BreakerState {
  kClosed = 0,  // healthy: admit traffic
  kOpen,        // quarantined: refuse traffic until the probe gate opens
  kHalfOpen,    // one probe request in flight
};

const char* to_string(BreakerState s) noexcept;

class ReplicaHealth {
 public:
  // What an outcome report did to the replica's breaker.
  enum class Transition {
    kNone,
    kOpened,    // strikes reached the threshold: quarantined
    kClosed,    // half-open probe succeeded: re-admitted
    kReopened,  // half-open probe failed: quarantined again
  };

  ReplicaHealth(int replicas, int strikes_to_open, int probe_after);

  // May `replica` take a request now? Closed replicas always admit. Open
  // replicas admit only when their probe gate is due (or the whole fleet is
  // open), which atomically claims the half-open probe slot; `*probe` is
  // set when this call claimed it. Half-open replicas refuse further
  // traffic until the probe completes.
  bool admit(int replica, bool* probe = nullptr);

  // Outcome report from the replica that served a request. `clean` resets
  // its strikes (and closes a half-open probe); a dirty outcome strikes it
  // (and re-opens a half-open probe). Every report also advances the probe
  // countdown of the *other* open replicas — quarantine heals with served
  // traffic, not wall-clock time, so idle servers never probe blindly.
  Transition on_outcome(int replica, bool clean);

  // A request that occupied `replica` but produced no health signal (its
  // deadline expired before execution). Releases a claimed probe slot back
  // to probe-eligible and advances the other replicas' countdowns.
  void on_no_signal(int replica);

  BreakerState state(int replica) const;
  // True when some replica other than `replica` is not quarantined (it
  // could take a failed-over request).
  bool other_candidate(int replica) const;
  // True when every replica other than `replica` is quarantined — the
  // scheduler's exclusion waiver (a retried request may return to the
  // replica it failed on rather than wait for a probe).
  bool only_candidate(int replica) const;

  int replicas() const noexcept { return static_cast<int>(states_.size()); }

 private:
  struct Replica {
    BreakerState state = BreakerState::kClosed;
    int strikes = 0;
    int probe_countdown = 0;  // completions elsewhere until probe-eligible
  };

  bool other_candidate_locked(int replica) const;

  const int strikes_to_open_;
  const int probe_after_;
  mutable std::mutex mu_;
  std::vector<Replica> states_;
};

}  // namespace geo::serve
