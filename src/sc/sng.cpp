#include "sc/sng.hpp"

#include <cmath>
#include <stdexcept>

namespace geo::sc {

std::uint32_t quantize_unipolar(double p, unsigned bits) {
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double scale = static_cast<double>(1u << bits);
  const auto q = static_cast<std::uint32_t>(std::lround(p * scale));
  const std::uint32_t max = (1u << bits) - 1u;
  return q > max ? max : q;
}

double dequantize_unipolar(std::uint32_t value, unsigned bits) {
  return static_cast<double>(value) / static_cast<double>(1u << bits);
}

Sng::Sng(std::unique_ptr<RngSource> source) : source_(std::move(source)) {
  if (!source_) throw std::invalid_argument("Sng: null source");
}

Sng::Sng(RngKind kind, const SeedSpec& spec) : Sng(make_source(kind, spec)) {}

void Sng::load(std::uint32_t value) noexcept {
  const std::uint32_t max = (1u << bits()) - 1u;
  value_ = value > max ? max : value;
}

bool Sng::tick() { return source_->next() <= value_ && value_ != 0; }

Bitstream Sng::run(std::size_t length) {
  Bitstream out(length);
  for (std::size_t i = 0; i < length; ++i)
    if (tick()) out.set(i, true);
  return out;
}

Bitstream Sng::generate(std::uint32_t value, std::size_t length) {
  source_->reset();
  load(value);
  return run(length);
}

}  // namespace geo::sc
