// Parallel counters and output converters.
//
// GEO's partial-binary accumulation (Sec. III-B) replaces the last levels of
// the OR tree with a parallel counter: every cycle the counter adds the
// popcount of its K input streams into a binary accumulator. The approximate
// parallel counter (APC) of [24] trades exactness for area and is modeled
// here for the Fig. 5 comparison.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.hpp"
#include "sc/bitstream.hpp"

namespace geo::sc {

// All counters below return an invalid_argument Status when the input
// streams disagree on length (they never throw): a mismatch is a caller
// bug, and a Status propagates cleanly out of exec::ThreadPool workers
// where an exception would tear down the process.

// Per-cycle popcount across K streams: out[t] = sum_k streams[k][t].
StatusOr<std::vector<std::uint16_t>> parallel_count(
    std::span<const Bitstream> streams);

// Total accumulated count over all cycles (what the output-converter counter
// holds after the stream finishes).
StatusOr<std::uint64_t> count_total(std::span<const Bitstream> streams);

// Approximate parallel counter modeled after [24]: input pairs are merged
// with alternating OR / AND gates, each merged stream weighted 2 in a
// half-width exact counter. ORs over-count by P(a xor b), ANDs under-count by
// the same amount, so the expectation error largely cancels while the adder
// tree halves in size. An odd trailing input passes through at weight 1.
StatusOr<std::uint64_t> apc_count_total(std::span<const Bitstream> streams);

// Accumulating up/down output converter: adds per-cycle (pos - neg) counts of
// split-channel groups into a signed register — the paper's "Output
// Converter" block (Fig. 4a), including the configurable neighbor-add used
// for average pooling with computation skipping.
class OutputConverter {
 public:
  OutputConverter() = default;

  // Accumulates one cycle: `pos_bits` and `neg_bits` are the parallel-counter
  // outputs of the positive and negative channel groups this cycle.
  void accumulate(std::uint32_t pos_bits, std::uint32_t neg_bits) noexcept {
    total_ += static_cast<std::int64_t>(pos_bits) -
              static_cast<std::int64_t>(neg_bits);
    ++cycles_;
  }

  // Adds a neighboring converter's result (average-pooling neighbor add).
  void merge(const OutputConverter& other) noexcept {
    total_ += other.total_;
    cycles_ += other.cycles_;
  }

  std::int64_t total() const noexcept { return total_; }
  std::uint64_t cycles() const noexcept { return cycles_; }

  // Value normalized per cycle of one stream (divide by cycles to undo the
  // stream-length scaling; group width scaling is the caller's business).
  double value() const noexcept {
    return cycles_ == 0 ? 0.0
                        : static_cast<double>(total_) /
                              static_cast<double>(cycles_);
  }

  void reset() noexcept {
    total_ = 0;
    cycles_ = 0;
  }

 private:
  std::int64_t total_ = 0;
  std::uint64_t cycles_ = 0;
};

}  // namespace geo::sc
