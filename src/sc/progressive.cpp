#include "sc/progressive.hpp"

#include <stdexcept>

namespace geo::sc {

unsigned ProgressiveSchedule::loaded_bits(std::uint64_t t) const noexcept {
  const unsigned target = bits_to_load();
  const std::uint64_t beats_done = 1 + t / beat_cycles;  // first beat at t=0
  const std::uint64_t bits = beats_done * group_bits;
  return bits >= target ? target : static_cast<unsigned>(bits);
}

std::uint64_t ProgressiveSchedule::full_load_cycle() const noexcept {
  // Smallest t with loaded_bits(t) == bits_to_load().
  const unsigned target = bits_to_load();
  const unsigned beats_needed = (target + group_bits - 1) / group_bits;
  return static_cast<std::uint64_t>(beats_needed - 1) * beat_cycles;
}

ProgressiveSng::ProgressiveSng(RngKind kind, const SeedSpec& spec,
                               const ProgressiveSchedule& schedule)
    : schedule_(schedule), source_(make_source(kind, spec)) {
  if (schedule_.lfsr_bits != source_->bits())
    throw std::invalid_argument(
        "ProgressiveSng: schedule lfsr_bits must match source width");
  if (schedule_.group_bits == 0 || schedule_.beat_cycles == 0)
    throw std::invalid_argument("ProgressiveSng: degenerate schedule");
}

void ProgressiveSng::reseed(const SeedSpec& spec) {
  if (schedule_.lfsr_bits != spec.bits)
    throw std::invalid_argument(
        "ProgressiveSng: reseed width must match schedule lfsr_bits");
  source_->reseed(spec);
}

void ProgressiveSng::begin(std::uint32_t value) {
  const std::uint32_t max = (1u << schedule_.value_bits) - 1u;
  value_ = value > max ? max : value;
  cycle_ = 0;
  source_->reset();
}

std::uint32_t ProgressiveSng::truncated(unsigned loaded) const noexcept {
  // Keep the top `loaded` of the value_bits MSBs, zero the rest, then express
  // in the lfsr_bits comparator domain (truncating low bits the LFSR cannot
  // resolve).
  const unsigned vb = schedule_.value_bits;
  const unsigned lb = schedule_.lfsr_bits;
  const std::uint32_t msbs = loaded == 0 ? 0 : (value_ >> (vb - loaded));
  const std::uint32_t kept = loaded > lb ? lb : loaded;  // loaded <= lb always
  return msbs << (lb - kept);
}

std::uint32_t ProgressiveSng::effective_value() const noexcept {
  return truncated(loaded_bits());
}

bool ProgressiveSng::tick() {
  const std::uint32_t eff = effective_value();
  ++cycle_;
  const std::uint32_t r = source_->next();
  return eff != 0 && r <= eff;
}

Bitstream ProgressiveSng::generate(std::uint32_t value, std::size_t length) {
  begin(value);
  Bitstream out(length);
  for (std::size_t i = 0; i < length; ++i)
    if (tick()) out.set(i, true);
  return out;
}

Bitstream ProgressiveSng::generate_normal(std::uint32_t value,
                                          std::size_t length) {
  begin(value);
  const std::uint32_t eff = truncated(schedule_.bits_to_load());
  Bitstream out(length);
  for (std::size_t i = 0; i < length; ++i) {
    const std::uint32_t r = source_->next();
    if (eff != 0 && r <= eff) out.set(i, true);
  }
  return out;
}

}  // namespace geo::sc
