// Sobol low-discrepancy sequence source.
//
// Prior SC work uses low-discrepancy (LD) sequences to speed up convergence
// of single multiplications [23]. GEO's Sec. II-A argues LD sequences are
// *unsuitable for OR accumulation* because it is hard to obtain many mutually
// uncorrelated streams from them. This source exists so the benches and tests
// can reproduce both halves of that argument: per-dimension LD convergence is
// faster than an LFSR's, but cross-dimension correlation under OR
// accumulation is far worse.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "sc/rng_source.hpp"

namespace geo::sc {

class SobolSource final : public RngSource {
 public:
  // spec.seed selects the Sobol dimension (wraps modulo kDimensions);
  // spec.bits the output width.
  explicit SobolSource(const SeedSpec& spec);

  std::uint32_t next() override;
  unsigned bits() const noexcept override { return bits_; }
  void reset() override;
  void reseed(const SeedSpec& spec) override;
  bool deterministic() const noexcept override { return true; }
  std::unique_ptr<RngSource> clone() const override;

  static constexpr unsigned kDimensions = 10;

 private:
  unsigned bits_;
  unsigned dim_;
  std::uint32_t index_ = 0;  // number of points emitted
  std::uint32_t x_ = 0;      // current Gray-code state (32-bit fraction)
  std::array<std::uint32_t, 32> v_{};  // direction numbers
};

}  // namespace geo::sc
