#include "sc/seed_sharing.hpp"

namespace geo::sc {

namespace {
// How many alternate polynomials to pre-compute per width. Real designs
// hard-wire a handful; 6 already gives 6 * (2^n - 1) generator ids.
constexpr unsigned kMaxPolys = 6;
}  // namespace

const char* to_string(Sharing sharing) noexcept {
  switch (sharing) {
    case Sharing::kNone: return "none";
    case Sharing::kModerate: return "moderate";
    case Sharing::kExtreme: return "extreme";
  }
  return "?";
}

SeedAllocator::SeedAllocator(Sharing sharing, unsigned bits,
                             const KernelExtents& extents,
                             std::uint64_t layer_salt)
    : sharing_(sharing), bits_(bits), ext_(extents), layer_salt_(layer_salt) {
  // Searching for maximal polynomials is cheap at SNG widths (4-10 bits);
  // cache them once per allocator.
  taps_ = Lfsr::find_maximal_taps(bits, kMaxPolys);
}

SeedSpec SeedAllocator::spec_for_index(std::uint64_t index) const {
  const std::uint32_t seed_space = (1u << bits_) - 1u;  // nonzero states
  // The layer salt rotates the whole space so layers don't reuse the same
  // generators for the same positions.
  const std::uint64_t rotated =
      (index + layer_salt_ * 97ull) % (seed_space * taps_.size());
  SeedSpec spec;
  spec.bits = bits_;
  // Interleave polynomials first, then seeds: neighboring generators get
  // *different* characteristic polynomials. Phase shifts of one m-sequence
  // do not decorrelate comparator outputs well, so polynomial diversity
  // inside a dot product matters more than seed diversity (see the
  // ablation_ldseq bench).
  spec.taps = taps_[rotated % taps_.size()];
  spec.seed = 1u + static_cast<std::uint32_t>(
                       (rotated / taps_.size()) % seed_space);
  return spec;
}

SeedSpec SeedAllocator::weight(const WeightPos& pos) const {
  // The index encodes exactly the coordinates that distinguish generators at
  // this sharing level; everything left out is, by construction, shared.
  // Consecutive positions get consecutive indices, so seeds inside one
  // kernel are distinct as long as the space is not exhausted.
  std::uint64_t index = 0;
  switch (sharing_) {
    case Sharing::kNone:
      index = ((static_cast<std::uint64_t>(pos.kernel) * ext_.cin + pos.cin) *
                   ext_.kh +
               pos.kh) *
                  ext_.kw +
              pos.kw;
      break;
    case Sharing::kModerate:
      // Same seed set for every kernel: the index ignores pos.kernel.
      index = (static_cast<std::uint64_t>(pos.cin) * ext_.kh + pos.kh) *
                  ext_.kw +
              pos.kw;
      break;
    case Sharing::kExtreme:
      // Same seed set for every row of every kernel: only the position
      // within a kernel row survives.
      index = static_cast<std::uint64_t>(pos.kw);
      break;
  }
  return spec_for_index(index);
}

SeedSpec SeedAllocator::activation(int index) const {
  // Allocate from the top of the space, stepping downward, so activations
  // and weights only meet when a layer genuinely runs out of generators.
  const std::uint64_t cap = capacity();
  const std::uint64_t idx = static_cast<std::uint64_t>(index) % cap;
  return spec_for_index(cap - 1 - idx);
}

std::size_t SeedAllocator::weight_ids() const noexcept {
  switch (sharing_) {
    case Sharing::kNone:
      return static_cast<std::size_t>(ext_.cout) * ext_.cin * ext_.kh *
             ext_.kw;
    case Sharing::kModerate:
      return static_cast<std::size_t>(ext_.cin) * ext_.kh * ext_.kw;
    case Sharing::kExtreme:
      return static_cast<std::size_t>(ext_.kw);
  }
  return 0;
}

std::size_t SeedAllocator::capacity() const noexcept {
  return static_cast<std::size_t>((1u << bits_) - 1u) * taps_.size();
}

}  // namespace geo::sc
