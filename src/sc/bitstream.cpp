#include "sc/bitstream.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "sc/simd.hpp"

namespace geo::sc {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t length) {
  return (length + kWordBits - 1) / kWordBits;
}
}  // namespace

Bitstream::Bitstream(std::size_t length, bool fill)
    : words_(words_for(length), fill ? ~std::uint64_t{0} : 0), length_(length) {
  mask_tail();
}

Bitstream Bitstream::from_bits(const std::vector<bool>& bits) {
  // Assemble whole words (O(L/64) stores) instead of L read-modify-write
  // set() calls; the tail word past the length stays zero by construction.
  Bitstream s(bits.size());
  std::size_t i = 0;
  for (auto& word : s.words_) {
    std::uint64_t w = 0;
    const std::size_t hi = std::min(bits.size(), i + kWordBits);
    for (std::size_t b = i; b < hi; ++b)
      w |= static_cast<std::uint64_t>(bits[b]) << (b - i);
    word = w;
    i = hi;
  }
  return s;
}

Bitstream Bitstream::from_string(const std::string& bits) {
  Bitstream s(bits.size());
  std::size_t i = 0;
  for (auto& word : s.words_) {
    std::uint64_t w = 0;
    const std::size_t hi = std::min(bits.size(), i + kWordBits);
    for (std::size_t b = i; b < hi; ++b)
      w |= static_cast<std::uint64_t>(bits[b] == '1') << (b - i);
    word = w;
    i = hi;
  }
  return s;
}

bool Bitstream::get(std::size_t i) const {
  assert(i < length_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1u;
}

void Bitstream::set(std::size_t i, bool v) {
  assert(i < length_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (v)
    words_[i / kWordBits] |= mask;
  else
    words_[i / kWordBits] &= ~mask;
}

void Bitstream::flip(std::size_t i) {
  assert(i < length_);
  words_[i / kWordBits] ^= std::uint64_t{1} << (i % kWordBits);
}

std::size_t Bitstream::popcount() const noexcept {
  return static_cast<std::size_t>(
      simd::popcount_words(words_.data(), words_.size()));
}

std::size_t Bitstream::popcount_prefix(std::size_t n) const {
  if (n > length_) throw std::out_of_range("popcount_prefix: n > length");
  std::size_t count = 0;
  const std::size_t full = n / kWordBits;
  for (std::size_t i = 0; i < full; ++i)
    count += static_cast<std::size_t>(std::popcount(words_[i]));
  const std::size_t rem = n % kWordBits;
  if (rem != 0) {
    const std::uint64_t mask = (std::uint64_t{1} << rem) - 1;
    count += static_cast<std::size_t>(std::popcount(words_[full] & mask));
  }
  return count;
}

double Bitstream::value() const noexcept {
  if (length_ == 0) return 0.0;
  return static_cast<double>(popcount()) / static_cast<double>(length_);
}

double Bitstream::bipolar_value() const noexcept { return 2.0 * value() - 1.0; }

Bitstream& Bitstream::operator&=(const Bitstream& rhs) {
  assert(length_ == rhs.length_);
  simd::and_into(words_.data(), rhs.words_.data(), words_.size());
  return *this;
}

Bitstream& Bitstream::operator|=(const Bitstream& rhs) {
  assert(length_ == rhs.length_);
  simd::or_into(words_.data(), rhs.words_.data(), words_.size());
  return *this;
}

Bitstream& Bitstream::operator^=(const Bitstream& rhs) {
  assert(length_ == rhs.length_);
  simd::xor_into(words_.data(), rhs.words_.data(), words_.size());
  return *this;
}

Bitstream Bitstream::operator~() const {
  Bitstream out(*this);
  for (auto& w : out.words_) w = ~w;
  out.mask_tail();
  return out;
}

bool Bitstream::operator==(const Bitstream& rhs) const noexcept {
  return length_ == rhs.length_ && words_ == rhs.words_;
}

std::string Bitstream::to_string() const {
  std::string s;
  s.reserve(length_);
  for (std::size_t i = 0; i < length_; ++i) s.push_back(get(i) ? '1' : '0');
  return s;
}

void Bitstream::mask_tail() noexcept {
  const std::size_t rem = length_ % kWordBits;
  if (rem != 0 && !words_.empty())
    words_.back() &= (std::uint64_t{1} << rem) - 1;
}

}  // namespace geo::sc
