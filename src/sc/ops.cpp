#include "sc/ops.hpp"

#include <stdexcept>

namespace geo::sc {

Bitstream multiply(const Bitstream& a, const Bitstream& b) { return a & b; }

Bitstream multiply_bipolar(const Bitstream& a, const Bitstream& b) {
  return ~(a ^ b);
}

Bitstream or_accumulate(std::span<const Bitstream> streams) {
  if (streams.empty()) return {};
  Bitstream out = streams[0];
  for (std::size_t i = 1; i < streams.size(); ++i) out |= streams[i];
  return out;
}

Bitstream mux_add(const Bitstream& a, const Bitstream& b, RngSource& select) {
  if (a.length() != b.length())
    throw std::invalid_argument("mux_add: length mismatch");
  // The select comparator must split the source's *emitted* range in half,
  // not the nominal [0, 2^bits) range. A maximal-length LFSR never emits
  // zero, so `next() < 2^(bits-1)` selects only 2^(bits-1)-1 of its
  // 2^bits-1 states — a systematic bias toward `b` of 1/(2(2^bits-1)) that
  // skews every scaled add. With the range [lo, 2^bits) the midpoint is
  // lo + span/2; an even span (lo = 0) splits exactly. An odd span (the
  // LFSR case) has a single midpoint state, which alternates between the
  // two inputs so consecutive periods select a and b exactly equally:
  // P(select) = 1/2 with zero long-run bias.
  const std::uint32_t lo = select.min_value();
  const std::uint32_t span = (1u << select.bits()) - lo;
  const std::uint32_t half = lo + span / 2;
  const bool odd_span = (span & 1u) != 0;
  bool midpoint_toggle = false;
  Bitstream out(a.length());
  for (std::size_t i = 0; i < a.length(); ++i) {
    const std::uint32_t r = select.next();
    bool sel;
    if (odd_span && r == half) {
      sel = midpoint_toggle;
      midpoint_toggle = !midpoint_toggle;
    } else {
      sel = r < half;
    }
    out.set(i, sel ? a.get(i) : b.get(i));
  }
  return out;
}

Bitstream saturating_subtract(const Bitstream& a, const Bitstream& b) {
  return a & ~b;
}

double or_accumulate_expectation(std::span<const double> probabilities) {
  double zero = 1.0;
  for (double p : probabilities) zero *= (1.0 - p);
  return 1.0 - zero;
}

}  // namespace geo::sc
