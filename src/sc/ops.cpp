#include "sc/ops.hpp"

#include <stdexcept>

namespace geo::sc {

Bitstream multiply(const Bitstream& a, const Bitstream& b) { return a & b; }

Bitstream multiply_bipolar(const Bitstream& a, const Bitstream& b) {
  return ~(a ^ b);
}

Bitstream or_accumulate(std::span<const Bitstream> streams) {
  if (streams.empty()) return {};
  Bitstream out = streams[0];
  for (std::size_t i = 1; i < streams.size(); ++i) out |= streams[i];
  return out;
}

Bitstream mux_add(const Bitstream& a, const Bitstream& b, RngSource& select) {
  if (a.length() != b.length())
    throw std::invalid_argument("mux_add: length mismatch");
  const std::uint32_t half = 1u << (select.bits() - 1);
  Bitstream out(a.length());
  for (std::size_t i = 0; i < a.length(); ++i) {
    const bool sel = select.next() < half;
    out.set(i, sel ? a.get(i) : b.get(i));
  }
  return out;
}

Bitstream saturating_subtract(const Bitstream& a, const Bitstream& b) {
  return a & ~b;
}

double or_accumulate_expectation(std::span<const double> probabilities) {
  double zero = 1.0;
  for (double p : probabilities) zero *= (1.0 - p);
  return 1.0 - zero;
}

}  // namespace geo::sc
