// Stochastic number generator: RNG + comparator (classic SNG structure [12]).
//
// An n-bit SNG emits bit = (rng <= value) each cycle, so a value v in
// [0, 2^n - 1] maps to probability ~ v / 2^n. With a maximal-length n-bit
// LFSR and a window of one full period (2^n - 1 cycles), the popcount equals
// v exactly — the "almost accurate generation" GEO relies on.
#pragma once

#include <cstdint>
#include <memory>

#include "sc/bitstream.hpp"
#include "sc/rng_source.hpp"

namespace geo::sc {

// Quantizes a probability p in [0, 1] to the n-bit SNG input value,
// round-to-nearest, saturating at 2^n - 1.
std::uint32_t quantize_unipolar(double p, unsigned bits);

// The probability realized by an n-bit SNG input value (value / 2^n).
double dequantize_unipolar(std::uint32_t value, unsigned bits);

class Sng {
 public:
  // Takes ownership of the random source.
  explicit Sng(std::unique_ptr<RngSource> source);

  // Convenience: builds the source internally.
  Sng(RngKind kind, const SeedSpec& spec);

  unsigned bits() const noexcept { return source_->bits(); }

  // Loads a new n-bit comparator value (all bits at once — see
  // ProgressiveSng for the progressive loading of Sec. II-B).
  void load(std::uint32_t value) noexcept;

  // Reinitializes the underlying source exactly as constructing a fresh Sng
  // from `spec` would, so per-stream loops can reuse one generator object
  // (no per-stream heap allocation) with bit-identical output.
  void reseed(const SeedSpec& spec) { source_->reseed(spec); }

  std::uint32_t value() const noexcept { return value_; }

  // Emits one stream bit and advances the RNG.
  bool tick();

  // Emits `length` bits for the currently loaded value.
  Bitstream run(std::size_t length);

  // Resets the RNG and generates a stream for `value`. This is the
  // one-shot generation path used throughout the accuracy experiments.
  Bitstream generate(std::uint32_t value, std::size_t length);

  RngSource& source() noexcept { return *source_; }
  const RngSource& source() const noexcept { return *source_; }

 private:
  std::unique_ptr<RngSource> source_;
  std::uint32_t value_ = 0;
};

}  // namespace geo::sc
