#include "sc/rng_source.hpp"

#include <stdexcept>

#include "sc/sobol.hpp"

namespace geo::sc {

const char* to_string(RngKind kind) noexcept {
  switch (kind) {
    case RngKind::kLfsr: return "lfsr";
    case RngKind::kTrng: return "trng";
    case RngKind::kCounter: return "counter";
    case RngKind::kSobol: return "sobol";
  }
  return "?";
}

LfsrSource::LfsrSource(const SeedSpec& spec)
    : spec_(spec),
      lfsr_(spec.bits, spec.seed,
            spec.taps != 0 ? spec.taps : Lfsr::default_taps(spec.bits)) {}

std::unique_ptr<RngSource> LfsrSource::clone() const {
  return std::make_unique<LfsrSource>(spec_);
}

void LfsrSource::reseed(const SeedSpec& spec) { *this = LfsrSource(spec); }

TrngSource::TrngSource(const SeedSpec& spec)
    : bits_(spec.bits), epoch_(0), id_(spec.seed), gen_(spec.seed) {}

std::uint32_t TrngSource::next() {
  return static_cast<std::uint32_t>(gen_()) & ((1u << bits_) - 1u);
}

void TrngSource::reset() {
  // A fresh, unpredictable sequence each reset: that is what distinguishes a
  // TRNG from an LFSR in the paper's experiments. Keyed by (id, epoch) so
  // different TrngSource instances stay decorrelated yet the whole program
  // remains reproducible run-to-run.
  ++epoch_;
  std::seed_seq seq{id_, epoch_, 0x9E3779B9u};
  gen_.seed(seq);
}

std::unique_ptr<RngSource> TrngSource::clone() const {
  SeedSpec spec;
  spec.bits = bits_;
  spec.seed = id_;
  return std::make_unique<TrngSource>(spec);
}

void TrngSource::reseed(const SeedSpec& spec) { *this = TrngSource(spec); }

CounterSource::CounterSource(const SeedSpec& spec)
    : bits_(spec.bits),
      start_(spec.seed & ((1u << spec.bits) - 1u)),
      state_(start_) {}

std::uint32_t CounterSource::next() {
  const std::uint32_t v = state_;
  state_ = (state_ + 1u) & ((1u << bits_) - 1u);
  return v;
}

std::unique_ptr<RngSource> CounterSource::clone() const {
  SeedSpec spec;
  spec.bits = bits_;
  spec.seed = start_;
  return std::make_unique<CounterSource>(spec);
}

void CounterSource::reseed(const SeedSpec& spec) {
  *this = CounterSource(spec);
}

std::unique_ptr<RngSource> make_source(RngKind kind, const SeedSpec& spec) {
  switch (kind) {
    case RngKind::kLfsr: return std::make_unique<LfsrSource>(spec);
    case RngKind::kTrng: return std::make_unique<TrngSource>(spec);
    case RngKind::kCounter: return std::make_unique<CounterSource>(spec);
    case RngKind::kSobol: return std::make_unique<SobolSource>(spec);
  }
  throw std::invalid_argument("make_source: unknown RngKind");
}

}  // namespace geo::sc
