#include "sc/sobol.hpp"

#include <bit>

namespace geo::sc {

namespace {

// Primitive polynomial degree (s), encoded middle coefficients (a) and
// initial direction integers (m) for dimensions 1..9; dimension 0 is the
// van der Corput sequence in base 2. Values follow the classic
// Bratley-Fox / Joe-Kuo tables.
struct DimInit {
  unsigned s;
  std::uint32_t a;
  std::array<std::uint32_t, 5> m;
};

constexpr DimInit kDims[SobolSource::kDimensions - 1] = {
    {1, 0, {1, 0, 0, 0, 0}},   {2, 1, {1, 3, 0, 0, 0}},
    {3, 1, {1, 3, 1, 0, 0}},   {3, 2, {1, 1, 1, 0, 0}},
    {4, 1, {1, 1, 3, 3, 0}},   {4, 4, {1, 3, 5, 13, 0}},
    {5, 2, {1, 1, 5, 5, 17}},  {5, 4, {1, 1, 5, 5, 5}},
    {5, 7, {1, 1, 7, 11, 19}},
};

}  // namespace

SobolSource::SobolSource(const SeedSpec& spec)
    : bits_(spec.bits), dim_(spec.seed % kDimensions) {
  if (dim_ == 0) {
    // van der Corput: v_j = 2^(32-j)
    for (unsigned j = 1; j <= 32; ++j) v_[j - 1] = 1u << (32 - j);
    return;
  }
  const DimInit& d = kDims[dim_ - 1];
  std::array<std::uint32_t, 33> m{};  // 1-indexed
  for (unsigned j = 1; j <= d.s; ++j) m[j] = d.m[j - 1];
  for (unsigned j = d.s + 1; j <= 32; ++j) {
    std::uint32_t mj = m[j - d.s] ^ (m[j - d.s] << d.s);
    for (unsigned k = 1; k < d.s; ++k)
      if ((d.a >> (d.s - 1 - k)) & 1u) mj ^= m[j - k] << k;
    m[j] = mj;
  }
  for (unsigned j = 1; j <= 32; ++j) v_[j - 1] = m[j] << (32 - j);
}

std::uint32_t SobolSource::next() {
  const std::uint32_t out = x_ >> (32 - bits_);
  // Gray-code advance: flip the direction number indexed by the lowest zero
  // bit of the point index.
  const unsigned c = static_cast<unsigned>(std::countr_one(index_));
  x_ ^= v_[c];
  ++index_;
  return out;
}

void SobolSource::reset() {
  index_ = 0;
  x_ = 0;
}

void SobolSource::reseed(const SeedSpec& spec) { *this = SobolSource(spec); }

std::unique_ptr<RngSource> SobolSource::clone() const {
  SeedSpec spec;
  spec.bits = bits_;
  spec.seed = dim_;
  return std::make_unique<SobolSource>(spec);
}

}  // namespace geo::sc
