// Table-driven word-parallel stream generation with a shared-sequence cache.
//
// GEO's seed sharing (Sec. II-A) means a whole layer draws its streams from
// a handful of distinct deterministic RNG sequences. For one sequence
// R[0..L-1] the comparator output for value v is bit t = (v != 0 && R[t] <= v)
// — a pure function of (sequence, v). So instead of ticking the generator L
// times per stream, we walk the sequence ONCE and precompute the full
// comparator table: one-hot "level" bitmaps level[s] (bit t set iff
// R[t] == s) prefix-OR-ed into table[v] = OR_{s<=v} level[s]. Any stream for
// value v is then a word-wise copy of table[v] (an 8-bit LFSR at L=256 is
// 8 KB per sequence: ~256 ticks + a heap allocation become a 4-word memcpy).
// Progressive streams (Sec. II-B) compose segment-wise copies of
// table[effective_value(t)] between load beats, per
// ProgressiveSchedule::loaded_bits.
//
// Tables live in a process-wide registry keyed by the canonicalized
// (RngKind, bits, seed, taps, length) tuple — keyed AFTER
// fault::corrupt_seed rewrites a spec, so the GEO_FAULTS bit-exactness
// contracts hold unchanged. Publication uses the same claim/generate/publish
// atomic protocol as ConvExecution's lazy activation cache (one CAS winner
// builds, everyone else bounded-spins then parks on a C++20 atomic wait).
// Non-deterministic sources (TRNG) and tables over the byte budget fall back
// to the reusable tick path, which is bit-identical by construction.
//
// Knobs (see docs/STREAM_GENERATION.md / docs/OBSERVABILITY.md):
//   GEO_STREAM_TABLE     0|1  table-driven generation on/off (default 1)
//   GEO_STREAM_TABLE_MB  total registry byte budget in MiB (default 256;
//                        explicit K/M/G[iB] suffixes accepted, see env_size)
// Telemetry: machine.stream_table_hits / _misses / _build_ns / _fallbacks.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "sc/progressive.hpp"
#include "sc/rng_source.hpp"
#include "sc/sng.hpp"

namespace geo::sc {

// GEO_STREAM_TABLE, re-read on each call (checked parse; malformed values
// warn once and fall back to enabled).
bool stream_table_enabled();

// Canonical identity of one precomputed comparator table. Specs that denote
// the same sequence (taps=0 vs. the explicit default polynomial, seed 0 vs.
// the LFSR's silent 0->1 remap, out-of-range Sobol dimensions) collapse to
// one key so the cache shares as widely as the hardware would.
struct StreamTableKey {
  RngKind kind = RngKind::kLfsr;
  unsigned bits = 0;
  std::uint32_t seed = 0;
  std::uint32_t taps = 0;
  std::uint32_t length = 0;

  bool operator==(const StreamTableKey&) const = default;
};

struct StreamTableKeyHash {
  std::size_t operator()(const StreamTableKey& k) const noexcept;
};

// The full comparator table for one sequence: row(v) is the packed
// `length`-bit stream an SNG fed by this sequence emits for comparator value
// v (row(0) is all-zero — a zero value never fires). Immutable once built.
class StreamTable {
 public:
  // Walks the sequence once and builds all 2^bits rows. `spec` must already
  // be canonical for `kind`.
  static StreamTable build(RngKind kind, const SeedSpec& spec,
                           std::size_t length);

  // Table footprint for a prospective build (used for budget gating before
  // any allocation happens).
  static std::uint64_t bytes_for(unsigned bits, std::size_t length) noexcept {
    const std::uint64_t wpl = (static_cast<std::uint64_t>(length) + 63) / 64;
    return (std::uint64_t{1} << bits) * wpl * 8;
  }

  unsigned bits() const noexcept { return bits_; }
  std::size_t length() const noexcept { return length_; }
  std::size_t wpl() const noexcept { return wpl_; }
  std::uint64_t bytes() const noexcept { return words_.size() * 8; }

  const std::uint64_t* row(std::uint32_t value) const noexcept {
    return words_.data() + static_cast<std::size_t>(value) * wpl_;
  }

 private:
  unsigned bits_ = 0;
  std::size_t length_ = 0;
  std::size_t wpl_ = 0;
  std::vector<std::uint64_t> words_;  // (1 << bits) rows of wpl words
};

// Process-wide shared-sequence cache. Thread-safe; a given key is built
// exactly once (claim/build/publish) and served read-only forever after.
class StreamTableRegistry {
 public:
  static StreamTableRegistry& instance();

  // The ready table for this sequence, building it if this is the first
  // request. Returns nullptr when the sequence is not cacheable (TRNG,
  // generator width outside the LFSR range) or would exceed the byte budget
  // — callers fall back to the tick path. Never throws on the nullptr path.
  const StreamTable* acquire(RngKind kind, const SeedSpec& spec,
                             std::size_t length);

  // Registry statistics (also mirrored into the telemetry registry under
  // machine.stream_table_*).
  std::uint64_t hits() const noexcept { return hits_.load(); }
  std::uint64_t misses() const noexcept { return misses_.load(); }
  std::uint64_t fallbacks() const noexcept { return fallbacks_.load(); }
  std::uint64_t total_bytes() const noexcept { return bytes_.load(); }
  std::size_t size() const;

  // Drops every table. Test-only: callers must not hold pointers returned by
  // acquire() across a clear().
  void clear();

 private:
  StreamTableRegistry();

  struct Entry;

  std::optional<StreamTableKey> canonical_key(RngKind kind,
                                              const SeedSpec& spec,
                                              std::size_t length) const;

  mutable std::shared_mutex mu_;
  std::unordered_map<StreamTableKey, std::unique_ptr<Entry>,
                     StreamTableKeyHash>
      map_;
  std::uint64_t budget_bytes_;
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> fallbacks_{0};
};

// Reusable stream writer: the one front-end every stream producer goes
// through. Serves table hits as word-wise copies and everything else through
// a reusable (allocation-free after first use) Sng / ProgressiveSng tick
// path that is bit-identical to constructing a fresh generator per stream.
// Not thread-safe; use local() for a per-thread instance.
class StreamGenerator {
 public:
  StreamGenerator() = default;

  // The calling thread's generator (reused across streams and layers).
  static StreamGenerator& local();

  // Writes the plain-SNG stream for comparator value `vn` (already in the
  // 2^spec.bits domain) into dst by OR-ing bits in: dst[0..wpl) MUST be
  // zeroed by the caller, and wpl must equal ceil(length / 64).
  void generate(std::uint64_t* dst, std::size_t wpl, std::size_t length,
                RngKind kind, const SeedSpec& spec, std::uint32_t vn,
                bool use_table);

  // Same for a progressive SNG: `value` is in the schedule's value_bits
  // domain; the table path composes segment-wise row copies between load
  // beats.
  void generate_progressive(std::uint64_t* dst, std::size_t wpl,
                            std::size_t length, RngKind kind,
                            const SeedSpec& spec,
                            const ProgressiveSchedule& sched,
                            std::uint32_t value, bool use_table);

 private:
  Sng& plain(RngKind kind, const SeedSpec& spec);
  ProgressiveSng& progressive(RngKind kind, const SeedSpec& spec,
                              const ProgressiveSchedule& sched);

  static constexpr std::size_t kKinds = 4;
  std::unique_ptr<Sng> sng_[kKinds];
  std::unique_ptr<ProgressiveSng> prog_[kKinds];
};

}  // namespace geo::sc
