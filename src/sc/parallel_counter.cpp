#include "sc/parallel_counter.hpp"

#include <bit>

#include "fault/fault_model.hpp"
#include "sc/simd.hpp"

namespace geo::sc {

namespace {
geo::Status check_lengths(std::span<const Bitstream> streams) {
  for (const auto& s : streams)
    if (s.length() != streams[0].length())
      return geo::Status::invalid_argument(
          "parallel counter: length mismatch");
  return geo::Status{};
}
}  // namespace

StatusOr<std::vector<std::uint16_t>> parallel_count(
    std::span<const Bitstream> streams) {
  if (streams.empty()) return std::vector<std::uint16_t>{};
  if (auto s = check_lengths(streams); !s.ok()) return s;
  const std::size_t len = streams[0].length();
  std::vector<std::uint16_t> out(len, 0);
  for (const auto& s : streams)
    for (std::size_t w = 0; w < s.word_count(); ++w) {
      std::uint64_t bits = s.words()[w];
      while (bits != 0) {
        const unsigned b = static_cast<unsigned>(std::countr_zero(bits));
        ++out[w * 64 + b];
        bits &= bits - 1;
      }
    }
  if (fault::FaultModel* fm = fault::active();
      fm != nullptr && fm->stuck_enabled()) {
    for (auto& c : out)
      c = static_cast<std::uint16_t>(fm->apply_stuck(c));
  }
  return out;
}

StatusOr<std::uint64_t> count_total(std::span<const Bitstream> streams) {
  if (fault::FaultModel* fm = fault::active();
      fm != nullptr && fm->stuck_enabled()) {
    // A stuck column corrupts each per-cycle count, so the total must be
    // rebuilt cycle by cycle instead of from whole-stream popcounts.
    auto counts = parallel_count(streams);
    if (!counts.ok()) return counts.status();
    std::uint64_t total = 0;
    for (const std::uint16_t c : counts.value()) total += c;
    return total;
  }
  if (auto s = check_lengths(streams); !s.ok()) return s;
  std::uint64_t total = 0;
  for (const auto& s : streams) total += s.popcount();
  return total;
}

StatusOr<std::uint64_t> apc_count_total(std::span<const Bitstream> streams) {
  if (streams.empty()) return std::uint64_t{0};
  if (auto s = check_lengths(streams); !s.ok()) return s;
  std::uint64_t total = 0;
  std::size_t i = 0;
  bool use_or = true;
  for (; i + 1 < streams.size(); i += 2, use_or = !use_or) {
    // Fused merge-and-count: the OR/AND merge stage never materializes.
    const std::uint64_t* a = streams[i].words().data();
    const std::uint64_t* b = streams[i + 1].words().data();
    const std::size_t wc = streams[i].word_count();
    total += 2 * (use_or ? simd::or_popcount(a, b, wc)
                         : simd::and_popcount(a, b, wc));
  }
  if (i < streams.size()) total += streams[i].popcount();
  return total;
}

}  // namespace geo::sc
