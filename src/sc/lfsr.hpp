// Maximal-length linear feedback shift registers.
//
// GEO uses n-bit maximal-length LFSRs as the random number source of its
// stochastic number generators: when generating streams of length 2^n the
// LFSR cycles through all 2^n - 1 nonzero states, which makes generation
// deterministic, repeatable, and "almost accurate" (Sec. II-A). Multiple
// uncorrelated streams come from varying either the seed or the
// characteristic polynomial.
//
// The paper's Fig. 4 shows a fixed 8-bit maximal-length LFSR (b) and a
// configurable 8-or-7-bit variant (c); both are modeled here.
#pragma once

#include <cstdint>
#include <vector>

namespace geo::sc {

// Fibonacci-style LFSR. The tap mask has bit (i-1) set if stage i feeds the
// XOR (so the polynomial x^8+x^6+x^5+x^4+1 is mask 0b1011'1000 = 0xB8).
class Lfsr {
 public:
  // Constructs an LFSR using the default maximal-length polynomial for the
  // given width. `bits` must be in [kMinBits, kMaxBits]; seed must be nonzero
  // (a zero seed is silently mapped to 1, the all-zero state is absorbing).
  Lfsr(unsigned bits, std::uint32_t seed);

  // Constructs with an explicit tap mask (for polynomial diversity).
  Lfsr(unsigned bits, std::uint32_t seed, std::uint32_t tap_mask);

  unsigned bits() const noexcept { return bits_; }
  std::uint32_t tap_mask() const noexcept { return taps_; }
  std::uint32_t period() const noexcept { return (1u << bits_) - 1u; }

  std::uint32_t state() const noexcept { return state_; }

  // Advances one step and returns the *new* state (in [1, 2^bits - 1]).
  std::uint32_t next() noexcept;

  // Restarts from the original seed.
  void reset() noexcept { state_ = seed_; }

  void reseed(std::uint32_t seed) noexcept;

  static constexpr unsigned kMinBits = 2;
  static constexpr unsigned kMaxBits = 24;

  // Default maximal-length tap mask for a width (verified by tests to have
  // period 2^bits - 1).
  static std::uint32_t default_taps(unsigned bits);

  // Returns true if the tap mask yields a maximal-length sequence for the
  // width. Cost: one full period walk (fine for bits <= ~20 in tests).
  static bool is_maximal(unsigned bits, std::uint32_t tap_mask);

  // Enumerates up to `max_count` distinct maximal tap masks for the width, in
  // deterministic order starting from the default polynomial. Used to hand
  // out uncorrelated generators once seeds are exhausted.
  static std::vector<std::uint32_t> find_maximal_taps(unsigned bits,
                                                      unsigned max_count);

 private:
  unsigned bits_;
  std::uint32_t taps_;
  std::uint32_t seed_;
  std::uint32_t state_;
};

// Fig. 4(c): an LFSR whose effective width can be switched between 8 and 7
// bits (GEO matches LFSR length to the configured stream length, so one
// physical register serves both 256- and 128-cycle streams).
class ConfigurableLfsr {
 public:
  ConfigurableLfsr(unsigned bits, std::uint32_t seed) : lfsr_(bits, seed) {}

  void configure(unsigned bits, std::uint32_t seed) { lfsr_ = Lfsr(bits, seed); }

  unsigned bits() const noexcept { return lfsr_.bits(); }
  std::uint32_t next() noexcept { return lfsr_.next(); }
  std::uint32_t state() const noexcept { return lfsr_.state(); }
  void reset() noexcept { lfsr_.reset(); }

 private:
  Lfsr lfsr_;
};

}  // namespace geo::sc
