#include "sc/lfsr.hpp"

#include <bit>
#include <stdexcept>

namespace geo::sc {

namespace {
// One known maximal-length tap mask per width (taps numbered from 1; bit i-1
// of the mask corresponds to stage i). Sources: standard m-sequence tables
// (e.g. Xilinx XAPP 052). Every entry is verified by tests/sc/lfsr_test.
constexpr std::uint32_t kDefaultTaps[Lfsr::kMaxBits + 1] = {
    0,         0,
    0x3,       // 2: x^2+x+1
    0x6,       // 3: x^3+x^2+1
    0xC,       // 4: x^4+x^3+1
    0x14,      // 5: x^5+x^3+1
    0x30,      // 6: x^6+x^5+1
    0x60,      // 7: x^7+x^6+1
    0xB8,      // 8: x^8+x^6+x^5+x^4+1
    0x110,     // 9: x^9+x^5+1
    0x240,     // 10: x^10+x^7+1
    0x500,     // 11: x^11+x^9+1
    0x829,     // 12: x^12+x^6+x^4+x+1
    0x100D,    // 13: x^13+x^4+x^3+x+1
    0x2015,    // 14: x^14+x^5+x^3+x+1
    0x6000,    // 15: x^15+x^14+1
    0xD008,    // 16: x^16+x^15+x^13+x^4+1
    0x12000,   // 17: x^17+x^14+1
    0x20400,   // 18: x^18+x^11+1
    0x40023,   // 19: x^19+x^6+x^2+x+1
    0x90000,   // 20: x^20+x^17+1
    0x140000,  // 21: x^21+x^19+1
    0x300000,  // 22: x^22+x^21+1
    0x420000,  // 23: x^23+x^18+1
    0xE10000,  // 24: x^24+x^23+x^22+x^17+1
};

void check_bits(unsigned bits) {
  if (bits < Lfsr::kMinBits || bits > Lfsr::kMaxBits)
    throw std::invalid_argument("Lfsr: width out of range");
}
}  // namespace

Lfsr::Lfsr(unsigned bits, std::uint32_t seed)
    : Lfsr(bits, seed, default_taps(bits)) {}

Lfsr::Lfsr(unsigned bits, std::uint32_t seed, std::uint32_t tap_mask)
    : bits_(bits), taps_(tap_mask) {
  check_bits(bits);
  const std::uint32_t mask = (1u << bits_) - 1u;
  taps_ &= mask;
  if (taps_ == 0) throw std::invalid_argument("Lfsr: empty tap mask");
  reseed(seed);
}

void Lfsr::reseed(std::uint32_t seed) noexcept {
  const std::uint32_t mask = (1u << bits_) - 1u;
  seed_ = seed & mask;
  if (seed_ == 0) seed_ = 1;  // all-zero state is absorbing
  state_ = seed_;
}

std::uint32_t Lfsr::next() noexcept {
  // Fibonacci update: feedback bit = XOR of tapped stages, shifted into the
  // LSB end; stage `bits_` (MSB) falls off.
  const std::uint32_t fb =
      static_cast<std::uint32_t>(std::popcount(state_ & taps_)) & 1u;
  state_ = ((state_ << 1) | fb) & ((1u << bits_) - 1u);
  return state_;
}

std::uint32_t Lfsr::default_taps(unsigned bits) {
  check_bits(bits);
  return kDefaultTaps[bits];
}

bool Lfsr::is_maximal(unsigned bits, std::uint32_t tap_mask) {
  check_bits(bits);
  const std::uint32_t mask = (1u << bits) - 1u;
  tap_mask &= mask;
  if (tap_mask == 0) return false;
  // The MSB stage must be tapped, otherwise the register is degenerate.
  if ((tap_mask >> (bits - 1)) == 0) return false;
  Lfsr l(bits, 1, tap_mask);
  const std::uint32_t period = (1u << bits) - 1u;
  for (std::uint32_t i = 1; i < period; ++i)
    if (l.next() == 1u) return false;  // returned to seed too early
  return l.next() == 1u;
}

std::vector<std::uint32_t> Lfsr::find_maximal_taps(unsigned bits,
                                                   unsigned max_count) {
  check_bits(bits);
  std::vector<std::uint32_t> out;
  if (max_count == 0) return out;
  out.push_back(default_taps(bits));
  const std::uint32_t top = 1u << (bits - 1);
  const std::uint32_t mask = (1u << bits) - 1u;
  for (std::uint32_t cand = top + 1; cand <= mask && out.size() < max_count;
       ++cand) {
    if (cand == out.front()) continue;
    // Primitive polynomials have an even number of taps in this convention
    // (odd number of nonzero terms including the constant).
    if ((std::popcount(cand) & 1) != 0) continue;
    if (is_maximal(bits, cand)) out.push_back(cand);
  }
  return out;
}

}  // namespace geo::sc
