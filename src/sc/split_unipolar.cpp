#include "sc/split_unipolar.hpp"

namespace geo::sc {

SplitValue split_quantize(double v, unsigned bits) {
  SplitValue out;
  if (v >= 0.0)
    out.pos = quantize_unipolar(v, bits);
  else
    out.neg = quantize_unipolar(-v, bits);
  return out;
}

double split_dequantize(const SplitValue& v, unsigned bits) {
  return dequantize_unipolar(v.pos, bits) - dequantize_unipolar(v.neg, bits);
}

SplitStream generate_split(Sng& sng, const SplitValue& v, std::size_t length) {
  SplitStream out;
  if (v.pos != 0) {
    out.pos = sng.generate(v.pos, length);
    out.neg = Bitstream(length);
  } else if (v.neg != 0) {
    out.neg = sng.generate(v.neg, length);
    out.pos = Bitstream(length);
  } else {
    out.pos = Bitstream(length);
    out.neg = Bitstream(length);
  }
  return out;
}

SplitStream split_multiply(const SplitStream& a, const SplitStream& b) {
  SplitStream out;
  out.pos = (a.pos & b.pos) | (a.neg & b.neg);
  out.neg = (a.pos & b.neg) | (a.neg & b.pos);
  return out;
}

void split_or_accumulate(SplitStream& a, const SplitStream& b) {
  a.pos |= b.pos;
  a.neg |= b.neg;
}

}  // namespace geo::sc
