// RNG seed-sharing policies (Sec. II-A).
//
// GEO shares stream-generator seeds to shrink area and, crucially, to make
// the generation error *deterministic and learnable*:
//   - none:     every SNG gets its own seed               (baseline)
//   - moderate: all kernels of a layer share one seed set (GEO's choice —
//               a weight's seed depends on its position inside the kernel,
//               not on which kernel it belongs to)
//   - extreme:  all rows of all kernels share one set     (a weight's seed
//               depends only on its position within a kernel row; streams
//               inside one dot product become correlated and accuracy
//               collapses)
//
// Seeds are handed out *sequentially* per distinct generator id, cycling
// through the nonzero LFSR state space and then through alternate
// maximal-length characteristic polynomials. When a layer needs more
// generators than there are (seed, polynomial) pairs — the paper's "limit of
// availability of unique RNG seeds" — seeds genuinely repeat, and the
// resulting correlation is part of what training must learn.
#pragma once

#include <cstdint>
#include <vector>

#include "sc/rng_source.hpp"

namespace geo::sc {

enum class Sharing { kNone, kModerate, kExtreme };

const char* to_string(Sharing sharing) noexcept;

// Position of one weight inside a layer's filter bank (Cout, Cin, Kh, Kw).
struct WeightPos {
  int kernel = 0;  // output channel
  int cin = 0;
  int kh = 0;
  int kw = 0;
};

// Filter-bank extents, needed to linearize positions into seed indices.
struct KernelExtents {
  int cout = 1;
  int cin = 1;
  int kh = 1;
  int kw = 1;
};

class SeedAllocator {
 public:
  // `layer_salt` rotates the seed space per layer so different layers use
  // different generators; `bits` is the LFSR width (= log2 stream length).
  SeedAllocator(Sharing sharing, unsigned bits, const KernelExtents& extents,
                std::uint64_t layer_salt);

  Sharing sharing() const noexcept { return sharing_; }
  unsigned bits() const noexcept { return bits_; }

  // Seed for a weight stream generator. At a given sharing level the seed
  // depends only on the coordinates that level distinguishes.
  SeedSpec weight(const WeightPos& pos) const;

  // Seed for an activation stream generator (indexed by buffer slot).
  // Activation seeds are allocated from the top of the seed space, weights
  // from the bottom, so the two only collide when a layer exhausts the
  // space.
  SeedSpec activation(int index) const;

  // Number of distinct generator ids the weight side needs at this level.
  std::size_t weight_ids() const noexcept;

  // Number of distinct (seed, polynomial) pairs available at this width.
  std::size_t capacity() const noexcept;

 private:
  SeedSpec spec_for_index(std::uint64_t index) const;

  Sharing sharing_;
  unsigned bits_;
  KernelExtents ext_;
  std::uint64_t layer_salt_;
  std::vector<std::uint32_t> taps_;  // alternate maximal polynomials
};

}  // namespace geo::sc
