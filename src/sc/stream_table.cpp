#include "sc/stream_table.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "core/env.hpp"
#include "sc/lfsr.hpp"
#include "sc/sobol.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::sc {

namespace {

// A single table may not exceed this even when the total budget would allow
// it (one giant sequence must not evict-by-starvation everything else).
constexpr std::uint64_t kMaxTableBytes = 8ull << 20;

// Bounded spin before parking on the entry's atomic: long enough to cover a
// small table build in flight, short enough that an oversubscribed waiter
// yields its core quickly.
constexpr int kSpinLimit = 256;

// OR src's bits [from, to) into dst (both packed LSB-first, 64 per word).
void or_bit_range(std::uint64_t* dst, const std::uint64_t* src,
                  std::size_t from, std::size_t to) {
  if (from >= to) return;
  const std::size_t w0 = from / 64;
  const std::size_t w1 = (to - 1) / 64;
  const std::uint64_t first = ~0ull << (from % 64);
  const std::uint64_t last =
      to % 64 == 0 ? ~0ull : ~0ull >> (64 - to % 64);
  if (w0 == w1) {
    dst[w0] |= src[w0] & first & last;
    return;
  }
  dst[w0] |= src[w0] & first;
  for (std::size_t w = w0 + 1; w < w1; ++w) dst[w] |= src[w];
  dst[w1] |= src[w1] & last;
}

// ProgressiveSng::truncated, replicated for table composition: the
// comparator value visible with only the top `loaded` bits buffered.
std::uint32_t progressive_effective(std::uint32_t value, unsigned loaded,
                                    const ProgressiveSchedule& sched) {
  if (loaded == 0) return 0;
  const unsigned vb = sched.value_bits;
  const unsigned lb = sched.lfsr_bits;
  const std::uint32_t msbs = value >> (vb - loaded);
  const unsigned kept = loaded > lb ? lb : loaded;
  return msbs << (lb - kept);
}

}  // namespace

bool stream_table_enabled() {
  return core::env_int("GEO_STREAM_TABLE", 1, 0, 1) != 0;
}

std::size_t StreamTableKeyHash::operator()(
    const StreamTableKey& k) const noexcept {
  std::uint64_t h = static_cast<std::uint64_t>(k.kind);
  h = core::mix64(h ^ (static_cast<std::uint64_t>(k.bits) << 32 ^ k.seed));
  h = core::mix64(h ^ (static_cast<std::uint64_t>(k.taps) << 32 ^ k.length));
  return static_cast<std::size_t>(h);
}

// ------------------------------------------------------------ StreamTable

StreamTable StreamTable::build(RngKind kind, const SeedSpec& spec,
                               std::size_t length) {
  StreamTable t;
  t.bits_ = spec.bits;
  t.length_ = length;
  t.wpl_ = (length + 63) / 64;
  const std::size_t rows = std::size_t{1} << spec.bits;
  t.words_.assign(rows * t.wpl_, 0);

  // One sequence walk scatters each cycle into its one-hot level bitmap:
  // bit i of row R[i]. The walk replays exactly what Sng::generate sees
  // (reset first, then `length` next() calls).
  auto source = make_source(kind, spec);
  source->reset();
  for (std::size_t i = 0; i < length; ++i) {
    const std::uint32_t r = source->next();
    t.words_[static_cast<std::size_t>(r) * t.wpl_ + (i >> 6)] |=
        1ull << (i & 63);
  }
  // Prefix-OR the levels into comparator rows: row[v] = OR_{s<=v} level[s]
  // (bit i set iff R[i] <= v), then clear row 0 — a zero comparator value
  // never fires regardless of the sequence.
  for (std::size_t v = 1; v < rows; ++v) {
    const std::uint64_t* prev = &t.words_[(v - 1) * t.wpl_];
    std::uint64_t* cur = &t.words_[v * t.wpl_];
    for (std::size_t k = 0; k < t.wpl_; ++k) cur[k] |= prev[k];
  }
  std::fill(t.words_.begin(),
            t.words_.begin() + static_cast<std::ptrdiff_t>(t.wpl_), 0);
  return t;
}

// --------------------------------------------------- StreamTableRegistry

// Claim/generate/publish cell, same protocol as ConvExecution's lazy
// activation cache: 0 = empty, 1 = being built, 2 = ready, 3 = failed
// (budget exceeded or the build threw). The CAS winner builds; everyone
// else bounded-spins then parks on the atomic until notified.
struct StreamTableRegistry::Entry {
  std::atomic<std::uint8_t> state{0};
  StreamTable table;
};

StreamTableRegistry::StreamTableRegistry()
    : budget_bytes_(static_cast<std::uint64_t>(
          core::env_size("GEO_STREAM_TABLE_MB", 256ll << 20,
                         /*unit=*/1ll << 20, 0, 1ll << 40))) {}

StreamTableRegistry& StreamTableRegistry::instance() {
  static StreamTableRegistry registry;
  return registry;
}

std::optional<StreamTableKey> StreamTableRegistry::canonical_key(
    RngKind kind, const SeedSpec& spec, std::size_t length) const {
  if (spec.bits < 1 || spec.bits > 24) return std::nullopt;
  if (length == 0 || length > (std::size_t{1} << 31)) return std::nullopt;
  const std::uint32_t mask = (1u << spec.bits) - 1u;
  StreamTableKey k;
  k.kind = kind;
  k.bits = spec.bits;
  k.length = static_cast<std::uint32_t>(length);
  switch (kind) {
    case RngKind::kLfsr: {
      if (spec.bits < Lfsr::kMinBits) return std::nullopt;
      // Mirror the Lfsr constructor's normalization so equivalent specs
      // share one table: taps 0 -> default polynomial, masked to the width;
      // seed masked, the absorbing all-zero state remapped to 1.
      std::uint32_t taps =
          (spec.taps != 0 ? spec.taps : Lfsr::default_taps(spec.bits)) & mask;
      if (taps == 0) return std::nullopt;  // Lfsr would throw; let it
      k.taps = taps;
      k.seed = spec.seed & mask;
      if (k.seed == 0) k.seed = 1;
      break;
    }
    case RngKind::kCounter:
      k.seed = spec.seed & mask;
      break;
    case RngKind::kSobol:
      k.seed = spec.seed % SobolSource::kDimensions;
      break;
    case RngKind::kTrng:
      return std::nullopt;  // fresh randomness per stream, never cacheable
  }
  return k;
}

const StreamTable* StreamTableRegistry::acquire(RngKind kind,
                                                const SeedSpec& spec,
                                                std::size_t length) {
  auto& metrics = telemetry::MetricsRegistry::instance();
  const auto key = canonical_key(kind, spec, length);
  if (!key.has_value()) {
    fallbacks_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter("machine.stream_table_fallbacks").add(1);
    return nullptr;
  }

  Entry* entry = nullptr;
  {
    std::shared_lock lock(mu_);
    const auto it = map_.find(*key);
    if (it != map_.end()) entry = it->second.get();
  }
  if (entry == nullptr) {
    std::unique_lock lock(mu_);
    auto [it, inserted] = map_.try_emplace(*key);
    if (inserted) it->second = std::make_unique<Entry>();
    entry = it->second.get();
  }

  std::uint8_t state = entry->state.load(std::memory_order_acquire);
  if (state == 0) {
    std::uint8_t expected = 0;
    if (entry->state.compare_exchange_strong(expected, 1,
                                             std::memory_order_acq_rel)) {
      // We own the build. Reserve the footprint first so a flood of
      // distinct keys (e.g. a high seed-upset fault rate minting corrupted
      // specs) degrades to the tick path instead of unbounded memory.
      const std::uint64_t need = StreamTable::bytes_for(spec.bits, length);
      std::uint8_t publish = 3;
      std::int64_t build_ns = 0;
      if (need <= kMaxTableBytes) {
        if (bytes_.fetch_add(need, std::memory_order_relaxed) + need <=
            budget_bytes_) {
          try {
            const auto t0 = std::chrono::steady_clock::now();
            entry->table = StreamTable::build(kind, spec, length);
            const auto t1 = std::chrono::steady_clock::now();
            build_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           t1 - t0)
                           .count();
            metrics.counter("machine.stream_table_build_ns").add(build_ns);
            publish = 2;
          } catch (...) {
            bytes_.fetch_sub(need, std::memory_order_relaxed);
          }
        } else {
          bytes_.fetch_sub(need, std::memory_order_relaxed);
        }
      }
      entry->state.store(publish, std::memory_order_release);
      entry->state.notify_all();
      if (auto& journal = telemetry::Journal::instance(); journal.enabled())
        journal.record(
            publish == 2 ? "stream_table.build" : "stream_table.fallback",
            std::string(to_string(kind)) + "/b" +
                std::to_string(spec.bits) + "/L" + std::to_string(length),
            {{"bytes", static_cast<double>(need)},
             {"build_ns", static_cast<double>(build_ns)}},
            publish == 2 ? std::string_view{} : "budget");
      if (publish == 2) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        metrics.counter("machine.stream_table_misses").add(1);
        return &entry->table;
      }
      fallbacks_.fetch_add(1, std::memory_order_relaxed);
      metrics.counter("machine.stream_table_fallbacks").add(1);
      return nullptr;
    }
    state = expected;
  }
  // Another thread is building this table; its bits are a pure function of
  // the key, so bounded-spin then park until it publishes.
  while (state == 1) {
    for (int s = 0; s < kSpinLimit && state == 1; ++s) {
      std::this_thread::yield();
      state = entry->state.load(std::memory_order_acquire);
    }
    if (state == 1) {
      entry->state.wait(1, std::memory_order_acquire);
      state = entry->state.load(std::memory_order_acquire);
    }
  }
  if (state == 2) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    metrics.counter("machine.stream_table_hits").add(1);
    return &entry->table;
  }
  fallbacks_.fetch_add(1, std::memory_order_relaxed);
  metrics.counter("machine.stream_table_fallbacks").add(1);
  return nullptr;
}

std::size_t StreamTableRegistry::size() const {
  std::shared_lock lock(mu_);
  return map_.size();
}

void StreamTableRegistry::clear() {
  std::unique_lock lock(mu_);
  map_.clear();
  bytes_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------- StreamGenerator

StreamGenerator& StreamGenerator::local() {
  thread_local StreamGenerator generator;
  return generator;
}

Sng& StreamGenerator::plain(RngKind kind, const SeedSpec& spec) {
  auto& slot = sng_[static_cast<std::size_t>(kind)];
  if (slot == nullptr)
    slot = std::make_unique<Sng>(kind, spec);
  else
    slot->reseed(spec);
  return *slot;
}

ProgressiveSng& StreamGenerator::progressive(
    RngKind kind, const SeedSpec& spec, const ProgressiveSchedule& sched) {
  auto& slot = prog_[static_cast<std::size_t>(kind)];
  if (slot == nullptr || !(slot->schedule() == sched))
    slot = std::make_unique<ProgressiveSng>(kind, spec, sched);
  else
    slot->reseed(spec);
  return *slot;
}

void StreamGenerator::generate(std::uint64_t* dst, std::size_t wpl,
                               std::size_t length, RngKind kind,
                               const SeedSpec& spec, std::uint32_t vn,
                               bool use_table) {
  assert(wpl >= (length + 63) / 64);
  (void)wpl;
  const std::uint32_t max = (1u << spec.bits) - 1u;
  if (vn > max) vn = max;  // Sng::load saturates the same way
  if (vn == 0) return;     // a zero value never fires; dst stays zero
  if (use_table) {
    if (const StreamTable* t =
            StreamTableRegistry::instance().acquire(kind, spec, length)) {
      std::copy(t->row(vn), t->row(vn) + t->wpl(), dst);
      return;
    }
  }
  Sng& sng = plain(kind, spec);
  sng.source().reset();
  sng.load(vn);
  for (std::size_t i = 0; i < length; ++i)
    if (sng.tick()) dst[i >> 6] |= 1ull << (i & 63);
}

void StreamGenerator::generate_progressive(
    std::uint64_t* dst, std::size_t wpl, std::size_t length, RngKind kind,
    const SeedSpec& spec, const ProgressiveSchedule& sched,
    std::uint32_t value, bool use_table) {
  assert(wpl >= (length + 63) / 64);
  (void)wpl;
  const std::uint32_t vmax = (1u << sched.value_bits) - 1u;
  if (value > vmax) value = vmax;  // ProgressiveSng::begin saturates too
  if (use_table && spec.bits == sched.lfsr_bits && sched.group_bits != 0 &&
      sched.beat_cycles != 0) {
    if (const StreamTable* t =
            StreamTableRegistry::instance().acquire(kind, spec, length)) {
      // The effective comparator value is a step function of the cycle: it
      // changes only at load beats and freezes once fully loaded. Each
      // constant segment is a masked copy of that value's table row.
      const unsigned target = sched.bits_to_load();
      std::size_t t0 = 0;
      while (t0 < length) {
        const unsigned loaded = sched.loaded_bits(t0);
        const std::size_t t1 =
            loaded >= target
                ? length
                : std::min<std::size_t>(
                      length, (t0 / sched.beat_cycles + 1) *
                                  sched.beat_cycles);
        const std::uint32_t eff =
            progressive_effective(value, loaded, sched);
        if (eff != 0) or_bit_range(dst, t->row(eff), t0, t1);
        t0 = t1;
      }
      return;
    }
  }
  ProgressiveSng& sng = progressive(kind, spec, sched);
  sng.begin(value);
  for (std::size_t i = 0; i < length; ++i)
    if (sng.tick()) dst[i >> 6] |= 1ull << (i & 63);
}

}  // namespace geo::sc
