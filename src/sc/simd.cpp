#include "sc/simd.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "telemetry/journal.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define GEO_SIMD_HAVE_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__)
#define GEO_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

namespace geo::sc::simd {

namespace {

// Per-backend kernel table. One pointer load on the hot path; the scalar
// table is the reference implementation every other backend must match
// bit-for-bit (asserted by the simd test suite).
struct Ops {
  std::uint64_t (*popcount)(const std::uint64_t*, std::size_t);
  std::uint64_t (*and_popcount)(const std::uint64_t*, const std::uint64_t*,
                                std::size_t);
  std::uint64_t (*or_popcount)(const std::uint64_t*, const std::uint64_t*,
                               std::size_t);
  std::int64_t (*mac_popcount)(const std::uint64_t*, const std::uint64_t*,
                               const std::uint64_t*, std::size_t);
  void (*and_into)(std::uint64_t*, const std::uint64_t*, std::size_t);
  void (*or_into)(std::uint64_t*, const std::uint64_t*, std::size_t);
  void (*xor_into)(std::uint64_t*, const std::uint64_t*, std::size_t);
  void (*or_and_into)(std::uint64_t*, const std::uint64_t*,
                      const std::uint64_t*, std::size_t);
};

// ------------------------------------------------------------ scalar

namespace scalar {

std::uint64_t popcount(const std::uint64_t* w, std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::uint64_t>(std::popcount(w[i]));
  return c;
}

std::uint64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return c;
}

std::uint64_t or_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::uint64_t>(std::popcount(a[i] | b[i]));
  return c;
}

std::int64_t mac_popcount(const std::uint64_t* a, const std::uint64_t* wp,
                          const std::uint64_t* wn, std::size_t n) {
  std::int64_t c = 0;
  for (std::size_t i = 0; i < n; ++i) {
    c += std::popcount(a[i] & wp[i]);
    c -= std::popcount(a[i] & wn[i]);
  }
  return c;
}

void and_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void or_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void xor_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void or_and_into(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] |= a[i] & b[i];
}

constexpr Ops kOps = {popcount, and_popcount, or_popcount, mac_popcount,
                      and_into, or_into, xor_into, or_and_into};

}  // namespace scalar

// -------------------------------------------------------------- AVX2
//
// Compiled with per-function target attributes so the translation unit
// builds (and the binary runs) on any x86-64; the AVX2 paths are only ever
// *called* after a runtime CPUID check. Popcount uses the pshufb nibble
// lookup with deferred _mm256_sad_epu8: per-byte counts of one 256-bit
// vector are at most 8, so up to 31 vectors (124 words) accumulate in the
// 8-bit lanes before one SAD folds them into 64-bit partials.

#if GEO_SIMD_HAVE_X86

__attribute__((target("avx2"))) inline __m256i nibble_counts(
    __m256i v) noexcept {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi =
      _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                         _mm256_shuffle_epi8(lut, hi));
}

__attribute__((target("avx2"))) inline std::uint64_t hsum_epi64(
    __m256i v) noexcept {
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), v);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

__attribute__((target("avx2"))) inline __m256i loadu(
    const std::uint64_t* p) noexcept {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

namespace avx2 {

__attribute__((target("avx2"))) std::uint64_t popcount(const std::uint64_t* w,
                                                       std::size_t n) {
  __m256i total = _mm256_setzero_si256();
  std::size_t i = 0;
  while (n - i >= 4) {
    const std::size_t block = std::min<std::size_t>((n - i) / 4, 31);
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t k = 0; k < block; ++k, i += 4)
      acc = _mm256_add_epi8(acc, nibble_counts(loadu(w + i)));
    total = _mm256_add_epi64(total,
                             _mm256_sad_epu8(acc, _mm256_setzero_si256()));
  }
  std::uint64_t out = hsum_epi64(total);
  for (; i < n; ++i) out += static_cast<std::uint64_t>(std::popcount(w[i]));
  return out;
}

__attribute__((target("avx2"))) std::uint64_t and_popcount(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i total = _mm256_setzero_si256();
  std::size_t i = 0;
  while (n - i >= 4) {
    const std::size_t block = std::min<std::size_t>((n - i) / 4, 31);
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t k = 0; k < block; ++k, i += 4)
      acc = _mm256_add_epi8(
          acc, nibble_counts(_mm256_and_si256(loadu(a + i), loadu(b + i))));
    total = _mm256_add_epi64(total,
                             _mm256_sad_epu8(acc, _mm256_setzero_si256()));
  }
  std::uint64_t out = hsum_epi64(total);
  for (; i < n; ++i)
    out += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return out;
}

__attribute__((target("avx2"))) std::uint64_t or_popcount(
    const std::uint64_t* a, const std::uint64_t* b, std::size_t n) {
  __m256i total = _mm256_setzero_si256();
  std::size_t i = 0;
  while (n - i >= 4) {
    const std::size_t block = std::min<std::size_t>((n - i) / 4, 31);
    __m256i acc = _mm256_setzero_si256();
    for (std::size_t k = 0; k < block; ++k, i += 4)
      acc = _mm256_add_epi8(
          acc, nibble_counts(_mm256_or_si256(loadu(a + i), loadu(b + i))));
    total = _mm256_add_epi64(total,
                             _mm256_sad_epu8(acc, _mm256_setzero_si256()));
  }
  std::uint64_t out = hsum_epi64(total);
  for (; i < n; ++i)
    out += static_cast<std::uint64_t>(std::popcount(a[i] | b[i]));
  return out;
}

__attribute__((target("avx2"))) std::int64_t mac_popcount(
    const std::uint64_t* a, const std::uint64_t* wp, const std::uint64_t* wn,
    std::size_t n) {
  __m256i pos = _mm256_setzero_si256();
  __m256i neg = _mm256_setzero_si256();
  std::size_t i = 0;
  while (n - i >= 4) {
    const std::size_t block = std::min<std::size_t>((n - i) / 4, 31);
    __m256i accp = _mm256_setzero_si256();
    __m256i accn = _mm256_setzero_si256();
    for (std::size_t k = 0; k < block; ++k, i += 4) {
      const __m256i act = loadu(a + i);
      accp = _mm256_add_epi8(
          accp, nibble_counts(_mm256_and_si256(act, loadu(wp + i))));
      accn = _mm256_add_epi8(
          accn, nibble_counts(_mm256_and_si256(act, loadu(wn + i))));
    }
    pos = _mm256_add_epi64(pos,
                           _mm256_sad_epu8(accp, _mm256_setzero_si256()));
    neg = _mm256_add_epi64(neg,
                           _mm256_sad_epu8(accn, _mm256_setzero_si256()));
  }
  std::int64_t out = static_cast<std::int64_t>(hsum_epi64(pos)) -
                     static_cast<std::int64_t>(hsum_epi64(neg));
  for (; i < n; ++i) {
    out += std::popcount(a[i] & wp[i]);
    out -= std::popcount(a[i] & wn[i]);
  }
  return out;
}

__attribute__((target("avx2"))) void and_into(std::uint64_t* dst,
                                              const std::uint64_t* src,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(loadu(dst + i), loadu(src + i)));
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void or_into(std::uint64_t* dst,
                                             const std::uint64_t* src,
                                             std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(loadu(dst + i), loadu(src + i)));
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void xor_into(std::uint64_t* dst,
                                              const std::uint64_t* src,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(loadu(dst + i), loadu(src + i)));
  for (; i < n; ++i) dst[i] ^= src[i];
}

__attribute__((target("avx2"))) void or_and_into(std::uint64_t* dst,
                                                 const std::uint64_t* a,
                                                 const std::uint64_t* b,
                                                 std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(loadu(dst + i),
                        _mm256_and_si256(loadu(a + i), loadu(b + i))));
  for (; i < n; ++i) dst[i] |= a[i] & b[i];
}

constexpr Ops kOps = {popcount, and_popcount, or_popcount, mac_popcount,
                      and_into, or_into, xor_into, or_and_into};

}  // namespace avx2

#endif  // GEO_SIMD_HAVE_X86

// -------------------------------------------------------------- NEON
//
// aarch64 NEON is baseline, so no runtime detection or target attributes
// are needed: vcntq_u8 counts per byte, then a pairwise-widen chain folds
// into 64-bit lanes per vector (128-bit vectors, so the deferred-fold trick
// buys less; the simple chain keeps the kernel obviously exact).

#if GEO_SIMD_HAVE_NEON

namespace neon {

inline std::uint64_t fold_count(uint8x16_t bytes) noexcept {
  return vaddvq_u64(vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(vcntq_u8(bytes)))));
}

std::uint64_t popcount(const std::uint64_t* w, std::size_t n) {
  std::uint64_t out = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    out += fold_count(vreinterpretq_u8_u64(vld1q_u64(w + i)));
  for (; i < n; ++i) out += static_cast<std::uint64_t>(std::popcount(w[i]));
  return out;
}

std::uint64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) {
  std::uint64_t out = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    out += fold_count(
        vreinterpretq_u8_u64(vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i))));
  for (; i < n; ++i)
    out += static_cast<std::uint64_t>(std::popcount(a[i] & b[i]));
  return out;
}

std::uint64_t or_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n) {
  std::uint64_t out = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    out += fold_count(
        vreinterpretq_u8_u64(vorrq_u64(vld1q_u64(a + i), vld1q_u64(b + i))));
  for (; i < n; ++i)
    out += static_cast<std::uint64_t>(std::popcount(a[i] | b[i]));
  return out;
}

std::int64_t mac_popcount(const std::uint64_t* a, const std::uint64_t* wp,
                          const std::uint64_t* wn, std::size_t n) {
  std::int64_t out = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t act = vld1q_u64(a + i);
    out += static_cast<std::int64_t>(
        fold_count(vreinterpretq_u8_u64(vandq_u64(act, vld1q_u64(wp + i)))));
    out -= static_cast<std::int64_t>(
        fold_count(vreinterpretq_u8_u64(vandq_u64(act, vld1q_u64(wn + i)))));
  }
  for (; i < n; ++i) {
    out += std::popcount(a[i] & wp[i]);
    out -= std::popcount(a[i] & wn[i]);
  }
  return out;
}

void and_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i, vandq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  for (; i < n; ++i) dst[i] &= src[i];
}

void or_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i, vorrq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  for (; i < n; ++i) dst[i] |= src[i];
}

void xor_into(std::uint64_t* dst, const std::uint64_t* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i, veorq_u64(vld1q_u64(dst + i), vld1q_u64(src + i)));
  for (; i < n; ++i) dst[i] ^= src[i];
}

void or_and_into(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_u64(dst + i,
              vorrq_u64(vld1q_u64(dst + i),
                        vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i))));
  for (; i < n; ++i) dst[i] |= a[i] & b[i];
}

constexpr Ops kOps = {popcount, and_popcount, or_popcount, mac_popcount,
                      and_into, or_into, xor_into, or_and_into};

}  // namespace neon

#endif  // GEO_SIMD_HAVE_NEON

// ---------------------------------------------------------- dispatch

bool backend_supported(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if GEO_SIMD_HAVE_X86
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Backend::kNeon:
#if GEO_SIMD_HAVE_NEON
      return true;
#else
      return false;
#endif
  }
  return false;
}

const Ops* ops_for(Backend backend) noexcept {
  switch (backend) {
#if GEO_SIMD_HAVE_X86
    case Backend::kAvx2:
      return &avx2::kOps;
#endif
#if GEO_SIMD_HAVE_NEON
    case Backend::kNeon:
      return &neon::kOps;
#endif
    default:
      return &scalar::kOps;
  }
}

std::atomic<const Ops*> g_ops{nullptr};
std::atomic<Backend> g_backend{Backend::kScalar};

void reject(const char* value, const char* what) {
  std::fprintf(stderr,
               "[geo] GEO_SIMD=%s %s; using the scalar backend\n", value,
               what);
  if (auto& journal = telemetry::Journal::instance(); journal.enabled())
    journal.record("config.invalid", "GEO_SIMD", {}, what);
}

// GEO_SIMD -> backend, fail-closed: auto/unset picks the best supported
// backend; an explicit backend must be executable on this CPU; anything
// else is rejected once (stderr + config.invalid journal entry) and runs
// scalar — never a crash, never a silent downgrade.
Backend resolve_from_env() {
  const char* v = std::getenv("GEO_SIMD");
  const std::string_view s = v != nullptr ? v : "";
  if (s.empty() || s == "auto") return detect_best();
  if (s == "scalar") return Backend::kScalar;
  if (s == "avx2" || s == "neon") {
    const Backend want = s == "avx2" ? Backend::kAvx2 : Backend::kNeon;
    if (backend_supported(want)) return want;
    reject(v, "names a backend this CPU cannot execute");
    return Backend::kScalar;
  }
  reject(v, "is not one of auto|avx2|neon|scalar");
  return Backend::kScalar;
}

void set_backend(Backend backend) noexcept {
  g_backend.store(backend, std::memory_order_relaxed);
  g_ops.store(ops_for(backend), std::memory_order_release);
}

void resolve_once() {
  static const bool done = [] {
    set_backend(resolve_from_env());
    return true;
  }();
  (void)done;
}

inline const Ops& ops() noexcept {
  const Ops* o = g_ops.load(std::memory_order_acquire);
  if (o == nullptr) {
    resolve_once();
    o = g_ops.load(std::memory_order_acquire);
  }
  return *o;
}

}  // namespace

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "?";
}

Backend detect_best() noexcept {
#if GEO_SIMD_HAVE_X86
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
#endif
#if GEO_SIMD_HAVE_NEON
  return Backend::kNeon;
#endif
  return Backend::kScalar;
}

Backend active() noexcept {
  resolve_once();
  return g_backend.load(std::memory_order_relaxed);
}

std::uint64_t popcount_words(const std::uint64_t* w, std::size_t n) noexcept {
  return ops().popcount(w, n);
}

std::uint64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) noexcept {
  return ops().and_popcount(a, b, n);
}

std::uint64_t or_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n) noexcept {
  return ops().or_popcount(a, b, n);
}

std::int64_t mac_popcount(const std::uint64_t* a, const std::uint64_t* wp,
                          const std::uint64_t* wn, std::size_t n) noexcept {
  return ops().mac_popcount(a, wp, wn, n);
}

void and_into(std::uint64_t* dst, const std::uint64_t* src,
              std::size_t n) noexcept {
  ops().and_into(dst, src, n);
}

void or_into(std::uint64_t* dst, const std::uint64_t* src,
             std::size_t n) noexcept {
  ops().or_into(dst, src, n);
}

void xor_into(std::uint64_t* dst, const std::uint64_t* src,
              std::size_t n) noexcept {
  ops().xor_into(dst, src, n);
}

void or_and_into(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n) noexcept {
  ops().or_and_into(dst, a, b, n);
}

ScopedSimdBackend::ScopedSimdBackend(Backend backend) : previous_(active()) {
  set_backend(backend_supported(backend) ? backend : Backend::kScalar);
}

ScopedSimdBackend::~ScopedSimdBackend() { set_backend(previous_); }

}  // namespace geo::sc::simd
