// Stream-level stochastic arithmetic building blocks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sc/bitstream.hpp"
#include "sc/rng_source.hpp"

namespace geo::sc {

// Unipolar multiplication: AND of independent streams.
Bitstream multiply(const Bitstream& a, const Bitstream& b);

// Bipolar multiplication: XNOR of independent streams (provided for
// completeness / comparison experiments; GEO itself uses split-unipolar).
Bitstream multiply_bipolar(const Bitstream& a, const Bitstream& b);

// Unscaled OR accumulation of many streams (the [5]/GEO SC adder). Exact for
// disjoint streams, under-approximates the sum otherwise (union bound).
Bitstream or_accumulate(std::span<const Bitstream> streams);

// Scaled addition: per-cycle MUX between a and b driven by a select source
// with p(select) = 0.5, computing (a + b) / 2 in expectation. The select
// threshold is derived from the source's emitted range (RngSource::
// min_value) — an LFSR never emits zero, and splitting its odd-sized range
// naively would bias the result toward `b`; the single midpoint state
// alternates so a full even number of periods selects each input exactly
// half the time.
Bitstream mux_add(const Bitstream& a, const Bitstream& b, RngSource& select);

// Stochastic scaled saturating subtract used by some SC pipelines:
// a AND NOT b, approximating max(a - b, 0) for correlated-free inputs.
Bitstream saturating_subtract(const Bitstream& a, const Bitstream& b);

// The analytic expectation of OR-accumulating independent unipolar streams
// with the given probabilities: 1 - prod(1 - p_i). Used by tests and by the
// fast functional model of the SC layers.
double or_accumulate_expectation(std::span<const double> probabilities);

}  // namespace geo::sc
