// Split-unipolar stochastic representation.
//
// A signed value v in [-1, 1] is represented as two unipolar streams, a
// positive channel carrying max(v, 0) and a negative channel carrying
// max(-v, 0) ([5], adopted by GEO). Multiplication of split values uses four
// ANDs; accumulation runs per-channel (OR and/or parallel counters); the two
// channel counts are subtracted after output conversion. Because a scalar is
// never positive and negative at once, one channel of every source operand
// stream is all-zero, but *products and accumulated streams* generally have
// both channels active.
#pragma once

#include <cstdint>

#include "sc/bitstream.hpp"
#include "sc/sng.hpp"

namespace geo::sc {

// Quantized split encoding of a signed value: channel magnitudes as n-bit
// SNG inputs. Exactly one of pos/neg is nonzero (or both zero).
struct SplitValue {
  std::uint32_t pos = 0;
  std::uint32_t neg = 0;
};

// Quantizes v in [-1, 1] (clamped) into n-bit split channels.
SplitValue split_quantize(double v, unsigned bits);

// The signed value realized by the encoding: (pos - neg) / 2^bits.
double split_dequantize(const SplitValue& v, unsigned bits);

// A pair of equal-length unipolar streams.
struct SplitStream {
  Bitstream pos;
  Bitstream neg;

  std::size_t length() const noexcept { return pos.length(); }

  // Signed stream value: pos.value() - neg.value().
  double value() const noexcept { return pos.value() - neg.value(); }
};

// Generates both channels from one SNG (hardware shares the comparator: at
// most one channel is nonzero for a scalar). The SNG's source is reset first
// so generation is repeatable for deterministic sources.
SplitStream generate_split(Sng& sng, const SplitValue& v, std::size_t length);

// Split-unipolar multiplication:
//   pos = (a.pos & b.pos) | (a.neg & b.neg)
//   neg = (a.pos & b.neg) | (a.neg & b.pos)
// For scalar operands only one AND per channel is live, matching the 2-gate
// hardware cost; the general form is used for stream-level algebra.
SplitStream split_multiply(const SplitStream& a, const SplitStream& b);

// OR-accumulates `b` into `a` per channel (the unscaled SC addition of [5]).
void split_or_accumulate(SplitStream& a, const SplitStream& b);

}  // namespace geo::sc
