#include "sc/stream_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sc/simd.hpp"

namespace geo::sc {

double rms(std::span<const double> errors) {
  if (errors.empty()) return 0.0;
  double acc = 0.0;
  for (double e : errors) acc += e * e;
  return std::sqrt(acc / static_cast<double>(errors.size()));
}

double mean_abs(std::span<const double> errors) {
  if (errors.empty()) return 0.0;
  double acc = 0.0;
  for (double e : errors) acc += std::abs(e);
  return acc / static_cast<double>(errors.size());
}

double scc(const Bitstream& a, const Bitstream& b) {
  if (a.length() != b.length() || a.length() == 0)
    throw std::invalid_argument("scc: length mismatch");
  const double n = static_cast<double>(a.length());
  const double pa = a.value();
  const double pb = b.value();
  // Fused AND-popcount: the joint stream is counted without materializing.
  const double pab = static_cast<double>(simd::and_popcount(
                         a.words().data(), b.words().data(),
                         a.word_count())) /
                     n;
  const double delta = pab - pa * pb;
  if (delta > 0) {
    const double denom = std::min(pa, pb) - pa * pb;
    return denom <= 0 ? 0.0 : delta / denom;
  }
  const double denom = pa * pb - std::max(pa + pb - 1.0, 0.0);
  return denom <= 0 ? 0.0 : delta / denom;
}

double pearson(const Bitstream& a, const Bitstream& b) {
  if (a.length() != b.length() || a.length() == 0)
    throw std::invalid_argument("pearson: length mismatch");
  const double n = static_cast<double>(a.length());
  const double pa = a.value();
  const double pb = b.value();
  const double pab = static_cast<double>(simd::and_popcount(
                         a.words().data(), b.words().data(),
                         a.word_count())) /
                     n;
  const double va = pa * (1.0 - pa);
  const double vb = pb * (1.0 - pb);
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return (pab - pa * pb) / std::sqrt(va * vb);
}

}  // namespace geo::sc
