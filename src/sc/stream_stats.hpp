// Stream statistics: error metrics and stochastic cross-correlation.
#pragma once

#include <span>

#include "sc/bitstream.hpp"

namespace geo::sc {

// Root-mean-square of a set of errors.
double rms(std::span<const double> errors);

// Mean absolute value of a set of errors.
double mean_abs(std::span<const double> errors);

// Stochastic cross-correlation (SCC, Alaghi & Hayes): 0 for independent
// streams, +1 for maximally overlapping, -1 for maximally disjoint given the
// marginals. Returns 0 when either stream is constant.
double scc(const Bitstream& a, const Bitstream& b);

// Pearson bit-level correlation of two streams (0 when either is constant).
double pearson(const Bitstream& a, const Bitstream& b);

}  // namespace geo::sc
