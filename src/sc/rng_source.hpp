// Random-number sources feeding stochastic number generators.
//
// GEO's central generation hypothesis (Sec. II-A) is that a *deterministic*
// source (maximal-length LFSR) with *shared* seeds produces a fixed,
// learnable error, while a true-random source produces irreducible variance.
// This header abstracts the source so SNGs, experiments, and the accuracy
// benches can swap LFSR / TRNG / counter / Sobol generation freely.
#pragma once

#include <cstdint>
#include <memory>
#include <random>

#include "sc/lfsr.hpp"

namespace geo::sc {

enum class RngKind { kLfsr, kTrng, kCounter, kSobol };

const char* to_string(RngKind kind) noexcept;

// Identifies one generator instance: an LFSR is fully determined by
// (bits, seed, tap mask); other sources use `seed` as their stream id.
struct SeedSpec {
  unsigned bits = 8;
  std::uint32_t seed = 1;
  std::uint32_t taps = 0;  // 0 = default polynomial for `bits`

  bool operator==(const SeedSpec&) const = default;
};

class RngSource {
 public:
  virtual ~RngSource() = default;

  // Next value in [0, 2^bits() - 1]. For LFSRs the all-zero value never
  // occurs (period 2^n - 1).
  virtual std::uint32_t next() = 0;

  virtual unsigned bits() const noexcept = 0;

  // Smallest value this source can emit. A maximal-length LFSR never
  // reaches the absorbing all-zero state, so its range is [1, 2^bits - 1];
  // every other source covers [0, 2^bits - 1]. Consumers that split the
  // range (e.g. sc::mux_add's select comparator) must derive thresholds
  // from this, not from 2^bits alone — assuming a full range over an
  // LFSR systematically biases the split.
  virtual std::uint32_t min_value() const noexcept { return 0; }

  // Restarts the sequence. Deterministic sources replay exactly; the TRNG
  // draws a fresh sequence (that is the point of a TRNG).
  virtual void reset() = 0;

  // Reinitializes this source exactly as constructing a fresh one from
  // `spec` would, so hot loops can reuse one heap object per thread instead
  // of allocating a source per stream (bit-identical to construct-fresh,
  // including the TRNG's epoch restart).
  virtual void reseed(const SeedSpec& spec) = 0;

  virtual bool deterministic() const noexcept = 0;

  virtual std::unique_ptr<RngSource> clone() const = 0;
};

// Maximal-length LFSR source (deterministic, repeatable).
class LfsrSource final : public RngSource {
 public:
  explicit LfsrSource(const SeedSpec& spec);

  std::uint32_t next() override { return lfsr_.next(); }
  unsigned bits() const noexcept override { return lfsr_.bits(); }
  std::uint32_t min_value() const noexcept override { return 1; }
  void reset() override { lfsr_.reset(); }
  void reseed(const SeedSpec& spec) override;
  bool deterministic() const noexcept override { return true; }
  std::unique_ptr<RngSource> clone() const override;

 private:
  SeedSpec spec_;
  Lfsr lfsr_;
};

// True-random source, modeled with mt19937 (the paper itself substitutes
// PyTorch's `rand` for a hardware TRNG). `reset()` advances to a fresh
// sequence so repeated runs see different randomness, as real TRNGs do.
class TrngSource final : public RngSource {
 public:
  explicit TrngSource(const SeedSpec& spec);

  std::uint32_t next() override;
  unsigned bits() const noexcept override { return bits_; }
  void reset() override;
  void reseed(const SeedSpec& spec) override;
  bool deterministic() const noexcept override { return false; }
  std::unique_ptr<RngSource> clone() const override;

 private:
  unsigned bits_;
  std::uint32_t epoch_;
  std::uint32_t id_;
  std::mt19937 gen_;
};

// Simple ramp counter 0,1,...,2^n-1 (deterministic unary generation; useful
// as a correlation-pathological reference in tests).
class CounterSource final : public RngSource {
 public:
  explicit CounterSource(const SeedSpec& spec);

  std::uint32_t next() override;
  unsigned bits() const noexcept override { return bits_; }
  void reset() override { state_ = start_; }
  void reseed(const SeedSpec& spec) override;
  bool deterministic() const noexcept override { return true; }
  std::unique_ptr<RngSource> clone() const override;

 private:
  unsigned bits_;
  std::uint32_t start_;
  std::uint32_t state_;
};

// Factory: builds a source of the given kind from a SeedSpec. For kSobol the
// spec's `seed` selects the Sobol dimension.
std::unique_ptr<RngSource> make_source(RngKind kind, const SeedSpec& spec);

}  // namespace geo::sc
