// Packed stochastic bitstream.
//
// A stochastic bitstream of length L represents the unipolar value
// popcount / L (or the bipolar value 2*popcount/L - 1). Bits are packed
// 64 per word, LSB-first within a word, so word-level AND/OR/XOR implement
// the corresponding stochastic arithmetic on whole streams at once.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace geo::sc {

class Bitstream {
 public:
  Bitstream() = default;

  // Creates a stream of `length` bits, all set to `fill`.
  explicit Bitstream(std::size_t length, bool fill = false);

  // Builds a stream from individual bits (bit i of the stream = bits[i]).
  static Bitstream from_bits(const std::vector<bool>& bits);

  // Builds a stream from a "01..." string; any character other than '1' is 0.
  static Bitstream from_string(const std::string& bits);

  std::size_t length() const noexcept { return length_; }
  bool empty() const noexcept { return length_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool v);

  // Inverts bit i (fault-injection hook).
  void flip(std::size_t i);

  // Number of ones in the whole stream.
  std::size_t popcount() const noexcept;

  // Number of ones among the first n bits (n <= length). Used for
  // progressive-generation error analysis.
  std::size_t popcount_prefix(std::size_t n) const;

  // Unipolar value in [0, 1]: popcount / length. Zero-length streams are 0.
  double value() const noexcept;

  // Bipolar value in [-1, 1]: 2 * value - 1.
  double bipolar_value() const noexcept;

  // In-place logic; operands must have equal length.
  Bitstream& operator&=(const Bitstream& rhs);
  Bitstream& operator|=(const Bitstream& rhs);
  Bitstream& operator^=(const Bitstream& rhs);

  // Complement within the stream length.
  Bitstream operator~() const;

  friend Bitstream operator&(Bitstream lhs, const Bitstream& rhs) {
    lhs &= rhs;
    return lhs;
  }
  friend Bitstream operator|(Bitstream lhs, const Bitstream& rhs) {
    lhs |= rhs;
    return lhs;
  }
  friend Bitstream operator^(Bitstream lhs, const Bitstream& rhs) {
    lhs ^= rhs;
    return lhs;
  }

  bool operator==(const Bitstream& rhs) const noexcept;
  bool operator!=(const Bitstream& rhs) const noexcept { return !(*this == rhs); }

  // Raw word access for hot loops (the high word is masked to the length).
  std::span<const std::uint64_t> words() const noexcept { return words_; }
  std::span<std::uint64_t> words() noexcept { return words_; }
  std::size_t word_count() const noexcept { return words_.size(); }

  // Renders the stream as a "01..." string, bit 0 first.
  std::string to_string() const;

 private:
  void mask_tail() noexcept;

  std::vector<std::uint64_t> words_;
  std::size_t length_ = 0;
};

}  // namespace geo::sc
