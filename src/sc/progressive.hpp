// Progressive stochastic stream generation (Sec. II-B, Fig. 3b).
//
// A normal SNG waits for all 8 value bits to be loaded into its buffer before
// generation starts. A progressive SNG starts as soon as the 2 MSBs are
// buffered (the rest of the buffer reads as 0) and the remaining bits arrive
// in groups of 2 every two cycles, until the loaded count matches the LFSR
// length. Because GEO matches LFSR length to stream length, short streams
// truncate the fixed-point value anyway, and progressive loading skips the
// truncated bits entirely — fewer memory accesses, 4x lower reload latency.
#pragma once

#include <cstdint>

#include "sc/bitstream.hpp"
#include "sc/rng_source.hpp"

namespace geo::sc {

// The bit-arrival schedule shared by the SC model and the architecture
// pipeline simulator.
struct ProgressiveSchedule {
  unsigned value_bits = 8;   // bits held in memory per value
  unsigned lfsr_bits = 8;    // generator width (= bits actually needed)
  unsigned group_bits = 2;   // bits loaded per beat
  unsigned beat_cycles = 2;  // cycles between beats after the first

  bool operator==(const ProgressiveSchedule&) const = default;

  // Bits that must be loaded in total (truncation: never more than the
  // LFSR needs).
  unsigned bits_to_load() const noexcept {
    return lfsr_bits < value_bits ? lfsr_bits : value_bits;
  }

  // Bits available at the start of cycle t (t = 0 is the first generation
  // cycle; the first group is already buffered then).
  unsigned loaded_bits(std::uint64_t t) const noexcept;

  // First cycle at which the value is fully loaded (generation exact from
  // here on, given a matched LFSR).
  std::uint64_t full_load_cycle() const noexcept;

  // Number of memory beats needed to deliver one value.
  unsigned beats() const noexcept {
    return (bits_to_load() + group_bits - 1) / group_bits;
  }

  // Beats a *normal* (non-progressive) SNG must wait before generation can
  // start: the full value, delivered over the same port.
  unsigned normal_start_beats() const noexcept {
    return (value_bits + group_bits - 1) / group_bits;
  }

  // Reload-latency advantage of progressive generation (the paper's 4x:
  // start after 1 beat instead of value_bits / group_bits beats).
  double reload_latency_gain() const noexcept {
    return static_cast<double>(normal_start_beats());
  }
};

// A stochastic number generator with progressive value loading. The
// comparator sees the value with only the currently loaded MSBs; unloaded
// low bits read as zero, so early output bits may under-fire — by at most
// one part in 2^loaded per cycle.
class ProgressiveSng {
 public:
  ProgressiveSng(RngKind kind, const SeedSpec& spec,
                 const ProgressiveSchedule& schedule);

  const ProgressiveSchedule& schedule() const noexcept { return schedule_; }

  // Starts generation of a new value (given at full value_bits precision).
  // Resets the RNG so deterministic sources replay.
  void begin(std::uint32_t value);

  // Reinitializes the underlying source exactly as constructing a fresh
  // ProgressiveSng from `spec` (same schedule) would — the allocation-free
  // reuse path for per-stream loops. The spec width must still match the
  // schedule's lfsr_bits.
  void reseed(const SeedSpec& spec);

  // Comparator value currently visible (truncated to lfsr_bits).
  std::uint32_t effective_value() const noexcept;

  unsigned loaded_bits() const noexcept {
    return schedule_.loaded_bits(cycle_);
  }

  // Emits one bit and advances both the RNG and the load schedule.
  bool tick();

  // Generates a full stream of `length` bits for `value`.
  Bitstream generate(std::uint32_t value, std::size_t length);

  // Reference: what a non-progressive SNG (same source, fully loaded value)
  // would generate. Identical to generate() from full_load_cycle() onward.
  Bitstream generate_normal(std::uint32_t value, std::size_t length);

 private:
  std::uint32_t truncated(unsigned loaded) const noexcept;

  ProgressiveSchedule schedule_;
  std::unique_ptr<RngSource> source_;
  std::uint32_t value_ = 0;  // full value_bits-wide value
  std::uint64_t cycle_ = 0;
};

}  // namespace geo::sc
