// Portable SIMD layer for the packed-bitstream hot paths.
//
// Every SC execution consumer — the machine's MAC inner loop, sc::ops,
// the parallel counters, and the correlation statistics — reduces to a
// handful of word-parallel kernels over packed 64-bit stream words:
// AND-popcount MAC reduction, OR/XOR/AND block ops, and fused
// OR-accumulate-of-products. This header is the one dispatch point for
// those kernels: an AVX2 backend (x86-64), a NEON backend (aarch64), and a
// scalar fallback that is the reference implementation everywhere else.
//
// Bit-exactness contract: every backend returns *identical* results for
// identical inputs — the kernels are pure integer bit arithmetic, so there
// is nothing to round. The simd test suite (ctest -L simd) asserts kernel
// parity across backends on adversarial sizes and that whole conv runs are
// byte-identical under every GEO_SIMD setting.
//
// Tail handling: kernels take an explicit word count `n` and process the
// trailing `n % lanes` words through the scalar reference path, so callers
// never pad. Stream tails beyond the logical bit length are kept zero by
// Bitstream::mask_tail(), which keeps popcount-style reductions exact.
//
// Knob (see docs/SIMD.md):
//   GEO_SIMD = auto|avx2|neon|scalar   backend selection (default auto).
//   Sampled once per process on first use (the resolved table pointer sits
//   on every hot path). A malformed value, or a backend the CPU cannot
//   execute, is reported once on stderr, recorded as a `config.invalid`
//   journal entry, and falls closed to the scalar backend.
#pragma once

#include <cstddef>
#include <cstdint>

namespace geo::sc::simd {

enum class Backend { kScalar, kAvx2, kNeon };

const char* to_string(Backend backend) noexcept;

// The best backend this CPU can execute (compile-time ISA + runtime CPUID).
Backend detect_best() noexcept;

// The active backend: GEO_SIMD resolved against detect_best(), cached after
// the first call; ScopedSimdBackend overrides it for tests.
Backend active() noexcept;

// ---- reductions ----------------------------------------------------------

// popcount(w[0..n)).
std::uint64_t popcount_words(const std::uint64_t* w, std::size_t n) noexcept;

// popcount(a & b) over n words — the unipolar multiply-count.
std::uint64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                           std::size_t n) noexcept;

// popcount(a | b) over n words (the APC stage's OR-merge count).
std::uint64_t or_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::size_t n) noexcept;

// The signed MAC reduction: popcount(a & wp) - popcount(a & wn) over n
// words, one pass over `a` (split-unipolar positive/negative weight pair).
std::int64_t mac_popcount(const std::uint64_t* a, const std::uint64_t* wp,
                          const std::uint64_t* wn, std::size_t n) noexcept;

// ---- block ops -----------------------------------------------------------

void and_into(std::uint64_t* dst, const std::uint64_t* src,
              std::size_t n) noexcept;
void or_into(std::uint64_t* dst, const std::uint64_t* src,
             std::size_t n) noexcept;
void xor_into(std::uint64_t* dst, const std::uint64_t* src,
              std::size_t n) noexcept;

// dst |= a & b over n words — the OR-accumulation of one product stream
// into its group accumulator, fused so the product is never materialized.
void or_and_into(std::uint64_t* dst, const std::uint64_t* a,
                 const std::uint64_t* b, std::size_t n) noexcept;

// ---- test hook -----------------------------------------------------------

// Forces a backend process-wide for the scope's lifetime (parity tests
// compare backends within one process). Requesting a backend the CPU cannot
// execute falls back to scalar, mirroring the env parse. Not thread-safe
// against concurrent kernel callers mid-swap; use from quiesced test code.
class ScopedSimdBackend {
 public:
  explicit ScopedSimdBackend(Backend backend);
  ~ScopedSimdBackend();
  ScopedSimdBackend(const ScopedSimdBackend&) = delete;
  ScopedSimdBackend& operator=(const ScopedSimdBackend&) = delete;

 private:
  Backend previous_;
};

}  // namespace geo::sc::simd
