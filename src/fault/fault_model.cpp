#include "fault/fault_model.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/env.hpp"
#include "sc/lfsr.hpp"
#include "telemetry/metrics.hpp"

namespace geo::fault {

namespace {

// Telemetry mirrors, hoisted once (registry lookups take a mutex).
struct FaultCounters {
  telemetry::Counter& stream;
  telemetry::Counter& accum;
  telemetry::Counter& seeds;
  telemetry::Counter& sram_corrupted;
  telemetry::Counter& sram_detected;
  telemetry::Counter& sram_corrected;
  telemetry::Counter& sram_silent;
  telemetry::Counter& sram_retry;
  telemetry::Counter& stuck;
  telemetry::Counter& io_rot;
  telemetry::Counter& io_short_read;
  telemetry::Counter& io_short_write;
  telemetry::Counter& io_err;
};

FaultCounters& counters() {
  auto& m = telemetry::MetricsRegistry::instance();
  static FaultCounters c{m.counter("fault.stream_bits_flipped"),
                         m.counter("fault.accum_bits_flipped"),
                         m.counter("fault.seed_upsets"),
                         m.counter("fault.sram_words_corrupted"),
                         m.counter("fault.sram_errors_detected"),
                         m.counter("fault.sram_errors_corrected"),
                         m.counter("fault.sram_silent_corruptions"),
                         m.counter("fault.sram_retry_cycles"),
                         m.counter("fault.stuck_column_events"),
                         m.counter("fault.io_blocks_rotted"),
                         m.counter("fault.io_short_reads"),
                         m.counter("fault.io_short_writes"),
                         m.counter("fault.io_errors")};
  return c;
}

bool parse_double(std::string_view tok, double& out) {
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc() && ptr == tok.data() + tok.size();
}

bool parse_u64(std::string_view tok, std::uint64_t& out) {
  const std::optional<std::uint64_t> parsed = core::parse_uint(tok);
  if (!parsed.has_value()) return false;
  out = *parsed;
  return true;
}

}  // namespace

const char* to_string(EccMode mode) noexcept {
  switch (mode) {
    case EccMode::kNone: return "none";
    case EccMode::kParity: return "parity";
    case EccMode::kSecded: return "secded";
  }
  return "?";
}

bool FaultConfig::any() const noexcept {
  return stream_flip_rate > 0.0 || accum_flip_rate > 0.0 ||
         seed_upset_rate > 0.0 || sram_error_rate > 0.0 || stuck.enabled() ||
         io_rot_rate > 0.0 || io_short_read_rate > 0.0 ||
         io_short_write_rate > 0.0 || io_error_rate > 0.0;
}

geo::StatusOr<FaultConfig> FaultConfig::parse(std::string_view spec) {
  FaultConfig cfg;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      return geo::Status::invalid_argument(
          "GEO_FAULTS: '" + std::string(item) + "' is not key=value");
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    auto rate = [&](double& field) -> geo::Status {
      double r = 0.0;
      if (!parse_double(val, r) || r < 0.0 || r > 1.0)
        return geo::Status::out_of_range(
            "GEO_FAULTS: " + std::string(key) + "='" + std::string(val) +
            "' must be a rate in [0,1]");
      field = r;
      return geo::Status();
    };
    if (key == "stream") {
      if (auto s = rate(cfg.stream_flip_rate); !s.ok()) return s;
    } else if (key == "accum") {
      if (auto s = rate(cfg.accum_flip_rate); !s.ok()) return s;
    } else if (key == "seed") {
      if (auto s = rate(cfg.seed_upset_rate); !s.ok()) return s;
    } else if (key == "sram") {
      if (auto s = rate(cfg.sram_error_rate); !s.ok()) return s;
    } else if (key == "io_rot") {
      if (auto s = rate(cfg.io_rot_rate); !s.ok()) return s;
    } else if (key == "io_short_read") {
      if (auto s = rate(cfg.io_short_read_rate); !s.ok()) return s;
    } else if (key == "io_short_write") {
      if (auto s = rate(cfg.io_short_write_rate); !s.ok()) return s;
    } else if (key == "io_err") {
      if (auto s = rate(cfg.io_error_rate); !s.ok()) return s;
    } else if (key == "burst") {
      std::uint64_t b = 0;
      if (!parse_u64(val, b) || b < 1 || b > 32)
        return geo::Status::out_of_range(
            "GEO_FAULTS: burst='" + std::string(val) +
            "' must be an integer in [1,32]");
      cfg.sram_burst = static_cast<int>(b);
    } else if (key == "ecc") {
      if (val == "none")
        cfg.ecc = EccMode::kNone;
      else if (val == "parity")
        cfg.ecc = EccMode::kParity;
      else if (val == "secded")
        cfg.ecc = EccMode::kSecded;
      else
        return geo::Status::invalid_argument(
            "GEO_FAULTS: ecc='" + std::string(val) +
            "' (want none|parity|secded)");
    } else if (key == "stuck") {
      const std::size_t colon = val.find(':');
      const std::string_view col = val.substr(0, colon);
      std::uint64_t c = 0;
      if (!parse_u64(col, c) || c > 31)
        return geo::Status::out_of_range(
            "GEO_FAULTS: stuck='" + std::string(val) +
            "' must be <col>[:<0|1>] with col in [0,31]");
      cfg.stuck.column = static_cast<int>(c);
      cfg.stuck.value = false;
      if (colon != std::string_view::npos) {
        const std::string_view v = val.substr(colon + 1);
        if (v == "1")
          cfg.stuck.value = true;
        else if (v != "0")
          return geo::Status::invalid_argument(
              "GEO_FAULTS: stuck value '" + std::string(v) + "' (want 0|1)");
      }
    } else if (key == "rng") {
      std::uint64_t r = 0;
      if (!parse_u64(val, r))
        return geo::Status::invalid_argument(
            "GEO_FAULTS: rng='" + std::string(val) + "' is not a uint64");
      cfg.rng_seed = r;
    } else if (key == "transient") {
      if (val == "1")
        cfg.transient = true;
      else if (val == "0")
        cfg.transient = false;
      else
        return geo::Status::invalid_argument(
            "GEO_FAULTS: transient='" + std::string(val) + "' (want 0|1)");
    } else {
      return geo::Status::invalid_argument(
          "GEO_FAULTS: unknown key '" + std::string(key) +
          "' (want stream|accum|seed|sram|io_rot|io_short_read|"
          "io_short_write|io_err|burst|ecc|stuck|rng|transient)");
    }
  }
  return cfg;
}

std::optional<FaultConfig> FaultConfig::from_env() {
  const char* v = std::getenv("GEO_FAULTS");
  if (v == nullptr || v[0] == '\0') return std::nullopt;
  auto parsed = parse(v);
  if (!parsed.ok()) {
    std::fprintf(stderr, "[geo] fault injection disabled: %s\n",
                 parsed.status().to_string().c_str());
    return std::nullopt;
  }
  return *parsed;
}

std::string FaultConfig::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "stream=%g,accum=%g,seed=%g,sram=%g,burst=%d,ecc=%s",
                stream_flip_rate, accum_flip_rate, seed_upset_rate,
                sram_error_rate, sram_burst, fault::to_string(ecc));
  std::string out = buf;
  auto append_rate = [&](const char* key, double r) {
    if (r <= 0.0) return;
    std::snprintf(buf, sizeof(buf), ",%s=%g", key, r);
    out += buf;
  };
  append_rate("io_rot", io_rot_rate);
  append_rate("io_short_read", io_short_read_rate);
  append_rate("io_short_write", io_short_write_rate);
  append_rate("io_err", io_error_rate);
  if (transient) out += ",transient=1";
  if (stuck.enabled()) {
    std::snprintf(buf, sizeof(buf), ",stuck=%d:%d", stuck.column,
                  stuck.value ? 1 : 0);
    out += buf;
  }
  return out;
}

// ---------------------------------------------------------------- FaultModel

// Splitmix64 stream; the initial state is the per-site key, so the sequence
// is a pure function of (model seed, domain, site).
struct FaultModel::SiteRng {
  std::uint64_t state;

  std::uint64_t next() noexcept { return core::mix64(state += 1); }
  double uniform() noexcept {  // [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

FaultModel::FaultModel(const FaultConfig& cfg) : cfg_(cfg) {
  if (cfg_.rng_seed == 0)
    cfg_.rng_seed = core::seed_or(0x6A09E667F3BCC909ull, "fault.model");
  if (cfg_.sram_burst < 1) cfg_.sram_burst = 1;
}

std::uint64_t FaultModel::TransientSeq::take(std::uint64_t key) {
  Shard& shard = shards[key % kShards];
  const std::lock_guard<std::mutex> lock(shard.mu);
  return shard.next[key]++;
}

std::uint64_t FaultModel::site_key(Site domain,
                                   std::uint64_t site) const noexcept {
  return core::mix64(cfg_.rng_seed ^ core::mix64(site) ^
                     (static_cast<std::uint64_t>(domain) << 56));
}

FaultModel::SiteRng FaultModel::rng_for(Site domain,
                                        std::uint64_t site) const {
  std::uint64_t key = site_key(domain, site);
  // Transient model: every access re-rolls, keyed by this model's per-site
  // access sequence. A pass that touches each site once is therefore
  // independent of access order (every site draws sequence 0), which is what
  // lets the parallel tile runner keep transient runs deterministic; retries
  // advance the touched sites' sequences and re-roll.
  if (cfg_.transient)
    key = core::mix64(key + 0x9E3779B97F4A7C15ull *
                                (transient_seq_.take(key) + 1));
  return SiteRng{key};
}

FaultModel::SiteRng FaultModel::rng_for_access(Site domain,
                                               std::uint64_t site) const {
  std::uint64_t key = site_key(domain, site);
  key = core::mix64(key + 0x9E3779B97F4A7C15ull *
                              (transient_seq_.take(key) + 1));
  return SiteRng{key};
}

int FaultModel::flip_bits(std::uint64_t* words, std::size_t length,
                          double rate, SiteRng& rng) {
  if (rate <= 0.0 || length == 0) return 0;
  int flipped = 0;
  if (rate >= 1.0) {
    for (std::size_t i = 0; i < length; ++i) words[i >> 6] ^= 1ull << (i & 63);
    return static_cast<int>(length);
  }
  // Geometric skip sampling: the gap to the next flipped bit is
  // floor(log(1-u) / log(1-rate)).
  const double denom = std::log1p(-rate);
  std::size_t idx = 0;
  while (true) {
    const double u = rng.uniform();
    const double skip = std::floor(std::log1p(-u) / denom);
    if (skip >= static_cast<double>(length)) break;  // also guards overflow
    idx += static_cast<std::size_t>(skip);
    if (idx >= length) break;
    words[idx >> 6] ^= 1ull << (idx & 63);
    ++flipped;
    ++idx;
  }
  return flipped;
}

int FaultModel::corrupt_stream(std::uint64_t* words, std::size_t length,
                               Site domain, std::uint64_t site) {
  if (cfg_.stream_flip_rate <= 0.0) return 0;
  SiteRng rng = rng_for(domain, site);
  const int n = flip_bits(words, length, cfg_.stream_flip_rate, rng);
  if (n > 0) {
    stream_flips_.fetch_add(n, std::memory_order_relaxed);
    counters().stream.add(n);
  }
  return n;
}

int FaultModel::corrupt_stream(sc::Bitstream& stream, Site domain,
                               std::uint64_t site) {
  return corrupt_stream(stream.words().data(), stream.length(), domain, site);
}

int FaultModel::corrupt_accum_input(std::uint64_t* words, std::size_t length,
                                    std::uint64_t site) {
  if (cfg_.accum_flip_rate <= 0.0) return 0;
  SiteRng rng = rng_for(Site::kAccumInput, site);
  const int n = flip_bits(words, length, cfg_.accum_flip_rate, rng);
  if (n > 0) {
    accum_flips_.fetch_add(n, std::memory_order_relaxed);
    counters().accum.add(n);
  }
  return n;
}

sc::SeedSpec FaultModel::corrupt_seed(const sc::SeedSpec& spec,
                                      std::uint64_t site) {
  if (cfg_.seed_upset_rate <= 0.0) return spec;
  SiteRng rng = rng_for(Site::kSeed, site);
  if (rng.uniform() >= cfg_.seed_upset_rate) return spec;
  seed_upsets_.fetch_add(1, std::memory_order_relaxed);
  counters().seeds.add(1);
  sc::SeedSpec out = spec;
  const std::uint32_t r = static_cast<std::uint32_t>(rng.next());
  const unsigned bits = spec.bits;
  // One in four upsets hits the polynomial configuration instead of the seed
  // register (the Lee et al. generator-defect class): a tap bit below the
  // MSB flips, turning the maximal-length polynomial into a short-cycle one
  // while keeping the mask legal for the LFSR.
  if ((r & 3u) == 0 && bits >= sc::Lfsr::kMinBits &&
      bits <= sc::Lfsr::kMaxBits && bits >= 3) {
    const std::uint32_t base =
        out.taps != 0 ? out.taps : sc::Lfsr::default_taps(bits);
    out.taps = base ^ (1u << ((r >> 2) % (bits - 1)));
  } else {
    out.seed = spec.seed ^ (1u << (r % std::max(bits, 1u)));
  }
  return out;
}

std::uint32_t FaultModel::sram_flip_mask(unsigned bits, SiteRng& rng) const {
  std::uint32_t flips = 0;
  for (unsigned b = 0; b < bits; ++b) {
    if (rng.uniform() >= cfg_.sram_error_rate) continue;
    for (int k = 0; k < cfg_.sram_burst && b + static_cast<unsigned>(k) < bits;
         ++k)
      flips |= 1u << (b + static_cast<unsigned>(k));
  }
  return flips;
}

std::uint32_t FaultModel::sram_read(std::uint32_t word, unsigned bits,
                                    Site domain, std::uint64_t site) {
  if (cfg_.sram_error_rate <= 0.0 || bits == 0) return word;
  SiteRng rng = rng_for(domain, site);
  const std::uint32_t flips = sram_flip_mask(bits, rng);
  if (flips == 0) return word;
  sram_corrupted_.fetch_add(1, std::memory_order_relaxed);
  counters().sram_corrupted.add(1);
  const int weight = std::popcount(flips);
  switch (cfg_.ecc) {
    case EccMode::kNone:
      sram_silent_.fetch_add(1, std::memory_order_relaxed);
      counters().sram_silent.add(1);
      return word ^ flips;
    case EccMode::kParity:
      if (weight % 2 == 1) {
        // Detected: the word is invalidated (detect-and-zero).
        sram_detected_.fetch_add(1, std::memory_order_relaxed);
        counters().sram_detected.add(1);
        return 0;
      }
      sram_silent_.fetch_add(1, std::memory_order_relaxed);
      counters().sram_silent.add(1);
      return word ^ flips;
    case EccMode::kSecded:
      // Detected either way; the retry (re-read through the correction path)
      // costs two memory cycles, charged to the caller's stall ledger.
      sram_retry_cycles_.fetch_add(2, std::memory_order_relaxed);
      counters().sram_retry.add(2);
      if (weight == 1) {
        sram_corrected_.fetch_add(1, std::memory_order_relaxed);
        counters().sram_corrected.add(1);
        return word;  // corrected
      }
      sram_detected_.fetch_add(1, std::memory_order_relaxed);
      counters().sram_detected.add(1);
      return 0;  // uncorrectable: detect-and-zero
  }
  return word;
}

int FaultModel::sram_defect_ecc_delta(unsigned bits, Site domain,
                                      std::uint64_t site) const {
  if (cfg_.transient || cfg_.sram_error_rate <= 0.0 || bits == 0) return 0;
  SiteRng rng = rng_for(domain, site);  // defect mode: no sequence taken
  const std::uint32_t flips = sram_flip_mask(bits, rng);
  if (flips == 0) return 0;
  const int weight = std::popcount(flips);
  switch (cfg_.ecc) {
    case EccMode::kNone:
      return 0;  // silent
    case EccMode::kParity:
      return weight % 2 == 1 ? 1 : 0;  // detect-and-zero; even slips through
    case EccMode::kSecded:
      return weight == 1 ? -1 : 1;  // corrected subtracts; multi-bit zeroes
  }
  return 0;
}

int FaultModel::corrupt_block(unsigned char* bytes, std::size_t length,
                              std::uint64_t site) {
  if (cfg_.io_rot_rate <= 0.0 || length == 0) return 0;
  SiteRng rng = rng_for(Site::kStoreBlock, site);
  if (rng.uniform() >= cfg_.io_rot_rate) return 0;
  // 1..4 bit flips at rng-chosen positions: enough to defeat any per-block
  // CRC, deterministic per (model seed, site) under the defect model.
  const int flips = 1 + static_cast<int>(rng.next() % 4);
  for (int i = 0; i < flips; ++i) {
    const std::uint64_t bit = rng.next() % (length * 8);
    bytes[bit >> 3] ^= static_cast<unsigned char>(1u << (bit & 7));
  }
  io_rotted_.fetch_add(1, std::memory_order_relaxed);
  counters().io_rot.add(1);
  return flips;
}

std::size_t FaultModel::short_read(std::size_t want, std::uint64_t site) {
  if (cfg_.io_short_read_rate <= 0.0 || want == 0) return want;
  SiteRng rng = rng_for_access(Site::kStoreBlock, site);
  if (rng.uniform() >= cfg_.io_short_read_rate) return want;
  io_short_reads_.fetch_add(1, std::memory_order_relaxed);
  counters().io_short_read.add(1);
  return static_cast<std::size_t>(rng.next() % want);
}

std::size_t FaultModel::short_write(std::size_t want, std::uint64_t site) {
  if (cfg_.io_short_write_rate <= 0.0 || want == 0) return want;
  SiteRng rng = rng_for_access(Site::kStoreBlock, site);
  if (rng.uniform() >= cfg_.io_short_write_rate) return want;
  io_short_writes_.fetch_add(1, std::memory_order_relaxed);
  counters().io_short_write.add(1);
  return static_cast<std::size_t>(rng.next() % want);
}

bool FaultModel::io_error(std::uint64_t site) {
  if (cfg_.io_error_rate <= 0.0) return false;
  SiteRng rng = rng_for_access(Site::kStoreBlock, site);
  if (rng.uniform() >= cfg_.io_error_rate) return false;
  io_errors_.fetch_add(1, std::memory_order_relaxed);
  counters().io_err.add(1);
  return true;
}

std::uint32_t FaultModel::apply_stuck(std::uint32_t count) {
  if (!cfg_.stuck.enabled()) return count;
  const std::uint32_t bit = 1u << cfg_.stuck.column;
  const std::uint32_t forced =
      cfg_.stuck.value ? (count | bit) : (count & ~bit);
  if (forced != count) {
    stuck_events_.fetch_add(1, std::memory_order_relaxed);
    counters().stuck.add(1);
  }
  return forced;
}

FaultStats FaultModel::stats() const {
  FaultStats s;
  s.stream_bits_flipped = stream_flips_.load(std::memory_order_relaxed);
  s.accum_bits_flipped = accum_flips_.load(std::memory_order_relaxed);
  s.seed_upsets = seed_upsets_.load(std::memory_order_relaxed);
  s.sram_words_corrupted = sram_corrupted_.load(std::memory_order_relaxed);
  s.sram_errors_detected = sram_detected_.load(std::memory_order_relaxed);
  s.sram_errors_corrected = sram_corrected_.load(std::memory_order_relaxed);
  s.sram_silent_corruptions = sram_silent_.load(std::memory_order_relaxed);
  s.sram_retry_cycles = sram_retry_cycles_.load(std::memory_order_relaxed);
  s.stuck_column_events = stuck_events_.load(std::memory_order_relaxed);
  s.io_blocks_rotted = io_rotted_.load(std::memory_order_relaxed);
  s.io_short_reads = io_short_reads_.load(std::memory_order_relaxed);
  s.io_short_writes = io_short_writes_.load(std::memory_order_relaxed);
  s.io_errors = io_errors_.load(std::memory_order_relaxed);
  return s;
}

void FaultModel::reset_stats() {
  stream_flips_.store(0, std::memory_order_relaxed);
  accum_flips_.store(0, std::memory_order_relaxed);
  seed_upsets_.store(0, std::memory_order_relaxed);
  sram_corrupted_.store(0, std::memory_order_relaxed);
  sram_detected_.store(0, std::memory_order_relaxed);
  sram_corrected_.store(0, std::memory_order_relaxed);
  sram_silent_.store(0, std::memory_order_relaxed);
  sram_retry_cycles_.store(0, std::memory_order_relaxed);
  stuck_events_.store(0, std::memory_order_relaxed);
  io_rotted_.store(0, std::memory_order_relaxed);
  io_short_reads_.store(0, std::memory_order_relaxed);
  io_short_writes_.store(0, std::memory_order_relaxed);
  io_errors_.store(0, std::memory_order_relaxed);
}

// ------------------------------------------------------------ active model

namespace {

// Per-thread scoped override. The sentinel distinguishes "no override" from
// "ScopedFaultInjection(nullptr) disabled faults in this scope". Thread-local
// so concurrent sweep points can each install their own model; workers that
// should see a submitting thread's scope get it propagated explicitly via
// ScopedFaultOverride (exec::ThreadPool does this for every parallel_for).
// Stored as a uintptr_t so the slot is constant-initialized (no per-thread
// dynamic TLS init).
constexpr std::uintptr_t kNoOverride = ~static_cast<std::uintptr_t>(0);
thread_local std::uintptr_t t_override = kNoOverride;

std::uintptr_t encode(FaultModel* m) noexcept {
  return reinterpret_cast<std::uintptr_t>(m);
}

FaultModel* env_model() {
  static FaultModel* model = []() -> FaultModel* {
    const std::optional<FaultConfig> cfg = FaultConfig::from_env();
    if (!cfg.has_value() || !cfg->any()) return nullptr;
    return new FaultModel(*cfg);  // lives for the process
  }();
  return model;
}

}  // namespace

FaultModel* active() noexcept {
  const std::uintptr_t scoped = t_override;
  if (scoped != kNoOverride) return reinterpret_cast<FaultModel*>(scoped);
  return env_model();
}

ScopedFaultInjection::ScopedFaultInjection(const FaultConfig& cfg)
    : model_(std::make_unique<FaultModel>(cfg)), prev_(t_override) {
  t_override = encode(model_.get());
}

ScopedFaultInjection::ScopedFaultInjection(std::nullptr_t)
    : model_(nullptr), prev_(t_override) {
  t_override = encode(nullptr);
}

ScopedFaultInjection::~ScopedFaultInjection() { t_override = prev_; }

ScopedFaultOverride::ScopedFaultOverride(FaultModel* model) noexcept
    : prev_(t_override) {
  t_override = encode(model);
}

ScopedFaultOverride::~ScopedFaultOverride() { t_override = prev_; }

}  // namespace geo::fault
