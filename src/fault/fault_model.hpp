// Fault-injection subsystem.
//
// A seeded, deterministic FaultModel that corrupts the stack at the points
// real GEO silicon can fail (see docs/FAULT_INJECTION.md):
//
//   stream  per-bit flip probability applied to SC bitstreams at generation
//   accum   per-bit flip probability at the OR-tree / parallel-counter inputs
//   seed    LFSR seed / characteristic-polynomial upsets in the SNG banks
//   sram    single- and multi-bit errors on activation/weight memory reads,
//           with an optional ECC model (parity detect-and-zero, SECDED-style
//           correct-single/zero-multi with a retry-cycle cost)
//   stuck   a stuck-at fault on one parallel-counter output column
//
// Determinism: every injection site is keyed by a (domain, site) pair hashed
// with the model seed, so runs are reproducible, independent of call order,
// and a given hardware slot (SNG buffer, SRAM word, counter column) misbehaves
// the same way every time it is exercised — the defect model, not the
// cosmic-ray model.
//
// Activation: `fault::active()` returns the installed model or nullptr. With
// `GEO_FAULTS` unset and no ScopedFaultInjection alive it is nullptr and
// every hook reduces to one pointer load — the default path is bit-identical
// to a build without this subsystem. `GEO_FAULTS=<spec>` installs a
// process-wide model (spec format in FaultConfig::parse).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "core/status.hpp"
#include "sc/bitstream.hpp"
#include "sc/rng_source.hpp"

namespace geo::fault {

enum class EccMode {
  kNone,    // raw corrupted word reaches the datapath
  kParity,  // odd-weight errors detected and zeroed; even-weight slip through
  kSecded,  // single-bit corrected via a 2-cycle retry; multi-bit zeroed
};

const char* to_string(EccMode mode) noexcept;

// Stuck-at fault on one parallel-counter output column.
struct StuckAtSpec {
  int column = -1;  // output bit index; -1 disables
  bool value = false;

  bool enabled() const noexcept { return column >= 0; }
};

struct FaultConfig {
  double stream_flip_rate = 0.0;  // per generated stream bit
  double accum_flip_rate = 0.0;   // per accumulation-input bit
  double seed_upset_rate = 0.0;   // per SNG (seed or polynomial upset)
  double sram_error_rate = 0.0;   // per stored bit per read
  int sram_burst = 1;             // adjacent bits flipped per SRAM event
  EccMode ecc = EccMode::kNone;
  StuckAtSpec stuck;
  std::uint64_t rng_seed = 0;     // 0 = derive from GEO_SEED / default
  // Defect model (default, false): every injection site misbehaves the same
  // way on every access — re-reading a corrupted slot reproduces the same
  // corruption, so a retry can never out-wait a fault. Transient model
  // (true): each access re-rolls its fault draw (cosmic-ray style), which is
  // what makes the resilience layer's detect-and-retry loop able to recover.
  // Transient draws are keyed by a per-model access counter, so runs stay
  // reproducible as long as the access order is (single-threaded sweeps),
  // but the PR-2 "independent of call order" guarantee applies only to the
  // defect model.
  bool transient = false;

  // True if any injection is configured (an all-zero config is inert and is
  // treated like "no model installed").
  bool any() const noexcept;

  // Parses a comma-separated spec, e.g.
  //   "stream=1e-3,accum=5e-4,seed=0.01,sram=1e-4,burst=2,ecc=secded,
  //    stuck=3:1,rng=42"
  // Keys: stream|accum|seed|sram (rates in [0,1]), burst (int >= 1),
  // ecc (none|parity|secded), stuck (<col>[:<0|1>], col in [0,31]),
  // rng (uint64), transient (0|1). Unknown keys and out-of-range values are
  // rejected with a diagnostic.
  static geo::StatusOr<FaultConfig> parse(std::string_view spec);

  // GEO_FAULTS, parsed fresh on each call. Unset/empty -> nullopt; a
  // malformed spec warns once per call on stderr and returns nullopt (faults
  // off), never aborts the host program.
  static std::optional<FaultConfig> from_env();

  std::string to_string() const;
};

// Injection/detection/correction ledger (mirrored into the telemetry
// registry under the fault.* counters).
struct FaultStats {
  std::int64_t stream_bits_flipped = 0;
  std::int64_t accum_bits_flipped = 0;
  std::int64_t seed_upsets = 0;
  std::int64_t sram_words_corrupted = 0;
  std::int64_t sram_errors_detected = 0;
  std::int64_t sram_errors_corrected = 0;
  std::int64_t sram_silent_corruptions = 0;
  std::int64_t sram_retry_cycles = 0;
  std::int64_t stuck_column_events = 0;
};

class FaultModel {
 public:
  // Injection-site domains: the same site index means different hardware in
  // different domains, so each gets an independent fault pattern.
  enum class Site : std::uint64_t {
    kWeightStream = 1,
    kActStream,
    kAccumInput,
    kWeightSram,
    kActSram,
    kSeed,
    kGeneric,
    // Partial-sum words in activation SRAM, read back through the
    // near-memory read-add-write path (the resilience layer's CRC/range
    // guards watch this domain). Appended so the existing domains keep
    // their PR-2 hash keys.
    kPsumSram,
  };

  explicit FaultModel(const FaultConfig& cfg);

  const FaultConfig& config() const noexcept { return cfg_; }

  // --- stream-generation faults -------------------------------------------
  // Flips bits of a packed `length`-bit stream in place at the configured
  // stream rate. Returns the number of bits flipped.
  int corrupt_stream(std::uint64_t* words, std::size_t length, Site domain,
                     std::uint64_t site);
  int corrupt_stream(sc::Bitstream& stream, Site domain, std::uint64_t site);

  // Same, at the accumulation-input rate (OR tree / parallel-counter inputs).
  int corrupt_accum_input(std::uint64_t* words, std::size_t length,
                          std::uint64_t site);
  bool accum_active() const noexcept { return cfg_.accum_flip_rate > 0.0; }

  // --- generator faults ----------------------------------------------------
  // Possibly upsets the SNG's seed (bit flip) or its LFSR characteristic
  // polynomial (tap flip away from the maximal-length mask, keeping the mask
  // legal). Deterministic per site.
  sc::SeedSpec corrupt_seed(const sc::SeedSpec& spec, std::uint64_t site);

  // --- memory faults -------------------------------------------------------
  // Models reading a `bits`-wide word from SRAM: injects bit errors at the
  // configured rate (bursts of `sram_burst` adjacent bits) and applies the
  // ECC policy. May return the corrupted word (kNone / parity-even), the
  // original word (kSecded corrected, charging retry cycles), or zero
  // (detect-and-zero).
  std::uint32_t sram_read(std::uint32_t word, unsigned bits, Site domain,
                          std::uint64_t site);
  bool sram_active() const noexcept { return cfg_.sram_error_rate > 0.0; }

  // --- parallel-counter faults --------------------------------------------
  // Forces the stuck-at column on one parallel-counter output count.
  std::uint32_t apply_stuck(std::uint32_t count);
  bool stuck_enabled() const noexcept { return cfg_.stuck.enabled(); }

  FaultStats stats() const;
  void reset_stats();

 private:
  struct SiteRng;  // splitmix64 stream keyed by (model seed, domain, site)

  SiteRng rng_for(Site domain, std::uint64_t site) const;
  int flip_bits(std::uint64_t* words, std::size_t length, double rate,
                SiteRng& rng);

  FaultConfig cfg_;

  std::atomic<std::int64_t> stream_flips_{0};
  std::atomic<std::int64_t> accum_flips_{0};
  std::atomic<std::int64_t> seed_upsets_{0};
  std::atomic<std::int64_t> sram_corrupted_{0};
  std::atomic<std::int64_t> sram_detected_{0};
  std::atomic<std::int64_t> sram_corrected_{0};
  std::atomic<std::int64_t> sram_silent_{0};
  std::atomic<std::int64_t> sram_retry_cycles_{0};
  std::atomic<std::int64_t> stuck_events_{0};
  // Access sequence for the transient model (unused in defect mode).
  mutable std::atomic<std::uint64_t> transient_draws_{0};
};

// The process-wide active model: a ScopedFaultInjection if one is alive,
// else the GEO_FAULTS-configured model, else nullptr. The nullptr path costs
// one relaxed atomic load (plus a one-time env parse on first call).
FaultModel* active() noexcept;

// RAII installer. Overrides GEO_FAULTS (and any outer scope) for its
// lifetime; `ScopedFaultInjection(nullptr)` disables injection in scope —
// used to compute clean references inside fault sweeps. Not thread-safe:
// install from one thread at a time.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& cfg);
  explicit ScopedFaultInjection(std::nullptr_t);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  // Valid only for the config-constructed form.
  FaultModel& model() { return *model_; }

 private:
  std::unique_ptr<FaultModel> model_;
  FaultModel* prev_;
};

}  // namespace geo::fault
