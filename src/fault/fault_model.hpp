// Fault-injection subsystem.
//
// A seeded, deterministic FaultModel that corrupts the stack at the points
// real GEO silicon can fail (see docs/FAULT_INJECTION.md):
//
//   stream  per-bit flip probability applied to SC bitstreams at generation
//   accum   per-bit flip probability at the OR-tree / parallel-counter inputs
//   seed    LFSR seed / characteristic-polynomial upsets in the SNG banks
//   sram    single- and multi-bit errors on activation/weight memory reads,
//           with an optional ECC model (parity detect-and-zero, SECDED-style
//           correct-single/zero-multi with a retry-cycle cost)
//   stuck   a stuck-at fault on one parallel-counter output column
//
// Determinism: every injection site is keyed by a (domain, site) pair hashed
// with the model seed, so runs are reproducible, independent of call order,
// and a given hardware slot (SNG buffer, SRAM word, counter column) misbehaves
// the same way every time it is exercised — the defect model, not the
// cosmic-ray model.
//
// Activation: `fault::active()` returns the installed model or nullptr. With
// `GEO_FAULTS` unset and no ScopedFaultInjection alive it is nullptr and
// every hook reduces to one pointer load — the default path is bit-identical
// to a build without this subsystem. `GEO_FAULTS=<spec>` installs a
// process-wide model (spec format in FaultConfig::parse).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "core/status.hpp"
#include "sc/bitstream.hpp"
#include "sc/rng_source.hpp"

namespace geo::fault {

enum class EccMode {
  kNone,    // raw corrupted word reaches the datapath
  kParity,  // odd-weight errors detected and zeroed; even-weight slip through
  kSecded,  // single-bit corrected via a 2-cycle retry; multi-bit zeroed
};

const char* to_string(EccMode mode) noexcept;

// Stuck-at fault on one parallel-counter output column.
struct StuckAtSpec {
  int column = -1;  // output bit index; -1 disables
  bool value = false;

  bool enabled() const noexcept { return column >= 0; }
};

struct FaultConfig {
  double stream_flip_rate = 0.0;  // per generated stream bit
  double accum_flip_rate = 0.0;   // per accumulation-input bit
  double seed_upset_rate = 0.0;   // per SNG (seed or polynomial upset)
  double sram_error_rate = 0.0;   // per stored bit per read
  int sram_burst = 1;             // adjacent bits flipped per SRAM event
  EccMode ecc = EccMode::kNone;
  StuckAtSpec stuck;
  // Disk-I/O faults on the out-of-core store's block path (src/store/):
  //   io_rot          per-block-read probability of bit-rot in the returned
  //                   buffer (caught by the per-block CRC). Honors the
  //                   defect/transient flag: a defect-model rotted block rots
  //                   identically on every re-read, so the store's reread
  //                   rung can never out-wait it and the ladder drains to
  //                   quarantine/rebuild/fallback.
  //   io_short_read   per-read probability the read returns fewer bytes than
  //                   asked (always re-rolled per access — a partial read(2)
  //                   is transient by nature, so bounded rereads recover).
  //   io_short_write  per-write probability the block-file image lands torn
  //                   (truncated) on disk; silent at write time, caught by
  //                   the size/CRC checks on the next read.
  //   io_err          per-open/read probability of a transient errno
  //                   (EIO-style; always re-rolled per access).
  double io_rot_rate = 0.0;
  double io_short_read_rate = 0.0;
  double io_short_write_rate = 0.0;
  double io_error_rate = 0.0;
  std::uint64_t rng_seed = 0;     // 0 = derive from GEO_SEED / default
  // Defect model (default, false): every injection site misbehaves the same
  // way on every access — re-reading a corrupted slot reproduces the same
  // corruption, so a retry can never out-wait a fault. Transient model
  // (true): each access re-rolls its fault draw (cosmic-ray style), which is
  // what makes the resilience layer's detect-and-retry loop able to recover.
  // Transient draws are keyed by a per-*site* access sequence (this model's
  // Nth read of a given site), so any pass that touches each site once is
  // independent of access order — exec::ParallelConvRunner can fan tiles out
  // under the transient model too. Across retries the sequence advances per
  // site, so runs stay reproducible whenever the retry schedule is.
  bool transient = false;

  // True if any injection is configured (an all-zero config is inert and is
  // treated like "no model installed").
  bool any() const noexcept;

  // Parses a comma-separated spec, e.g.
  //   "stream=1e-3,accum=5e-4,seed=0.01,sram=1e-4,burst=2,ecc=secded,
  //    stuck=3:1,rng=42"
  // Keys: stream|accum|seed|sram|io_rot|io_short_read|io_short_write|io_err
  // (rates in [0,1]), burst (int >= 1), ecc (none|parity|secded),
  // stuck (<col>[:<0|1>], col in [0,31]), rng (uint64), transient (0|1).
  // Unknown keys and out-of-range values are rejected with a diagnostic.
  static geo::StatusOr<FaultConfig> parse(std::string_view spec);

  // GEO_FAULTS, parsed fresh on each call. Unset/empty -> nullopt; a
  // malformed spec warns once per call on stderr and returns nullopt (faults
  // off), never aborts the host program.
  static std::optional<FaultConfig> from_env();

  std::string to_string() const;
};

// Injection/detection/correction ledger (mirrored into the telemetry
// registry under the fault.* counters).
struct FaultStats {
  std::int64_t stream_bits_flipped = 0;
  std::int64_t accum_bits_flipped = 0;
  std::int64_t seed_upsets = 0;
  std::int64_t sram_words_corrupted = 0;
  std::int64_t sram_errors_detected = 0;
  std::int64_t sram_errors_corrected = 0;
  std::int64_t sram_silent_corruptions = 0;
  std::int64_t sram_retry_cycles = 0;
  std::int64_t stuck_column_events = 0;
  std::int64_t io_blocks_rotted = 0;
  std::int64_t io_short_reads = 0;
  std::int64_t io_short_writes = 0;
  std::int64_t io_errors = 0;
};

class FaultModel {
 public:
  // Injection-site domains: the same site index means different hardware in
  // different domains, so each gets an independent fault pattern.
  enum class Site : std::uint64_t {
    kWeightStream = 1,
    kActStream,
    kAccumInput,
    kWeightSram,
    kActSram,
    kSeed,
    kGeneric,
    // Partial-sum words in activation SRAM, read back through the
    // near-memory read-add-write path (the resilience layer's CRC/range
    // guards watch this domain). Appended so the existing domains keep
    // their PR-2 hash keys.
    kPsumSram,
    // Disk blocks in the out-of-core weight store (src/store/). The site
    // index is the store's stable (shard, block) key, so a defect-model
    // rotted block misbehaves identically on every re-read. Appended to
    // preserve earlier domains' hash keys.
    kStoreBlock,
  };

  explicit FaultModel(const FaultConfig& cfg);

  const FaultConfig& config() const noexcept { return cfg_; }

  // --- stream-generation faults -------------------------------------------
  // Flips bits of a packed `length`-bit stream in place at the configured
  // stream rate. Returns the number of bits flipped.
  int corrupt_stream(std::uint64_t* words, std::size_t length, Site domain,
                     std::uint64_t site);
  int corrupt_stream(sc::Bitstream& stream, Site domain, std::uint64_t site);

  // Same, at the accumulation-input rate (OR tree / parallel-counter inputs).
  int corrupt_accum_input(std::uint64_t* words, std::size_t length,
                          std::uint64_t site);
  bool accum_active() const noexcept { return cfg_.accum_flip_rate > 0.0; }

  // --- generator faults ----------------------------------------------------
  // Possibly upsets the SNG's seed (bit flip) or its LFSR characteristic
  // polynomial (tap flip away from the maximal-length mask, keeping the mask
  // legal). Deterministic per site.
  sc::SeedSpec corrupt_seed(const sc::SeedSpec& spec, std::uint64_t site);

  // --- memory faults -------------------------------------------------------
  // Models reading a `bits`-wide word from SRAM: injects bit errors at the
  // configured rate (bursts of `sram_burst` adjacent bits) and applies the
  // ECC policy. May return the corrupted word (kNone / parity-even), the
  // original word (kSecded corrected, charging retry cycles), or zero
  // (detect-and-zero).
  std::uint32_t sram_read(std::uint32_t word, unsigned bits, Site domain,
                          std::uint64_t site);
  bool sram_active() const noexcept { return cfg_.sram_error_rate > 0.0; }

  // Pure replay for the defect model (transient == false): the contribution
  // one read of this (domain, site) makes to the resilience layer's
  // detected-minus-corrected ECC signal. +1 for a detected-uncorrectable
  // event (parity detect-and-zero of an odd-weight error, SECDED multi-bit
  // zeroing), -1 for a SECDED single-bit correction (corrected events
  // subtract in the delta), 0 otherwise. The flip pattern is a pure function
  // of (model seed, domain, site) and the outcome depends only on its
  // weight, so this consumes no RNG state and mutates no stats — the
  // resilience layer uses it to reconstruct the serial first-run detection
  // signals after a parallel tile pass. Always 0 for ecc=none (corruption is
  // silent) and for transient models.
  int sram_defect_ecc_delta(unsigned bits, Site domain,
                            std::uint64_t site) const;

  // --- disk-I/O faults -----------------------------------------------------
  // Block bit-rot on the store's read path: flips 1..4 bits of the `length`-
  // byte buffer when the per-site io_rot draw fires. Honors the defect/
  // transient flag (defect: the same block rots the same way on every read;
  // transient: each read re-rolls). Returns the number of bits flipped.
  int corrupt_block(unsigned char* bytes, std::size_t length,
                    std::uint64_t site);

  // Short read: the byte count the read actually returns (< `want` when the
  // per-access draw fires; always re-rolled, partial reads are transient).
  std::size_t short_read(std::size_t want, std::uint64_t site);

  // Torn write: the byte count that actually lands on disk (< `want` when
  // the per-access draw fires; silent at write time).
  std::size_t short_write(std::size_t want, std::uint64_t site);

  // Transient open/read errno (always re-rolled per access); true = this
  // access fails with an injected EIO.
  bool io_error(std::uint64_t site);

  bool io_active() const noexcept {
    return cfg_.io_rot_rate > 0.0 || cfg_.io_short_read_rate > 0.0 ||
           cfg_.io_short_write_rate > 0.0 || cfg_.io_error_rate > 0.0;
  }

  // --- parallel-counter faults --------------------------------------------
  // Forces the stuck-at column on one parallel-counter output count.
  std::uint32_t apply_stuck(std::uint32_t count);
  bool stuck_enabled() const noexcept { return cfg_.stuck.enabled(); }

  FaultStats stats() const;
  void reset_stats();

 private:
  struct SiteRng;  // splitmix64 stream keyed by (model seed, domain, site)

  // Per-site access counters for the transient model: the Nth access of a
  // site draws from an independent stream. Sharded so concurrent tile
  // workers don't serialize on one lock.
  struct TransientSeq {
    static constexpr std::size_t kShards = 16;
    struct Shard {
      std::mutex mu;
      std::unordered_map<std::uint64_t, std::uint64_t> next;
    };
    std::array<Shard, kShards> shards;

    std::uint64_t take(std::uint64_t key);
  };

  SiteRng rng_for(Site domain, std::uint64_t site) const;
  // Like rng_for, but always advances the per-site access sequence (even in
  // defect mode) — the draw is transient by construction. Used by the
  // errno/short-read/short-write hooks.
  SiteRng rng_for_access(Site domain, std::uint64_t site) const;
  std::uint64_t site_key(Site domain, std::uint64_t site) const noexcept;
  int flip_bits(std::uint64_t* words, std::size_t length, double rate,
                SiteRng& rng);
  std::uint32_t sram_flip_mask(unsigned bits, SiteRng& rng) const;

  FaultConfig cfg_;

  std::atomic<std::int64_t> stream_flips_{0};
  std::atomic<std::int64_t> accum_flips_{0};
  std::atomic<std::int64_t> seed_upsets_{0};
  std::atomic<std::int64_t> sram_corrupted_{0};
  std::atomic<std::int64_t> sram_detected_{0};
  std::atomic<std::int64_t> sram_corrected_{0};
  std::atomic<std::int64_t> sram_silent_{0};
  std::atomic<std::int64_t> sram_retry_cycles_{0};
  std::atomic<std::int64_t> stuck_events_{0};
  std::atomic<std::int64_t> io_rotted_{0};
  std::atomic<std::int64_t> io_short_reads_{0};
  std::atomic<std::int64_t> io_short_writes_{0};
  std::atomic<std::int64_t> io_errors_{0};
  // Per-site access sequence for the transient model (unused in defect
  // mode).
  mutable TransientSeq transient_seq_;
};

// The active model for the calling thread: the innermost override installed
// on this thread (ScopedFaultInjection / ScopedFaultOverride), else the
// GEO_FAULTS-configured process model, else nullptr. The nullptr path costs
// one thread-local load (plus a one-time env parse on first call).
FaultModel* active() noexcept;

// RAII installer. Overrides GEO_FAULTS (and any outer scope) for its
// lifetime on the *installing thread*; `ScopedFaultInjection(nullptr)`
// disables injection in scope — used to compute clean references inside
// fault sweeps. The override is thread-local, so concurrent bench workers
// can each hold their own scope; exec::ThreadPool propagates the submitting
// thread's effective model onto its workers for the duration of each
// parallel_for. Construct and destroy on the same thread.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& cfg);
  explicit ScopedFaultInjection(std::nullptr_t);
  ~ScopedFaultInjection();

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

  // Valid only for the config-constructed form.
  FaultModel& model() { return *model_; }

 private:
  std::unique_ptr<FaultModel> model_;
  std::uintptr_t prev_;  // raw slot value (sentinel-encoded)
};

// Non-owning thread-local override: installs `model` (may be nullptr =
// faults disabled) as the calling thread's active model and restores the
// previous slot on destruction. This is how exec::ThreadPool workers inherit
// the effective model (`fault::active()`) of the thread that submitted a
// parallel_for. Construct and destroy on the same thread.
class ScopedFaultOverride {
 public:
  explicit ScopedFaultOverride(FaultModel* model) noexcept;
  ~ScopedFaultOverride();

  ScopedFaultOverride(const ScopedFaultOverride&) = delete;
  ScopedFaultOverride& operator=(const ScopedFaultOverride&) = delete;

 private:
  std::uintptr_t prev_;  // raw slot value (sentinel-encoded)
};

}  // namespace geo::fault
