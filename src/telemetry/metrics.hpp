// Process-wide metrics registry: counters, gauges, and fixed-bucket
// histograms with percentile estimation. All mutation paths are lock-free
// atomics, cheap enough to stay enabled in production builds; the registry
// map itself is mutex-protected, so hot loops should hoist the
// `Counter&`/`Histogram&` lookup out of the loop.
//
// Metrics are always collected; whether they are *exported* is gated by
// `GEO_METRICS=<path>` (see export.hpp), so the no-export path costs a few
// relaxed atomic ops per event and nothing else.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace geo::telemetry {

class Counter {
 public:
  void add(std::int64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log2-spaced fixed buckets: values sharing a binary exponent share a
// bucket, so percentile estimates carry ~±41 % worst-case bucket error —
// plenty for p50/p95/p99 latency attribution — while `observe` stays one
// frexp plus three relaxed atomic ops. Estimates are clamped to the
// observed [min, max], which makes constant-valued series exact.
class Histogram {
 public:
  static constexpr int kBuckets = 128;

  void observe(double v) noexcept;

  std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double min() const noexcept;
  double max() const noexcept;
  double mean() const noexcept;

  // `p` in [0, 100]. Returns 0 for an empty histogram.
  double percentile(double p) const noexcept;

  struct Snapshot {
    std::int64_t count = 0;
    double sum = 0, min = 0, max = 0, mean = 0;
    double p50 = 0, p95 = 0, p99 = 0;
  };
  Snapshot snapshot() const noexcept;

  void reset() noexcept;

 private:
  static int bucket_of(double v) noexcept;
  double bucket_value(int bucket) const noexcept;

  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  // ±infinity when empty so every observer can CAS unconditionally — a
  // "first observation seeds the slot" store would race with a concurrent
  // observer's CAS and lose its update. Accessors report 0 while empty.
  std::atomic<double> min_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_{-std::numeric_limits<double>::infinity()};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0;  // counter/gauge value (histograms use `hist`)
  Histogram::Snapshot hist{};
};

class MetricsRegistry {
 public:
  // Process-wide registry. On destruction (process exit) the contents are
  // exported if GEO_METRICS is set — see export.hpp.
  static MetricsRegistry& instance();

  // Lookup-or-create; returned references remain valid for the registry's
  // lifetime, so callers may cache them across calls.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Sorted by name, counters/gauges/histograms interleaved.
  std::vector<MetricSnapshot> snapshot() const;

  // Zeroes every metric (keeps registrations). Test/bench-boundary hook.
  void reset();

  ~MetricsRegistry();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace geo::telemetry
