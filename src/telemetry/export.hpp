// Metrics exporters: JSON and CSV renderings of a MetricsRegistry snapshot,
// shared by benches, examples, and tests. `GEO_METRICS=<path>` requests an
// automatic dump at process exit (extension picks the format: `.csv` writes
// CSV, anything else JSON).
#pragma once

#include <string>

#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"

namespace geo::telemetry {

// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
//  min, max, mean, p50, p95, p99}}}
Json metrics_to_json(const MetricsRegistry& registry);

// Flat rows: name,kind,value,count,sum,min,max,mean,p50,p95,p99
std::string metrics_to_csv(const MetricsRegistry& registry);

bool write_metrics_json(const MetricsRegistry& registry,
                        const std::string& path);
bool write_metrics_csv(const MetricsRegistry& registry,
                       const std::string& path);

// Honors GEO_METRICS; no-op (returns true) when unset.
bool export_metrics_if_requested(const MetricsRegistry& registry);

}  // namespace geo::telemetry
