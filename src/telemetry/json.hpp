// Minimal JSON value tree used by the telemetry exporters, the Chrome-trace
// writer, and the bench harnesses' machine-readable output. Order-preserving
// objects (so emitted files diff cleanly across runs), no external deps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace geo::telemetry {

// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

// Structural validity check (syntax only, recursive descent). Used by tests
// to assert emitted artifacts are loadable without a third-party parser.
bool json_valid(std::string_view text);

class Json {
 public:
  Json() : kind_(Kind::kNull) {}
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double v) : kind_(Kind::kNumber), num_(v) {}
  Json(int v) : kind_(Kind::kInt), int_(v) {}
  Json(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}

  static Json object();
  static Json array();
  // Embeds pre-rendered JSON verbatim (caller guarantees validity; rejected
  // at dump time if `json_valid` fails, rendering null instead).
  static Json raw(std::string text);

  // Parses `text` into a value tree. Returns nullopt on syntax error. The
  // inverse of dump(): escape sequences are decoded, numbers without a
  // fraction/exponent that fit an int64 load as integers, all others as
  // doubles. Raw nodes are never produced.
  static std::optional<Json> parse(std::string_view text);
  // Reads and parses a whole file; nullopt if unreadable or invalid.
  static std::optional<Json> parse_file(const std::string& path);

  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const {
    return kind_ == Kind::kNumber || kind_ == Kind::kInt;
  }

  // Value accessors; return the neutral value when the kind mismatches.
  double number() const {
    if (kind_ == Kind::kInt) return static_cast<double>(int_);
    return kind_ == Kind::kNumber ? num_ : 0.0;
  }
  std::int64_t integer() const {
    if (kind_ == Kind::kNumber) return static_cast<std::int64_t>(num_);
    return kind_ == Kind::kInt ? int_ : 0;
  }
  bool boolean() const { return kind_ == Kind::kBool && bool_; }
  const std::string& str() const { return str_; }

  // Object member lookup (first match); nullptr when absent or not an
  // object. Members/elements expose the underlying order-preserving storage
  // for iteration.
  const Json* find(std::string_view key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return object_;
  }
  const std::vector<Json>& elements() const { return array_; }

  // Object insertion (last writer wins is NOT implemented: duplicate keys
  // are appended; callers use unique keys). Returns *this for chaining.
  Json& set(std::string key, Json value);

  // Array append.
  Json& push(Json value);

  std::size_t size() const;

  // Serializes with `indent` spaces per level (0 = compact single line).
  std::string dump(int indent = 2) const;

  // Writes dump() to `path` (with trailing newline). Returns success.
  bool write_file(const std::string& path, int indent = 2) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInt, kString, kObject, kArray, kRaw };

  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  std::string str_;  // string payload, or raw JSON for kRaw
  std::vector<std::pair<std::string, Json>> object_;
  std::vector<Json> array_;
};

}  // namespace geo::telemetry
