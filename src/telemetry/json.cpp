#include "telemetry/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace geo::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Validator: a tolerant recursive-descent syntax checker.

namespace {

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  int depth = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        ++i;
        if (i >= s.size()) return false;
        const char e = s[i];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k)
            if (i + static_cast<std::size_t>(k) >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    s[i + static_cast<std::size_t>(k)])))
              return false;
          i += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i;
    }
    return false;
  }
  bool number() {
    const std::size_t start = i;
    if (eat('-')) {}
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == start || (i == start + 1 && s[start] == '-')) return false;
    if (eat('.')) {
      const std::size_t frac = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
      if (i == frac) return false;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      const std::size_t ex = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
      if (i == ex) return false;
    }
    return true;
  }
  bool value() {
    if (++depth > 256) return false;
    skip_ws();
    bool ok = false;
    if (i >= s.size()) {
      ok = false;
    } else if (s[i] == '{') {
      ++i;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        ok = true;
        while (ok) {
          skip_ws();
          ok = string();
          if (!ok) break;
          skip_ws();
          ok = eat(':') && value();
          if (!ok) break;
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          break;
        }
      }
    } else if (s[i] == '[') {
      ++i;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        ok = true;
        while (ok) {
          ok = value();
          if (!ok) break;
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          break;
        }
      }
    } else if (s[i] == '"') {
      ok = string();
    } else if (s[i] == 't') {
      ok = literal("true");
    } else if (s[i] == 'f') {
      ok = literal("false");
    } else if (s[i] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.i == text.size();
}

// ---------------------------------------------------------------------------
// Json value tree.

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::raw(std::string text) {
  Json j;
  j.kind_ = Kind::kRaw;
  j.str_ = std::move(text);
  return j;
}

Json& Json::set(std::string key, Json value) {
  kind_ = Kind::kObject;  // setting a key on a fresh value makes it an object
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kObject) return object_.size();
  if (kind_ == Kind::kArray) return array_.size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";

  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += format_double(num_); break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kRaw:
      out += json_valid(str_) ? str_ : "null";
      break;
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t k = 0; k < object_.size(); ++k) {
        out += pad;
        out += '"';
        out += json_escape(object_[k].first);
        out += '"';
        out += colon;
        object_[k].second.dump_to(out, indent, depth + 1);
        if (k + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t k = 0; k < array_.size(); ++k) {
        out += pad;
        array_[k].dump_to(out, indent, depth + 1);
        if (k + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::write_file(const std::string& path, int indent) const {
  std::ofstream os(path);
  if (!os) return false;
  os << dump(indent) << '\n';
  return static_cast<bool>(os);
}

}  // namespace geo::telemetry
