#include "telemetry/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>

namespace geo::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Validator: a tolerant recursive-descent syntax checker.

namespace {

struct Parser {
  std::string_view s;
  std::size_t i = 0;
  int depth = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }
  bool string() {
    if (!eat('"')) return false;
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        ++i;
        if (i >= s.size()) return false;
        const char e = s[i];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k)
            if (i + static_cast<std::size_t>(k) >= s.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    s[i + static_cast<std::size_t>(k)])))
              return false;
          i += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++i;
    }
    return false;
  }
  bool number() {
    const std::size_t start = i;
    if (eat('-')) {}
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == start || (i == start + 1 && s[start] == '-')) return false;
    if (eat('.')) {
      const std::size_t frac = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
      if (i == frac) return false;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      const std::size_t ex = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
      if (i == ex) return false;
    }
    return true;
  }
  bool value() {
    if (++depth > 256) return false;
    skip_ws();
    bool ok = false;
    if (i >= s.size()) {
      ok = false;
    } else if (s[i] == '{') {
      ++i;
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        ok = true;
        while (ok) {
          skip_ws();
          ok = string();
          if (!ok) break;
          skip_ws();
          ok = eat(':') && value();
          if (!ok) break;
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          break;
        }
      }
    } else if (s[i] == '[') {
      ++i;
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        ok = true;
        while (ok) {
          ok = value();
          if (!ok) break;
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          break;
        }
      }
    } else if (s[i] == '"') {
      ok = string();
    } else if (s[i] == 't') {
      ok = literal("true");
    } else if (s[i] == 'f') {
      ok = literal("false");
    } else if (s[i] == 'n') {
      ok = literal("null");
    } else {
      ok = number();
    }
    --depth;
    return ok;
  }
};

std::string format_double(double v) {
  if (!std::isfinite(v)) return "null";  // JSON has no NaN/Inf
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, end);
}

}  // namespace

bool json_valid(std::string_view text) {
  Parser p{text};
  if (!p.value()) return false;
  p.skip_ws();
  return p.i == text.size();
}

// ---------------------------------------------------------------------------
// Tree-building parser (inverse of dump). Same grammar as the validator but
// materializes a Json value; kept separate so the validator stays allocation
// free.

namespace {

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

struct TreeParser {
  std::string_view s;
  std::size_t i = 0;
  int depth = 0;

  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                            s[i] == '\r'))
      ++i;
  }
  bool eat(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool literal(std::string_view word) {
    if (s.substr(i, word.size()) != word) return false;
    i += word.size();
    return true;
  }
  bool hex4(std::uint32_t& out) {
    if (i + 4 > s.size()) return false;
    out = 0;
    for (int k = 0; k < 4; ++k) {
      const char c = s[i + static_cast<std::size_t>(k)];
      std::uint32_t d;
      if (c >= '0' && c <= '9') d = static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') d = static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') d = static_cast<std::uint32_t>(c - 'A' + 10);
      else return false;
      out = (out << 4) | d;
    }
    i += 4;
    return true;
  }
  bool string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (i < s.size()) {
      const char c = s[i];
      if (c == '"') {
        ++i;
        return true;
      }
      if (c == '\\') {
        ++i;
        if (i >= s.size()) return false;
        const char e = s[i++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            std::uint32_t cp;
            if (!hex4(cp)) return false;
            if (cp >= 0xD800 && cp <= 0xDBFF && i + 1 < s.size() &&
                s[i] == '\\' && s[i + 1] == 'u') {
              i += 2;
              std::uint32_t lo;
              if (!hex4(lo)) return false;
              if (lo >= 0xDC00 && lo <= 0xDFFF)
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              else
                return false;
            }
            append_utf8(out, cp);
            break;
          }
          default: return false;
        }
        continue;
      }
      out += c;
      ++i;
    }
    return false;
  }
  bool number(Json& out) {
    const std::size_t start = i;
    bool integral = true;
    if (eat('-')) {}
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == start || (i == start + 1 && s[start] == '-')) return false;
    if (i < s.size() && s[i] == '.') {
      integral = false;
      ++i;
      const std::size_t frac = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
      if (i == frac) return false;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      integral = false;
      ++i;
      if (i < s.size() && (s[i] == '+' || s[i] == '-')) ++i;
      const std::size_t ex = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
        ++i;
      if (i == ex) return false;
    }
    const std::string_view tok = s.substr(start, i - start);
    if (integral) {
      std::int64_t v = 0;
      const auto [p, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc{} && p == tok.data() + tok.size()) {
        out = Json(v);
        return true;
      }
      // Falls through for magnitudes beyond int64: load as double.
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc{} || p != tok.data() + tok.size()) return false;
    out = Json(d);
    return true;
  }
  bool value(Json& out) {
    if (++depth > 256) return false;
    skip_ws();
    bool ok = false;
    if (i >= s.size()) {
      ok = false;
    } else if (s[i] == '{') {
      ++i;
      out = Json::object();
      skip_ws();
      if (eat('}')) {
        ok = true;
      } else {
        ok = true;
        while (ok) {
          skip_ws();
          std::string key;
          ok = string(key);
          if (!ok) break;
          skip_ws();
          Json child;
          ok = eat(':') && value(child);
          if (!ok) break;
          out.set(std::move(key), std::move(child));
          skip_ws();
          if (eat(',')) continue;
          ok = eat('}');
          break;
        }
      }
    } else if (s[i] == '[') {
      ++i;
      out = Json::array();
      skip_ws();
      if (eat(']')) {
        ok = true;
      } else {
        ok = true;
        while (ok) {
          Json child;
          ok = value(child);
          if (!ok) break;
          out.push(std::move(child));
          skip_ws();
          if (eat(',')) continue;
          ok = eat(']');
          break;
        }
      }
    } else if (s[i] == '"') {
      std::string str;
      ok = string(str);
      if (ok) out = Json(std::move(str));
    } else if (s[i] == 't') {
      ok = literal("true");
      if (ok) out = Json(true);
    } else if (s[i] == 'f') {
      ok = literal("false");
      if (ok) out = Json(false);
    } else if (s[i] == 'n') {
      ok = literal("null");
      if (ok) out = Json();
    } else {
      ok = number(out);
    }
    --depth;
    return ok;
  }
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text) {
  TreeParser p{text};
  Json out;
  if (!p.value(out)) return std::nullopt;
  p.skip_ws();
  if (p.i != text.size()) return std::nullopt;
  return out;
}

std::optional<Json> Json::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse(text);
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

// ---------------------------------------------------------------------------
// Json value tree.

Json Json::object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

Json Json::array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}

Json Json::raw(std::string text) {
  Json j;
  j.kind_ = Kind::kRaw;
  j.str_ = std::move(text);
  return j;
}

Json& Json::set(std::string key, Json value) {
  kind_ = Kind::kObject;  // setting a key on a fresh value makes it an object
  object_.emplace_back(std::move(key), std::move(value));
  return *this;
}

Json& Json::push(Json value) {
  kind_ = Kind::kArray;
  array_.push_back(std::move(value));
  return *this;
}

std::size_t Json::size() const {
  if (kind_ == Kind::kObject) return object_.size();
  if (kind_ == Kind::kArray) return array_.size();
  return 0;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  const char* colon = indent > 0 ? ": " : ":";

  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: out += format_double(num_); break;
    case Kind::kInt: out += std::to_string(int_); break;
    case Kind::kString:
      out += '"';
      out += json_escape(str_);
      out += '"';
      break;
    case Kind::kRaw:
      out += json_valid(str_) ? str_ : "null";
      break;
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t k = 0; k < object_.size(); ++k) {
        out += pad;
        out += '"';
        out += json_escape(object_[k].first);
        out += '"';
        out += colon;
        object_[k].second.dump_to(out, indent, depth + 1);
        if (k + 1 < object_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t k = 0; k < array_.size(); ++k) {
        out += pad;
        array_[k].dump_to(out, indent, depth + 1);
        if (k + 1 < array_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

bool Json::write_file(const std::string& path, int indent) const {
  std::ofstream os(path);
  if (!os) return false;
  os << dump(indent) << '\n';
  return static_cast<bool>(os);
}

}  // namespace geo::telemetry
