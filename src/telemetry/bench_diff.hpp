// Bench regression comparison: flattens two BENCH_*.json documents into
// path->value maps and diffs them under per-metric tolerance rules, so a
// committed baseline tree can gate changes in CI (`scripts/bench_diff.py`
// mirrors the same rules for workflows without a built tree; `geo_report`
// is the CLI over this core).
//
// A rule is a '*' glob over the flattened metric path (e.g.
// "attr.layers.0.generation_cycles", "metrics.counters.machine.total_cycles")
// with a tolerance and a direction: +1 flags increases (cycles, energy,
// area), -1 flags decreases (accuracy, throughput, ledger_ok), 0 flags any
// drift. First matching rule wins; `ignore` drops wall-clock noise like
// histogram timings. Booleans flatten to 1/0 so `ledger_ok` going false is
// a catchable regression; strings and nulls are skipped.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/json.hpp"

namespace geo::telemetry {

// Glob with '*' (any run, including empty) and '?' (any one char).
bool glob_match(std::string_view pattern, std::string_view text);

struct DiffRule {
  std::string pattern;
  double rel_tol = 0.0;
  double abs_tol = 0.0;
  int direction = 0;  // +1 higher is worse, -1 lower is worse, 0 two-sided
  bool ignore = false;
};

// The tolerance policy described above. Ends in a catch-all two-sided 2%
// rule, so every numeric metric is gated unless explicitly ignored.
std::vector<DiffRule> default_diff_rules();

// Depth-first numeric leaves of `doc` as ("a.b.0.c", value) pairs, in
// document order. Bools become 1/0; strings, nulls and raw nodes are
// skipped. `prefix` seeds the path (pass "" at the root).
void flatten_numeric(const Json& doc, const std::string& prefix,
                     std::vector<std::pair<std::string, double>>& out);

enum class DeltaKind {
  kOk,           // within tolerance
  kRegression,   // drifted in the rule's bad direction
  kImprovement,  // drifted beyond tolerance in the good direction
  kAdded,        // metric only in current (informational)
  kRemoved,      // metric only in base (a regression: coverage shrank)
  kIgnored,
};

struct MetricDelta {
  std::string path;
  double base = 0.0;
  double current = 0.0;
  DeltaKind kind = DeltaKind::kOk;
};

struct DiffResult {
  std::vector<MetricDelta> deltas;  // document order, every leaf
  std::size_t compared = 0;
  std::size_t regressions = 0;
  std::size_t improvements = 0;
  std::size_t ignored = 0;

  bool ok() const { return regressions == 0; }
};

DiffResult diff_documents(const Json& base, const Json& current,
                          const std::vector<DiffRule>& rules);

// Human-readable report: one line per regression/improvement (all compared
// lines when `verbose`), then a summary line.
std::string summarize_diff(const DiffResult& result, bool verbose = false);

}  // namespace geo::telemetry
