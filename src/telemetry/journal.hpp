// Structured event journal: a bounded in-memory ring of timestamped
// runtime events (resilience retries/degradations, stream-table builds and
// budget fallbacks, checkpoint commits) flushed as JSONL.
//
// OFF unless `GEO_JOURNAL=<path>` is set (or a test calls `enable`); the
// disabled path is one relaxed atomic load, so hooks stay in the runtime
// unconditionally. The ring holds the most recent `GEO_JOURNAL_CAP`
// entries (default 4096); older entries are counted as dropped rather
// than growing without bound, so the journal is safe to leave on under
// long sweeps. Each flushed line is one self-contained JSON object:
//
//   {"seq":12,"ts_us":5301.250,"tid":3,"kind":"resilience.retry",
//    "label":"conv2","note":"pbw","args":{"tile":4,"attempt":1}}
//
// See docs/OBSERVABILITY.md for the kind inventory.
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace geo::telemetry {

// One numeric journal argument, rendered into the entry's "args" object.
struct JournalArg {
  const char* key;
  double value;
};

struct JournalEntry {
  std::uint64_t seq;  // monotone across drops; first retained may be > 0
  double ts_us;
  std::uint32_t tid;
  std::string kind;
  std::string label;
  std::string note;       // optional free-form detail (e.g. degrade rung)
  std::string args_json;  // pre-rendered "args" object, may be empty
};

class Journal {
 public:
  static Journal& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Starts recording to `path`; `capacity` of 0 keeps the current ring
  // size (GEO_JOURNAL_CAP or the default). Retained entries are kept.
  void enable(std::string path, std::size_t capacity = 0);
  // Stops recording and drops buffered entries.
  void disable();

  void record(std::string_view kind, std::string_view label,
              std::initializer_list<JournalArg> args = {},
              std::string_view note = {});

  std::size_t event_count() const;
  // Entries overwritten by ring wrap since enable().
  std::uint64_t dropped() const;
  // Oldest-first copy of the retained entries.
  std::vector<JournalEntry> snapshot() const;

  // Appends the retained entries to the configured path as JSONL and
  // clears the ring. No-op (returns true) when disabled or empty.
  bool flush();

  // Best-effort flush for fatal-signal/abort paths: try-locks the ring (a
  // handler that interrupted a recording thread must not self-deadlock) and
  // appends with raw open/write(2) instead of iostreams. Returns false when
  // the lock was contended or the file could not be opened — the window is
  // dropped, never blocked on. enable() installs handlers for SIGABRT,
  // SIGSEGV, SIGBUS, SIGFPE, SIGILL and SIGTERM that call this before
  // re-raising the default disposition, so chaos-run postmortems keep the
  // last window of retry/shed events even when the process dies without
  // reaching atexit.
  bool flush_from_signal() noexcept;

  ~Journal();

 private:
  Journal();  // reads GEO_JOURNAL / GEO_JOURNAL_CAP

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::string path_;
  std::size_t capacity_ = 0;
  // Fixed-size circular buffer: entry seq lives at ring_[seq % capacity_]
  // (ring_ is resized to capacity_ on first record). The retained entries
  // are the contiguous seq range [next_seq_ - count_, next_seq_); count_
  // drops to 0 on flush while next_seq_ keeps counting, so seq stays
  // monotone across flushes and the slot mapping never goes stale.
  std::vector<JournalEntry> ring_;
  std::size_t count_ = 0;       // retained entries
  std::uint64_t next_seq_ = 0;  // total entries ever recorded
  std::uint64_t flushed_ = 0;   // entries written out by flush()
};

}  // namespace geo::telemetry
