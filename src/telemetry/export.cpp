#include "telemetry/export.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace geo::telemetry {

namespace {

Json histogram_json(const Histogram::Snapshot& h) {
  Json obj = Json::object();
  obj.set("count", Json(h.count));
  obj.set("sum", Json(h.sum));
  obj.set("min", Json(h.min));
  obj.set("max", Json(h.max));
  obj.set("mean", Json(h.mean));
  obj.set("p50", Json(h.p50));
  obj.set("p95", Json(h.p95));
  obj.set("p99", Json(h.p99));
  return obj;
}

std::string csv_cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Json metrics_to_json(const MetricsRegistry& registry) {
  Json counters = Json::object();
  Json gauges = Json::object();
  Json histograms = Json::object();
  for (const MetricSnapshot& m : registry.snapshot()) {
    switch (m.kind) {
      case MetricKind::kCounter:
        counters.set(m.name, Json(static_cast<std::int64_t>(m.value)));
        break;
      case MetricKind::kGauge:
        gauges.set(m.name, Json(m.value));
        break;
      case MetricKind::kHistogram:
        histograms.set(m.name, histogram_json(m.hist));
        break;
    }
  }
  Json root = Json::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root;
}

std::string metrics_to_csv(const MetricsRegistry& registry) {
  std::string out = "name,kind,value,count,sum,min,max,mean,p50,p95,p99\n";
  for (const MetricSnapshot& m : registry.snapshot()) {
    out += m.name;
    switch (m.kind) {
      case MetricKind::kCounter:
        out += ",counter," + csv_cell(m.value) + ",,,,,,,,";
        break;
      case MetricKind::kGauge:
        out += ",gauge," + csv_cell(m.value) + ",,,,,,,,";
        break;
      case MetricKind::kHistogram: {
        const Histogram::Snapshot& h = m.hist;
        out += ",histogram,," + std::to_string(h.count) + ',' +
               csv_cell(h.sum) + ',' + csv_cell(h.min) + ',' +
               csv_cell(h.max) + ',' + csv_cell(h.mean) + ',' +
               csv_cell(h.p50) + ',' + csv_cell(h.p95) + ',' +
               csv_cell(h.p99);
        break;
      }
    }
    out += '\n';
  }
  return out;
}

bool write_metrics_json(const MetricsRegistry& registry,
                        const std::string& path) {
  return metrics_to_json(registry).write_file(path);
}

bool write_metrics_csv(const MetricsRegistry& registry,
                       const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  os << metrics_to_csv(registry);
  return static_cast<bool>(os);
}

bool export_metrics_if_requested(const MetricsRegistry& registry) {
  const char* path = std::getenv("GEO_METRICS");
  if (path == nullptr || path[0] == '\0') return true;
  const std::string p(path);
  if (p.size() >= 4 && p.compare(p.size() - 4, 4, ".csv") == 0)
    return write_metrics_csv(registry, p);
  return write_metrics_json(registry, p);
}

}  // namespace geo::telemetry
