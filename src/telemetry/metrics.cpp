#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/export.hpp"

namespace geo::telemetry {

namespace {

// Lock-free running min/max over an atomic double.
void update_min(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void update_max(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

int Histogram::bucket_of(double v) noexcept {
  if (!(v > 0.0)) return 0;  // zero, negatives, NaN: the underflow bucket
  int exp = 0;
  std::frexp(v, &exp);  // v = m * 2^exp, m in [0.5, 1)
  // exp in [-61, 64] maps to buckets 1..126; beyond that saturates.
  if (exp < -61) return 0;
  if (exp > 64) return kBuckets - 1;
  return exp + 62;
}

double Histogram::bucket_value(int bucket) const noexcept {
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  if (bucket <= 0) return lo;
  if (bucket >= kBuckets - 1) return hi;
  // Geometric midpoint of [2^(exp-1), 2^exp), clamped to observed range.
  const double rep = std::exp2(static_cast<double>(bucket - 62) - 0.5);
  return std::clamp(rep, lo, hi);
}

void Histogram::observe(double v) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // min_/max_ start at ±infinity, so the first observation is just another
  // CAS win — no seeding store that could overwrite a racing observer.
  update_min(min_, v);
  update_max(max_, v);
  buckets_[static_cast<std::size_t>(bucket_of(v))].fetch_add(
      1, std::memory_order_relaxed);
}

double Histogram::min() const noexcept {
  return count() > 0 ? min_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::max() const noexcept {
  return count() > 0 ? max_.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const noexcept {
  const std::int64_t n = count();
  return n > 0 ? sum() / static_cast<double>(n) : 0.0;
}

double Histogram::percentile(double p) const noexcept {
  const std::int64_t n = count();
  if (n <= 0) return 0.0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  const std::int64_t rank = std::clamp<std::int64_t>(
      static_cast<std::int64_t>(std::ceil(clamped / 100.0 *
                                          static_cast<double>(n))),
      1, n);
  std::int64_t cumulative = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cumulative += buckets_[static_cast<std::size_t>(b)].load(
        std::memory_order_relaxed);
    if (cumulative >= rank) return bucket_value(b);
  }
  return max();
}

Histogram::Snapshot Histogram::snapshot() const noexcept {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.min = min();
  s.max = max();
  s.mean = mean();
  s.p50 = percentile(50.0);
  s.p95 = percentile(95.0);
  s.p99 = percentile(99.0);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::~MetricsRegistry() {
  // Process-exit export; a no-op unless GEO_METRICS is set.
  export_metrics_if_requested(*this);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  return *it->second;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kCounter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kGauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricKind::kHistogram;
    s.hist = h->snapshot();
    s.value = static_cast<double>(s.hist.count);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace geo::telemetry
