#include "telemetry/journal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "telemetry/json.hpp"

namespace geo::telemetry {

namespace {

constexpr std::size_t kDefaultCapacity = 4096;
constexpr std::size_t kMaxCapacity = std::size_t{1} << 22;

std::uint32_t journal_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

const std::chrono::steady_clock::time_point g_epoch =
    std::chrono::steady_clock::now();

double journal_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - g_epoch)
      .count();
}

std::string args_to_json(std::initializer_list<JournalArg> args) {
  if (args.size() == 0) return {};
  Json obj = Json::object();
  for (const JournalArg& a : args) obj.set(a.key, Json(a.value));
  return obj.dump(0);
}

std::size_t env_capacity() {
  const char* raw = std::getenv("GEO_JOURNAL_CAP");
  if (raw == nullptr || raw[0] == '\0') return kDefaultCapacity;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0' || v < 16 ||
      v > static_cast<long long>(kMaxCapacity))
    return kDefaultCapacity;
  return static_cast<std::size_t>(v);
}

// ---- fatal-signal flush ----------------------------------------------------

// Fatal signals whose default disposition kills the process without running
// atexit — without the handler, the last journal window dies with it.
constexpr int kFatalSignals[] = {SIGABRT, SIGSEGV, SIGBUS,
                                 SIGFPE,  SIGILL,  SIGTERM};

void fatal_signal_flush(int sig) {
  Journal::instance().flush_from_signal();
  // Restore the default disposition and re-raise so exit codes, core dumps
  // and wait statuses look exactly like an unhandled signal.
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

void install_fatal_signal_flush() {
  static bool installed = false;  // guarded by the caller's journal lock
  if (installed) return;
  installed = true;
  for (const int sig : kFatalSignals) {
    // Claim only signals nobody else handles: a foreign handler (test
    // framework, sanitizer) is restored untouched.
    const auto prev = std::signal(sig, fatal_signal_flush);
    if (prev != SIG_DFL && prev != SIG_ERR) std::signal(sig, prev);
  }
}

// Bounded, allocation-free escape-and-append for the signal path: writes
// `s` into buf[len..cap) escaping quotes, backslashes and control bytes.
void sig_append_escaped(char* buf, std::size_t cap, std::size_t& len,
                        const std::string& s) {
  for (const char c : s) {
    if (len + 8 >= cap) return;  // truncate rather than overflow
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      buf[len++] = '\\';
      buf[len++] = c;
    } else if (u < 0x20) {
      len += static_cast<std::size_t>(
          std::snprintf(buf + len, cap - len, "\\u%04x", u));
    } else {
      buf[len++] = c;
    }
  }
}

void sig_append_raw(char* buf, std::size_t cap, std::size_t& len,
                    const char* s) {
  while (*s != '\0' && len + 1 < cap) buf[len++] = *s++;
}

}  // namespace

Journal& Journal::instance() {
  static Journal journal;
  return journal;
}

Journal::Journal() : capacity_(env_capacity()) {
  if (const char* path = std::getenv("GEO_JOURNAL");
      path != nullptr && path[0] != '\0')
    enable(path);
}

Journal::~Journal() { flush(); }

void Journal::enable(std::string path, std::size_t capacity) {
  std::lock_guard lock(mu_);
  install_fatal_signal_flush();
  path_ = std::move(path);
  if (capacity > 0 && capacity != capacity_) {
    capacity_ = capacity;
    ring_.clear();
    count_ = 0;
    next_seq_ = 0;
    flushed_ = 0;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Journal::disable() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  path_.clear();
  ring_.clear();
  count_ = 0;
  next_seq_ = 0;
  flushed_ = 0;
}

void Journal::record(std::string_view kind, std::string_view label,
                     std::initializer_list<JournalArg> args,
                     std::string_view note) {
  if (!enabled()) return;
  JournalEntry entry;
  entry.ts_us = journal_now_us();
  entry.tid = journal_tid();
  entry.kind.assign(kind);
  entry.label.assign(label);
  entry.note.assign(note);
  entry.args_json = args_to_json(args);
  std::lock_guard lock(mu_);
  if (ring_.size() != capacity_) ring_.resize(capacity_);
  entry.seq = next_seq_++;
  ring_[static_cast<std::size_t>(entry.seq % capacity_)] = std::move(entry);
  if (count_ < capacity_) ++count_;
}

std::size_t Journal::event_count() const {
  std::lock_guard lock(mu_);
  return count_;
}

std::uint64_t Journal::dropped() const {
  std::lock_guard lock(mu_);
  return next_seq_ - flushed_ - count_;
}

std::vector<JournalEntry> Journal::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<JournalEntry> out;
  out.reserve(count_);
  const std::uint64_t first = next_seq_ - count_;
  for (std::uint64_t s = first; s < next_seq_; ++s)
    out.push_back(ring_[static_cast<std::size_t>(s % capacity_)]);
  return out;
}

bool Journal::flush() {
  std::string path;
  std::vector<JournalEntry> entries;
  {
    // Drain and clear under one lock so an entry recorded concurrently
    // with the file write lands in the next flush, never in a gap.
    std::lock_guard lock(mu_);
    if (path_.empty()) return true;
    path = path_;
    const std::uint64_t first = next_seq_ - count_;
    entries.reserve(count_);
    for (std::uint64_t s = first; s < next_seq_; ++s)
      entries.push_back(
          std::move(ring_[static_cast<std::size_t>(s % capacity_)]));
    flushed_ += count_;
    count_ = 0;
    // next_seq_ keeps counting so seq stays monotone across flushes.
  }
  if (entries.empty()) return true;
  std::ofstream os(path, std::ios::app);
  if (!os) return false;
  for (const JournalEntry& e : entries) {
    char ts[48];
    std::snprintf(ts, sizeof(ts), "%.3f", e.ts_us);
    os << "{\"seq\":" << e.seq << ",\"ts_us\":" << ts
       << ",\"tid\":" << e.tid << ",\"kind\":\"" << json_escape(e.kind)
       << "\",\"label\":\"" << json_escape(e.label) << '"';
    if (!e.note.empty()) os << ",\"note\":\"" << json_escape(e.note) << '"';
    if (!e.args_json.empty()) os << ",\"args\":" << e.args_json;
    os << "}\n";
  }
  return static_cast<bool>(os);
}

bool Journal::flush_from_signal() noexcept {
  if (!enabled()) return true;
  // try_lock, never lock: the signal may have landed on a thread that holds
  // mu_ mid-record; blocking here would deadlock the dying process.
  if (!mu_.try_lock()) return false;
  bool ok = false;
  if (!path_.empty() && count_ > 0) {
    const int fd =
        ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT, 0644);
    if (fd >= 0) {
      const std::uint64_t first = next_seq_ - count_;
      for (std::uint64_t s = first; s < next_seq_; ++s) {
        const JournalEntry& e = ring_[static_cast<std::size_t>(s % capacity_)];
        char line[1024];
        std::size_t len = static_cast<std::size_t>(std::snprintf(
            line, sizeof(line), "{\"seq\":%llu,\"ts_us\":%.3f,\"tid\":%u,",
            static_cast<unsigned long long>(e.seq), e.ts_us, e.tid));
        sig_append_raw(line, sizeof(line), len, "\"kind\":\"");
        sig_append_escaped(line, sizeof(line), len, e.kind);
        sig_append_raw(line, sizeof(line), len, "\",\"label\":\"");
        sig_append_escaped(line, sizeof(line), len, e.label);
        sig_append_raw(line, sizeof(line), len, "\"");
        if (!e.note.empty()) {
          sig_append_raw(line, sizeof(line), len, ",\"note\":\"");
          sig_append_escaped(line, sizeof(line), len, e.note);
          sig_append_raw(line, sizeof(line), len, "\"");
        }
        if (!e.args_json.empty()) {
          sig_append_raw(line, sizeof(line), len, ",\"args\":");
          sig_append_raw(line, sizeof(line), len, e.args_json.c_str());
        }
        sig_append_raw(line, sizeof(line), len, "}\n");
        // Best effort: a short write loses the tail of this line only.
        (void)::write(fd, line, len);
      }
      flushed_ += count_;
      count_ = 0;
      ::close(fd);
      ok = true;
    }
  } else {
    ok = true;  // nothing retained is a successful flush
  }
  mu_.unlock();
  return ok;
}

}  // namespace geo::telemetry
