#include "telemetry/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

namespace geo::telemetry {

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative '*' backtracking (the classic two-pointer scan): linear in
  // practice, no recursion.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::vector<DiffRule> default_diff_rules() {
  // First match wins. Wall-clock measurements vary run to run on shared
  // hardware, so they are ignored; everything else in a bench JSON is a
  // deterministic function of the model/seeds and gates tightly.
  return {
      {"metrics.histograms.*", 0, 0, 0, true},  // span timings (seconds)
      {"benchmarks.*", 0, 0, 0, true},          // raw google-benchmark rows
      {"*build_ns*", 0, 0, 0, true},
      {"*_wall_s*", 0, 0, 0, true},
      {"*per_s*", 0, 0, 0, true},  // measured throughput, not simulated
      {"*_us", 0, 0, 0, true},     // wall-clock latency percentiles (serve)
      // Run-shape diagnostics: trainer metrics only appear when the
      // trained-model cache misses, and stream-table hit/generation/fill
      // counts depend on that cache plus the pool width (GEO_THREADS).
      // The cycle ledger and attr.* gauges stay gated — those are
      // deterministic at every thread count.
      {"metrics.counters.train.*", 0, 0, 0, true},
      {"metrics.gauges.train.*", 0, 0, 0, true},
      {"metrics.counters.*stream_table_*", 0, 0, 0, true},
      {"metrics.counters.*_streams_generated", 0, 0, 0, true},
      {"metrics.counters.*_buffer_fills", 0, 0, 0, true},
      {"*ledger_ok*", 0.0, 0.0, -1, false},
      // Measured speedup ratios (table-vs-tick, SIMD-vs-scalar, fused-vs-
      // materialized): wall-clock-derived, so noisy run to run, but a
      // collapse means an optimization silently stopped engaging. Gate
      // loosely, higher is better.
      // Batched-serving throughput ratio (bench/serve batch section): a
      // collapse below baseline means coalesced dispatch stopped amortizing
      // preparation. Same loose shrink-only gate as the other ratios.
      {"*batch_speedup*", 0.5, 0.0, -1, false},
      {"*speedup*", 0.5, 0.0, -1, false},
      {"*accuracy*", 0.0, 0.25, -1, false},  // percentage points
      {"*frames_per_joule*", 0.02, 0.0, -1, false},
      {"*frames_per_second*", 0.02, 0.0, -1, false},
      {"*fps*", 0.02, 0.0, -1, false},
      {"*throughput*", 0.02, 0.0, -1, false},
      {"*cycles*", 0.02, 0.0, 1, false},
      {"*energy*", 0.02, 0.0, 1, false},
      {"*joule*", 0.02, 0.0, 1, false},
      {"*area*", 0.02, 0.0, 1, false},
      {"*power*", 0.02, 0.0, 1, false},
      {"*seconds*", 0.02, 0.0, 1, false},  // simulated latency
      {"*", 0.02, 1e-12, 0, false},
  };
}

void flatten_numeric(const Json& doc, const std::string& prefix,
                     std::vector<std::pair<std::string, double>>& out) {
  auto join = [&](const std::string& key) {
    return prefix.empty() ? key : prefix + "." + key;
  };
  if (doc.is_object()) {
    for (const auto& [key, value] : doc.members())
      flatten_numeric(value, join(key), out);
  } else if (doc.is_array()) {
    for (std::size_t i = 0; i < doc.elements().size(); ++i)
      flatten_numeric(doc.elements()[i], join(std::to_string(i)), out);
  } else if (doc.is_number()) {
    out.emplace_back(prefix, doc.number());
  } else if (doc.is_bool()) {
    out.emplace_back(prefix, doc.boolean() ? 1.0 : 0.0);
  }
  // strings / nulls / raw: not comparable, skipped
}

namespace {

const DiffRule* match_rule(const std::vector<DiffRule>& rules,
                           const std::string& path) {
  for (const DiffRule& r : rules)
    if (glob_match(r.pattern, path)) return &r;
  return nullptr;
}

}  // namespace

DiffResult diff_documents(const Json& base, const Json& current,
                          const std::vector<DiffRule>& rules) {
  std::vector<std::pair<std::string, double>> base_flat, cur_flat;
  flatten_numeric(base, "", base_flat);
  flatten_numeric(current, "", cur_flat);
  std::unordered_map<std::string, double> cur_map;
  cur_map.reserve(cur_flat.size());
  for (const auto& [path, value] : cur_flat) cur_map.emplace(path, value);
  std::unordered_map<std::string, double> base_map;
  base_map.reserve(base_flat.size());
  for (const auto& [path, value] : base_flat) base_map.emplace(path, value);

  DiffResult result;
  for (const auto& [path, base_value] : base_flat) {
    MetricDelta d;
    d.path = path;
    d.base = base_value;
    const DiffRule* rule = match_rule(rules, path);
    if (rule != nullptr && rule->ignore) {
      d.kind = DeltaKind::kIgnored;
      ++result.ignored;
      result.deltas.push_back(std::move(d));
      continue;
    }
    const auto it = cur_map.find(path);
    if (it == cur_map.end()) {
      d.kind = DeltaKind::kRemoved;
      ++result.regressions;
      result.deltas.push_back(std::move(d));
      continue;
    }
    d.current = it->second;
    ++result.compared;
    const double rel = rule != nullptr ? rule->rel_tol : 0.0;
    const double abs = rule != nullptr ? rule->abs_tol : 0.0;
    const int direction = rule != nullptr ? rule->direction : 0;
    const double tol = std::max(abs, rel * std::fabs(d.base));
    const double delta = d.current - d.base;
    if (std::fabs(delta) <= tol) {
      d.kind = DeltaKind::kOk;
    } else {
      const bool worse = direction == 0 || (direction > 0 && delta > 0) ||
                         (direction < 0 && delta < 0);
      d.kind = worse ? DeltaKind::kRegression : DeltaKind::kImprovement;
      if (worse)
        ++result.regressions;
      else
        ++result.improvements;
    }
    result.deltas.push_back(std::move(d));
  }
  for (const auto& [path, value] : cur_flat) {
    if (base_map.find(path) != base_map.end()) continue;
    MetricDelta d;
    d.path = path;
    d.current = value;
    d.kind = DeltaKind::kAdded;
    result.deltas.push_back(std::move(d));
  }
  return result;
}

std::string summarize_diff(const DiffResult& result, bool verbose) {
  std::string out;
  auto line = [&out](const char* tag, const MetricDelta& d) {
    char buf[256];
    std::snprintf(buf, sizeof(buf), "%-11s %-60s %.6g -> %.6g\n", tag,
                  d.path.c_str(), d.base, d.current);
    out += buf;
  };
  for (const MetricDelta& d : result.deltas) {
    switch (d.kind) {
      case DeltaKind::kRegression: line("REGRESSION", d); break;
      case DeltaKind::kRemoved: line("REMOVED", d); break;
      case DeltaKind::kImprovement: line("improvement", d); break;
      case DeltaKind::kAdded:
        if (verbose) line("added", d);
        break;
      case DeltaKind::kOk:
        if (verbose) line("ok", d);
        break;
      case DeltaKind::kIgnored:
        if (verbose) line("ignored", d);
        break;
    }
  }
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%zu compared, %zu regression(s), %zu improvement(s), "
                "%zu ignored\n",
                result.compared, result.regressions, result.improvements,
                result.ignored);
  out += buf;
  return out;
}

}  // namespace geo::telemetry
