// Chrome trace-event emission (chrome://tracing / Perfetto "JSON object
// format") plus the ScopedTimer span API the instrumented layers use.
//
// Tracing is OFF unless `GEO_TRACE=<path>` is set in the environment (or a
// test calls `Tracer::instance().enable(path)`); the disabled path is a
// single relaxed atomic load per span, so instrumentation can stay in hot
// code unconditionally. Buffered events are written at process exit, or
// earlier via `flush()` / `telemetry::shutdown()`.
//
// Recording is sharded: each thread appends to its own buffer under a
// per-shard mutex that is uncontended except while a flush drains it, so
// worker threads never serialize on a global lock per event. Flow events
// (`flow_out` / `flow_in`) draw Perfetto arrows from a submitting span to
// the spans it fans out, across threads and steals; `set_thread_name` /
// `set_process_name` become `ph:"M"` metadata so tracks read
// `geo-worker-N` instead of bare tids and multiple binaries don't collide
// on one pid.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"

namespace geo::telemetry {

// One numeric span argument, rendered into the trace event's "args" object.
struct TraceArg {
  const char* key;
  double value;
};

class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Starts (or redirects) recording to `path`. Buffered events are kept.
  void enable(std::string path);
  // Stops recording and drops any buffered events (thread/process names are
  // kept; they describe the process, not a recording session).
  void disable();

  // Duration-begin / duration-end ("B"/"E") events on the calling thread.
  void begin(std::string_view name, std::string_view category,
             std::initializer_list<TraceArg> args = {});
  void end(std::string_view name, std::string_view category);
  // Instant ("i") event.
  void instant(std::string_view name, std::string_view category,
               std::initializer_list<TraceArg> args = {});
  // Counter ("C") event: one sampled series value.
  void counter(std::string_view name, double value);

  // Flow events: a "s" (flow start) recorded inside a span on the
  // submitting thread, matched by "f" (flow finish, binding-point
  // "enclosing") events recorded inside the fanned-out spans. Perfetto
  // renders these as arrows from the parent span to each child span, even
  // when a steal moved the child to another worker. Allocate ids with
  // next_flow_id(); name/category must match across the s/f pair.
  std::uint64_t next_flow_id() {
    return next_flow_.fetch_add(1, std::memory_order_relaxed);
  }
  void flow_out(std::string_view name, std::string_view category,
                std::uint64_t flow_id);
  void flow_in(std::string_view name, std::string_view category,
               std::uint64_t flow_id);

  // Names the calling thread's track / this process in the rendered trace
  // (synthesized as ph:"M" metadata; not counted by event_count()). Cheap
  // enough to call unconditionally at thread start.
  void set_thread_name(std::string_view name);
  void set_process_name(std::string_view name);

  std::size_t event_count() const;

  // Renders the buffered events as a Chrome-trace JSON document.
  std::string render() const;

  // Writes the buffered events to the configured path and clears the
  // buffer. Events recorded concurrently with a flush are never dropped:
  // each shard is copied and cleared under its own lock, so a racing
  // record lands either in the written document or in the retained buffer.
  // No-op (returns true) when there is nothing new to write.
  bool flush();

  ~Tracer();

 private:
  Tracer();  // reads GEO_TRACE

  struct Event {
    double ts_us;
    char phase;
    std::uint64_t flow_id;  // nonzero only for "s"/"f" events
    std::string name;
    std::string category;
    std::string args_json;  // pre-rendered "args" object, may be empty
  };

  // Per-thread event buffer. Owned by the tracer (not the thread) so
  // buffered events survive thread exit until the next flush.
  struct Shard {
    explicit Shard(std::uint32_t t) : tid(t) {}
    const std::uint32_t tid;
    std::mutex mu;  // guards events + thread_name; uncontended off-flush
    std::vector<Event> events;
    std::string thread_name;
  };

  struct ShardSnapshot {
    std::uint32_t tid;
    std::string thread_name;
    std::vector<Event> events;
  };

  Shard& local_shard();
  void record(char phase, std::string_view name, std::string_view category,
              std::initializer_list<TraceArg> args, std::uint64_t flow_id = 0);
  double now_us() const;
  std::vector<ShardSnapshot> collect(bool drain) const;
  std::string emit(const std::vector<ShardSnapshot>& shards) const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_flow_{1};
  mutable std::mutex mu_;  // guards path_, process_name_, shards_ growth
  std::string path_;
  std::string process_name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::chrono::steady_clock::time_point epoch_;
};

// RAII span: observes elapsed seconds into `MetricsRegistry` histogram
// `name` and, when tracing is enabled, brackets the scope with B/E events.
// For hot loops, pre-fetch the histogram once and use the second overload.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, const char* category = "geo",
                       std::initializer_list<TraceArg> args = {});
  ScopedTimer(Histogram& histogram, const char* name,
              const char* category = "geo",
              std::initializer_list<TraceArg> args = {});
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  bool tracing_;
  std::chrono::steady_clock::time_point start_;
};

// Flushes the trace buffer (if tracing), the event journal (if
// GEO_JOURNAL is set), and exports metrics (if GEO_METRICS is set). Safe
// to call multiple times; also runs implicitly at process exit.
void shutdown();

}  // namespace geo::telemetry
