// Chrome trace-event emission (chrome://tracing / Perfetto "JSON object
// format") plus the ScopedTimer span API the instrumented layers use.
//
// Tracing is OFF unless `GEO_TRACE=<path>` is set in the environment (or a
// test calls `Tracer::instance().enable(path)`); the disabled path is a
// single relaxed atomic load per span, so instrumentation can stay in hot
// code unconditionally. Buffered events are written at process exit, or
// earlier via `flush()` / `telemetry::shutdown()`.
#pragma once

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.hpp"

namespace geo::telemetry {

// One numeric span argument, rendered into the trace event's "args" object.
struct TraceArg {
  const char* key;
  double value;
};

class Tracer {
 public:
  static Tracer& instance();

  bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Starts (or redirects) recording to `path`. Buffered events are kept.
  void enable(std::string path);
  // Stops recording and drops any buffered events.
  void disable();

  // Duration-begin / duration-end ("B"/"E") events on the calling thread.
  void begin(std::string_view name, std::string_view category,
             std::initializer_list<TraceArg> args = {});
  void end(std::string_view name, std::string_view category);
  // Instant ("i") event.
  void instant(std::string_view name, std::string_view category,
               std::initializer_list<TraceArg> args = {});
  // Counter ("C") event: one sampled series value.
  void counter(std::string_view name, double value);

  std::size_t event_count() const;

  // Renders the buffered events as a Chrome-trace JSON document.
  std::string render() const;

  // Writes render() to the configured path and clears the buffer.
  // No-op (returns true) when there is nothing new to write.
  bool flush();

  ~Tracer();

 private:
  Tracer();  // reads GEO_TRACE

  struct Event {
    double ts_us;
    std::uint32_t tid;
    char phase;
    std::string name;
    std::string category;
    std::string args_json;  // pre-rendered "args" object, may be empty
  };

  void record(char phase, std::string_view name, std::string_view category,
              std::initializer_list<TraceArg> args);
  double now_us() const;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::string path_;
  std::vector<Event> events_;
  bool dirty_ = false;  // events recorded since the last flush
  std::chrono::steady_clock::time_point epoch_;
};

// RAII span: observes elapsed seconds into `MetricsRegistry` histogram
// `name` and, when tracing is enabled, brackets the scope with B/E events.
// For hot loops, pre-fetch the histogram once and use the second overload.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name, const char* category = "geo",
                       std::initializer_list<TraceArg> args = {});
  ScopedTimer(Histogram& histogram, const char* name,
              const char* category = "geo",
              std::initializer_list<TraceArg> args = {});
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  const char* category_;
  Histogram* histogram_;
  bool tracing_;
  std::chrono::steady_clock::time_point start_;
};

// Flushes the trace buffer (if tracing) and exports metrics (if
// GEO_METRICS is set). Safe to call multiple times; also runs implicitly
// at process exit.
void shutdown();

}  // namespace geo::telemetry
