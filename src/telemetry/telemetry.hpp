// Umbrella header for the telemetry subsystem.
//
//   MetricsRegistry  process-wide counters / gauges / histograms, always on
//   ScopedTimer      RAII span: histogram timing + Chrome-trace B/E events
//   Tracer           sharded Chrome trace-event buffer, gated by
//                    GEO_TRACE=<path>
//   Journal          bounded structured event ring, gated by
//                    GEO_JOURNAL=<path>
//   exporters        JSON/CSV metric dumps, gated by GEO_METRICS=<path>
//   bench_diff       BENCH_*.json comparison under per-metric tolerances
//
// See docs/OBSERVABILITY.md for the environment knobs and file formats.
#pragma once

#include "telemetry/bench_diff.hpp"
#include "telemetry/export.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
