// Umbrella header for the telemetry subsystem.
//
//   MetricsRegistry  process-wide counters / gauges / histograms, always on
//   ScopedTimer      RAII span: histogram timing + Chrome-trace B/E events
//   Tracer           Chrome trace-event buffer, gated by GEO_TRACE=<path>
//   exporters        JSON/CSV metric dumps, gated by GEO_METRICS=<path>
//
// See docs/OBSERVABILITY.md for the environment knobs and file formats.
#pragma once

#include "telemetry/export.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
