#include "telemetry/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "telemetry/export.hpp"
#include "telemetry/json.hpp"

namespace geo::telemetry {

namespace {

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string args_to_json(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return {};
  Json obj = Json::object();
  for (const TraceArg& a : args) obj.set(a.key, Json(a.value));
  return obj.dump(0);
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  if (const char* path = std::getenv("GEO_TRACE");
      path != nullptr && path[0] != '\0')
    enable(path);
}

Tracer::~Tracer() { flush(); }

void Tracer::enable(std::string path) {
  std::lock_guard lock(mutex_);
  path_ = std::move(path);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  std::lock_guard lock(mutex_);
  enabled_.store(false, std::memory_order_relaxed);
  events_.clear();
  dirty_ = false;
  path_.clear();
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::record(char phase, std::string_view name,
                    std::string_view category,
                    std::initializer_list<TraceArg> args) {
  const double ts = now_us();
  const std::uint32_t tid = current_tid();
  std::lock_guard lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) return;  // raced a disable
  events_.push_back(Event{ts, tid, phase, std::string(name),
                          std::string(category), args_to_json(args)});
  dirty_ = true;
}

void Tracer::begin(std::string_view name, std::string_view category,
                   std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  record('B', name, category, args);
}

void Tracer::end(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  record('E', name, category, {});
}

void Tracer::instant(std::string_view name, std::string_view category,
                     std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  record('i', name, category, args);
}

void Tracer::counter(std::string_view name, double value) {
  if (!enabled()) return;
  record('C', name, "counter", {{"value", value}});
}

std::size_t Tracer::event_count() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

std::string Tracer::render() const {
  std::lock_guard lock(mutex_);
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (i > 0) out += ',';
    out += "\n{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":1,\"tid\":";
    out += std::to_string(e.tid);
    out += ",\"ts\":";
    {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
      out += buf;
    }
    if (!e.args_json.empty()) {
      out += ",\"args\":";
      out += e.args_json;
    }
    out += '}';
  }
  out += "\n]}";
  return out;
}

bool Tracer::flush() {
  std::string path;
  std::string doc;
  {
    std::lock_guard lock(mutex_);
    if (!dirty_ || path_.empty()) return true;
  }
  doc = render();
  {
    std::lock_guard lock(mutex_);
    path = path_;
    events_.clear();
    dirty_ = false;
  }
  std::ofstream os(path);
  if (!os) return false;
  os << doc << '\n';
  return static_cast<bool>(os);
}

// ---------------------------------------------------------------------------

ScopedTimer::ScopedTimer(const char* name, const char* category,
                         std::initializer_list<TraceArg> args)
    : ScopedTimer(MetricsRegistry::instance().histogram(name), name, category,
                  args) {}

ScopedTimer::ScopedTimer(Histogram& histogram, const char* name,
                         const char* category,
                         std::initializer_list<TraceArg> args)
    : name_(name),
      category_(category),
      histogram_(&histogram),
      tracing_(Tracer::instance().enabled()),
      start_(std::chrono::steady_clock::now()) {
  if (tracing_) Tracer::instance().begin(name_, category_, args);
}

ScopedTimer::~ScopedTimer() {
  const auto stop = std::chrono::steady_clock::now();
  histogram_->observe(
      std::chrono::duration<double>(stop - start_).count());
  if (tracing_) Tracer::instance().end(name_, category_);
}

void shutdown() {
  Tracer::instance().flush();
  export_metrics_if_requested(MetricsRegistry::instance());
}

}  // namespace geo::telemetry
