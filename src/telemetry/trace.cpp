#include "telemetry/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "telemetry/export.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/json.hpp"

namespace geo::telemetry {

namespace {

std::uint32_t current_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

int process_id() {
#if defined(__unix__) || defined(__APPLE__)
  static const int pid = static_cast<int>(::getpid());
  return pid;
#else
  return 1;
#endif
}

// Best-effort process name for the ph:"M" metadata; overridable via
// Tracer::set_process_name.
std::string default_process_name() {
#if defined(__linux__)
  std::ifstream comm("/proc/self/comm");
  std::string name;
  if (comm && std::getline(comm, name) && !name.empty()) return name;
#endif
  return "geo";
}

std::string args_to_json(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return {};
  Json obj = Json::object();
  for (const TraceArg& a : args) obj.set(a.key, Json(a.value));
  return obj.dump(0);
}

}  // namespace

Tracer& Tracer::instance() {
  // Intentionally leaked: pool workers name their shard at worker_main
  // entry and may still be alive when main's static destructors run
  // (ThreadPool teardown is not sequenced against this translation unit),
  // so the shards must outlive every thread. The final flush that the
  // destructor used to provide runs via atexit instead — flush() only
  // takes per-shard locks, so it is safe against a late worker.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  process_name_ = default_process_name();
  // The constructing thread is almost always main; pool workers rename
  // themselves at startup, so a mislabel self-corrects.
  set_thread_name("geo-main");
  if (const char* path = std::getenv("GEO_TRACE");
      path != nullptr && path[0] != '\0')
    enable(path);
  std::atexit([] { Tracer::instance().flush(); });
}

Tracer::~Tracer() { flush(); }

void Tracer::enable(std::string path) {
  std::lock_guard lock(mu_);
  path_ = std::move(path);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard lock(mu_);
  path_.clear();
  for (const auto& shard : shards_) {
    std::lock_guard shard_lock(shard->mu);
    shard->events.clear();
  }
}

double Tracer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::Shard& Tracer::local_shard() {
  // Cached per-thread shard pointer. Shards are owned by the (singleton)
  // tracer and never deallocated before process exit, so the cache cannot
  // dangle; a fresh thread starts at nullptr and registers on first use.
  thread_local Shard* cached = nullptr;
  if (cached == nullptr) {
    auto owned = std::make_unique<Shard>(current_tid());
    cached = owned.get();
    std::lock_guard lock(mu_);
    shards_.push_back(std::move(owned));
  }
  return *cached;
}

void Tracer::record(char phase, std::string_view name,
                    std::string_view category,
                    std::initializer_list<TraceArg> args,
                    std::uint64_t flow_id) {
  // Callers check enabled() before any of this work; the only lock taken
  // is the calling thread's own shard mutex, contended only by a
  // concurrent flush.
  const double ts = now_us();
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mu);
  shard.events.push_back(Event{ts, phase, flow_id, std::string(name),
                               std::string(category), args_to_json(args)});
}

void Tracer::begin(std::string_view name, std::string_view category,
                   std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  record('B', name, category, args);
}

void Tracer::end(std::string_view name, std::string_view category) {
  if (!enabled()) return;
  record('E', name, category, {});
}

void Tracer::instant(std::string_view name, std::string_view category,
                     std::initializer_list<TraceArg> args) {
  if (!enabled()) return;
  record('i', name, category, args);
}

void Tracer::counter(std::string_view name, double value) {
  if (!enabled()) return;
  record('C', name, "counter", {{"value", value}});
}

void Tracer::flow_out(std::string_view name, std::string_view category,
                      std::uint64_t flow_id) {
  if (!enabled()) return;
  record('s', name, category, {}, flow_id);
}

void Tracer::flow_in(std::string_view name, std::string_view category,
                     std::uint64_t flow_id) {
  if (!enabled()) return;
  record('f', name, category, {}, flow_id);
}

void Tracer::set_thread_name(std::string_view name) {
  Shard& shard = local_shard();
  std::lock_guard lock(shard.mu);
  shard.thread_name.assign(name);
}

void Tracer::set_process_name(std::string_view name) {
  std::lock_guard lock(mu_);
  process_name_.assign(name);
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  std::lock_guard lock(mu_);
  for (const auto& shard : shards_) {
    std::lock_guard shard_lock(shard->mu);
    n += shard->events.size();
  }
  return n;
}

std::vector<Tracer::ShardSnapshot> Tracer::collect(bool drain) const {
  // Shard pointers are stable once registered (the vector owns them via
  // unique_ptr), so only the list itself needs mu_.
  std::vector<Shard*> shards;
  {
    std::lock_guard lock(mu_);
    shards.reserve(shards_.size());
    for (const auto& s : shards_) shards.push_back(s.get());
  }
  std::vector<ShardSnapshot> out;
  out.reserve(shards.size());
  for (Shard* shard : shards) {
    std::lock_guard shard_lock(shard->mu);
    ShardSnapshot snap;
    snap.tid = shard->tid;
    snap.thread_name = shard->thread_name;
    if (drain)
      snap.events = std::move(shard->events);
    else
      snap.events = shard->events;
    if (drain) shard->events.clear();
    out.push_back(std::move(snap));
  }
  return out;
}

std::string Tracer::emit(const std::vector<ShardSnapshot>& shards) const {
  const int pid = process_id();
  std::string process_name;
  {
    std::lock_guard lock(mu_);
    process_name = process_name_;
  }

  // Merge shards into one timestamp-ordered stream. Ties break on (tid,
  // per-shard index) so the output is deterministic and each thread's B/E
  // nesting order is preserved (per-thread timestamps are monotone).
  struct Ref {
    double ts;
    std::uint32_t tid;
    std::size_t seq;
    const Event* event;
  };
  std::vector<Ref> refs;
  for (const ShardSnapshot& shard : shards)
    for (std::size_t k = 0; k < shard.events.size(); ++k)
      refs.push_back(Ref{shard.events[k].ts_us, shard.tid, k,
                         &shard.events[k]});
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.ts != b.ts) return a.ts < b.ts;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.seq < b.seq;
  });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
    out += "\n";
  };

  // Metadata first: process identity, then one named track per shard that
  // asked for a name. Sort indices keep tracks in registration order and
  // distinct binaries in pid order inside Perfetto.
  comma();
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
         json_escape(process_name) + "\"}}";
  comma();
  out += "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":0,\"args\":{\"sort_index\":" +
         std::to_string(pid) + "}}";
  for (const ShardSnapshot& shard : shards) {
    if (shard.thread_name.empty()) continue;
    comma();
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(shard.tid) +
           ",\"args\":{\"name\":\"" + json_escape(shard.thread_name) + "\"}}";
    comma();
    out += "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) + ",\"tid\":" + std::to_string(shard.tid) +
           ",\"args\":{\"sort_index\":" + std::to_string(shard.tid) + "}}";
  }

  for (const Ref& ref : refs) {
    const Event& e = *ref.event;
    comma();
    out += "{\"name\":\"";
    out += json_escape(e.name);
    out += "\",\"cat\":\"";
    out += json_escape(e.category);
    out += "\",\"ph\":\"";
    out += e.phase;
    out += "\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(ref.tid);
    out += ",\"ts\":";
    {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%.3f", e.ts_us);
      out += buf;
    }
    if (e.phase == 's' || e.phase == 'f') {
      out += ",\"id\":";
      out += std::to_string(e.flow_id);
      if (e.phase == 'f') out += ",\"bp\":\"e\"";
    }
    if (!e.args_json.empty()) {
      out += ",\"args\":";
      out += e.args_json;
    }
    out += '}';
  }
  out += "\n]}";
  return out;
}

std::string Tracer::render() const { return emit(collect(/*drain=*/false)); }

bool Tracer::flush() {
  std::string path;
  {
    std::lock_guard lock(mu_);
    path = path_;
  }
  if (path.empty()) return true;
  if (event_count() == 0) return true;  // nothing new since the last flush
  // Draining copies-and-clears each shard under its own lock, so an event
  // recorded while the file is being written stays buffered for the next
  // flush instead of being silently discarded.
  const std::string doc = emit(collect(/*drain=*/true));
  std::ofstream os(path);
  if (!os) return false;
  os << doc << '\n';
  return static_cast<bool>(os);
}

// ---------------------------------------------------------------------------

ScopedTimer::ScopedTimer(const char* name, const char* category,
                         std::initializer_list<TraceArg> args)
    : ScopedTimer(MetricsRegistry::instance().histogram(name), name, category,
                  args) {}

ScopedTimer::ScopedTimer(Histogram& histogram, const char* name,
                         const char* category,
                         std::initializer_list<TraceArg> args)
    : name_(name),
      category_(category),
      histogram_(&histogram),
      tracing_(Tracer::instance().enabled()),
      start_(std::chrono::steady_clock::now()) {
  if (tracing_) Tracer::instance().begin(name_, category_, args);
}

ScopedTimer::~ScopedTimer() {
  const auto stop = std::chrono::steady_clock::now();
  histogram_->observe(
      std::chrono::duration<double>(stop - start_).count());
  if (tracing_) Tracer::instance().end(name_, category_);
}

void shutdown() {
  Tracer::instance().flush();
  Journal::instance().flush();
  export_metrics_if_requested(MetricsRegistry::instance());
}

}  // namespace geo::telemetry
