#include "store/prefetch.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "exec/async_lane.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace geo::store {

namespace {

struct PrefetchCounters {
  telemetry::Counter& issued;
  telemetry::Counter& hits;
  telemetry::Counter& misses;
};

PrefetchCounters& counters() {
  auto& m = telemetry::MetricsRegistry::instance();
  static PrefetchCounters c{m.counter("store.prefetch_issued"),
                            m.counter("store.prefetch_hits"),
                            m.counter("store.prefetch_misses")};
  return c;
}

void journal_event(const char* kind, const std::string& label) {
  if (auto& journal = telemetry::Journal::instance(); journal.enabled())
    journal.record(kind, label);
}

}  // namespace

Prefetcher::~Prefetcher() {
  // Unconsumed prefetches must finish before the store they pin can go
  // away with us; the shared_futures own the results, so just wait.
  std::map<std::string, std::shared_future<geo::StatusOr<Pinned>>> pending;
  {
    std::lock_guard lock(mu_);
    pending.swap(pending_);
  }
  for (auto& [name, fut] : pending) fut.wait();
}

void Prefetcher::prefetch(const std::string& name,
                          std::function<void(const Pinned&)> warm) {
  {
    std::lock_guard lock(mu_);
    if (pending_.count(name) != 0) return;  // already in flight
    auto promise =
        std::make_shared<std::promise<geo::StatusOr<Pinned>>>();
    pending_.emplace(name, promise->get_future().share());
    exec::AsyncLane::io().submit(
        [&store = store_, name, promise, warm = std::move(warm)] {
          geo::StatusOr<Pinned> pinned = store.pin(name);
          if (pinned.ok() && warm != nullptr) warm(*pinned);
          promise->set_value(std::move(pinned));
        });
  }
  counters().issued.add(1);
  journal_event("store.prefetch", name);
}

geo::StatusOr<Pinned> Prefetcher::get(const std::string& name) {
  std::shared_future<geo::StatusOr<Pinned>> fut;
  bool prefetched = false;
  {
    std::lock_guard lock(mu_);
    if (auto it = pending_.find(name); it != pending_.end()) {
      fut = it->second;
      pending_.erase(it);
      prefetched = true;
    }
  }
  if (prefetched) {
    geo::StatusOr<Pinned> pinned = fut.get();  // copies out of the shared state
    if (pinned.ok()) {
      counters().hits.add(1);
      journal_event("store.prefetch_hit", name);
      // The load ran overlapped with the previous layer's execution: the
      // machine never stalled for it, so no io stall is charged.
      pinned->stats().io_stall_cycles = 0;
      pinned->stats().prefetched = true;
      return pinned;
    }
    // A failed prefetch (no source registered + persistent damage) is not a
    // verdict — retry synchronously so a transient-only world still serves.
  }
  counters().misses.add(1);
  journal_event("store.prefetch_miss", name);
  return store_.pin(name);
}

std::size_t Prefetcher::in_flight() const {
  std::lock_guard lock(mu_);
  return pending_.size();
}

}  // namespace geo::store
