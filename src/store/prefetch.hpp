// Prefetch pipelining for the out-of-core weight store (docs/STORAGE.md).
//
// While layer N executes on the machine, the Prefetcher pulls layer N+1's
// blocks through the full repair ladder on the process I/O lane
// (exec::AsyncLane::io()) — and, via the optional warm callback, builds its
// stream tables — so the load cost overlaps compute instead of serializing
// with it. get() then either
//
//   * consumes a completed/in-flight prefetch (store.prefetch_hit): the
//     LoadStats come back with io_stall_cycles zeroed and prefetched set —
//     an overlapped load stalls the machine for nothing, or
//   * falls back to a synchronous pin (store.prefetch_miss) with the full
//     modeled stall charged.
//
// Correctness is untouched either way: both paths go through
// WeightStore::pin, so the repair-or-fallback contract holds. Thread-safe.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>

#include "store/weight_store.hpp"

namespace geo::store {

class Prefetcher {
 public:
  // The store must outlive the prefetcher.
  explicit Prefetcher(WeightStore& store) : store_(store) {}
  ~Prefetcher();

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  // Starts an async pin of `name` on the I/O lane; idempotent while one is
  // already in flight. `warm` (optional) runs on the lane thread after a
  // successful pin — the hook for overlapping stream-table builds with the
  // previous layer's execution.
  void prefetch(const std::string& name,
                std::function<void(const Pinned&)> warm = nullptr);

  // Returns the layer, consuming an in-flight/completed prefetch when one
  // exists (blocking only for whatever tail of the load has not finished).
  geo::StatusOr<Pinned> get(const std::string& name);

  std::size_t in_flight() const;

 private:
  WeightStore& store_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_future<geo::StatusOr<Pinned>>> pending_;
};

}  // namespace geo::store
