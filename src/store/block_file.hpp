// GEOSTOR block files: the on-disk shard format of the out-of-core weight
// store (docs/STORAGE.md), in the GEOCKPT mold — magic + version up front,
// integrity checked on every read, atomic temp+rename+fsync writes.
//
// On-disk layout (little-endian):
//
//   offset  size  field
//   0       8     magic        "GEOSTOR\0"
//   8       4     version      format version (kBlockFileVersion)
//   12      4     block_count  number of data blocks
//   16      8     block_bytes  nominal block size (last block may be short)
//   24      8     payload_bytes  total data bytes (float32 payload)
//   32      4*n   crc          CRC-32 of each block's bytes
//   32+4*n  ...   payload      the blocks, back to back
//
// Unlike the checkpoint's single whole-image CRC, integrity is *per block*:
// a scratched block is detected, quarantined, and rebuilt individually
// while its neighbours keep serving. Reads go through the injected-fault
// hooks (GEO_FAULTS io_rot / io_short_read / io_err) so the repair ladder
// above this file is testable deterministically; every corruption — real or
// injected — surfaces as a non-OK Status, never as silent bad floats.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace geo::store {

inline constexpr std::uint32_t kBlockFileVersion = 1;

// Atomically writes `data` to `path` as a GEOSTOR file with blocks of
// `block_bytes` (any positive multiple of 4; callers size it via
// GEO_STORE_BLOCK_KB).
// The image lands in a temp file, is fsync'd, renamed over the target, and
// the parent directory is fsync'd — the commit is durable before this
// returns OK. An injected torn write (GEO_FAULTS io_short_write, keyed by
// `fault_site`) truncates the image silently; the damage is caught by the
// size/CRC checks on the next read, which is the point.
geo::Status write_block_file(const std::string& path,
                             std::span<const float> data,
                             std::int64_t block_bytes,
                             std::uint64_t fault_site);

// One open shard. Move-only; holds the file descriptor. Concurrent
// read_block calls are safe (pread, no shared cursor).
class BlockFile {
 public:
  BlockFile(BlockFile&&) noexcept;
  BlockFile& operator=(BlockFile&&) noexcept;
  ~BlockFile();

  // Opens and validates the header (magic, version, size arithmetic).
  // Fail-closed: kInvalidArgument for foreign files, kFailedPrecondition
  // for version skew or unopenable paths, kDataLoss for truncation.
  static geo::StatusOr<BlockFile> open(const std::string& path);

  std::uint32_t block_count() const noexcept { return block_count_; }
  std::uint64_t block_bytes() const noexcept { return block_bytes_; }
  std::uint64_t payload_bytes() const noexcept { return payload_bytes_; }
  const std::string& path() const noexcept { return path_; }

  // Byte size of block `i` (the last block may be short).
  std::uint64_t block_size(std::uint32_t i) const noexcept;

  // Reads block `i` into `out` (resized to block_size(i)) and verifies its
  // CRC. The injected-fault site is `fault_site ^ i`, so a defect-model
  // io_rot fault pins itself to a specific block. Errors:
  //   kUnavailable  injected transient errno (retryable)
  //   kDataLoss     short read, real or injected corruption (CRC mismatch)
  geo::Status read_block(std::uint32_t i, std::vector<unsigned char>& out,
                         std::uint64_t fault_site) const;

 private:
  BlockFile() = default;

  std::string path_;
  int fd_ = -1;
  std::uint32_t block_count_ = 0;
  std::uint64_t block_bytes_ = 0;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t data_offset_ = 0;
  std::vector<std::uint32_t> crcs_;
};

}  // namespace geo::store
