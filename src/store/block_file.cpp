#include "store/block_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>

#include <cstring>
#include <filesystem>
#include <utility>

#include "fault/fault_model.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/crc32.hpp"

namespace geo::store {

namespace {

constexpr char kMagic[8] = {'G', 'E', 'O', 'S', 'T', 'O', 'R', '\0'};
constexpr std::uint64_t kFixedHeader = 8 + 4 + 4 + 8 + 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

geo::Status write_block_file(const std::string& path,
                             std::span<const float> data,
                             std::int64_t block_bytes,
                             std::uint64_t fault_site) {
  if (block_bytes < 4 || block_bytes % 4 != 0)
    return geo::Status::invalid_argument(
        "store: block_bytes must be a positive multiple of 4, got " +
        std::to_string(block_bytes));
  const std::uint64_t payload = data.size() * sizeof(float);
  const std::uint64_t bb = static_cast<std::uint64_t>(block_bytes);
  const std::uint32_t blocks =
      payload == 0 ? 0 : static_cast<std::uint32_t>((payload + bb - 1) / bb);

  const auto* bytes = reinterpret_cast<const char*>(data.data());
  std::string image;
  image.reserve(kFixedHeader + 4ull * blocks + payload);
  image.append(kMagic, sizeof(kMagic));
  put_u32(image, kBlockFileVersion);
  put_u32(image, blocks);
  put_u64(image, bb);
  put_u64(image, payload);
  for (std::uint32_t i = 0; i < blocks; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>(i) * bb;
    const std::uint64_t len = std::min(bb, payload - off);
    put_u32(image, resilience::crc32(bytes + off, len));
  }
  image.append(bytes, payload);

  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec)
      return geo::Status::failed_precondition(
          "store: cannot create directory '" + target.parent_path().string() +
          "': " + ec.message());
  }

  // Injected torn write: the image lands truncated, *silently* — exactly
  // the failure a crashed write leaves behind. The rename still happens;
  // the next read's size/CRC checks catch it.
  std::size_t write_bytes = image.size();
  if (fault::FaultModel* fm = fault::active(); fm != nullptr)
    write_bytes = fm->short_write(image.size(), fault_site);

  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    return geo::Status::failed_precondition(
        "store: cannot open temp file '" + tmp + "' for writing");
  std::size_t done = 0;
  while (done < write_bytes) {
    const ssize_t n = ::write(fd, image.data() + done, write_bytes - done);
    if (n <= 0) {
      ::close(fd);
      std::filesystem::remove(tmp, ec);
      return geo::Status::data_loss("store: short write to '" + tmp + "'");
    }
    done += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::filesystem::remove(tmp, ec);
    return geo::Status::data_loss("store: fsync('" + tmp + "') failed");
  }
  ::close(fd);
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return geo::Status::data_loss("store: rename '" + tmp + "' -> '" + path +
                                  "' failed");
  }
  // Durable only once the directory entry is synced too (same contract as
  // resilience::write_checkpoint).
  return resilience::fsync_parent_dir(path);
}

// ---------------------------------------------------------------- BlockFile

BlockFile::BlockFile(BlockFile&& o) noexcept
    : path_(std::move(o.path_)),
      fd_(std::exchange(o.fd_, -1)),
      block_count_(o.block_count_),
      block_bytes_(o.block_bytes_),
      payload_bytes_(o.payload_bytes_),
      data_offset_(o.data_offset_),
      crcs_(std::move(o.crcs_)) {}

BlockFile& BlockFile::operator=(BlockFile&& o) noexcept {
  if (this != &o) {
    if (fd_ >= 0) ::close(fd_);
    path_ = std::move(o.path_);
    fd_ = std::exchange(o.fd_, -1);
    block_count_ = o.block_count_;
    block_bytes_ = o.block_bytes_;
    payload_bytes_ = o.payload_bytes_;
    data_offset_ = o.data_offset_;
    crcs_ = std::move(o.crcs_);
  }
  return *this;
}

BlockFile::~BlockFile() {
  if (fd_ >= 0) ::close(fd_);
}

geo::StatusOr<BlockFile> BlockFile::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return geo::Status::failed_precondition("store: cannot open '" + path +
                                            "'");
  BlockFile f;
  f.path_ = path;
  f.fd_ = fd;

  unsigned char hdr[kFixedHeader];
  const ssize_t n = ::pread(fd, hdr, sizeof(hdr), 0);
  if (n != static_cast<ssize_t>(sizeof(hdr)))
    return geo::Status::data_loss("store: '" + path +
                                  "' truncated (header short)");
  if (std::memcmp(hdr, kMagic, sizeof(kMagic)) != 0)
    return geo::Status::invalid_argument(
        "store: '" + path + "' is not a GEOSTOR block file (bad magic)");
  const std::uint32_t version = get_u32(hdr + 8);
  if (version != kBlockFileVersion)
    return geo::Status::failed_precondition(
        "store: '" + path + "' has format version " + std::to_string(version) +
        ", this build reads version " + std::to_string(kBlockFileVersion));
  f.block_count_ = get_u32(hdr + 12);
  f.block_bytes_ = get_u64(hdr + 16);
  f.payload_bytes_ = get_u64(hdr + 24);
  f.data_offset_ = kFixedHeader + 4ull * f.block_count_;

  // Size arithmetic must be self-consistent before any block is trusted.
  if (f.block_bytes_ == 0 || f.block_bytes_ % 4 != 0 ||
      f.payload_bytes_ % 4 != 0)
    return geo::Status::data_loss("store: '" + path +
                                  "' header sizes are inconsistent");
  const std::uint64_t expect_blocks =
      f.payload_bytes_ == 0
          ? 0
          : (f.payload_bytes_ + f.block_bytes_ - 1) / f.block_bytes_;
  if (expect_blocks != f.block_count_)
    return geo::Status::data_loss(
        "store: '" + path + "' block count mismatch (header claims " +
        std::to_string(f.block_count_) + ", sizes imply " +
        std::to_string(expect_blocks) + ")");
  struct stat st {};
  if (::fstat(fd, &st) != 0)
    return geo::Status::failed_precondition("store: cannot stat '" + path +
                                            "'");
  if (static_cast<std::uint64_t>(st.st_size) !=
      f.data_offset_ + f.payload_bytes_)
    return geo::Status::data_loss(
        "store: '" + path + "' truncated (" + std::to_string(st.st_size) +
        " bytes, header implies " +
        std::to_string(f.data_offset_ + f.payload_bytes_) + ")");

  f.crcs_.resize(f.block_count_);
  if (f.block_count_ > 0) {
    const ssize_t want = static_cast<ssize_t>(4ull * f.block_count_);
    if (::pread(fd, f.crcs_.data(), static_cast<std::size_t>(want),
                kFixedHeader) != want)
      return geo::Status::data_loss("store: '" + path +
                                    "' truncated (CRC table short)");
    // The table was read raw; normalize from little-endian storage.
    auto* raw = reinterpret_cast<unsigned char*>(f.crcs_.data());
    for (std::uint32_t i = 0; i < f.block_count_; ++i)
      f.crcs_[i] = get_u32(raw + 4ull * i);
  }
  return f;
}

std::uint64_t BlockFile::block_size(std::uint32_t i) const noexcept {
  if (i >= block_count_) return 0;
  const std::uint64_t off = static_cast<std::uint64_t>(i) * block_bytes_;
  return std::min(block_bytes_, payload_bytes_ - off);
}

geo::Status BlockFile::read_block(std::uint32_t i,
                                  std::vector<unsigned char>& out,
                                  std::uint64_t fault_site) const {
  if (i >= block_count_)
    return geo::Status::invalid_argument(
        "store: block " + std::to_string(i) + " out of range (file has " +
        std::to_string(block_count_) + ")");
  const std::uint64_t site = fault_site ^ i;
  fault::FaultModel* fm = fault::active();

  // Transient open/read errno, injected ahead of the syscall.
  if (fm != nullptr && fm->io_error(site))
    return geo::Status::unavailable("store: injected I/O error reading '" +
                                    path_ + "' block " + std::to_string(i));

  const std::uint64_t size = block_size(i);
  const std::uint64_t offset =
      data_offset_ + static_cast<std::uint64_t>(i) * block_bytes_;
  out.resize(size);
  std::size_t want = static_cast<std::size_t>(size);
  if (fm != nullptr) want = fm->short_read(want, site);
  const ssize_t got =
      ::pread(fd_, out.data(), want, static_cast<off_t>(offset));
  if (got != static_cast<ssize_t>(size)) {
    out.clear();
    return geo::Status::data_loss("store: short read of '" + path_ +
                                  "' block " + std::to_string(i) + " (" +
                                  std::to_string(got) + "/" +
                                  std::to_string(size) + " bytes)");
  }
  // Injected bit-rot lands in the buffer *before* the CRC check — the CRC
  // is the detection, not the injection, so rot can never slip through.
  if (fm != nullptr) fm->corrupt_block(out.data(), out.size(), site);
  const std::uint32_t actual = resilience::crc32(out.data(), out.size());
  if (actual != crcs_[i]) {
    out.clear();
    return geo::Status::data_loss(
        "store: '" + path_ + "' block " + std::to_string(i) +
        " CRC mismatch (stored " + std::to_string(crcs_[i]) + ", computed " +
        std::to_string(actual) + ")");
  }
  return geo::Status();
}

}  // namespace geo::store
