// Sharded, disk-backed weight/activation store with end-to-end integrity
// (docs/STORAGE.md).
//
// The LP design point models HBM2 external memory; this store makes the
// disk-to-weight-bank path real instead of resident. A layer's float payload
// is split across GEOSTOR shard files (block_file.hpp: magic + version +
// per-block CRC-32, atomic fsync'd writes), and every read climbs a repair
// ladder before a single corrupted bit can reach the machine:
//
//   detect      per-block CRC-32 on every read (real damage and injected
//               GEO_FAULTS io_rot/io_short_read/io_err alike)
//   reread      bounded exponential-backoff re-reads — recovers transient
//               errno/short-read faults
//   quarantine  a block that exhausts its reread budget is quarantined and
//   rebuild     its whole shard is rewritten from the registered source
//               provider, then re-verified
//   fallback    a block that still fails (defect-model rot survives any
//               rewrite) is served from the resident source directly
//
// so the contract is *repair or fallback, never silence*: pin() either
// returns bytes identical to the registered source or a non-OK Status —
// wired through ResilientExecutor, machine-vs-nn bit-exactness holds under
// every fault model. A background scrubber walks all blocks through the
// same ladder. Everything is surfaced as store.* metrics and journal kinds.
//
// Knobs (all validated fail-closed, see StoreOptions::from_env):
//   GEO_STORE_CACHE_MB   assembled-layer LRU cache budget (env_size; plain
//                        numbers mean MiB, suffixes accepted)   default 64
//   GEO_STORE_BLOCK_KB   nominal block size (env_size, KiB)     default 64
//   GEO_STORE_SHARD_MB   max shard file payload (env_size, MiB) default 4
//   GEO_STORE_REREADS    reread budget per block, [0,16]        default 3
//   GEO_STORE_BACKOFF    stall cycles before reread k: backoff << k
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace geo::store {

// Re-derives a layer's original float payload for rebuild-from-source and
// the last-rung resident fallback. Must not call back into the store.
using SourceFn = std::function<geo::StatusOr<std::vector<float>>()>;

struct StoreOptions {
  std::string dir;  // shard directory (required)
  std::int64_t cache_bytes = 64ll << 20;
  std::int64_t block_bytes = 64ll << 10;
  std::int64_t shard_bytes = 4ll << 20;
  int rereads = 3;
  std::int64_t reread_backoff = 64;  // stall cycles, doubles per attempt

  // Reads the GEO_STORE_* knobs (malformed values warn once, journal
  // config.invalid, and fall back — never abort).
  static StoreOptions from_env(std::string dir);

  // Fail-closed structural validation (empty dir, non-multiple-of-4 blocks,
  // shards smaller than a block, ...). A store built from an invalid
  // options struct refuses every operation with this status.
  geo::Status validate() const;
};

// What one pin()/load did — mirrored into store.* metrics, returned so
// callers can charge the modeled io stall into the machine ledger.
struct LoadStats {
  std::int64_t blocks = 0;        // blocks assembled from disk
  std::int64_t bytes = 0;         // payload bytes loaded
  std::int64_t rereads = 0;       // backoff re-reads issued
  std::int64_t crc_failures = 0;  // detection events (CRC/short/errno)
  std::int64_t quarantined = 0;   // blocks quarantined this load
  std::int64_t rebuilds = 0;      // shard rebuilds from source
  std::int64_t fallback_blocks = 0;  // blocks served from resident source
  bool cache_hit = false;
  bool prefetched = false;  // set by Prefetcher::get on a prefetch hit
  // Modeled stall: one cycle per 64-byte beat for the bytes actually pulled
  // from disk, plus the reread backoff — deterministic (never wall-clock),
  // so bench ledgers gate tightly. Zero on cache hits; the Prefetcher
  // zeroes it on prefetch hits (an overlapped load stalls nothing).
  std::int64_t io_stall_cycles = 0;
};

struct ScrubReport {
  std::int64_t layers = 0;
  std::int64_t blocks = 0;
  std::int64_t crc_failures = 0;
  std::int64_t shards_rebuilt = 0;
  std::int64_t unrecoverable = 0;  // still failing after rebuild (defect rot)
};

// A pinned, assembled layer: shared ownership of the float payload (LRU
// eviction never invalidates an outstanding pin) plus that load's stats.
class Pinned {
 public:
  Pinned() = default;
  std::span<const float> span() const noexcept {
    return data_ ? std::span<const float>(*data_) : std::span<const float>();
  }
  const LoadStats& stats() const noexcept { return stats_; }
  LoadStats& stats() noexcept { return stats_; }

 private:
  friend class WeightStore;
  std::shared_ptr<const std::vector<float>> data_;
  LoadStats stats_;
};

// The store. Thread-safe: replicas share one read-only store (pin from any
// thread); loads serialize on one mutex, cache hits are cheap.
class WeightStore {
 public:
  explicit WeightStore(StoreOptions opts);

  const StoreOptions& options() const noexcept { return opts_; }

  // Writes `data` to shard files under options().dir and registers the
  // layer. `source` enables rebuild and resident fallback; when omitted, a
  // copy of `data` is retained as the source (the safe default — without
  // any source, persistent corruption would be unrecoverable and pin()
  // would have to fail instead of degrade).
  geo::Status add_layer(const std::string& name, std::span<const float> data,
                        SourceFn source = nullptr);

  // Assembles the layer through the repair ladder (or returns it from the
  // LRU cache). Never returns silently-corrupt data: the span is byte-
  // identical to the source payload, or the Status is non-OK.
  geo::StatusOr<Pinned> pin(const std::string& name);

  // Walks every block of every layer through detect/rebuild, repairing real
  // on-disk damage from the source providers. Drops cached layers for
  // shards it rebuilt.
  ScrubReport scrub();
  // Runs scrub() on the process I/O lane (exec::AsyncLane::io()).
  std::future<void> scrub_async();

  std::vector<std::string> layer_names() const;
  std::uint64_t layer_floats(const std::string& name) const;  // 0 if unknown
  std::int64_t cached_bytes() const;

 private:
  struct Shard {
    std::string path;
    std::uint64_t fault_site = 0;  // stable across rebuilds (defect keying)
    std::uint64_t first_float = 0;
    std::uint64_t floats = 0;
  };
  struct Layer {
    std::uint64_t floats = 0;
    std::vector<Shard> shards;
    SourceFn source;
    std::set<std::uint64_t> quarantined;  // (shard_idx << 32) | block
  };

  geo::StatusOr<Pinned> assemble_locked(const std::string& name,
                                        Layer& layer);
  geo::Status load_shard_locked(const std::string& name, Layer& layer,
                                std::size_t shard_idx, float* dst,
                                LoadStats& stats,
                                std::vector<float>* source_cache);
  geo::Status source_floats_locked(const std::string& name,
                                   const Layer& layer,
                                   std::vector<float>* cache);
  void cache_insert_locked(const std::string& name,
                           std::shared_ptr<const std::vector<float>> data);

  StoreOptions opts_;
  geo::Status config_status_;  // non-OK => every operation refuses

  mutable std::mutex mu_;
  std::map<std::string, Layer> layers_;
  struct CacheEntry {
    std::shared_ptr<const std::vector<float>> data;
    std::list<std::string>::iterator lru_it;
  };
  std::map<std::string, CacheEntry> cache_;
  std::list<std::string> lru_;  // front = most recent
  std::int64_t cached_bytes_ = 0;
};

}  // namespace geo::store
