#include "store/weight_store.hpp"

#include <cstring>
#include <utility>

#include "core/env.hpp"
#include "exec/async_lane.hpp"
#include "store/block_file.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace geo::store {

namespace {

// Telemetry mirrors, hoisted once (registry lookups take a mutex).
struct StoreCounters {
  telemetry::Counter& loads;
  telemetry::Counter& load_blocks;
  telemetry::Counter& load_bytes;
  telemetry::Counter& cache_hits;
  telemetry::Counter& rereads;
  telemetry::Counter& crc_failures;
  telemetry::Counter& quarantines;
  telemetry::Counter& rebuilds;
  telemetry::Counter& fallback_blocks;
  telemetry::Counter& evictions;
  telemetry::Counter& scrub_passes;
};

StoreCounters& counters() {
  auto& m = telemetry::MetricsRegistry::instance();
  static StoreCounters c{m.counter("store.loads"),
                         m.counter("store.load_blocks"),
                         m.counter("store.load_bytes"),
                         m.counter("store.cache_hits"),
                         m.counter("store.rereads"),
                         m.counter("store.crc_failures"),
                         m.counter("store.quarantines"),
                         m.counter("store.rebuilds"),
                         m.counter("store.fallback_blocks"),
                         m.counter("store.evictions"),
                         m.counter("store.scrub_passes")};
  return c;
}

// The modeled external-memory transfer rate: one 64-byte beat per cycle.
// Deterministic by construction — the ledger must gate tightly in CI, so
// wall-clock never feeds it.
constexpr std::int64_t kBytesPerCycle = 64;

std::int64_t modeled_load_cycles(std::int64_t bytes) {
  return (bytes + kBytesPerCycle - 1) / kBytesPerCycle;
}

// Stable injection-site key for (layer, shard): survives rebuilds, so a
// defect-model io_rot fault keeps biting the same block through any number
// of rewrites — by design, that is what drains the ladder to fallback.
std::uint64_t shard_site(const std::string& layer, std::size_t shard) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : layer) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return core::mix64(h ^ (static_cast<std::uint64_t>(shard) << 32));
}

std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (c == '/' || c == '\\' || c == ':') c = '_';
  return out;
}

void journal_event(const char* kind, const std::string& label,
                   std::initializer_list<telemetry::JournalArg> args = {},
                   std::string_view note = {}) {
  if (auto& journal = telemetry::Journal::instance(); journal.enabled())
    journal.record(kind, label, args, note);
}

}  // namespace

// ---- StoreOptions ---------------------------------------------------------

StoreOptions StoreOptions::from_env(std::string dir) {
  StoreOptions o;
  o.dir = std::move(dir);
  o.cache_bytes =
      core::env_size("GEO_STORE_CACHE_MB", o.cache_bytes, 1ll << 20, 0);
  o.block_bytes = core::env_size("GEO_STORE_BLOCK_KB", o.block_bytes,
                                 1ll << 10, 4, 1ll << 30);
  o.shard_bytes = core::env_size("GEO_STORE_SHARD_MB", o.shard_bytes,
                                 1ll << 20, 4, 1ll << 40);
  o.rereads = static_cast<int>(core::env_int("GEO_STORE_REREADS", o.rereads,
                                             0, 16));
  o.reread_backoff =
      core::env_int("GEO_STORE_BACKOFF", o.reread_backoff, 0, 1ll << 32);
  return o;
}

geo::Status StoreOptions::validate() const {
  if (dir.empty())
    return geo::Status::invalid_argument("store: options.dir is empty");
  if (block_bytes < 4 || block_bytes % 4 != 0)
    return geo::Status::invalid_argument(
        "store: block_bytes must be a positive multiple of 4, got " +
        std::to_string(block_bytes));
  if (shard_bytes < block_bytes)
    return geo::Status::invalid_argument(
        "store: shard_bytes (" + std::to_string(shard_bytes) +
        ") must be >= block_bytes (" + std::to_string(block_bytes) + ")");
  if (shard_bytes % 4 != 0)
    return geo::Status::invalid_argument(
        "store: shard_bytes must be a multiple of 4, got " +
        std::to_string(shard_bytes));
  if (rereads < 0 || rereads > 16)
    return geo::Status::out_of_range("store: rereads must be in [0,16], got " +
                                     std::to_string(rereads));
  if (reread_backoff < 0)
    return geo::Status::out_of_range("store: reread_backoff must be >= 0");
  if (cache_bytes < 0)
    return geo::Status::out_of_range("store: cache_bytes must be >= 0");
  return geo::Status();
}

// ---- WeightStore ----------------------------------------------------------

WeightStore::WeightStore(StoreOptions opts)
    : opts_(std::move(opts)), config_status_(opts_.validate()) {}

geo::Status WeightStore::add_layer(const std::string& name,
                                   std::span<const float> data,
                                   SourceFn source) {
  if (!config_status_.ok()) return config_status_;
  if (name.empty())
    return geo::Status::invalid_argument("store: layer name is empty");
  std::lock_guard lock(mu_);
  if (layers_.count(name) != 0)
    return geo::Status::invalid_argument("store: layer '" + name +
                                         "' already added");
  Layer layer;
  layer.floats = data.size();
  const std::uint64_t shard_floats =
      static_cast<std::uint64_t>(opts_.shard_bytes) / 4;
  std::uint64_t pos = 0;
  std::size_t idx = 0;
  while (pos < data.size() || (data.empty() && idx == 0)) {
    Shard shard;
    shard.first_float = pos;
    shard.floats = std::min<std::uint64_t>(shard_floats, data.size() - pos);
    shard.path = opts_.dir + "/" + sanitize(name) + ".s" +
                 std::to_string(idx) + ".geostor";
    shard.fault_site = shard_site(name, idx);
    if (auto s = write_block_file(
            shard.path, data.subspan(pos, shard.floats), opts_.block_bytes,
            shard.fault_site);
        !s.ok())
      return s;
    pos += shard.floats;
    layer.shards.push_back(std::move(shard));
    ++idx;
    if (data.empty()) break;
  }
  if (source != nullptr) {
    layer.source = std::move(source);
  } else {
    // Safe default: retain a resident copy, so rebuild and fallback always
    // have somewhere to go (the "never silence" contract needs a source).
    auto copy = std::make_shared<std::vector<float>>(data.begin(), data.end());
    layer.source = [copy]() -> geo::StatusOr<std::vector<float>> {
      return *copy;
    };
  }
  layers_.emplace(name, std::move(layer));
  return geo::Status();
}

geo::StatusOr<Pinned> WeightStore::pin(const std::string& name) {
  if (!config_status_.ok()) return config_status_;
  std::lock_guard lock(mu_);
  auto it = layers_.find(name);
  if (it == layers_.end())
    return geo::Status::invalid_argument("store: unknown layer '" + name +
                                         "'");
  if (auto cit = cache_.find(name); cit != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, cit->second.lru_it);
    counters().cache_hits.add(1);
    Pinned p;
    p.data_ = cit->second.data;
    p.stats_.cache_hit = true;
    p.stats_.bytes = static_cast<std::int64_t>(p.data_->size() * 4);
    return p;
  }
  return assemble_locked(name, it->second);
}

geo::StatusOr<Pinned> WeightStore::assemble_locked(const std::string& name,
                                                   Layer& layer) {
  auto out = std::make_shared<std::vector<float>>(layer.floats);
  LoadStats stats;
  std::vector<float> source_cache;
  for (std::size_t s = 0; s < layer.shards.size(); ++s) {
    if (auto st = load_shard_locked(name, layer, s,
                                    out->data() + layer.shards[s].first_float,
                                    stats, &source_cache);
        !st.ok())
      return st;
  }
  stats.io_stall_cycles += modeled_load_cycles(stats.bytes);
  counters().loads.add(1);
  counters().load_blocks.add(stats.blocks);
  counters().load_bytes.add(stats.bytes);
  journal_event("store.load", name,
                {{"blocks", static_cast<double>(stats.blocks)},
                 {"bytes", static_cast<double>(stats.bytes)},
                 {"rereads", static_cast<double>(stats.rereads)},
                 {"fallback_blocks",
                  static_cast<double>(stats.fallback_blocks)}});
  cache_insert_locked(name, out);
  Pinned p;
  p.data_ = std::move(out);
  p.stats_ = stats;
  return p;
}

geo::Status WeightStore::source_floats_locked(const std::string& name,
                                              const Layer& layer,
                                              std::vector<float>* cache) {
  if (!cache->empty() || layer.floats == 0) return geo::Status();
  if (layer.source == nullptr)
    return geo::Status::failed_precondition(
        "store: layer '" + name + "' has no source provider");
  auto src = layer.source();
  if (!src.ok()) return src.status();
  if (src->size() != layer.floats)
    return geo::Status::data_loss(
        "store: source for '" + name + "' returned " +
        std::to_string(src->size()) + " floats, layer has " +
        std::to_string(layer.floats));
  *cache = *std::move(src);
  return geo::Status();
}

geo::Status WeightStore::load_shard_locked(const std::string& name,
                                           Layer& layer,
                                           std::size_t shard_idx, float* dst,
                                           LoadStats& stats,
                                           std::vector<float>* source_cache) {
  Shard& shard = layer.shards[shard_idx];
  const std::uint64_t shard_bytes = shard.floats * 4;
  auto src_fallback = [&](std::uint64_t byte_off,
                          std::uint64_t len) -> geo::Status {
    if (auto s = source_floats_locked(name, layer, source_cache); !s.ok())
      return s;
    std::memcpy(reinterpret_cast<char*>(dst) + byte_off,
                reinterpret_cast<const char*>(source_cache->data()) +
                    shard.first_float * 4 + byte_off,
                len);
    return geo::Status();
  };

  // One rebuild attempt per shard per load: under blanket corruption
  // (io_rot=1 on every block) the first failing block pays for the rewrite
  // and the rest fall straight back to the source.
  bool rebuilt_this_load = false;
  auto rebuild_shard = [&]() -> geo::Status {
    if (auto s = source_floats_locked(name, layer, source_cache); !s.ok())
      return s;
    const std::span<const float> slice(source_cache->data() +
                                           shard.first_float,
                                       shard.floats);
    if (auto s = write_block_file(shard.path, slice, opts_.block_bytes,
                                  shard.fault_site);
        !s.ok())
      return s;
    ++stats.rebuilds;
    counters().rebuilds.add(1);
    journal_event("store.rebuild", name,
                  {{"shard", static_cast<double>(shard_idx)}});
    rebuilt_this_load = true;
    return geo::Status();
  };

  auto open_file = [&]() -> geo::StatusOr<BlockFile> {
    return BlockFile::open(shard.path);
  };

  auto opened = open_file();
  if (!opened.ok()) {
    // A shard that won't even open (torn write, missing file) skips the
    // reread rung — reopening the same bytes cannot help — and goes
    // straight to rebuild, then whole-shard fallback.
    ++stats.crc_failures;
    counters().crc_failures.add(1);
    journal_event("store.crc_fail", name,
                  {{"shard", static_cast<double>(shard_idx)}},
                  opened.status().message());
    if (auto s = rebuild_shard(); !s.ok()) return s;
    opened = open_file();
    if (!opened.ok()) {
      journal_event("store.fallback", name,
                    {{"shard", static_cast<double>(shard_idx)}},
                    "shard unopenable after rebuild");
      const std::int64_t blocks = static_cast<std::int64_t>(
          (shard_bytes + opts_.block_bytes - 1) / opts_.block_bytes);
      stats.fallback_blocks += blocks;
      counters().fallback_blocks.add(blocks);
      return src_fallback(0, shard_bytes);
    }
  }
  BlockFile file = std::move(opened).value();

  std::vector<unsigned char> buf;
  for (std::uint32_t b = 0; b < file.block_count(); ++b) {
    const std::uint64_t byte_off =
        static_cast<std::uint64_t>(b) * file.block_bytes();
    geo::Status st = file.read_block(b, buf, shard.fault_site);
    int attempt = 0;
    while (!st.ok() && attempt < opts_.rereads) {
      ++stats.crc_failures;
      counters().crc_failures.add(1);
      if (attempt == 0)
        journal_event("store.crc_fail", name,
                      {{"shard", static_cast<double>(shard_idx)},
                       {"block", static_cast<double>(b)}},
                      st.message());
      // Bounded exponential backoff, charged as modeled stall cycles (the
      // disk isn't wall-clock in this simulator); a transient errno/short
      // read re-rolls and recovers here.
      stats.io_stall_cycles += opts_.reread_backoff << attempt;
      ++stats.rereads;
      counters().rereads.add(1);
      journal_event("store.reread", name,
                    {{"shard", static_cast<double>(shard_idx)},
                     {"block", static_cast<double>(b)},
                     {"attempt", static_cast<double>(attempt)}});
      st = file.read_block(b, buf, shard.fault_site);
      ++attempt;
    }
    if (!st.ok()) {
      // Reread budget exhausted: quarantine the block and rebuild the shard
      // from source, then give the rebuilt bytes one verification read.
      ++stats.crc_failures;
      counters().crc_failures.add(1);
      const std::uint64_t qkey =
          (static_cast<std::uint64_t>(shard_idx) << 32) | b;
      if (layer.quarantined.insert(qkey).second) {
        ++stats.quarantined;
        counters().quarantines.add(1);
        journal_event("store.quarantine", name,
                      {{"shard", static_cast<double>(shard_idx)},
                       {"block", static_cast<double>(b)}},
                      st.message());
      }
      if (!rebuilt_this_load) {
        if (auto s = rebuild_shard(); !s.ok()) return s;
        auto reopened = open_file();
        if (reopened.ok()) {
          file = std::move(reopened).value();
          st = file.read_block(b, buf, shard.fault_site);
        }
      }
      if (st.ok()) {
        layer.quarantined.erase(qkey);  // repaired for real
      } else {
        // Last rung: serve this block from the resident source. A defect-
        // model fault re-rots any rewrite, so this is where blanket
        // persistent corruption lands — degraded to resident, never wrong.
        journal_event("store.fallback", name,
                      {{"shard", static_cast<double>(shard_idx)},
                       {"block", static_cast<double>(b)}});
        ++stats.fallback_blocks;
        counters().fallback_blocks.add(1);
        if (auto s = src_fallback(byte_off, file.block_size(b)); !s.ok())
          return s;
        continue;
      }
    }
    std::memcpy(reinterpret_cast<char*>(dst) + byte_off, buf.data(),
                buf.size());
    ++stats.blocks;
    stats.bytes += static_cast<std::int64_t>(buf.size());
  }
  return geo::Status();
}

void WeightStore::cache_insert_locked(
    const std::string& name,
    std::shared_ptr<const std::vector<float>> data) {
  if (opts_.cache_bytes <= 0) return;
  const std::int64_t bytes = static_cast<std::int64_t>(data->size() * 4);
  if (auto it = cache_.find(name); it != cache_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    it->second.data = std::move(data);
    return;
  }
  lru_.push_front(name);
  cache_[name] = CacheEntry{std::move(data), lru_.begin()};
  cached_bytes_ += bytes;
  while (cached_bytes_ > opts_.cache_bytes && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto vit = cache_.find(victim);
    cached_bytes_ -= static_cast<std::int64_t>(vit->second.data->size() * 4);
    cache_.erase(vit);
    counters().evictions.add(1);
  }
}

ScrubReport WeightStore::scrub() {
  ScrubReport report;
  if (!config_status_.ok()) return report;
  std::lock_guard lock(mu_);
  for (auto& [name, layer] : layers_) {
    ++report.layers;
    bool layer_rebuilt = false;
    for (std::size_t s = 0; s < layer.shards.size(); ++s) {
      Shard& shard = layer.shards[s];
      auto verify = [&](std::int64_t* failures) -> bool {
        auto opened = BlockFile::open(shard.path);
        if (!opened.ok()) {
          ++*failures;
          return false;
        }
        std::vector<unsigned char> buf;
        bool clean = true;
        for (std::uint32_t b = 0; b < opened->block_count(); ++b) {
          ++report.blocks;
          if (!opened->read_block(b, buf, shard.fault_site).ok()) {
            ++*failures;
            clean = false;
          }
        }
        return clean;
      };
      if (verify(&report.crc_failures)) continue;
      counters().crc_failures.add(1);
      // Dirty shard: rewrite from source, then re-verify once. Blocks still
      // failing after the rewrite (a defect-model fault re-rots them) are
      // unrecoverable on disk; pin() serves them from the source instead.
      std::vector<float> src;
      if (!source_floats_locked(name, layer, &src).ok()) {
        ++report.unrecoverable;
        continue;
      }
      const std::span<const float> slice(src.data() + shard.first_float,
                                         shard.floats);
      if (!write_block_file(shard.path, slice, opts_.block_bytes,
                            shard.fault_site)
               .ok()) {
        ++report.unrecoverable;
        continue;
      }
      ++report.shards_rebuilt;
      counters().rebuilds.add(1);
      journal_event("store.rebuild", name,
                    {{"shard", static_cast<double>(s)}}, "scrub");
      layer_rebuilt = true;
      std::int64_t still = 0;
      if (verify(&still)) {
        // Fully repaired: lift the quarantine for this shard.
        for (auto it = layer.quarantined.begin();
             it != layer.quarantined.end();)
          it = (*it >> 32) == s ? layer.quarantined.erase(it) : ++it;
      } else {
        report.unrecoverable += still;
      }
    }
    if (layer_rebuilt) {
      // Drop the cached assembly so the next pin re-reads the fresh bytes.
      if (auto cit = cache_.find(name); cit != cache_.end()) {
        cached_bytes_ -=
            static_cast<std::int64_t>(cit->second.data->size() * 4);
        lru_.erase(cit->second.lru_it);
        cache_.erase(cit);
      }
    }
  }
  counters().scrub_passes.add(1);
  journal_event(
      "store.scrub", "store",
      {{"blocks", static_cast<double>(report.blocks)},
       {"crc_failures", static_cast<double>(report.crc_failures)},
       {"shards_rebuilt", static_cast<double>(report.shards_rebuilt)},
       {"unrecoverable", static_cast<double>(report.unrecoverable)}});
  return report;
}

std::future<void> WeightStore::scrub_async() {
  return exec::AsyncLane::io().submit([this] { scrub(); });
}

std::vector<std::string> WeightStore::layer_names() const {
  std::lock_guard lock(mu_);
  std::vector<std::string> names;
  names.reserve(layers_.size());
  for (const auto& [name, layer] : layers_) names.push_back(name);
  return names;
}

std::uint64_t WeightStore::layer_floats(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = layers_.find(name);
  return it == layers_.end() ? 0 : it->second.floats;
}

std::int64_t WeightStore::cached_bytes() const {
  std::lock_guard lock(mu_);
  return cached_bytes_;
}

}  // namespace geo::store
