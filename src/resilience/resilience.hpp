// Fault-tolerant execution runtime: detect -> retry -> degrade.
//
// ResilientExecutor wraps GeoMachine's tile-granular ConvExecution in a
// bounded detect-and-retry loop (docs/RESILIENCE.md). Detection draws on
// four sources:
//
//   kSecdedDoubleBit  SECDED flagged an uncorrectable (multi-bit) SRAM word
//   kParityZeroed     parity ECC detected and zeroed a corrupted word
//   kPsumCrc          the partial-sum CRC guard caught a psum readback that
//                     does not match what the tile stored (Site::kPsumSram)
//   kPsumRange        a partial sum left the provable |c| <= taps * L bound
//   kLedger           the layer's cycle ledger failed to reconcile
//
// A detected tile re-executes from its prepare-time input snapshot under a
// bounded retry budget; each retry charges exponentially growing backoff
// stall cycles to the machine's ledger and regenerates the tile's activation
// streams (so a transient fault model can actually recover — a defect model
// reproduces the fault and exhausts the budget). A tile that exhausts its
// budget trips the layer's circuit breaker: the whole layer descends the
// degradation ladder
//
//   native accumulation -> kPbw -> kFxp -> fixed-point reference
//
// re-executing on progressively more robust hardware modes, bottoming out in
// nn::fxp_reference_counters — a bit-exact, fault-free software rung that
// always succeeds. Every outcome lands in a ResilienceReport and in the
// fault.recovered / fault.degraded telemetry counters.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "arch/hw_config.hpp"
#include "arch/machine.hpp"
#include "core/status.hpp"
#include "exec/cancel.hpp"

namespace geo::resilience {

// Bounded-retry knobs, overridable via GEO_RETRY (see parse()).
struct RetryPolicy {
  int retries = 2;            // re-executions per tile after the first run
  std::int64_t backoff = 32;  // stall cycles charged before the first retry
  bool guards = true;         // psum range + CRC readback guards

  // Stall cycles charged before retry `attempt` (0-based): backoff << attempt.
  std::int64_t backoff_for(int attempt) const noexcept;

  // Parses "retries=N,backoff=C,guards=0|1" (any subset, comma-separated).
  // Unknown keys / malformed values are rejected with a diagnostic.
  static geo::StatusOr<RetryPolicy> parse(std::string_view spec);

  // GEO_RETRY, parsed fresh on each call. Unset/empty -> defaults; a
  // malformed spec warns on stderr, records a `config.invalid` journal
  // entry (so chaos-run postmortems show the rejected spec), and returns
  // the defaults — never aborts.
  static RetryPolicy from_env();

  std::string to_string() const;
};

// Detection sources, in report order.
enum class Detect {
  kSecdedDoubleBit = 0,
  kParityZeroed,
  kPsumCrc,
  kPsumRange,
  kLedger,
};
inline constexpr int kDetectKinds = 5;

const char* to_string(Detect d) noexcept;

// Degradation-ladder rungs, most to least capable.
enum class Rung {
  kNative = 0,  // the configured SC accumulation mode
  kPbw,         // partial-binary accumulation
  kFxp,         // fixed-point (direct binary) accumulation on the machine
  kReference,   // bit-exact software fixed-point reference (always succeeds)
};

const char* to_string(Rung r) noexcept;

// Per-layer record of what the runtime did.
struct LayerOutcome {
  std::string layer;                 // caller-supplied label
  Rung rung = Rung::kNative;         // the rung whose result was accepted
  bool degraded = false;             // rung != kNative
  std::int64_t tiles = 0;            // tile count of the accepted execution
  std::int64_t tiles_retried = 0;    // tiles that needed at least one retry
  std::int64_t tiles_recovered = 0;  // retried tiles that then passed
  std::int64_t retries = 0;          // total tile re-executions, all rungs
  std::array<std::int64_t, kDetectKinds> detections{};  // by Detect value
  // Backoff stall cycles charged into the accepted execution's ledger.
  std::int64_t backoff_cycles = 0;
  // Cycles spent on rung attempts that were abandoned (their ledgers are
  // discarded with them; this keeps the work visible).
  std::int64_t abandoned_cycles = 0;
  bool ledger_ok = true;  // accepted execution's ledger reconciled

  // Total extra cycles attributable to fault recovery on this layer.
  std::int64_t retry_cycles() const noexcept {
    return backoff_cycles + abandoned_cycles;
  }
};

struct ResilienceReport {
  std::vector<LayerOutcome> layers;

  bool any_retried() const noexcept;
  bool any_degraded() const noexcept;
  // True when every accepted execution's cycle ledger reconciled and the
  // backoff cycles this runtime charged are visible in those ledgers.
  bool ledger_ok() const noexcept;

  std::int64_t tiles_retried() const noexcept;
  std::int64_t tiles_recovered() const noexcept;
  std::int64_t layers_degraded() const noexcept;
  std::int64_t total_retry_cycles() const noexcept;

  // Per-layer retry_cycles(), in layer order — the PerfSim mirror input
  // (arch::apply_retry_cycles).
  std::vector<std::int64_t> per_layer_retry_cycles() const;

  // Human-readable multi-line summary (one line per layer + a totals line).
  std::string summary() const;
  // JSON object for bench reports.
  std::string to_json() const;
};

// Per-run controls layered on the policy (the serving runtime's knobs).
struct RunOptions {
  // First ladder rung to attempt. kNative is the normal path; the serving
  // layer steers overload traffic straight to a degraded rung (pbw/fxp/
  // reference) instead of shedding it (docs/SERVING.md). Rungs more capable
  // than `start` are skipped; a non-native start marks the outcome degraded.
  Rung start = Rung::kNative;
  // Cooperative cancellation, polled at every tile boundary (serial loop
  // and parallel Phase A alike) and before each rung. A fired token makes
  // run_conv return kDeadlineExceeded; the partial execution is abandoned
  // (no outcome is appended) and the machine stays reusable — the next
  // run_conv on this executor is byte-identical to a fresh one.
  exec::CancelToken* cancel = nullptr;
  // Stall cycles the out-of-core weight store charges for block-load latency
  // this layer's execution could not overlap (store::WeightStore pin/wait
  // stalls, already converted to cycles by the caller). Charged into the
  // accepted machine execution's io sub-bucket just before its ledger
  // reconciles, so attribution reports the load wait as memory cost. The
  // reference rung carries zeroed machine stats and skips the charge.
  std::int64_t io_stall_cycles = 0;
};

// One member of a batched layer dispatch (run_conv_batch): same layer
// (shape/weights/BN/salt), a private input snapshot, and per-request
// controls. Spans must outlive the call.
struct BatchItem {
  std::span<const float> input;
  std::string label;                     // journal/report label
  exec::CancelToken* cancel = nullptr;   // polled at tile boundaries
  std::int64_t io_stall_cycles = 0;      // weight-store pin wait (see RunOptions)
};

// Per-item result of run_conv_batch, in item order.
struct BatchItemResult {
  geo::StatusOr<arch::MachineResult> result;
  bool degraded = false;  // accepted below kNative (meaningful when ok())
  // True when the item executed on the batch-shared preparation; false when
  // it fell back to a solo run_conv (transient fault model, steered-to-
  // reference batch, or a rung failure demotion) — the solo path is the
  // unbatched code verbatim.
  bool shared = false;
};

// Drives convolution layers through detect -> retry -> degrade. One executor
// per network pass; outcomes accumulate in report() in call order.
class ResilientExecutor {
 public:
  explicit ResilientExecutor(const arch::HwConfig& hw,
                             RetryPolicy policy = RetryPolicy::from_env());

  // Executes one layer like GeoMachine::try_run_conv, but fault-tolerantly.
  // Returns the accepted rung's result (reference-rung results carry zeroed
  // machine stats; their ledger is trivially reconciled). Non-degraded
  // executions are bit-identical to GeoMachine::try_run_conv under the same
  // fault model; degraded-to-reference layers match
  // nn::fxp_reference_counters exactly.
  geo::StatusOr<arch::MachineResult> run_conv(
      const arch::ConvShape& shape, std::span<const float> weights,
      std::span<const float> input, std::span<const float> bn_scale,
      std::span<const float> bn_shift, std::uint64_t layer_salt,
      std::string label = "", RunOptions options = {});

  // Executes one layer for a batch of inputs, preparing the conv once and
  // rebinding it per item (ConvExecution::rebind_input) — the serving
  // batcher's amortization path. Per-item outputs are byte-identical to a
  // solo run_conv on the same input; per-item outcomes append to report()
  // in item order (cancelled items append nothing, like run_conv). Items
  // whose shared-rung walk fails (retry budget drained) demote to a solo
  // run_conv so the full degradation ladder still applies. The whole batch
  // falls back to per-item run_conv when sharing is unsound or pointless:
  // a transient fault model (regeneration draws fresh per-site sequences),
  // a kReference start, or a single-item batch. `start` mirrors
  // RunOptions::start for every item.
  std::vector<BatchItemResult> run_conv_batch(
      const arch::ConvShape& shape, std::span<const float> weights,
      std::span<const float> bn_scale, std::span<const float> bn_shift,
      std::uint64_t layer_salt, std::vector<BatchItem>& items,
      Rung start = Rung::kNative);

  const RetryPolicy& policy() const noexcept { return policy_; }
  const ResilienceReport& report() const noexcept { return report_; }
  ResilienceReport take_report() { return std::move(report_); }

  // The most recent completed run_conv's outcome (nullptr before the first
  // completion). The serving layer reads this per attempt to decide
  // failover: `degraded` means the retry budget drained on every attempted
  // rung (a persistent fault — route away), while `tiles_recovered > 0`
  // with `degraded == false` means in-place retries absorbed a transient.
  const LayerOutcome* last_outcome() const noexcept {
    return report_.layers.empty() ? nullptr : &report_.layers.back();
  }

 private:
  arch::HwConfig hw_;
  RetryPolicy policy_;
  ResilienceReport report_;
};

}  // namespace geo::resilience
