#include "resilience/resilience.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <unordered_set>

#include "core/env.hpp"
#include "exec/parallel_conv.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "nn/sc_layers.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace geo::resilience {

namespace {

bool parse_u64(std::string_view tok, std::uint64_t& out) {
  const std::optional<std::uint64_t> parsed = core::parse_uint(tok);
  if (!parsed.has_value()) return false;
  out = *parsed;
  return true;
}

}  // namespace

// ---- RetryPolicy ----------------------------------------------------------

std::int64_t RetryPolicy::backoff_for(int attempt) const noexcept {
  if (attempt < 0) attempt = 0;
  if (attempt > 30) attempt = 30;  // cap the shift, not the stall
  return backoff << attempt;
}

geo::StatusOr<RetryPolicy> RetryPolicy::parse(std::string_view spec) {
  RetryPolicy policy;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      return geo::Status::invalid_argument(
          "GEO_RETRY: '" + std::string(item) + "' is not key=value");
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    if (key == "retries") {
      std::uint64_t n = 0;
      if (!parse_u64(val, n) || n > 16)
        return geo::Status::out_of_range(
            "GEO_RETRY: retries='" + std::string(val) +
            "' must be an integer in [0,16]");
      policy.retries = static_cast<int>(n);
    } else if (key == "backoff") {
      std::uint64_t c = 0;
      if (!parse_u64(val, c) || c > (1ull << 32))
        return geo::Status::out_of_range(
            "GEO_RETRY: backoff='" + std::string(val) +
            "' must be a cycle count in [0,2^32]");
      policy.backoff = static_cast<std::int64_t>(c);
    } else if (key == "guards") {
      if (val == "1")
        policy.guards = true;
      else if (val == "0")
        policy.guards = false;
      else
        return geo::Status::invalid_argument(
            "GEO_RETRY: guards='" + std::string(val) + "' (want 0|1)");
    } else {
      return geo::Status::invalid_argument(
          "GEO_RETRY: unknown key '" + std::string(key) +
          "' (known: retries, backoff, guards)");
    }
  }
  return policy;
}

RetryPolicy RetryPolicy::from_env() {
  const char* v = std::getenv("GEO_RETRY");
  if (v == nullptr || v[0] == '\0') return RetryPolicy{};
  auto parsed = RetryPolicy::parse(v);
  if (!parsed.ok()) {
    std::fprintf(stderr, "geo: ignoring GEO_RETRY: %s\n",
                 parsed.status().message().c_str());
    // The rejection must survive into postmortems, not just scroll past on
    // stderr: a chaos run whose retry ladder silently ran on defaults is
    // otherwise indistinguishable from a tuned one.
    if (auto& journal = telemetry::Journal::instance(); journal.enabled())
      journal.record("config.invalid", "GEO_RETRY", {},
                     parsed.status().message());
    return RetryPolicy{};
  }
  return *std::move(parsed);
}

std::string RetryPolicy::to_string() const {
  return "retries=" + std::to_string(retries) +
         ",backoff=" + std::to_string(backoff) +
         ",guards=" + std::string(guards ? "1" : "0");
}

// ---- enums ----------------------------------------------------------------

const char* to_string(Detect d) noexcept {
  switch (d) {
    case Detect::kSecdedDoubleBit: return "secded_double_bit";
    case Detect::kParityZeroed: return "parity_zeroed";
    case Detect::kPsumCrc: return "psum_crc";
    case Detect::kPsumRange: return "psum_range";
    case Detect::kLedger: return "ledger";
  }
  return "?";
}

const char* to_string(Rung r) noexcept {
  switch (r) {
    case Rung::kNative: return "native";
    case Rung::kPbw: return "pbw";
    case Rung::kFxp: return "fxp";
    case Rung::kReference: return "reference";
  }
  return "?";
}

// ---- ResilienceReport -----------------------------------------------------

bool ResilienceReport::any_retried() const noexcept {
  for (const auto& l : layers)
    if (l.tiles_retried > 0) return true;
  return false;
}

bool ResilienceReport::any_degraded() const noexcept {
  for (const auto& l : layers)
    if (l.degraded) return true;
  return false;
}

bool ResilienceReport::ledger_ok() const noexcept {
  for (const auto& l : layers)
    if (!l.ledger_ok) return false;
  return true;
}

std::int64_t ResilienceReport::tiles_retried() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.tiles_retried;
  return n;
}

std::int64_t ResilienceReport::tiles_recovered() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.tiles_recovered;
  return n;
}

std::int64_t ResilienceReport::layers_degraded() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.degraded ? 1 : 0;
  return n;
}

std::int64_t ResilienceReport::total_retry_cycles() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.retry_cycles();
  return n;
}

std::vector<std::int64_t> ResilienceReport::per_layer_retry_cycles() const {
  std::vector<std::int64_t> out;
  out.reserve(layers.size());
  for (const auto& l : layers) out.push_back(l.retry_cycles());
  return out;
}

std::string ResilienceReport::summary() const {
  std::ostringstream os;
  os << "resilience: " << layers.size() << " layer(s), " << tiles_retried()
     << " tile(s) retried, " << tiles_recovered() << " recovered, "
     << layers_degraded() << " layer(s) degraded, " << total_retry_cycles()
     << " retry cycle(s), ledger " << (ledger_ok() ? "ok" : "MISMATCH")
     << "\n";
  for (const auto& l : layers) {
    os << "  " << (l.layer.empty() ? "<layer>" : l.layer) << ": rung "
       << to_string(l.rung) << (l.degraded ? " (degraded)" : "") << ", "
       << l.tiles << " tiles, " << l.tiles_retried << " retried, "
       << l.tiles_recovered << " recovered, " << l.retries << " retries";
    bool first = true;
    for (int d = 0; d < kDetectKinds; ++d) {
      if (l.detections[static_cast<std::size_t>(d)] == 0) continue;
      os << (first ? " [" : ", ") << to_string(static_cast<Detect>(d)) << "="
         << l.detections[static_cast<std::size_t>(d)];
      first = false;
    }
    if (!first) os << "]";
    os << "\n";
  }
  return os.str();
}

std::string ResilienceReport::to_json() const {
  std::ostringstream os;
  os << "{\"tiles_retried\":" << tiles_retried()
     << ",\"tiles_recovered\":" << tiles_recovered()
     << ",\"layers_degraded\":" << layers_degraded()
     << ",\"retry_cycles\":" << total_retry_cycles() << ",\"ledger_ok\":"
     << (ledger_ok() ? "true" : "false") << ",\"layers\":[";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerOutcome& l = layers[i];
    if (i != 0) os << ",";
    os << "{\"layer\":\"" << l.layer << "\",\"rung\":\"" << to_string(l.rung)
       << "\",\"degraded\":" << (l.degraded ? "true" : "false")
       << ",\"tiles\":" << l.tiles << ",\"tiles_retried\":" << l.tiles_retried
       << ",\"tiles_recovered\":" << l.tiles_recovered
       << ",\"retries\":" << l.retries
       << ",\"backoff_cycles\":" << l.backoff_cycles
       << ",\"abandoned_cycles\":" << l.abandoned_cycles
       << ",\"ledger_ok\":" << (l.ledger_ok ? "true" : "false")
       << ",\"detections\":{";
    bool first = true;
    for (int d = 0; d < kDetectKinds; ++d) {
      if (l.detections[static_cast<std::size_t>(d)] == 0) continue;
      if (!first) os << ",";
      os << "\"" << to_string(static_cast<Detect>(d))
         << "\":" << l.detections[static_cast<std::size_t>(d)];
      first = false;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

// ---- ResilientExecutor ----------------------------------------------------

ResilientExecutor::ResilientExecutor(const arch::HwConfig& hw,
                                     RetryPolicy policy)
    : hw_(hw), policy_(policy) {}

namespace {

// Detection signals observed on one tile attempt.
struct TileSignals {
  std::array<std::int64_t, kDetectKinds> hits{};
  bool any = false;

  void add(Detect d) {
    ++hits[static_cast<std::size_t>(d)];
    any = true;
  }

  void merge(const TileSignals& other) {
    for (int d = 0; d < kDetectKinds; ++d)
      hits[static_cast<std::size_t>(d)] +=
          other.hits[static_cast<std::size_t>(d)];
    any = any || other.any;
  }

  std::int64_t count() const {
    std::int64_t n = 0;
    for (const std::int64_t h : hits) n += h;
    return n;
  }
};

// The Detect kind an uncorrectable ECC event reports under this model.
Detect ecc_detect_kind(const fault::FaultModel& fm) {
  return fm.config().ecc == fault::EccMode::kParity ? Detect::kParityZeroed
                                                    : Detect::kSecdedDoubleBit;
}

// ECC uncorrectable events observed since `before` (detected minus
// corrected across the attempt's window).
TileSignals ecc_delta_signals(fault::FaultModel* fm,
                              const fault::FaultStats& before) {
  TileSignals sig;
  if (fm == nullptr) return sig;
  const fault::FaultStats now = fm->stats();
  const std::int64_t detected =
      now.sram_errors_detected - before.sram_errors_detected;
  const std::int64_t corrected =
      now.sram_errors_corrected - before.sram_errors_corrected;
  const std::int64_t uncorrectable = detected - corrected;
  for (std::int64_t i = 0; i < uncorrectable; ++i)
    sig.add(ecc_detect_kind(*fm));
  return sig;
}

// The partial-sum range and CRC-readback guards over the tile's outputs
// (no-op when the policy disables guards). The CRC probe is a real guard
// read: it charges ECC retry cycles and counts events exactly like the
// hardware readback would.
TileSignals guard_signals(const arch::ConvExecution& exec, std::int64_t tile,
                          const arch::ConvShape& shape,
                          const RetryPolicy& policy) {
  TileSignals sig;
  if (!policy.guards) return sig;
  fault::FaultModel* fm = fault::active();

  const std::span<const std::int32_t> counters = exec.counters();
  const std::int64_t bound = static_cast<std::int64_t>(shape.taps()) *
                             exec.config().stream_len;
  for (const std::size_t oidx : exec.tile_outputs(tile)) {
    const std::int32_t c = counters[oidx];
    // Provable partial-sum envelope: |pos - neg| over taps*L stream bits.
    if (std::abs(static_cast<std::int64_t>(c)) > bound)
      sig.add(Detect::kPsumRange);
    // CRC readback guard: re-read the psum word through the near-memory
    // path. A mismatch means the stored word would not survive a readback
    // (SECDED-zeroed multi-bit, parity-zeroed, or — with ecc=none — a raw
    // corruption the CRC catches). The probe is a guard read: the stored
    // counter is untouched, the tile re-executes instead.
    if (fm != nullptr && fm->sram_active()) {
      const auto word = static_cast<std::uint32_t>(c);
      const std::uint32_t readback = fm->sram_read(
          word, 32, fault::FaultModel::Site::kPsumSram, oidx);
      if (readback != word) sig.add(Detect::kPsumCrc);
    }
  }
  return sig;
}

// Checks one freshly-run tile: ECC uncorrectable delta across the attempt,
// then the guards.
TileSignals check_tile(const arch::ConvExecution& exec, std::int64_t tile,
                       const arch::ConvShape& shape,
                       const fault::FaultStats& before,
                       const RetryPolicy& policy) {
  TileSignals sig = ecc_delta_signals(fault::active(), before);
  sig.merge(guard_signals(exec, tile, shape, policy));
  return sig;
}

}  // namespace

namespace {

geo::Status cancelled_status(std::string_view layer, std::string_view where) {
  if (auto& journal = telemetry::Journal::instance(); journal.enabled())
    journal.record("resilience.cancel", layer, {}, where);
  return geo::Status::deadline_exceeded(
      "resilience: execution cancelled (" + std::string(where) + ") on '" +
      std::string(layer) + "'");
}

// Cycles burned on one rung's tile walk, reported back to the caller.
struct RungWalkStats {
  std::int64_t backoff = 0;    // backoff stalls charged into the live ledger
  std::int64_t abandoned = 0;  // serial-schedule spend, set when the rung fails
};

// Walks every tile of a prepared execution under the bounded detect/retry
// loop: the tile-parallel Phase A fast path when eligible, the serial loop
// otherwise, exponential-backoff retries, and detection bookkeeping into
// `outcome`. Returns true when every tile passed, false when a tile drained
// its retry budget (the rung failed; ws.abandoned holds the cycles the
// serial schedule would have burned by then), or kDeadlineExceeded when
// `cancel` fired at a tile boundary (the partial run is abandoned in place;
// the execution stays reusable — rebind or destroy it).
geo::StatusOr<bool> walk_rung_tiles(arch::ConvExecution& exec,
                                    const arch::ConvShape& shape,
                                    const RetryPolicy& policy, Rung rung,
                                    exec::CancelToken* cancel,
                                    LayerOutcome& outcome, RungWalkStats& ws) {
  auto& metrics = telemetry::MetricsRegistry::instance();
  fault::FaultModel* fm = fault::active();
  bool rung_failed = false;
  const std::int64_t tiles = exec.tile_count();

  // Tile-parallel fast path: fan every tile's independent first run across
  // the process pool (Phase A), then replay the serial loop's detect/retry
  // decisions tile-by-tile from recorded evidence (Phase B). Disabled for
  // transient fault models — there each SRAM access advances a per-site
  // sequence, so a retry interleaved between first runs would change later
  // tiles' draws; those keep the serial loop verbatim.
  const bool parallel = exec::ThreadPool::instance().size() > 1 && tiles > 1 &&
                        (fm == nullptr || !fm->config().transient);

  std::vector<arch::MachineStats> first_costs;
  std::vector<std::int64_t> emulated_ecc;
  if (parallel) {
    first_costs.resize(static_cast<std::size_t>(tiles));
    if (!exec::ParallelConvRunner().run_all_recording(exec, first_costs,
                                                      cancel))
      return cancelled_status(outcome.layer, "parallel-tile-boundary");
    // Reconstruct the attempt-0 ECC signals the serial loop would have
    // seen: in tile order, the first tile touching an activation slot owns
    // its generation, and under the defect model each read's contribution
    // to the detected-minus-corrected delta is a pure function of the
    // slot (corrected single-bit events subtract, matching check_tile).
    emulated_ecc.assign(static_cast<std::size_t>(tiles), 0);
    if (fm != nullptr && fm->sram_active()) {
      std::unordered_set<std::size_t> owned;
      for (std::int64_t t = 0; t < tiles; ++t) {
        for (const std::size_t aidx : exec.tile_inputs(t)) {
          if (owned.insert(aidx).second)
            emulated_ecc[static_cast<std::size_t>(t)] +=
                fm->sram_defect_ecc_delta(
                    static_cast<unsigned>(exec.config().value_bits),
                    fault::FaultModel::Site::kActSram, aidx);
        }
      }
    }
  }

  // What the serial loop would have spent by the time a rung fails:
  // first-run costs of the tiles visited so far, plus retry runs and
  // backoff stalls. The live exec.stats() can't stand in for this in
  // parallel mode — Phase A already charged *every* tile's first run.
  std::int64_t serial_cycles = 0;

  for (std::int64_t tile = 0; tile < tiles && !rung_failed; ++tile) {
    // Tile-boundary cancellation: an expired request stops charging
    // cycles here, between tiles, and its replica frees promptly.
    if (cancel != nullptr && cancel->cancelled())
      return cancelled_status(outcome.layer, "tile-boundary");
    if (parallel) {
      const arch::MachineStats& fc =
          first_costs[static_cast<std::size_t>(tile)];
      serial_cycles += fc.compute_cycles + fc.stall_cycles;
    }
    bool tile_retried = false;
    for (int attempt = 0;; ++attempt) {
      TileSignals sig;
      if (parallel && attempt == 0) {
        // The tile already ran in Phase A: emulate the ECC delta its first
        // run produced under the serial schedule, then run the real
        // guards (the guard reads mutate fault stats identically in both
        // schedules, tile by tile).
        const std::int64_t ecc_hits =
            emulated_ecc[static_cast<std::size_t>(tile)];
        for (std::int64_t i = 0; i < ecc_hits; ++i)
          sig.add(ecc_detect_kind(*fm));
        sig.merge(guard_signals(exec, tile, shape, policy));
      } else {
        const fault::FaultStats before =
            fm != nullptr ? fm->stats() : fault::FaultStats{};
        const arch::MachineStats run_cost = exec.run_tile(tile);
        serial_cycles += run_cost.compute_cycles + run_cost.stall_cycles;
        sig = check_tile(exec, tile, shape, before, policy);
      }
      for (int d = 0; d < kDetectKinds; ++d)
        outcome.detections[static_cast<std::size_t>(d)] +=
            sig.hits[static_cast<std::size_t>(d)];
      if (!sig.any) {
        if (tile_retried) {
          ++outcome.tiles_recovered;
          metrics.counter("fault.recovered").add(1);
        }
        break;
      }
      if (attempt >= policy.retries) {
        rung_failed = true;  // budget exhausted: trip the circuit breaker
        break;
      }
      if (!tile_retried) {
        tile_retried = true;
        ++outcome.tiles_retried;
      }
      ++outcome.retries;
      const std::int64_t stall = policy.backoff_for(attempt);
      exec.add_stall_cycles(stall);
      ws.backoff += stall;
      serial_cycles += stall;
      if (auto& journal = telemetry::Journal::instance(); journal.enabled())
        journal.record("resilience.retry", outcome.layer,
                       {{"tile", static_cast<double>(tile)},
                        {"attempt", static_cast<double>(attempt)},
                        {"stall_cycles", static_cast<double>(stall)},
                        {"detections", static_cast<double>(sig.count())}},
                       to_string(rung));
      // Drop the cached activation streams so the retry re-reads SRAM and
      // regenerates them — under a transient fault model the re-roll can
      // clear the fault; under the defect model it reproduces it and the
      // budget drains toward degradation.
      exec.invalidate_tile_inputs(tile);
    }
  }

  if (rung_failed) {
    // The rung's ledger is discarded with the execution, so keep the burned
    // cycles visible. In parallel mode the reconstructed serial spend is
    // reported so the ledger is independent of GEO_THREADS; mid-run
    // nearmem_cycles are zero in both modes (the near-memory pass is
    // charged at finish()).
    if (parallel) {
      ws.abandoned += serial_cycles;
    } else {
      const arch::MachineStats& st = exec.stats();
      ws.abandoned +=
          st.compute_cycles + st.stall_cycles + st.nearmem_cycles;
    }
    return false;
  }
  return true;
}

}  // namespace

geo::StatusOr<arch::MachineResult> ResilientExecutor::run_conv(
    const arch::ConvShape& shape, std::span<const float> weights,
    std::span<const float> input, std::span<const float> bn_scale,
    std::span<const float> bn_shift, std::uint64_t layer_salt,
    std::string label, RunOptions options) {
  auto& metrics = telemetry::MetricsRegistry::instance();
  LayerOutcome outcome;
  outcome.layer = label.empty() ? shape.name : std::move(label);
  exec::CancelToken* cancel = options.cancel;

  // The degradation ladder for this machine: whatever accumulation the
  // hardware is configured with, then progressively more robust modes, and
  // finally the fault-free software reference (which cannot fail). A
  // non-native `options.start` (the serving layer's overload steering)
  // drops the rungs above it.
  std::vector<Rung> ladder;
  if (options.start == Rung::kNative) ladder.push_back(Rung::kNative);
  if (options.start <= Rung::kPbw && hw_.accum != nn::AccumMode::kPbw &&
      hw_.accum != nn::AccumMode::kFxp)
    ladder.push_back(Rung::kPbw);
  if (options.start <= Rung::kFxp && hw_.accum != nn::AccumMode::kFxp)
    ladder.push_back(Rung::kFxp);
  ladder.push_back(Rung::kReference);

  for (const Rung rung : ladder) {
    if (cancel != nullptr && cancel->cancelled())
      return cancelled_status(outcome.layer, "rung-entry");
    outcome.rung = rung;
    outcome.degraded = rung != Rung::kNative;

    if (rung == Rung::kReference) {
      // Bottom rung: bit-exact fixed-point software reference, computed
      // outside every fault hook. Shares apply_bn_relu with the machine so
      // the write-back rounding is identical; its zeroed machine stats
      // reconcile trivially.
      arch::GeoMachine machine(hw_);
      if (auto s = machine.validate_conv(shape, weights, input, bn_scale,
                                         bn_shift);
          !s.ok())
        return s;
      const nn::ScLayerConfig cfg = machine.layer_config(shape, layer_salt);
      arch::MachineResult result;
      result.counters = nn::fxp_reference_counters(
          shape.cin, shape.hin, shape.win, shape.cout, shape.kh, shape.kw,
          shape.stride, shape.pad, weights, input, cfg.value_bits,
          cfg.stream_len);
      result.activations.resize(result.counters.size());
      const std::int64_t per_channel =
          static_cast<std::int64_t>(shape.hout()) * shape.wout();
      arch::apply_bn_relu(result.counters, bn_scale, bn_shift,
                          cfg.stream_len, per_channel, result.activations);
      outcome.tiles = 0;  // no machine tiles; the whole layer is one unit
      outcome.ledger_ok = true;
      if (auto& journal = telemetry::Journal::instance(); journal.enabled())
        journal.record("resilience.accept", outcome.layer, {},
                       to_string(rung));
      metrics.counter("fault.degraded").add(1);
      report_.layers.push_back(std::move(outcome));
      return result;
    }

    arch::HwConfig hw = hw_;
    if (rung == Rung::kPbw) hw.accum = nn::AccumMode::kPbw;
    if (rung == Rung::kFxp) hw.accum = nn::AccumMode::kFxp;
    arch::GeoMachine machine(hw);
    auto prepared =
        machine.prepare_conv(shape, weights, input, bn_scale, bn_shift,
                             layer_salt);
    if (!prepared.ok()) return prepared.status();
    arch::ConvExecution exec = std::move(prepared).value();

    RungWalkStats ws;
    auto walked =
        walk_rung_tiles(exec, shape, policy_, rung, cancel, outcome, ws);
    if (!walked.ok()) return walked.status();
    if (!*walked) {
      // Abandon this rung and descend the ladder.
      outcome.abandoned_cycles += ws.abandoned;
      if (auto& journal = telemetry::Journal::instance(); journal.enabled())
        journal.record(
            "resilience.degrade", outcome.layer,
            {{"retries", static_cast<double>(outcome.retries)},
             {"abandoned_cycles",
              static_cast<double>(outcome.abandoned_cycles)}},
            to_string(rung));
      continue;
    }

    // The store's non-overlapped block-load wait belongs to the accepted
    // execution (abandoned rungs discard their ledgers), charged into the io
    // sub-bucket so attribution lands it in the memory bucket.
    if (options.io_stall_cycles > 0)
      exec.add_io_stall_cycles(options.io_stall_cycles);

    const std::int64_t tiles = exec.tile_count();
    arch::MachineResult result = exec.finish();
    if (!result.stats.ledger_ok) {
      outcome.detections[static_cast<std::size_t>(Detect::kLedger)] += 1;
      outcome.abandoned_cycles += result.stats.total_cycles;
      if (auto& journal = telemetry::Journal::instance(); journal.enabled())
        journal.record("resilience.degrade", outcome.layer, {},
                       "ledger-mismatch");
      continue;  // an unreconciled ledger is a detection: descend
    }
    outcome.tiles = tiles;
    outcome.backoff_cycles += ws.backoff;
    outcome.ledger_ok = true;
    if (auto& journal = telemetry::Journal::instance();
        journal.enabled() && (outcome.degraded || outcome.tiles_retried > 0))
      journal.record("resilience.accept", outcome.layer,
                     {{"tiles_retried",
                       static_cast<double>(outcome.tiles_retried)},
                      {"retries", static_cast<double>(outcome.retries)}},
                     to_string(rung));
    if (outcome.degraded) metrics.counter("fault.degraded").add(1);
    report_.layers.push_back(std::move(outcome));
    return result;
  }

  // Unreachable: the ladder always ends in kReference, which returns.
  return geo::Status::internal("resilience: degradation ladder fell through");
}

std::vector<BatchItemResult> ResilientExecutor::run_conv_batch(
    const arch::ConvShape& shape, std::span<const float> weights,
    std::span<const float> bn_scale, std::span<const float> bn_shift,
    std::uint64_t layer_salt, std::vector<BatchItem>& items, Rung start) {
  std::vector<BatchItemResult> out;
  out.reserve(items.size());
  fault::FaultModel* fm = fault::active();

  // Runs one item down the full unbatched path (its own prepare + ladder).
  // Used when sharing is unsound or as the demotion path when the shared
  // rung fails — the solo path appends its own complete outcome.
  auto solo = [&](BatchItem& item) {
    RunOptions opts;
    opts.start = start;
    opts.cancel = item.cancel;
    opts.io_stall_cycles = item.io_stall_cycles;
    BatchItemResult br{run_conv(shape, weights, item.input, bn_scale,
                                bn_shift, layer_salt, item.label, opts)};
    if (br.result.ok()) {
      const LayerOutcome* oc = last_outcome();
      br.degraded = oc != nullptr && oc->degraded;
    }
    return br;
  };

  // Sharing a preparation is sound when reused weight streams are
  // byte-identical to regenerated ones: no fault model, or a defect model
  // (per-site pure draws). A transient model advances per-site sequences on
  // every generation, so members after the first would diverge from their
  // unbatched execution — fall back per item. A kReference start never
  // prepares a machine execution, and a single-item batch has nothing to
  // amortize.
  const bool shareable = items.size() > 1 && start != Rung::kReference &&
                         (fm == nullptr || !fm->config().transient);
  if (!shareable) {
    for (BatchItem& item : items) out.push_back(solo(item));
    return out;
  }

  // Mirror run_conv's ladder entry for the start rung.
  arch::HwConfig hw = hw_;
  if (start == Rung::kPbw) hw.accum = nn::AccumMode::kPbw;
  if (start == Rung::kFxp) hw.accum = nn::AccumMode::kFxp;
  arch::GeoMachine machine(hw);
  auto prepared = machine.prepare_conv(shape, weights, items.front().input,
                                       bn_scale, bn_shift, layer_salt);
  if (!prepared.ok()) {
    // Invalid layer: every item fails identically (validation does not
    // depend on the input values, only sizes — which batch_compatible
    // dispatchers hold fixed).
    for (std::size_t i = 0; i < items.size(); ++i)
      out.push_back(BatchItemResult{
          geo::StatusOr<arch::MachineResult>(prepared.status())});
    return out;
  }
  arch::ConvExecution exec = std::move(prepared).value();

  auto& metrics = telemetry::MetricsRegistry::instance();
  if (auto& journal = telemetry::Journal::instance(); journal.enabled())
    journal.record("resilience.batch", shape.name,
                   {{"items", static_cast<double>(items.size())}},
                   to_string(start));

  bool first = true;
  for (BatchItem& item : items) {
    if (!first) {
      if (auto s = exec.rebind_input(item.input); !s.ok()) {
        out.push_back(BatchItemResult{geo::StatusOr<arch::MachineResult>(s)});
        continue;
      }
    }
    first = false;

    LayerOutcome outcome;
    outcome.layer = item.label.empty() ? shape.name : item.label;
    outcome.rung = start;
    outcome.degraded = start != Rung::kNative;

    // Mirrors run_conv's rung-entry poll: an already-expired item charges
    // nothing and appends no outcome.
    if (item.cancel != nullptr && item.cancel->cancelled()) {
      out.push_back(BatchItemResult{geo::StatusOr<arch::MachineResult>(
          cancelled_status(outcome.layer, "batch-entry"))});
      continue;
    }

    RungWalkStats ws;
    auto walked = walk_rung_tiles(exec, shape, policy_, start, item.cancel,
                                  outcome, ws);
    if (!walked.ok()) {
      // Cancelled mid-walk: abandon this item (no outcome, like run_conv);
      // the execution rebinds cleanly for the next member.
      out.push_back(
          BatchItemResult{geo::StatusOr<arch::MachineResult>(walked.status())});
      continue;
    }

    bool demote = !*walked;
    std::int64_t demote_abandoned = ws.abandoned;
    if (!demote) {
      if (item.io_stall_cycles > 0)
        exec.add_io_stall_cycles(item.io_stall_cycles);
      const std::int64_t tiles = exec.tile_count();
      arch::MachineResult result = exec.finish();
      if (!result.stats.ledger_ok) {
        demote = true;
        demote_abandoned += result.stats.total_cycles;
      } else {
        outcome.tiles = tiles;
        outcome.backoff_cycles += ws.backoff;
        outcome.ledger_ok = true;
        if (auto& journal = telemetry::Journal::instance();
            journal.enabled() &&
            (outcome.degraded || outcome.tiles_retried > 0))
          journal.record("resilience.accept", outcome.layer,
                         {{"tiles_retried",
                           static_cast<double>(outcome.tiles_retried)},
                          {"retries", static_cast<double>(outcome.retries)}},
                         to_string(start));
        const bool degraded = outcome.degraded;
        if (degraded) metrics.counter("fault.degraded").add(1);
        report_.layers.push_back(std::move(outcome));
        out.push_back(BatchItemResult{
            geo::StatusOr<arch::MachineResult>(std::move(result)), degraded,
            /*shared=*/true});
        continue;
      }
    }

    // The shared rung drained its retry budget (or its ledger failed to
    // reconcile) on this item: drop the partial outcome and demote to a solo
    // run_conv, which re-attempts the same ladder from `start` — exactly the
    // unbatched path, so the item's output stays byte-identical to serial
    // execution. The shared attempt's burned cycles are journaled so the
    // work stays visible (the solo outcome accounts only its own spend).
    if (auto& journal = telemetry::Journal::instance(); journal.enabled())
      journal.record("resilience.batch_demote", outcome.layer,
                     {{"abandoned_cycles",
                       static_cast<double>(demote_abandoned)},
                      {"retries", static_cast<double>(outcome.retries)}},
                     to_string(start));
    out.push_back(solo(item));
  }
  return out;
}

}  // namespace geo::resilience
