#include "resilience/resilience.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "fault/fault_model.hpp"
#include "nn/sc_layers.hpp"
#include "telemetry/metrics.hpp"

namespace geo::resilience {

namespace {

bool parse_u64(std::string_view tok, std::uint64_t& out) {
  const auto [ptr, ec] =
      std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc() && ptr == tok.data() + tok.size();
}

}  // namespace

// ---- RetryPolicy ----------------------------------------------------------

std::int64_t RetryPolicy::backoff_for(int attempt) const noexcept {
  if (attempt < 0) attempt = 0;
  if (attempt > 30) attempt = 30;  // cap the shift, not the stall
  return backoff << attempt;
}

geo::StatusOr<RetryPolicy> RetryPolicy::parse(std::string_view spec) {
  RetryPolicy policy;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    const std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos)
      return geo::Status::invalid_argument(
          "GEO_RETRY: '" + std::string(item) + "' is not key=value");
    const std::string_view key = item.substr(0, eq);
    const std::string_view val = item.substr(eq + 1);
    if (key == "retries") {
      std::uint64_t n = 0;
      if (!parse_u64(val, n) || n > 16)
        return geo::Status::out_of_range(
            "GEO_RETRY: retries='" + std::string(val) +
            "' must be an integer in [0,16]");
      policy.retries = static_cast<int>(n);
    } else if (key == "backoff") {
      std::uint64_t c = 0;
      if (!parse_u64(val, c) || c > (1ull << 32))
        return geo::Status::out_of_range(
            "GEO_RETRY: backoff='" + std::string(val) +
            "' must be a cycle count in [0,2^32]");
      policy.backoff = static_cast<std::int64_t>(c);
    } else if (key == "guards") {
      if (val == "1")
        policy.guards = true;
      else if (val == "0")
        policy.guards = false;
      else
        return geo::Status::invalid_argument(
            "GEO_RETRY: guards='" + std::string(val) + "' (want 0|1)");
    } else {
      return geo::Status::invalid_argument(
          "GEO_RETRY: unknown key '" + std::string(key) +
          "' (known: retries, backoff, guards)");
    }
  }
  return policy;
}

RetryPolicy RetryPolicy::from_env() {
  const char* v = std::getenv("GEO_RETRY");
  if (v == nullptr || v[0] == '\0') return RetryPolicy{};
  auto parsed = RetryPolicy::parse(v);
  if (!parsed.ok()) {
    std::fprintf(stderr, "geo: ignoring GEO_RETRY: %s\n",
                 parsed.status().message().c_str());
    return RetryPolicy{};
  }
  return *std::move(parsed);
}

std::string RetryPolicy::to_string() const {
  return "retries=" + std::to_string(retries) +
         ",backoff=" + std::to_string(backoff) +
         ",guards=" + std::string(guards ? "1" : "0");
}

// ---- enums ----------------------------------------------------------------

const char* to_string(Detect d) noexcept {
  switch (d) {
    case Detect::kSecdedDoubleBit: return "secded_double_bit";
    case Detect::kParityZeroed: return "parity_zeroed";
    case Detect::kPsumCrc: return "psum_crc";
    case Detect::kPsumRange: return "psum_range";
    case Detect::kLedger: return "ledger";
  }
  return "?";
}

const char* to_string(Rung r) noexcept {
  switch (r) {
    case Rung::kNative: return "native";
    case Rung::kPbw: return "pbw";
    case Rung::kFxp: return "fxp";
    case Rung::kReference: return "reference";
  }
  return "?";
}

// ---- ResilienceReport -----------------------------------------------------

bool ResilienceReport::any_retried() const noexcept {
  for (const auto& l : layers)
    if (l.tiles_retried > 0) return true;
  return false;
}

bool ResilienceReport::any_degraded() const noexcept {
  for (const auto& l : layers)
    if (l.degraded) return true;
  return false;
}

bool ResilienceReport::ledger_ok() const noexcept {
  for (const auto& l : layers)
    if (!l.ledger_ok) return false;
  return true;
}

std::int64_t ResilienceReport::tiles_retried() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.tiles_retried;
  return n;
}

std::int64_t ResilienceReport::tiles_recovered() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.tiles_recovered;
  return n;
}

std::int64_t ResilienceReport::layers_degraded() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.degraded ? 1 : 0;
  return n;
}

std::int64_t ResilienceReport::total_retry_cycles() const noexcept {
  std::int64_t n = 0;
  for (const auto& l : layers) n += l.retry_cycles();
  return n;
}

std::vector<std::int64_t> ResilienceReport::per_layer_retry_cycles() const {
  std::vector<std::int64_t> out;
  out.reserve(layers.size());
  for (const auto& l : layers) out.push_back(l.retry_cycles());
  return out;
}

std::string ResilienceReport::summary() const {
  std::ostringstream os;
  os << "resilience: " << layers.size() << " layer(s), " << tiles_retried()
     << " tile(s) retried, " << tiles_recovered() << " recovered, "
     << layers_degraded() << " layer(s) degraded, " << total_retry_cycles()
     << " retry cycle(s), ledger " << (ledger_ok() ? "ok" : "MISMATCH")
     << "\n";
  for (const auto& l : layers) {
    os << "  " << (l.layer.empty() ? "<layer>" : l.layer) << ": rung "
       << to_string(l.rung) << (l.degraded ? " (degraded)" : "") << ", "
       << l.tiles << " tiles, " << l.tiles_retried << " retried, "
       << l.tiles_recovered << " recovered, " << l.retries << " retries";
    bool first = true;
    for (int d = 0; d < kDetectKinds; ++d) {
      if (l.detections[static_cast<std::size_t>(d)] == 0) continue;
      os << (first ? " [" : ", ") << to_string(static_cast<Detect>(d)) << "="
         << l.detections[static_cast<std::size_t>(d)];
      first = false;
    }
    if (!first) os << "]";
    os << "\n";
  }
  return os.str();
}

std::string ResilienceReport::to_json() const {
  std::ostringstream os;
  os << "{\"tiles_retried\":" << tiles_retried()
     << ",\"tiles_recovered\":" << tiles_recovered()
     << ",\"layers_degraded\":" << layers_degraded()
     << ",\"retry_cycles\":" << total_retry_cycles() << ",\"ledger_ok\":"
     << (ledger_ok() ? "true" : "false") << ",\"layers\":[";
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const LayerOutcome& l = layers[i];
    if (i != 0) os << ",";
    os << "{\"layer\":\"" << l.layer << "\",\"rung\":\"" << to_string(l.rung)
       << "\",\"degraded\":" << (l.degraded ? "true" : "false")
       << ",\"tiles\":" << l.tiles << ",\"tiles_retried\":" << l.tiles_retried
       << ",\"tiles_recovered\":" << l.tiles_recovered
       << ",\"retries\":" << l.retries
       << ",\"backoff_cycles\":" << l.backoff_cycles
       << ",\"abandoned_cycles\":" << l.abandoned_cycles
       << ",\"ledger_ok\":" << (l.ledger_ok ? "true" : "false")
       << ",\"detections\":{";
    bool first = true;
    for (int d = 0; d < kDetectKinds; ++d) {
      if (l.detections[static_cast<std::size_t>(d)] == 0) continue;
      if (!first) os << ",";
      os << "\"" << to_string(static_cast<Detect>(d))
         << "\":" << l.detections[static_cast<std::size_t>(d)];
      first = false;
    }
    os << "}}";
  }
  os << "]}";
  return os.str();
}

// ---- ResilientExecutor ----------------------------------------------------

ResilientExecutor::ResilientExecutor(const arch::HwConfig& hw,
                                     RetryPolicy policy)
    : hw_(hw), policy_(policy) {}

namespace {

// Detection signals observed on one tile attempt.
struct TileSignals {
  std::array<std::int64_t, kDetectKinds> hits{};
  bool any = false;

  void add(Detect d) {
    ++hits[static_cast<std::size_t>(d)];
    any = true;
  }
};

// Checks one freshly-run tile: ECC uncorrectable delta across the attempt,
// then (if guards are on) the partial-sum range and CRC-readback guards over
// the tile's outputs.
TileSignals check_tile(const arch::ConvExecution& exec, std::int64_t tile,
                       const arch::ConvShape& shape,
                       const fault::FaultStats& before,
                       const RetryPolicy& policy) {
  TileSignals sig;
  fault::FaultModel* fm = fault::active();
  if (fm != nullptr) {
    const fault::FaultStats now = fm->stats();
    const std::int64_t detected =
        now.sram_errors_detected - before.sram_errors_detected;
    const std::int64_t corrected =
        now.sram_errors_corrected - before.sram_errors_corrected;
    const std::int64_t uncorrectable = detected - corrected;
    if (uncorrectable > 0) {
      const Detect kind = fm->config().ecc == fault::EccMode::kParity
                              ? Detect::kParityZeroed
                              : Detect::kSecdedDoubleBit;
      for (std::int64_t i = 0; i < uncorrectable; ++i) sig.add(kind);
    }
  }
  if (!policy.guards) return sig;

  const std::span<const std::int32_t> counters = exec.counters();
  const std::int64_t bound = static_cast<std::int64_t>(shape.taps()) *
                             exec.config().stream_len;
  for (const std::size_t oidx : exec.tile_outputs(tile)) {
    const std::int32_t c = counters[oidx];
    // Provable partial-sum envelope: |pos - neg| over taps*L stream bits.
    if (std::abs(static_cast<std::int64_t>(c)) > bound)
      sig.add(Detect::kPsumRange);
    // CRC readback guard: re-read the psum word through the near-memory
    // path. A mismatch means the stored word would not survive a readback
    // (SECDED-zeroed multi-bit, parity-zeroed, or — with ecc=none — a raw
    // corruption the CRC catches). The probe is a guard read: the stored
    // counter is untouched, the tile re-executes instead.
    if (fm != nullptr && fm->sram_active()) {
      const auto word = static_cast<std::uint32_t>(c);
      const std::uint32_t readback = fm->sram_read(
          word, 32, fault::FaultModel::Site::kPsumSram, oidx);
      if (readback != word) sig.add(Detect::kPsumCrc);
    }
  }
  return sig;
}

}  // namespace

geo::StatusOr<arch::MachineResult> ResilientExecutor::run_conv(
    const arch::ConvShape& shape, std::span<const float> weights,
    std::span<const float> input, std::span<const float> bn_scale,
    std::span<const float> bn_shift, std::uint64_t layer_salt,
    std::string label) {
  auto& metrics = telemetry::MetricsRegistry::instance();
  LayerOutcome outcome;
  outcome.layer = label.empty() ? shape.name : std::move(label);

  // The degradation ladder for this machine: whatever accumulation the
  // hardware is configured with, then progressively more robust modes, and
  // finally the fault-free software reference (which cannot fail).
  std::vector<Rung> ladder{Rung::kNative};
  if (hw_.accum != nn::AccumMode::kPbw && hw_.accum != nn::AccumMode::kFxp)
    ladder.push_back(Rung::kPbw);
  if (hw_.accum != nn::AccumMode::kFxp) ladder.push_back(Rung::kFxp);
  ladder.push_back(Rung::kReference);

  fault::FaultModel* fm = fault::active();

  for (const Rung rung : ladder) {
    outcome.rung = rung;
    outcome.degraded = rung != Rung::kNative;

    if (rung == Rung::kReference) {
      // Bottom rung: bit-exact fixed-point software reference, computed
      // outside every fault hook. Shares apply_bn_relu with the machine so
      // the write-back rounding is identical; its zeroed machine stats
      // reconcile trivially.
      arch::GeoMachine machine(hw_);
      if (auto s = machine.validate_conv(shape, weights, input, bn_scale,
                                         bn_shift);
          !s.ok())
        return s;
      const nn::ScLayerConfig cfg = machine.layer_config(shape, layer_salt);
      arch::MachineResult result;
      result.counters = nn::fxp_reference_counters(
          shape.cin, shape.hin, shape.win, shape.cout, shape.kh, shape.kw,
          shape.stride, shape.pad, weights, input, cfg.value_bits,
          cfg.stream_len);
      result.activations.resize(result.counters.size());
      const std::int64_t per_channel =
          static_cast<std::int64_t>(shape.hout()) * shape.wout();
      arch::apply_bn_relu(result.counters, bn_scale, bn_shift,
                          cfg.stream_len, per_channel, result.activations);
      outcome.tiles = 0;  // no machine tiles; the whole layer is one unit
      outcome.ledger_ok = true;
      metrics.counter("fault.degraded").add(1);
      report_.layers.push_back(std::move(outcome));
      return result;
    }

    arch::HwConfig hw = hw_;
    if (rung == Rung::kPbw) hw.accum = nn::AccumMode::kPbw;
    if (rung == Rung::kFxp) hw.accum = nn::AccumMode::kFxp;
    arch::GeoMachine machine(hw);
    auto prepared =
        machine.prepare_conv(shape, weights, input, bn_scale, bn_shift,
                             layer_salt);
    if (!prepared.ok()) return prepared.status();
    arch::ConvExecution exec = std::move(prepared).value();

    bool rung_failed = false;
    const std::int64_t tiles = exec.tile_count();
    std::int64_t rung_backoff = 0;
    for (std::int64_t tile = 0; tile < tiles && !rung_failed; ++tile) {
      bool tile_retried = false;
      for (int attempt = 0;; ++attempt) {
        const fault::FaultStats before =
            fm != nullptr ? fm->stats() : fault::FaultStats{};
        exec.run_tile(tile);
        const TileSignals sig =
            check_tile(exec, tile, shape, before, policy_);
        for (int d = 0; d < kDetectKinds; ++d)
          outcome.detections[static_cast<std::size_t>(d)] +=
              sig.hits[static_cast<std::size_t>(d)];
        if (!sig.any) {
          if (tile_retried) {
            ++outcome.tiles_recovered;
            metrics.counter("fault.recovered").add(1);
          }
          break;
        }
        if (attempt >= policy_.retries) {
          rung_failed = true;  // budget exhausted: trip the circuit breaker
          break;
        }
        if (!tile_retried) {
          tile_retried = true;
          ++outcome.tiles_retried;
        }
        ++outcome.retries;
        const std::int64_t stall = policy_.backoff_for(attempt);
        exec.add_stall_cycles(stall);
        rung_backoff += stall;
        // Drop the cached activation streams so the retry re-reads SRAM and
        // regenerates them — under a transient fault model the re-roll can
        // clear the fault; under the defect model it reproduces it and the
        // budget drains toward degradation.
        exec.invalidate_tile_inputs(tile);
      }
    }

    if (rung_failed) {
      // Abandon this rung: its ledger is discarded with the execution, so
      // keep the burned cycles visible in the report.
      const arch::MachineStats& st = exec.stats();
      outcome.abandoned_cycles +=
          st.compute_cycles + st.stall_cycles + st.nearmem_cycles;
      continue;
    }

    arch::MachineResult result = exec.finish();
    if (!result.stats.ledger_ok) {
      outcome.detections[static_cast<std::size_t>(Detect::kLedger)] += 1;
      outcome.abandoned_cycles += result.stats.total_cycles;
      continue;  // an unreconciled ledger is a detection: descend
    }
    outcome.tiles = tiles;
    outcome.backoff_cycles += rung_backoff;
    outcome.ledger_ok = true;
    if (outcome.degraded) metrics.counter("fault.degraded").add(1);
    report_.layers.push_back(std::move(outcome));
    return result;
  }

  // Unreachable: the ladder always ends in kReference, which returns.
  return geo::Status::internal("resilience: degradation ladder fell through");
}

}  // namespace geo::resilience
