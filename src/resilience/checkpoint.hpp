// Crash-safe, versioned, CRC-guarded snapshot files (docs/RESILIENCE.md).
//
// On-disk layout (little-endian, the only byte order this stack targets):
//
//   offset  size  field
//   0       8     magic    "GEOCKPT\0"
//   8       4     version  format version (kCheckpointVersion)
//   12      4     crc      CRC-32 of the payload bytes
//   16      8     size     payload byte count
//   24      size  payload
//
// Writes are atomic: the full image lands in `<path>.tmp.<pid>` first and is
// renamed over the target only after a successful flush, so a crash at any
// point leaves either the previous snapshot or a stray temp file — never a
// half-written target. Reads fail closed: a missing, truncated, bit-flipped
// (CRC mismatch), foreign-version, or foreign-magic file is rejected with a
// descriptive geo::Status and no payload is surfaced.
//
// `GEO_CHECKPOINT_DIR=<dir>` is the process-wide opt-in consumed by the
// trainer checkpointer and the bench sweep checkpointer; unset disables
// both.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.hpp"

namespace geo::resilience {

inline constexpr std::uint32_t kCheckpointVersion = 1;

// GEO_CHECKPOINT_DIR, or "" when unset/empty (checkpointing disabled).
std::string checkpoint_dir();

// fsync(2) the file at `path` / the directory containing `path`. A rename
// is only durable once both the new file's data and the parent directory
// entry have reached stable storage; write_checkpoint and the store's
// block-file writer journal their commits only after both succeed.
geo::Status fsync_file(const std::string& path);
geo::Status fsync_parent_dir(const std::string& path);

// Atomically replaces `path` with a checkpoint image wrapping `payload`.
// Creates parent directories as needed.
geo::Status write_checkpoint(const std::string& path,
                             std::string_view payload);

// Reads and verifies a checkpoint image; returns the payload. Fail-closed:
// every malformed input maps to a non-OK Status (kDataLoss for corruption,
// kFailedPrecondition for version skew, kInvalidArgument for foreign files,
// kInvalidArgument/kDataLoss never partially succeed).
geo::StatusOr<std::string> read_checkpoint(const std::string& path);

// ---- payload (de)serialization helpers -----------------------------------
// Fixed-width little-endian scalar framing used by the trainer checkpoint
// payload. The reader is bounds-checked and fail-closed: any read past the
// end flips the stream into an error state that read_status() reports.

class ByteWriter {
 public:
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void f32(float v);
  void bytes(std::string_view s);           // length-prefixed (u64)
  void floats(std::span<const float> v);    // length-prefixed (u64)

  const std::string& data() const noexcept { return out_; }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint32_t u32();
  std::uint64_t u64();
  float f32();
  std::string bytes();
  std::vector<float> floats();

  // OK while every read so far was in bounds and, at the end, exhausted()
  // holds; kDataLoss otherwise.
  geo::Status read_status() const;
  bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  bool take(void* dst, std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace geo::resilience
