#include "resilience/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "resilience/crc32.hpp"
#include "telemetry/journal.hpp"
#include "telemetry/metrics.hpp"

namespace geo::resilience {

namespace {

constexpr char kMagic[8] = {'G', 'E', 'O', 'C', 'K', 'P', 'T', '\0'};
constexpr std::size_t kHeaderSize = 8 + 4 + 4 + 8;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::string checkpoint_dir() {
  const char* v = std::getenv("GEO_CHECKPOINT_DIR");
  return (v != nullptr && v[0] != '\0') ? std::string(v) : std::string();
}

geo::Status fsync_file(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    return geo::Status::failed_precondition("fsync: cannot open '" + path +
                                            "'");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    return geo::Status::data_loss("fsync: fsync('" + path + "') failed");
  return geo::Status();
}

geo::Status fsync_parent_dir(const std::string& path) {
  const std::filesystem::path p(path);
  const std::string dir =
      p.has_parent_path() ? p.parent_path().string() : std::string(".");
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0)
    return geo::Status::failed_precondition("fsync: cannot open dir '" + dir +
                                            "'");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0)
    return geo::Status::data_loss("fsync: fsync dir('" + dir + "') failed");
  return geo::Status();
}

geo::Status write_checkpoint(const std::string& path,
                             std::string_view payload) {
  std::string image;
  image.reserve(kHeaderSize + payload.size());
  image.append(kMagic, sizeof(kMagic));
  put_u32(image, kCheckpointVersion);
  put_u32(image, crc32(payload));
  put_u64(image, payload.size());
  image.append(payload.data(), payload.size());

  std::error_code ec;
  const std::filesystem::path target(path);
  if (target.has_parent_path()) {
    std::filesystem::create_directories(target.parent_path(), ec);
    if (ec)
      return geo::Status::failed_precondition(
          "checkpoint: cannot create directory '" +
          target.parent_path().string() + "': " + ec.message());
  }

  // Write-temp + rename: the target is only ever replaced by a complete,
  // flushed image. The pid suffix keeps concurrent writers from clobbering
  // each other's temp files.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f)
      return geo::Status::failed_precondition(
          "checkpoint: cannot open temp file '" + tmp + "' for writing");
    f.write(image.data(), static_cast<std::streamsize>(image.size()));
    f.flush();
    if (!f) {
      std::filesystem::remove(tmp, ec);
      return geo::Status::data_loss("checkpoint: short write to '" + tmp +
                                    "'");
    }
  }
  // A stream flush only hands the bytes to the kernel; the image must be on
  // stable storage *before* the rename exposes it, otherwise a crash after
  // rename can lose both the old and the new checkpoint.
  if (auto s = fsync_file(tmp); !s.ok()) {
    std::filesystem::remove(tmp, ec);
    return s;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    return geo::Status::data_loss("checkpoint: rename '" + tmp + "' -> '" +
                                  path + "' failed");
  }
  // The rename itself lives in the directory; the commit is only durable —
  // and only then journaled — once the directory entry is synced too.
  if (auto s = fsync_parent_dir(path); !s.ok()) return s;
  telemetry::MetricsRegistry::instance()
      .counter("resilience.checkpoints_written")
      .add(1);
  if (auto& journal = telemetry::Journal::instance(); journal.enabled())
    journal.record("checkpoint.commit", path,
                   {{"bytes", static_cast<double>(image.size())}});
  return geo::Status();
}

geo::StatusOr<std::string> read_checkpoint(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f)
    return geo::Status::failed_precondition("checkpoint: cannot open '" +
                                            path + "'");
  std::string image((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
  if (image.size() < kHeaderSize)
    return geo::Status::data_loss(
        "checkpoint: '" + path + "' truncated (" +
        std::to_string(image.size()) + " bytes, header needs " +
        std::to_string(kHeaderSize) + ")");
  const auto* p = reinterpret_cast<const unsigned char*>(image.data());
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0)
    return geo::Status::invalid_argument(
        "checkpoint: '" + path + "' is not a GEO checkpoint (bad magic)");
  const std::uint32_t version = get_u32(p + 8);
  if (version != kCheckpointVersion)
    return geo::Status::failed_precondition(
        "checkpoint: '" + path + "' has format version " +
        std::to_string(version) + ", this build reads version " +
        std::to_string(kCheckpointVersion));
  const std::uint32_t crc = get_u32(p + 12);
  const std::uint64_t size = get_u64(p + 16);
  if (image.size() - kHeaderSize != size)
    return geo::Status::data_loss(
        "checkpoint: '" + path + "' payload truncated (header claims " +
        std::to_string(size) + " bytes, file carries " +
        std::to_string(image.size() - kHeaderSize) + ")");
  std::string payload = image.substr(kHeaderSize);
  const std::uint32_t actual = crc32(payload);
  if (actual != crc)
    return geo::Status::data_loss(
        "checkpoint: '" + path + "' CRC mismatch (stored " +
        std::to_string(crc) + ", computed " + std::to_string(actual) + ")");
  return payload;
}

// ---- ByteWriter / ByteReader ---------------------------------------------

void ByteWriter::u32(std::uint32_t v) { put_u32(out_, v); }
void ByteWriter::u64(std::uint64_t v) { put_u64(out_, v); }

void ByteWriter::f32(float v) {
  std::uint32_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void ByteWriter::bytes(std::string_view s) {
  u64(s.size());
  out_.append(s.data(), s.size());
}

void ByteWriter::floats(std::span<const float> v) {
  u64(v.size());
  for (const float x : v) f32(x);
}

bool ByteReader::take(void* dst, std::size_t n) {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  std::memcpy(dst, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

std::uint32_t ByteReader::u32() {
  unsigned char buf[4] = {};
  if (!take(buf, sizeof(buf))) return 0;
  return get_u32(buf);
}

std::uint64_t ByteReader::u64() {
  unsigned char buf[8] = {};
  if (!take(buf, sizeof(buf))) return 0;
  return get_u64(buf);
}

float ByteReader::f32() {
  const std::uint32_t bits = u32();
  float v = 0.0f;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::bytes() {
  const std::uint64_t n = u64();
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return {};
  }
  std::string out(data_.substr(pos_, static_cast<std::size_t>(n)));
  pos_ += static_cast<std::size_t>(n);
  return out;
}

std::vector<float> ByteReader::floats() {
  const std::uint64_t n = u64();
  // 4 bytes per element; reject a length prefix the buffer cannot hold
  // before allocating (a corrupted prefix must not drive a huge alloc).
  if (failed_ || (data_.size() - pos_) / 4 < n) {
    failed_ = true;
    return {};
  }
  std::vector<float> out(static_cast<std::size_t>(n));
  for (auto& x : out) x = f32();
  return out;
}

geo::Status ByteReader::read_status() const {
  if (failed_)
    return geo::Status::data_loss("checkpoint payload: read past end");
  return geo::Status();
}

}  // namespace geo::resilience
