// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check shared by the checkpoint format and the near-memory partial-sum
// guard. Table-driven, one table built at first use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace geo::resilience {

// CRC of `n` bytes, continuing from `seed` (pass a previous result to chain
// blocks; the empty-input CRC of seed 0 is 0).
std::uint32_t crc32(const void* data, std::size_t n,
                    std::uint32_t seed = 0) noexcept;

inline std::uint32_t crc32(std::string_view bytes,
                           std::uint32_t seed = 0) noexcept {
  return crc32(bytes.data(), bytes.size(), seed);
}

}  // namespace geo::resilience
