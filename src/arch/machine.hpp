// GeoMachine: a functional, cycle-counting model of one GEO accelerator
// executing a convolutional layer with real data — the "architecture
// simulator" companion to the analytical PerfSim.
//
// The machine owns the two on-chip memories and walks the compiled pass
// schedule the way the hardware does: for every pass it fills the weight and
// activation SNG buffers (counting reload beats against the fill network,
// with progressive loading and shadow buffering), runs the stream generation
// and MAC rows bit-exactly using the sc substrate, accumulates the output
// converters, spills partial sums to activation memory through the 2-cycle
// near-memory read-add-write, and finally applies near-memory fixed-point
// batch-norm + bounded ReLU before writing activations back.
//
// Functional contract (tested): the pre-BN output counts equal what the
// nn::ScConv2d reference computes for the same configuration, seed layout
// and quantized operands — the hardware mapping (rows, windows, kernel
// slices) must not change the arithmetic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/compiler.hpp"
#include "arch/hw_config.hpp"
#include "core/status.hpp"
#include "nn/sc_layers.hpp"

namespace geo::arch {

struct MachineStats {
  std::int64_t passes = 0;
  std::int64_t compute_cycles = 0;
  std::int64_t stall_cycles = 0;
  std::int64_t nearmem_cycles = 0;
  std::int64_t total_cycles = 0;
  std::int64_t act_buffer_fills = 0;  // values loaded into act SNG buffers
  std::int64_t wgt_buffer_fills = 0;
  std::int64_t psum_ops = 0;
  std::int64_t bn_ops = 0;
  // False when the cycle ledger failed to reconcile (every total cycle must
  // be attributed to exactly one of compute / stall / near-memory and no
  // bucket may go negative). Checked always, not just in debug builds; a
  // mismatch also bumps the machine.ledger_mismatch telemetry counter.
  bool ledger_ok = true;
};

// One layer's execution result: quantized output activations (after BN +
// bounded ReLU, in the unipolar 8-bit domain) plus the raw pre-BN counter
// values and execution statistics.
struct MachineResult {
  // (cout, hout, wout), row-major; valid after BN/ReLU.
  std::vector<std::uint8_t> activations;
  // Raw output-converter totals, same layout (pos - neg counts).
  std::vector<std::int32_t> counters;
  MachineStats stats;
};

class GeoMachine {
 public:
  explicit GeoMachine(const HwConfig& hw);

  // Executes one convolutional layer.
  //   weights  : (cout, cin, kh, kw) signed values in [-1, 1]
  //   input    : (cin, hin, win) unipolar values in [0, 1]
  //   bn_scale / bn_shift : per-output-channel folded BN coefficients
  //   layer_salt : seed-space rotation, must match the reference model
  // Throws std::invalid_argument on shape/operand mismatch (legacy API;
  // implemented on top of try_run_conv).
  MachineResult run_conv(const ConvShape& shape,
                         std::span<const float> weights,
                         std::span<const float> input,
                         std::span<const float> bn_scale,
                         std::span<const float> bn_shift,
                         std::uint64_t layer_salt);

  // Non-throwing variant: pre-flight validates the shape and operand sizes
  // and returns a structured error instead of crashing or throwing. On
  // success the MachineResult is identical to run_conv's.
  geo::StatusOr<MachineResult> try_run_conv(const ConvShape& shape,
                                            std::span<const float> weights,
                                            std::span<const float> input,
                                            std::span<const float> bn_scale,
                                            std::span<const float> bn_shift,
                                            std::uint64_t layer_salt);

  // The pre-flight validation used by try_run_conv, exposed for callers that
  // want to reject bad layers before allocating stream buffers.
  geo::Status validate_conv(const ConvShape& shape,
                            std::span<const float> weights,
                            std::span<const float> input,
                            std::span<const float> bn_scale,
                            std::span<const float> bn_shift) const;

  const HwConfig& hw() const { return hw_; }

  // The nn-layer configuration this machine's execution matches.
  nn::ScLayerConfig layer_config(const ConvShape& shape,
                                 std::uint64_t layer_salt) const;

 private:
  HwConfig hw_;
};

}  // namespace geo::arch
