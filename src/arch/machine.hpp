// GeoMachine: a functional, cycle-counting model of one GEO accelerator
// executing a convolutional layer with real data — the "architecture
// simulator" companion to the analytical PerfSim.
//
// The machine owns the two on-chip memories and walks the compiled pass
// schedule the way the hardware does: for every pass it fills the weight and
// activation SNG buffers (counting reload beats against the fill network,
// with progressive loading and shadow buffering), runs the stream generation
// and MAC rows bit-exactly using the sc substrate, accumulates the output
// converters, spills partial sums to activation memory through the 2-cycle
// near-memory read-add-write, and finally applies near-memory fixed-point
// batch-norm + bounded ReLU before writing activations back.
//
// Functional contract (tested): the pre-BN output counts equal what the
// nn::ScConv2d reference computes for the same configuration, seed layout
// and quantized operands — the hardware mapping (rows, windows, kernel
// slices) must not change the arithmetic.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "arch/compiler.hpp"
#include "arch/hw_config.hpp"
#include "core/status.hpp"
#include "nn/sc_layers.hpp"

namespace geo::arch {

struct MachineStats {
  std::int64_t passes = 0;
  std::int64_t compute_cycles = 0;
  std::int64_t stall_cycles = 0;
  // Sub-bucket of stall_cycles charged by the resilience layer (retry
  // backoff, scrubbing) and by detected-SRAM-retry beats — the
  // fault-recovery share of the stalls, as opposed to the buffer-fill /
  // reload stalls intrinsic to stream generation. Always
  // 0 <= retry_stall_cycles <= stall_cycles; attribution (see
  // arch/attribution.hpp) reports stall_cycles - retry_stall_cycles as
  // generation cost.
  std::int64_t retry_stall_cycles = 0;
  // Sub-bucket of stall_cycles charged by the out-of-core weight store
  // (src/store/) for cycles the machine sat waiting on block loads that did
  // not overlap execution. Disjoint from retry_stall_cycles; attribution
  // folds it into the *memory* bucket (external-memory traffic, not fault
  // recovery). Always 0 <= retry_stall + io_stall <= stall_cycles.
  std::int64_t io_stall_cycles = 0;
  std::int64_t nearmem_cycles = 0;
  std::int64_t total_cycles = 0;
  std::int64_t act_buffer_fills = 0;  // values loaded into act SNG buffers
  std::int64_t wgt_buffer_fills = 0;
  std::int64_t psum_ops = 0;
  std::int64_t bn_ops = 0;
  // False when the cycle ledger failed to reconcile (every total cycle must
  // be attributed to exactly one of compute / stall / near-memory and no
  // bucket may go negative). Checked always, not just in debug builds; a
  // mismatch also bumps the machine.ledger_mismatch telemetry counter.
  bool ledger_ok = true;
};

// One layer's execution result: quantized output activations (after BN +
// bounded ReLU, in the unipolar 8-bit domain) plus the raw pre-BN counter
// values and execution statistics.
struct MachineResult {
  // (cout, hout, wout), row-major; valid after BN/ReLU.
  std::vector<std::uint8_t> activations;
  // Raw output-converter totals, same layout (pos - neg counts).
  std::vector<std::int32_t> counters;
  MachineStats stats;
};

// The near-memory BN + bounded-ReLU write-back, shared by the machine and
// the resilience layer's fixed-point reference path (degraded tiles must go
// through the exact same rounding).
//   counters     (cout * per_channel) raw pos-neg counts
//   activations  same size, receives the 8-bit unipolar outputs
void apply_bn_relu(std::span<const std::int32_t> counters,
                   std::span<const float> bn_scale,
                   std::span<const float> bn_shift, int stream_len,
                   std::int64_t per_channel,
                   std::span<std::uint8_t> activations);

// A prepared convolution whose pass schedule is executed tile by tile. One
// tile is one (channel group, window group) pair; running it executes every
// kernel slice for that tile's outputs against the input snapshot captured
// at prepare time (weight/activation streams are generated once and reused),
// so re-running a tile is the hardware's retry-from-snapshot. Obtained from
// GeoMachine::prepare_conv; the weights/input spans must outlive the
// execution. `finish()` applies BN/ReLU, reconciles the cycle ledger and
// mirrors the stats into telemetry — running every tile exactly once and
// finishing is bit- and stat-identical to GeoMachine::try_run_conv.
//
// Thread-safety: distinct tiles may run concurrently (exec::
// ParallelConvRunner does this) — tile outputs are disjoint, the lazy
// activation-stream cache is generate-once under an atomic claim, and stat
// deltas merge under a lock, so the result is byte-identical to the serial
// tile loop at any thread count (see docs/PARALLELISM.md). All other
// methods (invalidate_tile_inputs, counters, finish, ...) must be called
// with no run_tile in flight.
class ConvExecution {
 public:
  ConvExecution(ConvExecution&&) noexcept;
  ConvExecution& operator=(ConvExecution&&) noexcept;
  ~ConvExecution();

  std::int64_t tile_count() const;

  // Output indices written by `tile` (disjoint across tiles, each covered by
  // exactly one tile).
  std::vector<std::size_t> tile_outputs(std::int64_t tile) const;

  // Activation-stream indices read by `tile` (sorted, unique). Shared across
  // channel groups: tiles over the same window group read the same streams.
  // The resilience layer uses this to attribute first-access fault events to
  // the tile the serial loop would have charged them to.
  std::vector<std::size_t> tile_inputs(std::int64_t tile) const;

  // (Re)executes one tile. The tile's counters are zeroed first, so a retry
  // replaces — never double-counts — its partial sums. Cycle/stat costs
  // accumulate on every run (a retry really recomputes); the returned value
  // is this run's cost alone (the delta merged into stats()).
  MachineStats run_tile(std::int64_t tile);

  // Drops the cached activation streams feeding `tile`, so the next run_tile
  // re-reads activation SRAM and regenerates them. A retry after a detected
  // SRAM/stream fault must go through this, otherwise it would replay the
  // same poisoned buffers and recovery under a transient fault model could
  // never succeed.
  void invalidate_tile_inputs(std::int64_t tile);

  // Partial-sum state accumulated so far (indexed like MachineResult::counters).
  std::span<const std::int32_t> counters() const;

  // Execution statistics accumulated so far (ledger not yet reconciled).
  const MachineStats& stats() const;

  // Extra stall cycles charged to the ledger (retry backoff, scrubbing).
  void add_stall_cycles(std::int64_t cycles);

  // Stall cycles spent waiting on out-of-core block loads (weight-store pin
  // latency that execution could not overlap). Lands in the io sub-bucket,
  // which attribution reports as memory cost.
  void add_io_stall_cycles(std::int64_t cycles);

  // The nn-layer configuration this execution matches.
  const nn::ScLayerConfig& config() const;

  // BN + bounded ReLU write-back, ledger reconciliation, telemetry mirror.
  // Call at most once per (prepare|rebind); the result is consumed, but the
  // prepared weight streams survive — rebind_input() re-arms the execution
  // for the next batch member.
  MachineResult finish();

  // Re-arms the execution for a new input snapshot of the same layer: the
  // prepared weight streams, pass plan, and seed layout are kept (the
  // expensive per-layer setup the serving batcher amortizes), while every
  // per-run artifact is reset — the lazy activation-stream cache, partial
  // sums, stats, the fault-retry baseline, and the run timer. After a
  // rebind, running every tile and finishing produces counters and
  // activations byte-identical to a fresh prepare_conv on `input` (stats
  // legitimately differ: the weight-stream generation cost is not re-paid).
  // Valid after finish(), after a cancelled/abandoned partial run, or
  // immediately after prepare. The span must outlive the execution. Safe
  // only with no run_tile in flight. Byte-identity of the reused weight
  // streams holds when no fault model is active or the model is a defect
  // model (per-site pure draws); callers must not rebind under a transient
  // fault model — regeneration there draws fresh per-site sequences.
  geo::Status rebind_input(std::span<const float> input);

 private:
  friend class GeoMachine;
  struct Impl;
  explicit ConvExecution(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

class GeoMachine {
 public:
  explicit GeoMachine(const HwConfig& hw);

  // Executes one convolutional layer.
  //   weights  : (cout, cin, kh, kw) signed values in [-1, 1]
  //   input    : (cin, hin, win) unipolar values in [0, 1]
  //   bn_scale / bn_shift : per-output-channel folded BN coefficients
  //   layer_salt : seed-space rotation, must match the reference model
  // Throws std::invalid_argument on shape/operand mismatch (legacy API;
  // implemented on top of try_run_conv).
  MachineResult run_conv(const ConvShape& shape,
                         std::span<const float> weights,
                         std::span<const float> input,
                         std::span<const float> bn_scale,
                         std::span<const float> bn_shift,
                         std::uint64_t layer_salt);

  // Non-throwing variant: pre-flight validates the shape and operand sizes
  // and returns a structured error instead of crashing or throwing. On
  // success the MachineResult is identical to run_conv's.
  geo::StatusOr<MachineResult> try_run_conv(const ConvShape& shape,
                                            std::span<const float> weights,
                                            std::span<const float> input,
                                            std::span<const float> bn_scale,
                                            std::span<const float> bn_shift,
                                            std::uint64_t layer_salt);

  // Validates the layer and builds a tile-granular execution (the machinery
  // under try_run_conv, exposed for the resilience layer's detect-and-retry
  // loop). The spans must outlive the returned execution.
  geo::StatusOr<ConvExecution> prepare_conv(const ConvShape& shape,
                                            std::span<const float> weights,
                                            std::span<const float> input,
                                            std::span<const float> bn_scale,
                                            std::span<const float> bn_shift,
                                            std::uint64_t layer_salt);

  // The pre-flight validation used by try_run_conv, exposed for callers that
  // want to reject bad layers before allocating stream buffers.
  geo::Status validate_conv(const ConvShape& shape,
                            std::span<const float> weights,
                            std::span<const float> input,
                            std::span<const float> bn_scale,
                            std::span<const float> bn_shift) const;

  const HwConfig& hw() const { return hw_; }

  // The nn-layer configuration this machine's execution matches.
  nn::ScLayerConfig layer_config(const ConvShape& shape,
                                 std::uint64_t layer_salt) const;

 private:
  HwConfig hw_;
};

}  // namespace geo::arch
