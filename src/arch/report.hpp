// Plain-text table / bar-chart rendering for the bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace geo::arch {

// Fixed-width table with a header row; columns auto-sized.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  // Ragged rows are tolerated: rows shorter than the header are padded with
  // empty cells, rows longer than the header keep their extra cells (the
  // header gains unnamed columns when rendering).
  void add_row(std::vector<std::string> row);

  // Convenience for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string si(double v, int precision = 1);  // 14k, 3.2M, ...
  static std::string percent(double fraction, int precision = 1);

  std::string render() const;
  void print() const;

  // Structured access (used by the bench JSON emitters, which mirror the
  // exact strings the ASCII table prints).
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal ASCII bar scaled to `width` characters at value `max`.
// Degenerate inputs (max <= 0, non-finite, negative value) render empty
// rather than misleading glyphs.
std::string bar(double value, double max, int width = 40);

}  // namespace geo::arch
