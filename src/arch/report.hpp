// Plain-text table / bar-chart rendering for the bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace geo::arch {

// Fixed-width table with a header row; columns auto-sized.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience for numeric cells.
  static std::string num(double v, int precision = 2);
  static std::string si(double v, int precision = 1);  // 14k, 3.2M, ...
  static std::string percent(double fraction, int precision = 1);

  std::string render() const;
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal ASCII bar scaled to `width` characters at value `max`.
std::string bar(double value, double max, int width = 40);

}  // namespace geo::arch
