#include "arch/area_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "arch/memory_model.hpp"

namespace geo::arch {

double ge_inv() { return 0.67; }
double ge_and2() { return 1.33; }
double ge_or2() { return 1.33; }
double ge_xor2() { return 2.33; }
double ge_mux2() { return 2.33; }
double ge_full_adder() { return 6.0; }
double ge_flip_flop() { return 4.33; }

double or_tree_ge(int fan_in) {
  return fan_in <= 1 ? 0.0 : (fan_in - 1) * ge_or2();
}

namespace {
int bits_for(int n) {
  return n <= 1 ? 1 : std::bit_width(static_cast<unsigned>(n));
}
}  // namespace

double parallel_counter_ge(int inputs, int acc_bits) {
  if (inputs <= 0) return 0.0;
  // A registered full-adder compressor tree reducing n inputs to a
  // bits_for(n)-bit sum: ~n - bits_for(n) full adders plus an input capture
  // flop per converted stream (the conversion boundary of Sec. III-B), and
  // the accumulation adder/register.
  const int fas = std::max(inputs - bits_for(inputs), 0);
  return inputs * ge_flip_flop() + fas * ge_full_adder() +
         acc_bits * (ge_full_adder() + ge_flip_flop());
}

double apc_ge(int inputs, int acc_bits) {
  if (inputs <= 0) return 0.0;
  const int merged = (inputs + 1) / 2;
  return merged * ge_or2() + parallel_counter_ge(merged, acc_bits);
}

double comparator_ge(int bits) {
  // Ripple magnitude comparator: ~1.5 GE per bit plus output logic.
  return 1.5 * bits + 1.0;
}

double lfsr_ge(int bits) {
  // Flip-flops plus up to 3 feedback XORs.
  return bits * ge_flip_flop() + 3 * ge_xor2();
}

double register_ge(int bits) { return bits * ge_flip_flop(); }

double counter_ge(int bits) {
  return bits * (ge_flip_flop() + 0.5 * ge_full_adder());
}

double sc_mac_unit_ge(int cin, int kh, int kw, nn::AccumMode mode) {
  const int taps = cin * kh * kw;
  // Split-unipolar runs the positive and negative phases through the same
  // gates in consecutive cycles (that is why the effective stream length
  // doubles), so the fabric is single-copy: one AND per product, one
  // accumulation structure, an up/down output counter.
  const double mult = taps * ge_and2();
  const int acc_bits = 8 + bits_for(taps);  // output-converter counter width

  double acc = 0.0;
  switch (mode) {
    case nn::AccumMode::kOr:
      acc = or_tree_ge(taps) + counter_ge(acc_bits);
      break;
    case nn::AccumMode::kPbw: {
      // kw OR groups of (cin*kh) + parallel counter across the kw groups.
      const int group = cin * kh;
      acc = kw * or_tree_ge(group) + parallel_counter_ge(kw, acc_bits);
      break;
    }
    case nn::AccumMode::kPbhw: {
      const int group = cin;
      acc = kh * kw * or_tree_ge(group) +
            parallel_counter_ge(kh * kw, acc_bits);
      break;
    }
    case nn::AccumMode::kFxp:
      acc = parallel_counter_ge(taps, acc_bits);
      break;
    case nn::AccumMode::kApc:
      acc = apc_ge(taps, acc_bits);
      break;
  }
  return mult + acc;
}

double sc_mac_unit_um2(int cin, int kh, int kw, nn::AccumMode mode,
                       const TechParams& tech) {
  return sc_mac_unit_ge(cin, kh, kw, mode) * tech.ge_area_um2;
}

double AreaBreakdown::total() const {
  return logic_total() + act_memory + wgt_memory + ext_mem_phy;
}

double AreaBreakdown::logic_total() const {
  return mac_array + act_sng + act_sng_buffers + wgt_sng + wgt_sng_buffers +
         shadow_buffers + output_converters + near_memory + pipeline +
         control;
}

std::vector<std::pair<std::string, double>> AreaBreakdown::items() const {
  return {
      {"SC MAC arrays", mac_array},
      {"Act. SNG", act_sng},
      {"Act. SNG buffers", act_sng_buffers},
      {"Wgt. SNG", wgt_sng},
      {"Wgt. SNG buffers", wgt_sng_buffers},
      {"Shadow buffers", shadow_buffers},
      {"Output conv.", output_converters},
      {"Near-memory compute", near_memory},
      {"Pipeline registers", pipeline},
      {"Control", control},
      {"Act. memory", act_memory},
      {"Wgt. memory", wgt_memory},
      {"Ext. memory PHY", ext_mem_phy},
  };
}

AreaBreakdown accelerator_area(const HwConfig& hw, const TechParams& tech) {
  AreaBreakdown a;
  const double ge_mm2 = tech.ge_area_um2 * 1e-6 * tech.layout_overhead;

  // --- MAC array: per-tap multipliers plus per-row accumulation fabric
  //     (single copy; the two split-unipolar phases time-multiplex it).
  {
    const int taps = hw.macs_per_row;
    const double mult = taps * ge_and2();
    double acc = 0.0;
    const int acc_bits = 8 + bits_for(taps);
    switch (hw.accum) {
      case nn::AccumMode::kOr:
        acc = or_tree_ge(taps);
        break;
      case nn::AccumMode::kPbw:
      case nn::AccumMode::kPbhw: {
        const int seg = std::max(hw.pb_segments, 1);
        acc = seg * or_tree_ge(taps / seg) +
              parallel_counter_ge(seg, acc_bits);
        break;
      }
      case nn::AccumMode::kFxp:
        acc = parallel_counter_ge(taps, acc_bits);
        break;
      case nn::AccumMode::kApc:
        acc = apc_ge(taps, acc_bits);
        break;
    }
    a.mac_array = hw.rows * (mult + acc) * ge_mm2;
  }

  // --- SNGs: comparator per SNG; activation LFSRs sit one per buffer slot.
  //     Weight LFSRs are broadcast across all rows under GEO's sharing; the
  //     unshared baseline replicates them per row-octet so different row
  //     groups can carry independent seeds.
  const int act_sngs = hw.activation_sngs();
  const int wgt_sngs = hw.rows * hw.weight_sngs_per_row();
  {
    const double comp = comparator_ge(hw.lfsr_bits);
    const double act_lfsrs = act_sngs;
    const double wgt_lfsrs = hw.lfsr_per_sng
                                 ? hw.weight_sngs_per_row() * 8
                                 : hw.weight_sngs_per_row();
    a.act_sng = (act_sngs * comp + act_lfsrs * lfsr_ge(hw.lfsr_bits)) * ge_mm2;
    a.wgt_sng = (wgt_sngs * comp + wgt_lfsrs * lfsr_ge(hw.lfsr_bits)) * ge_mm2;
  }

  // --- SNG value buffers (8 bits per SNG), plus progressive shadow buffers
  //     (2 bits per SNG when enabled; a full shadow copy would be 4x that).
  a.act_sng_buffers = act_sngs * register_ge(hw.sng_value_bits) * ge_mm2;
  a.wgt_sng_buffers = wgt_sngs * register_ge(hw.sng_value_bits) * ge_mm2;
  if (hw.shadow_buffers) {
    const int shadow_bits = hw.progressive ? 2 : hw.sng_value_bits;
    a.shadow_buffers =
        (act_sngs + wgt_sngs) * register_ge(shadow_bits) * ge_mm2;
  }

  // --- Output converters: an up/down accumulation counter (the subtract is
  //     folded into the count direction), plus the configurable pooling
  //     neighbor-add. The per-cycle increment is bounded by the parallel
  //     counter width, so the register only needs pb bits + stream bits.
  {
    const int acc_bits = 8 + bits_for(std::max(hw.pb_segments, 2));
    const double oc = counter_ge(acc_bits)           // up/down counter
                      + acc_bits * ge_full_adder();  // pooling neighbor-add
    a.output_converters = hw.output_converters() * oc * ge_mm2;
  }

  // --- Near-memory compute: vector of 16-bit adders matching the act-memory
  //     port, plus BN fixed-point MACs.
  if (hw.near_memory) {
    const int lanes = hw.mem_port_bits / 16;
    const double adder = 16 * ge_full_adder();
    const double bn_mac = 8 * 8 * 0.8 /*array mult*/ + 16 * ge_full_adder();
    a.near_memory = lanes * (adder + bn_mac) * ge_mm2;
  }

  // --- Pipeline registers between SC MAC and partial-binary stages.
  if (hw.pipeline_stage) {
    const int seg = std::max(hw.pb_segments, 1);
    a.pipeline = hw.rows * seg * 2 * ge_flip_flop() * ge_mm2;
  }

  // --- Control & instruction memory: small fixed fraction of the fabric.
  a.control = 0.05 * (a.mac_array + a.output_converters) +
              2048 * ge_flip_flop() * ge_mm2;

  // --- Memories.
  a.act_memory = SramModel{static_cast<double>(hw.act_mem_kb),
                           hw.mem_port_bits, 2}
                     .area_mm2();
  a.wgt_memory = SramModel{static_cast<double>(hw.wgt_mem_kb),
                           hw.mem_port_bits, 2}
                     .area_mm2();
  if (hw.external_memory) a.ext_mem_phy = ExternalMemoryModel{}.phy_area_mm2;

  return a;
}

}  // namespace geo::arch
