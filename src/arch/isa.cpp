#include "arch/isa.hpp"

#include <array>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace geo::arch {

namespace {
constexpr std::array<const char*, 12> kMnemonics = {
    "nop",    "config",  "loadwgt", "loadact", "genexec", "nmacc",
    "nmbn",   "pool",    "storeout", "loadext", "barrier", "halt",
};
}

const char* mnemonic(Opcode op) noexcept {
  const auto i = static_cast<std::size_t>(op);
  return i < kMnemonics.size() ? kMnemonics[i] : "?";
}

std::string Instruction::to_string() const {
  std::ostringstream os;
  os << mnemonic(op);
  if (arg0 != 0 || arg1 != 0 || arg2 != 0) os << ' ' << arg0;
  if (arg1 != 0 || arg2 != 0) os << ' ' << arg1;
  if (arg2 != 0) os << ' ' << arg2;
  return os.str();
}

std::uint64_t Instruction::encode() const {
  auto field = [](std::int32_t v) -> std::uint64_t {
    if (v < -32768 || v > 32767)
      throw std::out_of_range("Instruction::encode: operand exceeds 16 bits");
    return static_cast<std::uint64_t>(static_cast<std::uint16_t>(v));
  };
  return (static_cast<std::uint64_t>(op) << 56) | (field(arg0) << 32) |
         (field(arg1) << 16) | field(arg2);
}

Instruction Instruction::decode(std::uint64_t word) {
  auto field = [](std::uint64_t w, unsigned shift) {
    return static_cast<std::int32_t>(
        static_cast<std::int16_t>((w >> shift) & 0xFFFF));
  };
  Instruction inst;
  const auto op = static_cast<std::uint8_t>(word >> 56);
  if (op >= kMnemonics.size())
    throw std::invalid_argument("Instruction::decode: bad opcode");
  inst.op = static_cast<Opcode>(op);
  inst.arg0 = field(word, 32);
  inst.arg1 = field(word, 16);
  inst.arg2 = field(word, 0);
  return inst;
}

geo::StatusOr<Instruction> Instruction::try_parse(const std::string& line) {
  std::istringstream is(line);
  std::string m;
  if (!(is >> m))
    return geo::Status::invalid_argument("Instruction::parse: empty line");
  Instruction inst;
  bool found = false;
  for (std::size_t i = 0; i < kMnemonics.size(); ++i)
    if (m == kMnemonics[i]) {
      inst.op = static_cast<Opcode>(i);
      found = true;
      break;
    }
  if (!found)
    return geo::Status::invalid_argument(
        "Instruction::parse: unknown mnemonic '" + m + "'");
  std::int32_t* const args[3] = {&inst.arg0, &inst.arg1, &inst.arg2};
  std::string tok;
  int count = 0;
  while (is >> tok) {
    if (count >= 3)
      return geo::Status::invalid_argument(
          "Instruction::parse: more than 3 operands in '" + line + "'");
    std::int32_t v = 0;
    const char* first = tok.data();
    const char* last = tok.data() + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || ptr != last)
      return geo::Status::invalid_argument(
          "Instruction::parse: operand '" + tok + "' is not an integer");
    if (v < -32768 || v > 32767)
      return geo::Status::out_of_range(
          "Instruction::parse: operand '" + tok + "' exceeds 16 bits");
    *args[count++] = v;
  }
  return inst;
}

Instruction Instruction::parse(const std::string& line) {
  auto inst = try_parse(line);
  if (!inst.ok()) throw std::invalid_argument(inst.status().to_string());
  return *inst;
}

std::string Program::to_text() const {
  std::string out;
  for (const auto& inst : code_) {
    out += inst.to_string();
    out += '\n';
  }
  return out;
}

Program Program::from_text(const std::string& text) {
  Program p;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    // Strip comments and blanks.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    p.push(Instruction::parse(line));
  }
  return p;
}

std::vector<std::uint64_t> Program::encode() const {
  std::vector<std::uint64_t> words;
  words.reserve(code_.size());
  for (const auto& inst : code_) words.push_back(inst.encode());
  return words;
}

Program Program::decode(const std::vector<std::uint64_t>& words) {
  Program p;
  for (std::uint64_t w : words) p.push(Instruction::decode(w));
  return p;
}

}  // namespace geo::arch
