// Technology parameters and scaling models.
//
// The paper synthesizes blocks in a commercial 28 nm HVT library, models
// memories with CACTI 6.5 [28], scales foreign numbers with Stillmaker-Baas
// equations [31], and harvests pipeline timing slack as voltage scaling
// (0.9 V -> 0.81 V at 400 MHz). We reproduce those mechanisms with a
// gate-equivalent model whose constants are calibrated to the published
// GEO-ULP and GEO-LP design points (see DESIGN.md "Calibration policy").
#pragma once

namespace geo::arch {

struct TechParams {
  double node_nm = 28.0;
  double vdd_nominal = 0.9;  // V
  double vth = 0.42;         // V (HVT)
  double alpha = 1.35;       // alpha-power-law velocity-saturation exponent

  // Gate-equivalent (NAND2) unit constants at nominal voltage.
  double ge_area_um2 = 0.49;   // layout area per GE
  // Switching energy per GE per active cycle, including local wiring load;
  // calibrated so GEO ULP lands at the paper's ~48 mW / 305k frames/J point.
  double ge_energy_fj = 3.9;
  double ge_leak_nw = 0.55;    // HVT leakage power per GE
  double ge_delay_ps = 32.0;   // loaded gate delay

  // Block-level layout overhead (routing, clock tree, control) applied on
  // top of raw GE area. Calibrated against the published 0.58 mm2 ULP /
  // 9.2 mm2 LP totals.
  double layout_overhead = 1.35;

  static TechParams hvt28() { return {}; }
};

// Stillmaker-Baas-style inter-node scaling factors (ratios applied to a
// quantity known at `from_nm` to estimate it at `to_nm`).
double area_scale(double from_nm, double to_nm);
double energy_scale(double from_nm, double to_nm);
double delay_scale(double from_nm, double to_nm);

// Voltage scaling at fixed frequency: dynamic energy ~ V^2; leakage power
// drops slightly super-linearly with V (DIBL); gate delay follows the
// alpha-power law d ~ V / (V - Vth)^alpha.
double dynamic_energy_scale(double v, double v_nominal);
double leakage_power_scale(double v, double v_nominal);
double gate_delay_scale(const TechParams& tech, double v);

// Largest supply voltage (>= some floor) at which logic with `nominal_delay`
// paths still meets `target_delay`, per the alpha-power law. Returns
// vdd_nominal when no slack exists.
double min_vdd_for_delay(const TechParams& tech, double nominal_delay,
                         double target_delay);

}  // namespace geo::arch
