// ProgramTimer: executes a compiled GEO instruction stream against the
// hardware configuration, cycle by cycle, modeling the overlap between the
// buffer-fill port and the compute engine (ping-pong banks + shadow
// buffers). This makes the ISA load-bearing: the analytical PerfSim and the
// instruction-level timing must agree (tested), mirroring the paper's
// "performance simulator ... with a compiled code representing the given
// network model".
#pragma once

#include <cstdint>

#include "arch/hw_config.hpp"
#include "arch/isa.hpp"

namespace geo::arch {

struct ProgramTiming {
  std::int64_t cycles = 0;          // end-to-end cycles for one iteration
  std::int64_t compute_cycles = 0;  // GenExec time
  std::int64_t load_cycles = 0;     // fill-port busy time
  std::int64_t stall_cycles = 0;    // compute waiting on loads
  std::int64_t nearmem_cycles = 0;
  std::int64_t ext_cycles = 0;      // external-memory streaming (overlapped)
};

class ProgramTimer {
 public:
  explicit ProgramTimer(const HwConfig& hw) : hw_(hw) {}

  // Times one iteration of the program (one pass of a layer kernel).
  // `iterations` repeats it back-to-back, carrying shadow-buffer prefetch
  // across iterations, which is how the compiler's per-layer programs are
  // meant to run (the plan's pass count).
  ProgramTiming time(const Program& program, std::int64_t iterations = 1) const;

 private:
  HwConfig hw_;
};

}  // namespace geo::arch
