// Performance simulator: executes compiled layer plans against the hardware
// config, modeling pass-level reload/compute overlap (progressive generation
// + shadow buffering), near-memory operations, ping-pong banking, DVFS, and
// external-memory streaming. This mirrors the paper's "custom performance
// simulator, which combines the numbers from individual modules with a
// compiled code representing the given network model".
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "arch/compiler.hpp"
#include "arch/energy_model.hpp"
#include "arch/hw_config.hpp"
#include "arch/tech.hpp"
#include "arch/timing_model.hpp"

namespace geo::arch {

struct LayerPerf {
  std::string name;
  double compute_cycles = 0;
  double stall_cycles = 0;   // reload not hidden by shadow buffering
  double nearmem_cycles = 0;
  double total_cycles = 0;
  double energy_j = 0;
  double ext_seconds = 0;    // external-memory streaming time (overlapped)
};

struct PerfResult {
  double cycles = 0;
  double seconds = 0;
  double frames_per_second = 0;
  double energy_per_frame_j = 0;
  double frames_per_joule = 0;
  double average_power_w = 0;
  double vdd = 0;
  EnergyBreakdown energy;
  AccessCounts accesses;
  std::vector<LayerPerf> layers;
};

// Mirrors the resilience runtime's retry cost into an analytical result:
// adds each layer's retry cycles (ResilienceReport::per_layer_retry_cycles,
// in layer order; extra entries are ignored) to that layer's stall bucket
// and re-derives the latency figures. Energy is left untouched — backoff
// cycles are idle, and the recompute energy of abandoned rungs is
// second-order next to the stall cost. Bumps perfsim.retry_cycles.
void apply_retry_cycles(PerfResult& result,
                        std::span<const std::int64_t> per_layer_retry_cycles,
                        double clock_mhz);

class PerfSim {
 public:
  explicit PerfSim(const HwConfig& hw,
                   const TechParams& tech = TechParams::hvt28());

  // Simulates one inference of the network (compiles it first).
  PerfResult simulate(const NetworkShape& net) const;
  PerfResult simulate(const std::vector<LayerPlan>& plans) const;

  // Reload stall per pass, in cycles (exposed for ablation benches).
  double pass_stall_cycles(const LayerPlan& plan) const;

  // Peak throughput rating: 2 ops/MAC at the shortest configured stream
  // length; all-OR designs (ACOUSTIC-style) pay the split-unipolar doubling
  // explicitly. See DESIGN.md "Calibration policy" for the convention.
  double peak_gops() const;
  double peak_tops_per_watt() const;

  const HwConfig& hw() const { return hw_; }
  const EnergyModel& energy_model() const { return energy_; }

 private:
  HwConfig hw_;       // vdd already resolved through DVFS
  TechParams tech_;
  EnergyModel energy_;
  Compiler compiler_;
};

}  // namespace geo::arch
