// Dynamic + leakage energy model with per-module activity factors.
//
// The paper adjusts synthesis power numbers with activity factors obtained
// from RTL simulation ("many modules, such as SNG buffers and batch
// normalization modules are idle most of the time"); here the factors are
// explicit per-module constants applied to GE switching energy.
#pragma once

#include "arch/area_model.hpp"
#include "arch/hw_config.hpp"
#include "arch/memory_model.hpp"
#include "arch/tech.hpp"

namespace geo::arch {

struct ActivityFactors {
  double mac_array = 0.18;     // SC streams toggle densely
  double sng = 0.30;           // LFSR + comparator switch every cycle
  double sng_buffers = 0.03;   // loaded rarely, hold mostly
  double output_conv = 0.25;
  double near_memory = 0.05;   // time-multiplexed
  double pipeline = 0.25;
  double control = 0.10;
};

struct EnergyBreakdown {
  double mac_array = 0;  // joules each
  double act_sng = 0;
  double act_sng_buffers = 0;
  double wgt_sng = 0;
  double wgt_sng_buffers = 0;
  double output_conv = 0;
  double near_memory = 0;
  double act_memory = 0;
  double wgt_memory = 0;
  double external_memory = 0;
  double leakage = 0;
  double other = 0;

  double total() const;
  std::vector<std::pair<std::string, double>> items() const;
};

class EnergyModel {
 public:
  EnergyModel(const HwConfig& hw, const TechParams& tech,
              const ActivityFactors& act = {});

  // Dynamic energy of one *compute* cycle (stream generation + MAC +
  // accumulation + conversion active), in joules, at the configured vdd.
  double compute_cycle_energy() const;

  // Per-module pieces of one compute cycle (joules).
  double mac_cycle_energy() const;
  double act_sng_cycle_energy() const;
  double wgt_sng_cycle_energy() const;
  double buffer_cycle_energy() const;
  double output_conv_cycle_energy() const;

  // Energy of loading one SNG buffer value (8 bits moved + register write).
  double buffer_load_energy(int bits) const;

  // Near-memory read-add-write of one 16-bit lane pair (adder only; the two
  // SRAM accesses are billed separately).
  double near_mem_add_energy() const;

  // SRAM word accesses.
  double act_read_energy() const { return act_sram_.read_energy_pj() * 1e-12; }
  double act_write_energy() const {
    return act_sram_.write_energy_pj() * 1e-12;
  }
  double wgt_read_energy() const { return wgt_sram_.read_energy_pj() * 1e-12; }

  // External memory energy per bit moved.
  double ext_energy_per_bit() const {
    return ext_.energy_pj_per_bit * 1e-12;
  }

  // Total leakage power (W) at the configured vdd, including SRAM retention.
  double leakage_power() const;

  const SramModel& act_sram() const { return act_sram_; }
  const SramModel& wgt_sram() const { return wgt_sram_; }
  const ExternalMemoryModel& ext_mem() const { return ext_; }

 private:
  double ge_energy_j() const;  // per GE toggle at configured vdd

  HwConfig hw_;
  TechParams tech_;
  ActivityFactors act_;
  AreaBreakdown area_;  // reused for GE-proportional energy splits
  SramModel act_sram_, wgt_sram_;
  ExternalMemoryModel ext_;
};

}  // namespace geo::arch
