// The GEO instruction set (based on the ACOUSTIC ISA [5] "with minor
// modifications" — the modifications being the 2-cycle near-memory
// read-add-write vector instruction and near-memory batch-norm of
// Sec. III-C).
//
// Instructions carry up to three immediate operands; the textual assembly
// and the 64-bit binary encoding round-trip exactly (tested).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.hpp"

namespace geo::arch {

enum class Opcode : std::uint8_t {
  kNop = 0,
  kConfig,      // arg0 = stream length, arg1 = lfsr bits, arg2 = accum mode
  kLoadWgt,     // arg0 = values to load into weight SNG buffers
  kLoadAct,     // arg0 = values to load into activation SNG buffers
  kGenExec,     // arg0 = stream cycles, arg1 = outputs produced
  kNearMemAcc,  // arg0 = partial sums (16-bit lanes) to read-add-write
  kNearMemBn,   // arg0 = values to batch-normalize near memory
  kPool,        // arg0 = outputs merged by the output-converter neighbor add
  kStoreOut,    // arg0 = output values written back to activation memory
  kLoadExt,     // arg0 = bytes fetched from external memory (LP only)
  kBarrier,     // wait for outstanding loads (ping-pong bank swap)
  kHalt,
};

const char* mnemonic(Opcode op) noexcept;

struct Instruction {
  Opcode op = Opcode::kNop;
  std::int32_t arg0 = 0;
  std::int32_t arg1 = 0;
  std::int32_t arg2 = 0;

  bool operator==(const Instruction&) const = default;

  std::string to_string() const;

  // 64-bit encoding: [63:56] opcode, then 3x 16-bit sign-extended operands
  // in [47:0] (operands must fit 16 bits; larger counts are expressed by the
  // compiler as repeated instructions).
  std::uint64_t encode() const;
  static Instruction decode(std::uint64_t word);

  // Parses one assembly line, e.g. "genexec 256 512". Rejects unknown
  // mnemonics, non-numeric or out-of-16-bit-range operands, and more than
  // three operands.
  static geo::StatusOr<Instruction> try_parse(const std::string& line);

  // Throwing wrapper around try_parse (std::invalid_argument).
  static Instruction parse(const std::string& line);
};

class Program {
 public:
  void push(Instruction inst) { code_.push_back(inst); }
  void push(Opcode op, std::int32_t a0 = 0, std::int32_t a1 = 0,
            std::int32_t a2 = 0) {
    code_.push_back({op, a0, a1, a2});
  }

  std::size_t size() const noexcept { return code_.size(); }
  bool empty() const noexcept { return code_.empty(); }
  const Instruction& operator[](std::size_t i) const { return code_[i]; }
  const std::vector<Instruction>& instructions() const { return code_; }

  void append(const Program& other) {
    code_.insert(code_.end(), other.code_.begin(), other.code_.end());
  }

  std::string to_text() const;
  static Program from_text(const std::string& text);

  std::vector<std::uint64_t> encode() const;
  static Program decode(const std::vector<std::uint64_t>& words);

 private:
  std::vector<Instruction> code_;
};

}  // namespace geo::arch
