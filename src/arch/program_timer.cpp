#include "arch/program_timer.hpp"

#include <algorithm>
#include <cmath>

#include "arch/memory_model.hpp"

namespace geo::arch {

ProgramTiming ProgramTimer::time(const Program& program,
                                 std::int64_t iterations) const {
  ProgramTiming t;
  const double fill = hw_.buffer_fill_bits;
  const double lanes = std::max(1, hw_.mem_port_bits / 16);

  // Stream-length context set by kConfig (needed for progressive loading).
  int lfsr_bits = hw_.lfsr_bits;
  const double value_bits = hw_.sng_value_bits;

  // The fill port is busy until `port_free`; compute is busy until
  // `compute_free`. Shadow buffering lets loads run during compute;
  // without shadow buffers loads for a pass must finish before its
  // GenExec starts *and* cannot start until the previous GenExec ends.
  std::int64_t now = 0;          // current issue time
  std::int64_t port_free = 0;    // when the fill port is idle
  std::int64_t compute_free = 0; // when the compute engine is idle
  std::int64_t ext_free = 0;     // when the external channel is idle

  for (std::int64_t it = 0; it < iterations; ++it) {
    std::int64_t loads_done = now;
    for (const Instruction& inst : program.instructions()) {
      switch (inst.op) {
        case Opcode::kConfig:
          lfsr_bits = std::min(inst.arg1, hw_.lfsr_bits);
          now += 1;
          break;
        case Opcode::kLoadWgt:
        case Opcode::kLoadAct: {
          const double bits_per_value =
              hw_.progressive ? lfsr_bits : value_bits;
          const auto cost = static_cast<std::int64_t>(
              std::ceil(inst.arg0 * bits_per_value / fill));
          // Loads queue on the fill port. With shadow buffers the port runs
          // ahead of the program counter (prefetching the next pass under
          // the current compute); without them a load waits for both the
          // program counter and the compute engine.
          const std::int64_t start =
              hw_.shadow_buffers ? port_free
                                 : std::max({port_free, now, compute_free});
          port_free = start + cost;
          t.load_cycles += cost;
          loads_done = std::max(loads_done, port_free);
          break;
        }
        case Opcode::kLoadExt: {
          const double bytes_per_cycle =
              ExternalMemoryModel{}.bandwidth_gbytes * 1e9 /
              (hw_.clock_mhz * 1e6);
          const auto cost = static_cast<std::int64_t>(
              std::ceil(inst.arg0 / bytes_per_cycle));
          ext_free = std::max(ext_free, now) + cost;
          t.ext_cycles += cost;
          break;
        }
        case Opcode::kBarrier: {
          // Generation may begin once the minimum prefix of every value has
          // landed: with progressive loading that is the first 2-bit group
          // (1/4 of a full 8-bit fill), otherwise the whole load.
          std::int64_t ready = loads_done;
          if (hw_.progressive && loads_done > now) {
            // Generation starts once the first 2-bit group of every value
            // is in; the rest of the bits trickle in under compute.
            const double bits_per_value = std::max<double>(lfsr_bits, 2.0);
            const std::int64_t queued = loads_done - now;
            ready = now + static_cast<std::int64_t>(
                              std::ceil(queued * 2.0 / bits_per_value));
          }
          if (ready > now) {
            t.stall_cycles += ready - now;
            now = ready;
          }
          break;
        }
        case Opcode::kGenExec: {
          const std::int64_t start = std::max(now, compute_free);
          t.stall_cycles += start - now;
          now = start;
          const std::int64_t cost =
              inst.arg0 + (hw_.pipeline_stage ? 1 : 0);
          compute_free = now + cost;
          now = compute_free;
          t.compute_cycles += cost;
          break;
        }
        case Opcode::kNearMemAcc:
        case Opcode::kNearMemBn: {
          const auto cost = static_cast<std::int64_t>(
              std::ceil(2.0 * inst.arg0 / lanes));
          now += cost;
          t.nearmem_cycles += cost;
          break;
        }
        case Opcode::kPool:
        case Opcode::kStoreOut:
          now += 1;
          break;
        case Opcode::kNop:
          now += 1;
          break;
        case Opcode::kHalt:
          break;
      }
    }
    now = std::max(now, ext_free);
  }
  t.cycles = now;
  return t;
}

}  // namespace geo::arch
