// Per-layer cycle attribution: the runtime analogue of the paper's Fig. 6
// generation/execution breakdown, computed from measured MachineStats
// instead of the analytical model.
//
// Every cycle in the machine's ledger lands in exactly one bucket:
//
//   generation  buffer-fill / reload stalls — the cycles the MAC array sat
//               waiting on stream generation (stall_cycles minus the
//               fault-recovery share)
//   execution   MAC-array compute beats (compute_cycles)
//   stall       fault-recovery stalls: resilience retry backoff, scrubbing
//               and detected-SRAM retry beats (retry_stall_cycles)
//   memory      near-memory partial-sum and BN/ReLU beats (nearmem_cycles)
//               plus out-of-core block-load stalls the weight store charged
//               (io_stall_cycles — external-memory traffic, docs/STORAGE.md)
//
// so generation + execution + stall + memory == total_cycles whenever the
// machine ledger itself reconciles. ConvExecution::finish() records every
// accepted layer into the process-wide AttributionLedger, which mirrors
// the running totals as `attr.*` registry gauges and trace counters;
// benches attach the per-layer table to their BENCH_*.json via
// attribution_to_json.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "arch/machine.hpp"
#include "telemetry/json.hpp"

namespace geo::arch {

struct CycleAttribution {
  std::int64_t generation_cycles = 0;
  std::int64_t execution_cycles = 0;
  std::int64_t stall_cycles = 0;   // fault-recovery share
  std::int64_t memory_cycles = 0;
  std::int64_t total_cycles = 0;
  std::int64_t passes = 0;
  bool ledger_ok = true;

  CycleAttribution& operator+=(const CycleAttribution& o);
  // True when the four buckets are non-negative and sum to total_cycles.
  bool reconciles() const;
};

// Splits one layer's measured stats into the four buckets.
CycleAttribution attribute(const MachineStats& stats);

// Process-wide accumulation keyed by layer name, in first-record order.
// Thread-safe; layers finishing concurrently at any GEO_THREADS merge to
// the same totals.
class AttributionLedger {
 public:
  static AttributionLedger& instance();

  // Accumulates `stats` under `layer` (repeat runs of one layer add up),
  // refreshes the attr.* registry gauges and, when tracing, emits
  // attr.* counter events with the running totals.
  void record(std::string_view layer, const MachineStats& stats);

  // Per-layer snapshot, first-record order.
  std::vector<std::pair<std::string, CycleAttribution>> layers() const;
  CycleAttribution total() const;

  void reset();

 private:
  AttributionLedger() = default;
};

// {"generation_cycles": ..., "execution_cycles": ..., "stall_cycles": ...,
//  "memory_cycles": ..., "total_cycles": ..., "ledger_ok": true,
//  "layers": [{"layer": "...", "generation_cycles": ..., ...}, ...]}
telemetry::Json attribution_to_json(const AttributionLedger& ledger);

}  // namespace geo::arch
