#include "arch/gen_pipeline_sim.hpp"

#include <algorithm>
#include <string>

namespace geo::arch {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}
}  // namespace

GenPipelineResult simulate_generation(const GenPipelineConfig& cfg,
                                      bool keep_trace) {
  GenPipelineResult r;

  // Bits that must arrive before generation can start, and in total.
  const int load_bits = cfg.progressive
                            ? std::min(cfg.lfsr_bits, cfg.value_bits)
                            : cfg.value_bits;
  const std::int64_t total_bits =
      static_cast<std::int64_t>(cfg.values) * load_bits;
  const std::int64_t start_bits =
      cfg.progressive ? static_cast<std::int64_t>(cfg.values) * 2
                      : total_bits;

  const std::int64_t full_reload_cycles =
      ceil_div(total_bits, cfg.fill_bits_per_cycle);
  const std::int64_t start_cycles =
      ceil_div(start_bits, cfg.fill_bits_per_cycle);

  std::int64_t cycle = 0;
  // `prefetched` = bits of the *next* pass already sitting in shadow buffers
  // when a pass boundary is crossed.
  std::int64_t prefetched = 0;

  for (int pass = 0; pass < cfg.passes; ++pass) {
    // Phase 1: wait until enough of this pass's values are loaded to start.
    const std::int64_t outstanding_start =
        std::max<std::int64_t>(0, start_bits - prefetched);
    const std::int64_t wait =
        ceil_div(outstanding_start, cfg.fill_bits_per_cycle);
    cycle += wait;
    r.stall_cycles += wait;
    if (pass == 0) r.reload_start_latency = wait;

    // Phase 2: compute. The remainder of this pass's bits stream in under
    // the compute (progressive), and — with shadow buffers — the next
    // pass's bits follow behind them on the same fill port.
    const std::int64_t remaining_this =
        std::max<std::int64_t>(0, total_bits - prefetched - outstanding_start);
    const std::int64_t fill_capacity =
        static_cast<std::int64_t>(cfg.stream_cycles) * cfg.fill_bits_per_cycle;
    std::int64_t capacity_left = fill_capacity;

    if (cfg.progressive) {
      // Trailing bits of the current pass ride under compute.
      const std::int64_t used = std::min(remaining_this, capacity_left);
      capacity_left -= used;
      // If even the current pass cannot finish loading under compute, the
      // tail stalls the *end* of the pass.
      const std::int64_t overflow = remaining_this - used;
      const std::int64_t tail = ceil_div(overflow, cfg.fill_bits_per_cycle);
      cycle += cfg.stream_cycles + tail;
      r.stall_cycles += tail;
    } else {
      // Non-progressive: the full value was loaded up front.
      cycle += cfg.stream_cycles;
    }

    prefetched = 0;
    if (cfg.shadow && pass + 1 < cfg.passes)
      prefetched = std::min<std::int64_t>(capacity_left, total_bits);

    if (keep_trace)
      r.trace.push_back("pass " + std::to_string(pass) + ": wait=" +
                        std::to_string(wait) + " compute=" +
                        std::to_string(cfg.stream_cycles) + " prefetched=" +
                        std::to_string(prefetched) + "b");

    r.bits_loaded += total_bits;
  }

  (void)full_reload_cycles;
  (void)start_cycles;
  r.total_cycles = cycle;
  return r;
}

}  // namespace geo::arch
