// Memory models: CACTI-style on-chip SRAM and an HBM2-class external memory
// (O'Connor et al. [29]).
#pragma once

namespace geo::arch {

// Banked on-chip SRAM. Area scales linearly with capacity (bit-cell limited);
// access energy grows with the square root of bank capacity (bitline /
// wordline length), the classic CACTI shape.
struct SramModel {
  double capacity_kb = 64.0;
  int word_bits = 64;
  int banks = 2;  // GEO organizes both memories as 2 logical banks (ping-pong)

  double area_mm2() const;

  // Energy of one word access.
  double read_energy_pj() const;
  double write_energy_pj() const;

  double leakage_mw() const;

  // Words deliverable per cycle (one per bank).
  int words_per_cycle() const { return banks; }
};

// External DRAM channel, HBM2-class.
struct ExternalMemoryModel {
  double energy_pj_per_bit = 3.9;  // [29]: ~3.9 pJ/bit end-to-end
  double bandwidth_gbytes = 32.0;  // allocated channel bandwidth
  double phy_area_mm2 = 4.4;       // controller + PHY footprint at 28 nm

  double access_energy_pj(double bits) const {
    return energy_pj_per_bit * bits;
  }

  // Seconds to transfer `bytes`.
  double transfer_seconds(double bytes) const {
    return bytes / (bandwidth_gbytes * 1e9);
  }
};

}  // namespace geo::arch
