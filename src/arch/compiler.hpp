// Layer compiler: maps network layers onto the GEO fabric under a chosen
// dataflow, producing the instruction stream, pass schedule, and memory
// access counts the performance simulator consumes (Sec. III-C).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/hw_config.hpp"
#include "arch/isa.hpp"

namespace geo::arch {

// One network layer at paper scale (FC layers are 1x1 convs over a 1x1 map).
struct ConvShape {
  std::string name;
  int cin = 1, hin = 1, win = 1;
  int cout = 1, kh = 1, kw = 1;
  int stride = 1, pad = 0;
  bool pool = false;    // followed by 2x2 average pooling (computation skip)
  bool output = false;  // network output layer (always 128-bit streams)

  int hout() const { return (hin + 2 * pad - kh) / stride + 1; }
  int wout() const { return (win + 2 * pad - kw) / stride + 1; }
  int taps() const { return cin * kh * kw; }
  std::int64_t outputs() const {
    return static_cast<std::int64_t>(cout) * hout() * wout();
  }
  std::int64_t macs() const { return outputs() * taps(); }
  std::int64_t weights() const {
    return static_cast<std::int64_t>(cout) * taps();
  }
  std::int64_t activations() const {
    return static_cast<std::int64_t>(cin) * hin * win;
  }

  static ConvShape conv(std::string name, int cin, int hw, int cout,
                        int kernel, int pad, bool pool);
  static ConvShape fc(std::string name, int in, int out, bool output);
};

struct NetworkShape {
  std::string name;
  std::vector<ConvShape> layers;

  std::int64_t total_macs() const;

  // Paper-scale evaluation networks.
  static NetworkShape cnn4_cifar();   // CMSIS-NN CNN-4 on 32x32x3 [22]
  static NetworkShape cnn4_svhn();    // same topology (SVHN is 32x32x3)
  static NetworkShape lenet5();       // LeNet-5 on 28x28x1 [27]
  static NetworkShape vgg16();        // VGG-16, X/Y downscaled, FC-512 [26]
};

enum class Dataflow {
  kWeightStationary,  // + near-memory partial sums (GEO)
  kOutputStationary,  // accumulate in output converters, reload everything
  kInputStationary,   // activations resident, weights stream per tile
};

const char* to_string(Dataflow df) noexcept;

struct AccessCounts {
  std::int64_t act_reads = 0;
  std::int64_t act_writes = 0;   // layer outputs written back
  std::int64_t wgt_reads = 0;
  std::int64_t psum_reads = 0;   // near-memory read-add-write traffic
  std::int64_t psum_writes = 0;
  std::int64_t ext_bytes = 0;    // external-memory traffic (LP)

  std::int64_t total() const {
    return act_reads + act_writes + wgt_reads + psum_reads + psum_writes;
  }
  std::int64_t act_memory_total() const {
    return act_reads + act_writes + psum_reads + psum_writes;
  }

  AccessCounts& operator+=(const AccessCounts& o);
};

struct LayerPlan {
  ConvShape shape;
  Dataflow dataflow = Dataflow::kWeightStationary;
  int stream_len = 64;        // specified length ({sp,s,output} choice)
  int stream_cycles = 128;    // 2x stream_len (split-unipolar)
  int lfsr_bits = 6;

  std::int64_t passes = 0;           // generation/compute passes
  int kernel_slices = 1;             // P: kernel split when taps > row width
  int windows_per_pass = 1;          // Wr_eff
  std::int64_t act_loads_per_pass = 0;  // SNG buffer values (activations)
  std::int64_t wgt_loads_per_pass = 0;  // per row (row memories in parallel)
  std::int64_t nm_psum_ops = 0;      // near-memory read-add-write ops
  std::int64_t nm_bn_ops = 0;        // near-memory BN ops

  AccessCounts accesses;
  Program program;
};

class Compiler {
 public:
  explicit Compiler(const HwConfig& hw) : hw_(hw) {}

  // Plans one layer under an explicit dataflow.
  LayerPlan plan_layer(const ConvShape& shape, Dataflow df) const;

  // Plans the whole network under the config's natural dataflow
  // (weight-stationary with near-memory psums when available, otherwise
  // output-stationary).
  std::vector<LayerPlan> compile(const NetworkShape& net) const;

  Dataflow natural_dataflow() const {
    return hw_.near_memory ? Dataflow::kWeightStationary
                           : Dataflow::kOutputStationary;
  }

  int stream_len_for(const ConvShape& shape) const;

 private:
  HwConfig hw_;
};

}  // namespace geo::arch
