#include "arch/attribution.hpp"

#include <algorithm>
#include <mutex>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace geo::arch {

namespace {

// Singleton state lives at file scope so the header stays a pure
// interface; guarded by one mutex (record runs once per finished layer,
// never per tile or per event).
struct LedgerState {
  std::mutex mu;
  std::vector<std::pair<std::string, CycleAttribution>> layers;
  CycleAttribution total;
};

LedgerState& state() {
  static LedgerState s;
  return s;
}

void publish_locked(const CycleAttribution& total) {
  auto& reg = telemetry::MetricsRegistry::instance();
  reg.gauge("attr.generation_cycles")
      .set(static_cast<double>(total.generation_cycles));
  reg.gauge("attr.execution_cycles")
      .set(static_cast<double>(total.execution_cycles));
  reg.gauge("attr.stall_cycles").set(static_cast<double>(total.stall_cycles));
  reg.gauge("attr.memory_cycles")
      .set(static_cast<double>(total.memory_cycles));
  reg.gauge("attr.total_cycles").set(static_cast<double>(total.total_cycles));

  auto& tracer = telemetry::Tracer::instance();
  if (tracer.enabled()) {
    tracer.counter("attr.generation_cycles",
                   static_cast<double>(total.generation_cycles));
    tracer.counter("attr.execution_cycles",
                   static_cast<double>(total.execution_cycles));
    tracer.counter("attr.stall_cycles",
                   static_cast<double>(total.stall_cycles));
    tracer.counter("attr.memory_cycles",
                   static_cast<double>(total.memory_cycles));
  }
}

void attribution_fields(telemetry::Json& obj, const CycleAttribution& a) {
  obj.set("generation_cycles", telemetry::Json(a.generation_cycles));
  obj.set("execution_cycles", telemetry::Json(a.execution_cycles));
  obj.set("stall_cycles", telemetry::Json(a.stall_cycles));
  obj.set("memory_cycles", telemetry::Json(a.memory_cycles));
  obj.set("total_cycles", telemetry::Json(a.total_cycles));
  obj.set("passes", telemetry::Json(a.passes));
  obj.set("ledger_ok", telemetry::Json(a.ledger_ok));
}

}  // namespace

CycleAttribution& CycleAttribution::operator+=(const CycleAttribution& o) {
  generation_cycles += o.generation_cycles;
  execution_cycles += o.execution_cycles;
  stall_cycles += o.stall_cycles;
  memory_cycles += o.memory_cycles;
  total_cycles += o.total_cycles;
  passes += o.passes;
  ledger_ok = ledger_ok && o.ledger_ok;
  return *this;
}

bool CycleAttribution::reconciles() const {
  if (generation_cycles < 0 || execution_cycles < 0 || stall_cycles < 0 ||
      memory_cycles < 0)
    return false;
  return generation_cycles + execution_cycles + stall_cycles +
             memory_cycles ==
         total_cycles;
}

CycleAttribution attribute(const MachineStats& stats) {
  CycleAttribution a;
  a.execution_cycles = stats.compute_cycles;
  // Out-of-core block-load stalls are external-memory traffic, not stream
  // generation and not fault recovery: they leave the generation residue and
  // land in the memory bucket next to the near-memory beats.
  a.generation_cycles = stats.stall_cycles - stats.retry_stall_cycles -
                        stats.io_stall_cycles;
  a.stall_cycles = stats.retry_stall_cycles;
  a.memory_cycles = stats.nearmem_cycles + stats.io_stall_cycles;
  a.total_cycles = stats.total_cycles;
  a.passes = stats.passes;
  a.ledger_ok = stats.ledger_ok && a.reconciles();
  return a;
}

AttributionLedger& AttributionLedger::instance() {
  static AttributionLedger ledger;
  return ledger;
}

void AttributionLedger::record(std::string_view layer,
                               const MachineStats& stats) {
  const CycleAttribution a = attribute(stats);
  LedgerState& s = state();
  std::lock_guard lock(s.mu);
  auto it = std::find_if(
      s.layers.begin(), s.layers.end(),
      [&](const auto& entry) { return entry.first == layer; });
  if (it == s.layers.end()) {
    s.layers.emplace_back(std::string(layer), a);
  } else {
    it->second += a;
  }
  s.total += a;
  publish_locked(s.total);
}

std::vector<std::pair<std::string, CycleAttribution>>
AttributionLedger::layers() const {
  LedgerState& s = state();
  std::lock_guard lock(s.mu);
  return s.layers;
}

CycleAttribution AttributionLedger::total() const {
  LedgerState& s = state();
  std::lock_guard lock(s.mu);
  return s.total;
}

void AttributionLedger::reset() {
  LedgerState& s = state();
  std::lock_guard lock(s.mu);
  s.layers.clear();
  s.total = CycleAttribution{};
}

telemetry::Json attribution_to_json(const AttributionLedger& ledger) {
  telemetry::Json out = telemetry::Json::object();
  attribution_fields(out, ledger.total());
  telemetry::Json layers = telemetry::Json::array();
  for (const auto& [name, attr] : ledger.layers()) {
    telemetry::Json row = telemetry::Json::object();
    row.set("layer", telemetry::Json(name));
    attribution_fields(row, attr);
    layers.push(std::move(row));
  }
  out.set("layers", std::move(layers));
  return out;
}

}  // namespace geo::arch
