#include "arch/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace geo::arch {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() < header_.size()) row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::si(double v, int precision) {
  if (!std::isfinite(v)) return v > 0 ? "inf" : (v < 0 ? "-inf" : "nan");
  const char* suffix = "";
  double scaled = v;
  if (std::abs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::abs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "k";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%s", precision, scaled, suffix);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());

  std::vector<std::size_t> widths(columns, 0);
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  static const std::string kEmpty;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : kEmpty;
      os << (c == 0 ? "| " : " | ");
      os << cell;
      os << std::string(widths[c] - cell.size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < columns; ++c)
    os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

std::string bar(double value, double max, int width) {
  if (width <= 0 || !std::isfinite(max) || max <= 0) return {};
  if (!std::isfinite(value) || value <= 0) return {};
  const double scaled = value / max * width;
  const int n = scaled >= static_cast<double>(width)
                    ? width
                    : static_cast<int>(std::lround(scaled));
  return std::string(static_cast<std::size_t>(std::clamp(n, 0, width)), '#');
}

}  // namespace geo::arch
