#include "arch/compiler.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "telemetry/telemetry.hpp"

namespace geo::arch {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

int log2_of(int stream_len) {
  const int n = std::bit_width(static_cast<unsigned>(stream_len)) - 1;
  if ((1 << n) != stream_len)
    throw std::invalid_argument("stream length must be a power of two");
  return n;
}
}  // namespace

ConvShape ConvShape::conv(std::string name, int cin, int hw, int cout,
                          int kernel, int pad, bool pool) {
  ConvShape s;
  s.name = std::move(name);
  s.cin = cin;
  s.hin = s.win = hw;
  s.cout = cout;
  s.kh = s.kw = kernel;
  s.pad = pad;
  s.pool = pool;
  return s;
}

ConvShape ConvShape::fc(std::string name, int in, int out, bool output) {
  ConvShape s;
  s.name = std::move(name);
  s.cin = in;
  s.cout = out;
  s.output = output;
  return s;
}

std::int64_t NetworkShape::total_macs() const {
  std::int64_t total = 0;
  for (const auto& l : layers) total += l.macs();
  return total;
}

NetworkShape NetworkShape::cnn4_cifar() {
  NetworkShape n;
  n.name = "cnn4-cifar";
  n.layers = {
      ConvShape::conv("conv1", 3, 32, 32, 5, 2, true),
      ConvShape::conv("conv2", 32, 16, 16, 5, 2, true),
      ConvShape::conv("conv3", 16, 8, 32, 5, 2, true),
      ConvShape::fc("fc", 32 * 4 * 4, 10, true),
  };
  return n;
}

NetworkShape NetworkShape::cnn4_svhn() {
  NetworkShape n = cnn4_cifar();
  n.name = "cnn4-svhn";
  return n;
}

NetworkShape NetworkShape::lenet5() {
  NetworkShape n;
  n.name = "lenet5";
  n.layers = {
      ConvShape::conv("conv1", 1, 28, 6, 5, 0, true),    // 28 -> 24 -> 12
      ConvShape::conv("conv2", 6, 12, 16, 5, 0, true),   // 12 -> 8 -> 4
      ConvShape::fc("fc1", 16 * 4 * 4, 120, false),
      ConvShape::fc("fc2", 120, 84, false),
      ConvShape::fc("fc3", 84, 10, true),
  };
  return n;
}

NetworkShape NetworkShape::vgg16() {
  NetworkShape n;
  n.name = "vgg16";
  // X/Y dimensions downscaled to 32x32 (the paper downscales VGG-16's input
  // dims and shrinks the FC layers to 512).
  struct Block {
    int cin, size, cout;
    bool pool;
  };
  const Block blocks[] = {
      {3, 32, 64, false},   {64, 32, 64, true},     // -> 16
      {64, 16, 128, false}, {128, 16, 128, true},   // -> 8
      {128, 8, 256, false}, {256, 8, 256, false},  {256, 8, 256, true},   // ->4
      {256, 4, 512, false}, {512, 4, 512, false},  {512, 4, 512, true},   // ->2
      {512, 2, 512, false}, {512, 2, 512, false},  {512, 2, 512, true},   // ->1
  };
  int idx = 1;
  for (const auto& b : blocks)
    n.layers.push_back(ConvShape::conv("conv" + std::to_string(idx++), b.cin,
                                       b.size, b.cout, 3, 1, b.pool));
  n.layers.push_back(ConvShape::fc("fc1", 512, 512, false));
  n.layers.push_back(ConvShape::fc("fc2", 512, 10, true));
  return n;
}

const char* to_string(Dataflow df) noexcept {
  switch (df) {
    case Dataflow::kWeightStationary: return "weight-stationary+nearmem";
    case Dataflow::kOutputStationary: return "output-stationary";
    case Dataflow::kInputStationary: return "input-stationary";
  }
  return "?";
}

AccessCounts& AccessCounts::operator+=(const AccessCounts& o) {
  act_reads += o.act_reads;
  act_writes += o.act_writes;
  wgt_reads += o.wgt_reads;
  psum_reads += o.psum_reads;
  psum_writes += o.psum_writes;
  ext_bytes += o.ext_bytes;
  return *this;
}

int Compiler::stream_len_for(const ConvShape& shape) const {
  if (shape.output) return hw_.stream_len_output;
  return shape.pool ? hw_.stream_len_pool : hw_.stream_len;
}

LayerPlan Compiler::plan_layer(const ConvShape& shape, Dataflow df) const {
  telemetry::ScopedTimer timer("compiler.plan_layer", "compiler");
  telemetry::MetricsRegistry::instance()
      .counter("compiler.layers_planned")
      .add(1);
  LayerPlan plan;
  plan.shape = shape;
  plan.dataflow = df;
  plan.stream_len = stream_len_for(shape);
  plan.stream_cycles = 2 * plan.stream_len;  // split-unipolar doubling
  plan.lfsr_bits = std::min(log2_of(plan.stream_len), hw_.lfsr_bits);

  const std::int64_t K = shape.taps();
  const std::int64_t M = hw_.macs_per_row;
  const std::int64_t R = hw_.rows;

  // Kernel slicing: a kernel larger than a row is split into P slices.
  plan.kernel_slices = static_cast<int>(ceil_div(K, M));
  const std::int64_t slice_taps = std::min(K, M);
  // Windows computed concurrently in one row (weights broadcast along it);
  // when the layer has fewer output channels than rows, idle rows take
  // further window positions of the same channels.
  const std::int64_t row_windows = std::max<std::int64_t>(
      1, std::min<std::int64_t>(hw_.windows_per_row, M / slice_taps));
  const std::int64_t rows_per_channel =
      std::max<std::int64_t>(1, R / std::min<std::int64_t>(shape.cout, R));
  plan.windows_per_pass = static_cast<int>(row_windows * rows_per_channel);

  const std::int64_t co_groups = ceil_div(shape.cout, R);
  const std::int64_t window_groups =
      ceil_div(static_cast<std::int64_t>(shape.hout()) * shape.wout(),
               plan.windows_per_pass);
  plan.passes = co_groups * window_groups * plan.kernel_slices;

  const std::int64_t outputs = shape.outputs();
  const std::int64_t written =
      shape.pool ? ceil_div(outputs, 4) : outputs;  // pooling neighbor-add

  AccessCounts& acc = plan.accesses;
  acc.act_writes = written;
  plan.nm_bn_ops = hw_.near_memory ? written : 0;

  switch (df) {
    case Dataflow::kWeightStationary: {
      // Weights enter row buffers once; activations re-stream per
      // channel-group; partial sums live in activation memory (near-memory
      // read-add-write) when the kernel does not fit a row.
      acc.wgt_reads = shape.weights();
      acc.act_reads = shape.activations() * co_groups;
      if (plan.kernel_slices > 1) {
        plan.nm_psum_ops = outputs * (plan.kernel_slices - 1);
        acc.psum_reads = plan.nm_psum_ops;
        acc.psum_writes = plan.nm_psum_ops;
      }
      // Vertical sliding: each pass refreshes one window-row of activations
      // plus its share of the weight loads.
      plan.act_loads_per_pass = static_cast<std::int64_t>(shape.cin) *
                                shape.kw * shape.stride *
                                plan.windows_per_pass;
      plan.wgt_loads_per_pass =
          ceil_div(slice_taps, std::max<std::int64_t>(window_groups, 1));
      break;
    }
    case Dataflow::kOutputStationary: {
      const std::int64_t acts_per_pass =
          static_cast<std::int64_t>(shape.cin) * shape.kh *
          (shape.kw + plan.windows_per_pass - 1);
      if (plan.kernel_slices > 1) {
        // Outputs accumulate in the converters while the kernel slices
        // cycle, so both weights and activations reload on every pass —
        // the Sec. III-C pathology.
        acc.wgt_reads = shape.weights() * window_groups;
        acc.act_reads = plan.passes * acts_per_pass;
      } else {
        // A kernel that fits a row never needs converter accumulation:
        // weights stay resident and the dataflow degenerates to
        // weight-stationary (without the psum traffic it never generates).
        acc.wgt_reads = shape.weights();
        acc.act_reads = shape.activations() * co_groups;
      }
      plan.act_loads_per_pass = acts_per_pass;
      plan.wgt_loads_per_pass = slice_taps;
      break;
    }
    case Dataflow::kInputStationary: {
      // Activations resident in SNG buffers (tile by tile); the full filter
      // bank streams once per activation tile.
      const std::int64_t act_tiles =
          std::max<std::int64_t>(1, ceil_div(shape.activations(), M));
      acc.act_reads = shape.activations();
      acc.wgt_reads = shape.weights() * act_tiles;
      plan.act_loads_per_pass = static_cast<std::int64_t>(shape.cin) *
                                shape.kw * shape.stride *
                                plan.windows_per_pass;
      plan.wgt_loads_per_pass = slice_taps;
      break;
    }
  }

  if (hw_.external_memory) {
    // LP streams weights (8-bit) from external memory once per frame.
    acc.ext_bytes = shape.weights();
  }

  // ---- instruction stream ------------------------------------------------
  Program& p = plan.program;
  p.push(Opcode::kConfig, plan.stream_len, plan.lfsr_bits,
         static_cast<std::int32_t>(hw_.accum));
  if (hw_.external_memory)
    p.push(Opcode::kLoadExt, static_cast<std::int32_t>(std::min<std::int64_t>(
                                 acc.ext_bytes, 32767)));
  // One representative pass sequence; the simulator scales by plan.passes.
  p.push(Opcode::kLoadWgt, static_cast<std::int32_t>(std::min<std::int64_t>(
                               plan.wgt_loads_per_pass, 32767)));
  p.push(Opcode::kLoadAct, static_cast<std::int32_t>(std::min<std::int64_t>(
                               plan.act_loads_per_pass, 32767)));
  p.push(Opcode::kBarrier);
  const std::int64_t outputs_per_pass =
      std::min<std::int64_t>(shape.cout, R) * plan.windows_per_pass;
  p.push(Opcode::kGenExec, plan.stream_cycles,
         static_cast<std::int32_t>(std::min<std::int64_t>(outputs_per_pass,
                                                          32767)));
  if (plan.nm_psum_ops > 0)
    p.push(Opcode::kNearMemAcc,
           static_cast<std::int32_t>(std::min<std::int64_t>(outputs_per_pass,
                                                            32767)));
  if (shape.pool) p.push(Opcode::kPool, 4);
  if (hw_.near_memory) p.push(Opcode::kNearMemBn, 1);
  p.push(Opcode::kStoreOut, 1);
  p.push(Opcode::kHalt);

  return plan;
}

std::vector<LayerPlan> Compiler::compile(const NetworkShape& net) const {
  telemetry::ScopedTimer timer(
      "compiler.compile", "compiler",
      {{"layers", static_cast<double>(net.layers.size())}});
  telemetry::MetricsRegistry::instance()
      .counter("compiler.networks_compiled")
      .add(1);
  std::vector<LayerPlan> plans;
  plans.reserve(net.layers.size());
  for (const auto& layer : net.layers)
    plans.push_back(plan_layer(layer, natural_dataflow()));
  return plans;
}

}  // namespace geo::arch
