// Cycle-level micro-simulator of the SNG buffer-fill / generation pipeline
// (Fig. 3, Sec. II-B and III-D). Unlike the analytical PerfSim, this walks
// individual cycles of one compute engine through a sequence of passes and
// reports exactly when generation could start and how many stall cycles each
// policy pays. Used to validate the paper's "4x reload-latency reduction"
// and "up to 2x latency improvement" claims and by the ablation bench.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace geo::arch {

struct GenPipelineConfig {
  int values = 800;          // SNG buffer entries to (re)load per pass
  int value_bits = 8;        // stored bits per value
  int lfsr_bits = 7;         // bits actually needed (stream-length matched)
  int fill_bits_per_cycle = 32;
  int stream_cycles = 256;   // compute cycles per pass (2x stream length)
  int passes = 8;
  bool progressive = false;  // start after the first 2-bit group
  bool shadow = false;       // load next pass during current compute
};

struct GenPipelineResult {
  std::int64_t total_cycles = 0;
  std::int64_t stall_cycles = 0;          // cycles compute sat idle
  std::int64_t reload_start_latency = 0;  // idle cycles before first gen cycle
  std::int64_t bits_loaded = 0;           // memory traffic in bits
  std::vector<std::string> trace;         // optional per-phase trace lines
};

GenPipelineResult simulate_generation(const GenPipelineConfig& cfg,
                                      bool keep_trace = false);

}  // namespace geo::arch
