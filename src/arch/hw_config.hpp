// Hardware description of a GEO-style accelerator instance (Fig. 4a).
//
// Presets reproduce the paper's design points: ULP (25.6K MACs, 150 KB
// on-chip SRAM), LP (294K MACs, 0.5 MB SRAM + HBM2-class external memory),
// the un-optimized baseline of Fig. 6, and the ACOUSTIC [5] comparison
// configurations (same memory/compute sizing, optimizations off, longer
// streams).
#pragma once

#include "nn/sc_config.hpp"
#include "sc/seed_sharing.hpp"

namespace geo::arch {

struct HwConfig {
  // --- compute fabric ----------------------------------------------------
  int rows = 64;            // MAC rows; one output channel per row
  int macs_per_row = 400;   // SC MAC units per row
  int windows_per_row = 8;  // sliding-window positions sharing a row's weights
  int pb_segments = 8;      // parallel-counter inputs per row (PBW hardware)
  nn::AccumMode accum = nn::AccumMode::kPbw;

  // --- stream generation ---------------------------------------------------
  int sng_value_bits = 8;   // SNG buffer width per value
  int lfsr_bits = 8;        // generator width (matched to stream length)
  sc::Sharing sharing = sc::Sharing::kModerate;
  bool lfsr_per_sng = false;  // true = unshared generator per SNG (baseline)
  bool progressive = true;
  bool shadow_buffers = true;

  // --- execution -----------------------------------------------------------
  bool near_memory = true;   // read-add-write psum + near-memory BN
  bool pipeline_stage = true;  // SC-MAC / partial-binary pipeline cut
  double clock_mhz = 400.0;
  double vdd = 0.9;  // may be lowered by DVFS when the pipeline stage exists

  // --- stream lengths ({sp, s}, already specified values; split-unipolar
  //     doubles the cycle count at run time) -------------------------------
  int stream_len_pool = 32;
  int stream_len = 64;
  int stream_len_output = 128;

  // --- memories ------------------------------------------------------------
  int act_mem_kb = 100;
  int wgt_mem_kb = 50;
  int mem_port_bits = 64;        // SRAM word width (energy accounting)
  int buffer_fill_bits = 32;     // SNG-buffer fill network bandwidth / cycle
  bool external_memory = false;  // LP streams weights from HBM2-class DRAM

  int total_macs() const { return rows * macs_per_row; }
  int weight_sngs_per_row() const { return macs_per_row / windows_per_row; }
  int activation_sngs() const { return macs_per_row; }
  int total_sngs() const {
    return rows * weight_sngs_per_row() + activation_sngs();
  }
  int output_converters() const { return rows * windows_per_row; }

  // ---- presets ------------------------------------------------------------
  static HwConfig ulp() { return {}; }

  static HwConfig lp() {
    HwConfig c;
    c.rows = 128;
    c.macs_per_row = 2304;  // 294,912 MACs ("294K")
    c.act_mem_kb = 340;
    c.wgt_mem_kb = 172;
    c.stream_len_pool = 64;
    c.stream_len = 128;
    c.external_memory = true;
    return c;
  }

  // Fig. 6 baseline: no GEO optimizations, 16-bit unshared LFSRs emulating a
  // TRNG, 128-bit streams everywhere.
  static HwConfig base_ulp() {
    HwConfig c;
    c.lfsr_bits = 16;
    c.lfsr_per_sng = true;
    c.sharing = sc::Sharing::kNone;
    c.progressive = false;
    c.shadow_buffers = false;
    c.near_memory = false;
    c.pipeline_stage = false;
    c.accum = nn::AccumMode::kOr;
    c.stream_len_pool = 128;
    c.stream_len = 128;
    return c;
  }

  // Fig. 6 middle point: generation optimizations only.
  static HwConfig geo_gen_ulp() {
    HwConfig c = base_ulp();
    c.lfsr_bits = 8;
    c.lfsr_per_sng = false;
    c.sharing = sc::Sharing::kModerate;
    c.progressive = true;
    c.shadow_buffers = true;
    return c;
  }

  // ACOUSTIC [5]: all-OR accumulation, no GEO generation/execution
  // optimizations, sized identically, longer streams for iso-accuracy.
  static HwConfig acoustic_ulp(int stream = 128) {
    HwConfig c = base_ulp();
    c.stream_len_pool = stream;
    c.stream_len = stream;
    return c;
  }

  static HwConfig acoustic_lp(int stream = 256) {
    HwConfig c = lp();
    c.lfsr_bits = 16;
    c.lfsr_per_sng = true;
    c.sharing = sc::Sharing::kNone;
    c.progressive = false;
    c.shadow_buffers = false;
    c.near_memory = false;
    c.pipeline_stage = false;
    c.accum = nn::AccumMode::kOr;
    c.stream_len_pool = stream;
    c.stream_len = stream;
    return c;
  }
};

}  // namespace geo::arch
