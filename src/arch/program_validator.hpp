// Static validation of GEO instruction sequences.
//
// The compiler only emits well-formed programs; this pass exists for
// everything else that can produce one — hand-written assembly fed through
// Program::from_text, binary images through Program::decode, or test
// fuzzing. GeoMachine-style executors call validate_program up front and
// fail closed with a diagnostic naming the offending instruction index
// instead of crashing mid-execution.
//
// Rules enforced:
//   * the program is non-empty and ends with kHalt; nothing follows a halt
//   * operands fit the 16-bit encoding and counts are non-negative
//   * kConfig carries a power-of-two stream length in [2, 32768], LFSR
//     width in [2, 24] and a known accumulation mode, and appears before
//     the first kGenExec
//   * kGenExec runs at least one cycle and produces at least one output
//   * kNearMemAcc and kStoreOut only appear after a kGenExec produced data
#pragma once

#include "arch/isa.hpp"
#include "core/status.hpp"

namespace geo::arch {

geo::Status validate_program(const Program& program);

}  // namespace geo::arch
