#include "arch/machine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "nn/quantize.hpp"
#include "sc/progressive.hpp"
#include "sc/seed_sharing.hpp"
#include "sc/sng.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::arch {

namespace {

std::size_t popcount_words(const std::uint64_t* w, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(w[i]));
  return c;
}

// Generates one magnitude stream exactly like the nn SC layers do (shared
// code path requirement for the bit-exactness contract).
void generate_stream(std::uint64_t* dst, std::size_t wpl, std::size_t length,
                     const nn::ScLayerConfig& cfg, const sc::SeedSpec& spec,
                     std::uint32_t q) {
  std::fill(dst, dst + wpl, 0);
  if (q == 0) return;
  const unsigned n = spec.bits;
  sc::Bitstream stream;
  if (cfg.progressive) {
    sc::ProgressiveSchedule sched;
    sched.value_bits = cfg.value_bits;
    sched.lfsr_bits = n;
    sc::ProgressiveSng sng(cfg.rng, spec, sched);
    stream = sng.generate(q, length);
  } else {
    const std::uint32_t vn = n >= cfg.value_bits
                                 ? q << (n - cfg.value_bits)
                                 : q >> (cfg.value_bits - n);
    if (vn == 0) return;
    sc::Sng sng(cfg.rng, spec);
    stream = sng.generate(vn, length);
  }
  const auto src = stream.words();
  std::copy(src.begin(), src.end(), dst);
}

}  // namespace

GeoMachine::GeoMachine(const HwConfig& hw) : hw_(hw) {}

nn::ScLayerConfig GeoMachine::layer_config(const ConvShape& shape,
                                           std::uint64_t layer_salt) const {
  const Compiler compiler(hw_);
  nn::ScLayerConfig cfg;
  cfg.rng = hw_.lfsr_per_sng ? sc::RngKind::kTrng : sc::RngKind::kLfsr;
  cfg.sharing = hw_.sharing;
  cfg.accum = hw_.accum;
  cfg.stream_len = compiler.stream_len_for(shape);
  cfg.value_bits = static_cast<unsigned>(hw_.sng_value_bits);
  cfg.progressive = hw_.progressive;
  cfg.layer_salt = layer_salt;
  return cfg;
}

MachineResult GeoMachine::run_conv(const ConvShape& shape,
                                   std::span<const float> weights,
                                   std::span<const float> input,
                                   std::span<const float> bn_scale,
                                   std::span<const float> bn_shift,
                                   std::uint64_t layer_salt) {
  telemetry::ScopedTimer run_timer("machine.run_conv", "machine");
  const Compiler compiler(hw_);
  const LayerPlan plan = compiler.plan_layer(shape,
                                             compiler.natural_dataflow());
  const nn::ScLayerConfig cfg = layer_config(shape, layer_salt);

  const int L = cfg.stream_len;
  const std::size_t wpl = static_cast<std::size_t>((L + 63) / 64);
  const unsigned n = cfg.lfsr_bits();
  const int K = shape.taps();
  const int ho = shape.hout(), wo = shape.wout();
  const std::int64_t outputs = shape.outputs();

  if (weights.size() != static_cast<std::size_t>(shape.weights()))
    throw std::invalid_argument("GeoMachine: weight count mismatch");
  if (input.size() != static_cast<std::size_t>(shape.activations()))
    throw std::invalid_argument("GeoMachine: input size mismatch");
  if (bn_scale.size() != static_cast<std::size_t>(shape.cout) ||
      bn_shift.size() != bn_scale.size())
    throw std::invalid_argument("GeoMachine: BN coefficient count mismatch");

  const sc::KernelExtents ext{shape.cout, shape.cin, shape.kh, shape.kw};
  const sc::SeedAllocator alloc(cfg.sharing, n, ext, layer_salt);

  // ---- weight memory -> weight SNG streams (whole filter bank) ----------
  std::vector<std::uint64_t> wpos(weights.size() * wpl, 0);
  std::vector<std::uint64_t> wneg(weights.size() * wpl, 0);
  {
    telemetry::ScopedTimer t("machine.weight_streams", "machine",
                             {{"streams", static_cast<double>(
                                   weights.size())}});
    std::size_t idx = 0;
    for (int oc = 0; oc < shape.cout; ++oc)
      for (int ic = 0; ic < shape.cin; ++ic)
        for (int ky = 0; ky < shape.kh; ++ky)
          for (int kx = 0; kx < shape.kw; ++kx, ++idx) {
            const float w = std::clamp(weights[idx], -1.0f, 1.0f);
            const std::uint32_t q =
                nn::quantize_unsigned(std::abs(w), cfg.value_bits);
            const sc::SeedSpec spec = alloc.weight({oc, ic, ky, kx});
            generate_stream(
                (w >= 0.0f ? &wpos : &wneg)->data() + idx * wpl, wpl,
                static_cast<std::size_t>(L), cfg, spec, q);
          }
  }

  // ---- activation streams, generated lazily per buffer slot -------------
  auto& metrics = telemetry::MetricsRegistry::instance();
  telemetry::Counter& act_gen_counter =
      metrics.counter("machine.act_streams_generated");
  std::vector<std::uint64_t> act(input.size() * wpl, 0);
  std::vector<char> act_ready(input.size(), 0);
  auto act_stream = [&](std::size_t idx) -> const std::uint64_t* {
    if (!act_ready[idx]) {
      act_gen_counter.add(1);
      const float a = std::clamp(input[idx], 0.0f, 1.0f);
      const std::uint32_t q = nn::quantize_unsigned(a, cfg.value_bits);
      generate_stream(act.data() + idx * wpl, wpl,
                      static_cast<std::size_t>(L), cfg,
                      alloc.activation(static_cast<int>(idx)), q);
      act_ready[idx] = 1;
    }
    return act.data() + idx * wpl;
  };

  MachineResult result;
  result.counters.assign(static_cast<std::size_t>(outputs), 0);
  result.activations.assign(static_cast<std::size_t>(outputs), 0);

  // ---- pass schedule ------------------------------------------------------
  const int R = hw_.rows;
  const int chans_at_once = std::min(shape.cout, R);
  const int windows_per_pass = plan.windows_per_pass;
  const int slices = plan.kernel_slices;
  const std::int64_t M = hw_.macs_per_row;
  const std::int64_t xy = static_cast<std::int64_t>(ho) * wo;

  int groups = 1;
  switch (cfg.accum) {
    case nn::AccumMode::kOr: groups = 1; break;
    case nn::AccumMode::kPbw: groups = shape.kw; break;
    case nn::AccumMode::kPbhw: groups = shape.kh * shape.kw; break;
    case nn::AccumMode::kFxp:
    case nn::AccumMode::kApc: groups = 1; break;  // accumulated per tap
  }
  std::vector<std::uint64_t> scratch(static_cast<std::size_t>(groups) * 2 *
                                     wpl);

  const double fill = hw_.buffer_fill_bits;
  const double bits_per_value =
      hw_.progressive ? static_cast<double>(n) : hw_.sng_value_bits;

  telemetry::Histogram& pass_hist = metrics.histogram("machine.pass");
  telemetry::Histogram& mac_hist = metrics.histogram("machine.mac_rows");
  MachineStats& st = result.stats;
  for (int cg = 0; cg * R < shape.cout; ++cg) {
    for (std::int64_t wg = 0; wg * windows_per_pass < xy; ++wg) {
      for (int p = 0; p < slices; ++p) {
        telemetry::ScopedTimer pass_timer(
            pass_hist, "machine.pass", "machine",
            {{"channel_group", static_cast<double>(cg)},
             {"window_group", static_cast<double>(wg)},
             {"kernel_slice", static_cast<double>(p)},
             {"act_fills", static_cast<double>(plan.act_loads_per_pass)},
             {"wgt_fills", static_cast<double>(plan.wgt_loads_per_pass)}});
        ++st.passes;
        // -- reload accounting (the functional fills below are exact; the
        //    stall model matches PerfSim::pass_stall_cycles).
        st.act_buffer_fills += plan.act_loads_per_pass;
        st.wgt_buffer_fills += plan.wgt_loads_per_pass;
        const double act_cycles =
            std::ceil(plan.act_loads_per_pass * bits_per_value / fill);
        const double wgt_cycles =
            std::ceil(plan.wgt_loads_per_pass * bits_per_value / fill);
        const double reload = std::max(act_cycles, wgt_cycles);
        double stall = reload;
        if (hw_.shadow_buffers)
          stall = std::max(0.0, reload - plan.stream_cycles);
        else if (hw_.progressive)
          stall = std::ceil(
              std::max(plan.act_loads_per_pass, plan.wgt_loads_per_pass) *
              2.0 / fill);
        st.stall_cycles += static_cast<std::int64_t>(stall);
        st.compute_cycles +=
            plan.stream_cycles + (hw_.pipeline_stage ? 1 : 0);

        // -- bit-exact computation of this pass's outputs.
        telemetry::ScopedTimer mac_timer(mac_hist, "machine.mac_rows",
                                         "machine");
        const int tap_lo = static_cast<int>(p * M);
        const int tap_hi = static_cast<int>(
            std::min<std::int64_t>(K, (p + 1) * M));
        for (int c = 0; c < chans_at_once; ++c) {
          const int oc = cg * R + c;
          if (oc >= shape.cout) break;
          for (int wslot = 0; wslot < windows_per_pass; ++wslot) {
            const std::int64_t pos = wg * windows_per_pass + wslot;
            if (pos >= xy) break;
            const int oy = static_cast<int>(pos) / wo;
            const int ox = static_cast<int>(pos) % wo;

            std::fill(scratch.begin(), scratch.end(), 0);
            std::int64_t direct = 0;  // kFxp / kApc path
            for (int t = tap_lo; t < tap_hi; ++t) {
              const int kx = t % shape.kw;
              const int ky = (t / shape.kw) % shape.kh;
              const int ic = t / (shape.kw * shape.kh);
              const int iy = oy * shape.stride - shape.pad + ky;
              const int ix = ox * shape.stride - shape.pad + kx;
              if (iy < 0 || iy >= shape.hin || ix < 0 || ix >= shape.win)
                continue;
              const std::size_t aidx =
                  (static_cast<std::size_t>(ic) * shape.hin + iy) *
                      shape.win +
                  ix;
              const std::uint64_t* a = act_stream(aidx);
              const std::size_t widx =
                  (static_cast<std::size_t>(oc) * K + t) * wpl;
              const std::uint64_t* wp = &wpos[widx];
              const std::uint64_t* wn = &wneg[widx];
              if (cfg.accum == nn::AccumMode::kFxp ||
                  cfg.accum == nn::AccumMode::kApc) {
                // The machine's APC reduces to exact counting per product
                // pair order; we model kApc == kFxp at machine level (the
                // area model carries the difference).
                for (std::size_t k = 0; k < wpl; ++k) {
                  direct += std::popcount(a[k] & wp[k]);
                  direct -= std::popcount(a[k] & wn[k]);
                }
              } else {
                int g = 0;
                if (cfg.accum == nn::AccumMode::kPbw)
                  g = kx;
                else if (cfg.accum == nn::AccumMode::kPbhw)
                  g = ky * shape.kw + kx;
                std::uint64_t* gp =
                    &scratch[static_cast<std::size_t>(g) * 2 * wpl];
                std::uint64_t* gn = gp + wpl;
                for (std::size_t k = 0; k < wpl; ++k) {
                  gp[k] |= a[k] & wp[k];
                  gn[k] |= a[k] & wn[k];
                }
              }
            }
            std::int64_t total = direct;
            if (cfg.accum == nn::AccumMode::kOr ||
                cfg.accum == nn::AccumMode::kPbw ||
                cfg.accum == nn::AccumMode::kPbhw) {
              for (int g = 0; g < groups; ++g) {
                const std::uint64_t* gp =
                    &scratch[static_cast<std::size_t>(g) * 2 * wpl];
                total += static_cast<std::int64_t>(popcount_words(gp, wpl));
                total -= static_cast<std::int64_t>(
                    popcount_words(gp + wpl, wpl));
              }
            }
            // Near-memory read-add-write of the partial sum (first slice
            // writes, later slices accumulate).
            const std::size_t oidx =
                (static_cast<std::size_t>(oc) * ho + oy) * wo + ox;
            result.counters[oidx] += static_cast<std::int32_t>(total);
            if (slices > 1 && p > 0) ++st.psum_ops;
          }
        }
      }
    }
  }

  // ---- near-memory BN + bounded ReLU + write-back ------------------------
  telemetry::ScopedTimer bn_timer("machine.bn_relu", "machine");
  const double inv_len = 1.0 / static_cast<double>(L);
  const double lanes = std::max(1, hw_.mem_port_bits / 16);
  for (int oc = 0; oc < shape.cout; ++oc)
    for (std::int64_t i = 0; i < xy; ++i) {
      const std::size_t oidx = static_cast<std::size_t>(oc) * xy + i;
      const double value = result.counters[oidx] * inv_len;
      const double bn = bn_scale[static_cast<std::size_t>(oc)] * value +
                        bn_shift[static_cast<std::size_t>(oc)];
      const double act_out = std::clamp(bn, 0.0, 1.0);
      result.activations[oidx] = static_cast<std::uint8_t>(
          nn::quantize_unsigned(static_cast<float>(act_out), 8));
      if (hw_.near_memory) ++st.bn_ops;
    }

  st.nearmem_cycles = static_cast<std::int64_t>(
      2.0 * (st.psum_ops + st.bn_ops) / lanes);
  st.total_cycles = st.compute_cycles + st.stall_cycles + st.nearmem_cycles;
  // The cycle ledger must balance: every total cycle is attributed to
  // exactly one of compute / stall / near-memory.
  assert(st.total_cycles ==
         st.compute_cycles + st.stall_cycles + st.nearmem_cycles);

  // Mirror the per-run stats into the process-wide registry so telemetry
  // consumers see the same ledger MachineStats reports (the machine_test
  // reconciliation assertion depends on these staying in lockstep).
  metrics.counter("machine.passes").add(st.passes);
  metrics.counter("machine.compute_cycles").add(st.compute_cycles);
  metrics.counter("machine.stall_cycles").add(st.stall_cycles);
  metrics.counter("machine.nearmem_cycles").add(st.nearmem_cycles);
  metrics.counter("machine.total_cycles").add(st.total_cycles);
  metrics.counter("machine.act_buffer_fills").add(st.act_buffer_fills);
  metrics.counter("machine.wgt_buffer_fills").add(st.wgt_buffer_fills);
  metrics.counter("machine.psum_ops").add(st.psum_ops);
  metrics.counter("machine.bn_ops").add(st.bn_ops);
  metrics.counter("machine.layers_executed").add(1);
  return result;
}

}  // namespace geo::arch
