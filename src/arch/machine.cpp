#include "arch/machine.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cmath>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "arch/attribution.hpp"
#include "exec/parallel_conv.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_model.hpp"
#include "nn/quantize.hpp"
#include "sc/progressive.hpp"
#include "sc/seed_sharing.hpp"
#include "sc/simd.hpp"
#include "sc/sng.hpp"
#include "sc/stream_table.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::arch {

namespace {

// Generates one magnitude stream exactly like the nn SC layers do (shared
// code path requirement for the bit-exactness contract). `fm` may be null;
// when set, seed upsets hit the SNG before generation and stream bit flips
// hit the buffer after — keyed by (domain, site) so the nn reference injects
// the identical faults into the identical slots. The spec is corrupted
// BEFORE the stream-table cache is keyed, so a seed-upset stream is served
// from the corrupted sequence's table, never the healthy one. `use_table`
// routes through the shared-sequence cache (sc/stream_table.hpp); off, the
// calling thread's reusable generator ticks bit-serially — bit-identical
// either way.
void generate_stream(std::uint64_t* dst, std::size_t wpl, std::size_t length,
                     const nn::ScLayerConfig& cfg, sc::SeedSpec spec,
                     std::uint32_t q, fault::FaultModel* fm,
                     fault::FaultModel::Site domain, std::uint64_t site,
                     bool use_table) {
  std::fill(dst, dst + wpl, 0);
  if (fm != nullptr) spec = fm->corrupt_seed(spec, site);
  if (q != 0) {
    const unsigned n = spec.bits;
    sc::StreamGenerator& gen = sc::StreamGenerator::local();
    if (cfg.progressive) {
      sc::ProgressiveSchedule sched;
      sched.value_bits = cfg.value_bits;
      sched.lfsr_bits = n;
      gen.generate_progressive(dst, wpl, length, cfg.rng, spec, sched, q,
                               use_table);
    } else {
      const std::uint32_t vn = n >= cfg.value_bits
                                   ? q << (n - cfg.value_bits)
                                   : q >> (cfg.value_bits - n);
      gen.generate(dst, wpl, length, cfg.rng, spec, vn, use_table);
    }
  }
  // A defective buffer cell flips bits even in an all-zero stream.
  if (fm != nullptr) fm->corrupt_stream(dst, length, domain, site);
}

}  // namespace

void apply_bn_relu(std::span<const std::int32_t> counters,
                   std::span<const float> bn_scale,
                   std::span<const float> bn_shift, int stream_len,
                   std::int64_t per_channel,
                   std::span<std::uint8_t> activations) {
  const double inv_len = 1.0 / static_cast<double>(stream_len);
  const auto cout = static_cast<std::int64_t>(bn_scale.size());
  for (std::int64_t oc = 0; oc < cout; ++oc)
    for (std::int64_t i = 0; i < per_channel; ++i) {
      const std::size_t oidx =
          static_cast<std::size_t>(oc * per_channel + i);
      const double value = counters[oidx] * inv_len;
      const double bn = bn_scale[static_cast<std::size_t>(oc)] * value +
                        bn_shift[static_cast<std::size_t>(oc)];
      const double act_out = std::clamp(bn, 0.0, 1.0);
      activations[oidx] = static_cast<std::uint8_t>(
          nn::quantize_unsigned(static_cast<float>(act_out), 8));
    }
}

// ----------------------------------------------------------- ConvExecution

struct ConvExecution::Impl {
  HwConfig hw;
  ConvShape shape;
  LayerPlan plan;
  nn::ScLayerConfig cfg;
  std::span<const float> input;
  std::vector<float> bn_scale, bn_shift;
  fault::FaultModel* fm = nullptr;
  std::int64_t fault_retry0 = 0;

  int L = 0;
  std::size_t wpl = 0;
  int K = 0, ho = 0, wo = 0;
  std::int64_t outputs = 0, xy = 0, M = 0;
  int R = 0, chans_at_once = 0, windows_per_pass = 0, slices = 0, groups = 0;
  double fill = 0, bits_per_value = 0;
  bool direct_accum = false, accum_faults = false, stuck_faults = false;
  // GEO_STREAM_TABLE, sampled once per layer so a run's generation strategy
  // is coherent even if the environment changes mid-layer.
  bool use_stream_table = true;

  std::optional<sc::SeedAllocator> alloc;
  std::vector<std::uint64_t> wpos, wneg, act;
  // Lazy activation-stream cache flags: 0 = empty, 1 = being generated,
  // 2 = ready. Atomic so concurrent tiles claim generation exactly once
  // (first CAS winner generates, everyone else waits for the release store)
  // — the stream content is a pure function of the slot, so the winner's
  // identity never changes the bits.
  std::unique_ptr<std::atomic<std::uint8_t>[]> act_ready;

  // Fused generate+execute: when no fault model is active and the
  // comparator-table cache is on, activation streams are resolved to
  // registry row pointers instead of being copied into `act` — the MAC
  // reduction reads the table row directly, so the per-stream copy never
  // happens. The bits are exactly what generate_stream would have copied,
  // keeping outputs, ledgers, and generation counters byte-identical to the
  // materialized path. Rows the registry declines (TRNG, table budget) fall
  // back to per-slot buffers in `act_fallback` (node-stable map; the mutex
  // guards insertion — readers only see pointers published through the
  // act_ready release store).
  bool fused = false;
  std::vector<const std::uint64_t*> act_rowp;
  std::vector<std::uint64_t> zero_row;
  std::unordered_map<std::size_t, std::vector<std::uint64_t>> act_fallback;
  std::mutex act_fallback_mu;

  std::int64_t tiles_cg = 0, tiles_wg = 0;

  MachineResult result;
  // Guards result.stats merges from concurrent run_tile calls. Tile deltas
  // are integer sums, so the merge order never changes the totals.
  std::mutex stats_mu;
  std::optional<telemetry::ScopedTimer> run_timer;
  telemetry::Histogram* pass_hist = nullptr;
  telemetry::Histogram* mac_hist = nullptr;
  telemetry::Counter* act_gen_counter = nullptr;
  bool finished = false;

  const std::uint64_t* act_stream(std::size_t idx);
  const std::uint64_t* act_row(std::size_t idx);
  template <typename Fn>
  void for_each_tile_input(std::int64_t tile, Fn&& fn) const;
  MachineStats run_tile(std::int64_t tile);
  MachineResult finish();
};

const std::uint64_t* ConvExecution::Impl::act_stream(std::size_t idx) {
  std::atomic<std::uint8_t>& flag = act_ready[idx];
  std::uint8_t state = flag.load(std::memory_order_acquire);
  while (state != 2) {
    if (state == 0) {
      std::uint8_t expected = 0;
      if (flag.compare_exchange_strong(expected, 1,
                                       std::memory_order_acq_rel)) {
        act_gen_counter->add(1);
        const float a = std::clamp(input[idx], 0.0f, 1.0f);
        std::uint32_t q = nn::quantize_unsigned(a, cfg.value_bits);
        if (fm != nullptr)
          q = fm->sram_read(q, cfg.value_bits,
                            fault::FaultModel::Site::kActSram, idx);
        generate_stream(act.data() + idx * wpl, wpl,
                        static_cast<std::size_t>(L), cfg,
                        alloc->activation(static_cast<int>(idx)), q, fm,
                        fault::FaultModel::Site::kActStream, idx,
                        use_stream_table);
        flag.store(2, std::memory_order_release);
        flag.notify_all();
        break;
      }
      state = expected;
      continue;
    }
    // Another tile is generating this stream; its content is identical to
    // what we would produce. Bounded spin (generation is usually a few
    // table-row copies), then park on the atomic so a stalled generator
    // can't make us burn a core under oversubscription. An invalidation
    // (store 0) also wakes us, and the loop retries the claim.
    for (int s = 0; s < 256 && state == 1; ++s) {
      std::this_thread::yield();
      state = flag.load(std::memory_order_acquire);
    }
    if (state == 1) {
      flag.wait(1, std::memory_order_acquire);
      state = flag.load(std::memory_order_acquire);
    }
  }
  return act.data() + idx * wpl;
}

// The fused-path twin of act_stream(): same claim protocol, but the slot
// resolves to a comparator-table row pointer instead of filling `act`.
// Mirrors generate_stream + StreamGenerator::generate(use_table=true)
// decision-for-decision (value quantization, vn scaling/saturation, the
// zero-value short-circuit BEFORE any registry acquire, one acquire per
// generation) so every metric the materialized path bumps is bumped here
// identically.
const std::uint64_t* ConvExecution::Impl::act_row(std::size_t idx) {
  std::atomic<std::uint8_t>& flag = act_ready[idx];
  std::uint8_t state = flag.load(std::memory_order_acquire);
  while (state != 2) {
    if (state == 0) {
      std::uint8_t expected = 0;
      if (flag.compare_exchange_strong(expected, 1,
                                       std::memory_order_acq_rel)) {
        act_gen_counter->add(1);
        const float a = std::clamp(input[idx], 0.0f, 1.0f);
        const std::uint32_t q = nn::quantize_unsigned(a, cfg.value_bits);
        const sc::SeedSpec spec = alloc->activation(static_cast<int>(idx));
        const unsigned n = spec.bits;
        std::uint32_t vn = n >= cfg.value_bits
                               ? q << (n - cfg.value_bits)
                               : q >> (cfg.value_bits - n);
        const std::uint32_t max = (1u << n) - 1u;
        if (vn > max) vn = max;  // Sng::load saturates the same way
        const std::uint64_t* row = zero_row.data();
        if (vn != 0) {
          if (const sc::StreamTable* t =
                  sc::StreamTableRegistry::instance().acquire(
                      cfg.rng, spec, static_cast<std::size_t>(L))) {
            row = t->row(vn);
          } else {
            std::vector<std::uint64_t> buf(wpl, 0);
            sc::StreamGenerator::local().generate(
                buf.data(), wpl, static_cast<std::size_t>(L), cfg.rng, spec,
                vn, /*use_table=*/false);
            const std::lock_guard<std::mutex> lock(act_fallback_mu);
            auto& slot = act_fallback[idx];
            slot = std::move(buf);
            row = slot.data();
          }
        }
        act_rowp[idx] = row;
        flag.store(2, std::memory_order_release);
        flag.notify_all();
        break;
      }
      state = expected;
      continue;
    }
    for (int s = 0; s < 256 && state == 1; ++s) {
      std::this_thread::yield();
      state = flag.load(std::memory_order_acquire);
    }
    if (state == 1) {
      flag.wait(1, std::memory_order_acquire);
      state = flag.load(std::memory_order_acquire);
    }
  }
  return act_rowp[idx];
}

MachineStats ConvExecution::Impl::run_tile(std::int64_t tile) {
  const int cg = static_cast<int>(tile / tiles_wg);
  const std::int64_t wg = tile % tiles_wg;
  // This run's cost, merged into result.stats at the end — concurrent tiles
  // each accumulate privately so the totals are sums of per-tile integers,
  // identical in any merge order.
  MachineStats st;
  // Per-run scratch (accumulator groups, fault-path product pair, per-cycle
  // counters): private so concurrent tiles don't share accumulators.
  std::vector<std::uint64_t> scratch(
      static_cast<std::size_t>(groups) * 2 * wpl, 0);
  std::vector<std::uint64_t> prod;
  std::vector<std::uint32_t> cyc;
  if (accum_faults || (stuck_faults && direct_accum)) prod.resize(2 * wpl);
  if (stuck_faults && direct_accum)
    cyc.resize(2 * static_cast<std::size_t>(L));

  // Retry-from-snapshot semantics: a re-run replaces the tile's partial
  // sums, it never double-counts them.
  for (int c = 0; c < chans_at_once; ++c) {
    const int oc = cg * R + c;
    if (oc >= shape.cout) break;
    for (int wslot = 0; wslot < windows_per_pass; ++wslot) {
      const std::int64_t pos = wg * windows_per_pass + wslot;
      if (pos >= xy) break;
      result.counters[static_cast<std::size_t>(oc) * xy +
                      static_cast<std::size_t>(pos)] = 0;
    }
  }

  for (int p = 0; p < slices; ++p) {
    telemetry::ScopedTimer pass_timer(
        *pass_hist, "machine.pass", "machine",
        {{"channel_group", static_cast<double>(cg)},
         {"window_group", static_cast<double>(wg)},
         {"kernel_slice", static_cast<double>(p)},
         {"act_fills", static_cast<double>(plan.act_loads_per_pass)},
         {"wgt_fills", static_cast<double>(plan.wgt_loads_per_pass)}});
    ++st.passes;
    // -- reload accounting (the functional fills below are exact; the
    //    stall model matches PerfSim::pass_stall_cycles).
    st.act_buffer_fills += plan.act_loads_per_pass;
    st.wgt_buffer_fills += plan.wgt_loads_per_pass;
    const double act_cycles =
        std::ceil(plan.act_loads_per_pass * bits_per_value / fill);
    const double wgt_cycles =
        std::ceil(plan.wgt_loads_per_pass * bits_per_value / fill);
    const double reload = std::max(act_cycles, wgt_cycles);
    double stall = reload;
    if (hw.shadow_buffers)
      stall = std::max(0.0, reload - plan.stream_cycles);
    else if (hw.progressive)
      stall = std::ceil(
          std::max(plan.act_loads_per_pass, plan.wgt_loads_per_pass) * 2.0 /
          fill);
    st.stall_cycles += static_cast<std::int64_t>(stall);
    st.compute_cycles += plan.stream_cycles + (hw.pipeline_stage ? 1 : 0);

    // -- bit-exact computation of this pass's outputs.
    telemetry::ScopedTimer mac_timer(*mac_hist, "machine.mac_rows",
                                     "machine");
    const int tap_lo = static_cast<int>(p * M);
    const int tap_hi = static_cast<int>(
        std::min<std::int64_t>(K, (p + 1) * M));
    for (int c = 0; c < chans_at_once; ++c) {
      const int oc = cg * R + c;
      if (oc >= shape.cout) break;
      for (int wslot = 0; wslot < windows_per_pass; ++wslot) {
        const std::int64_t pos = wg * windows_per_pass + wslot;
        if (pos >= xy) break;
        const int oy = static_cast<int>(pos) / wo;
        const int ox = static_cast<int>(pos) % wo;
        const std::size_t oidx =
            (static_cast<std::size_t>(oc) * ho + oy) * wo + ox;

        std::fill(scratch.begin(), scratch.end(), 0);
        if (!cyc.empty()) std::fill(cyc.begin(), cyc.end(), 0);
        std::int64_t direct = 0;  // kFxp / kApc path
        for (int t = tap_lo; t < tap_hi; ++t) {
          const int kx = t % shape.kw;
          const int ky = (t / shape.kw) % shape.kh;
          const int ic = t / (shape.kw * shape.kh);
          const int iy = oy * shape.stride - shape.pad + ky;
          const int ix = ox * shape.stride - shape.pad + kx;
          if (iy < 0 || iy >= shape.hin || ix < 0 || ix >= shape.win)
            continue;
          const std::size_t aidx =
              (static_cast<std::size_t>(ic) * shape.hin + iy) * shape.win +
              ix;
          const std::uint64_t* a = fused ? act_row(aidx) : act_stream(aidx);
          const std::size_t widx =
              (static_cast<std::size_t>(oc) * K + t) * wpl;
          const std::uint64_t* wp = &wpos[widx];
          const std::uint64_t* wn = &wneg[widx];
          if (!prod.empty()) {
            // The product streams are the accumulator inputs; faults on
            // the OR-tree / parallel-counter input wires hit here. Site
            // ids are per (output, tap, channel) wire, mirrored by the
            // nn reference path.
            for (std::size_t k = 0; k < wpl; ++k) {
              prod[k] = a[k] & wp[k];
              prod[wpl + k] = a[k] & wn[k];
            }
            if (accum_faults) {
              const std::uint64_t asite =
                  (static_cast<std::uint64_t>(oidx) * K + t) * 2;
              fm->corrupt_accum_input(prod.data(),
                                      static_cast<std::size_t>(L), asite);
              fm->corrupt_accum_input(prod.data() + wpl,
                                      static_cast<std::size_t>(L),
                                      asite + 1);
            }
            wp = prod.data();
            wn = prod.data() + wpl;
            a = nullptr;  // products already formed
          }
          auto prod_word = [&](const std::uint64_t* ch, std::size_t k) {
            return a != nullptr ? (a[k] & ch[k]) : ch[k];
          };
          if (cfg.accum == nn::AccumMode::kFxp ||
              cfg.accum == nn::AccumMode::kApc) {
            // The machine's APC reduces to exact counting per product
            // pair order; we model kApc == kFxp at machine level (the
            // area model carries the difference).
            if (!cyc.empty()) {
              // Stuck-at needs per-cycle counter values, so scatter the
              // product bits into per-cycle pos/neg histograms.
              for (std::size_t k = 0; k < wpl; ++k) {
                std::uint64_t bp = prod_word(wp, k);
                while (bp != 0) {
                  ++cyc[k * 64 +
                        static_cast<unsigned>(std::countr_zero(bp))];
                  bp &= bp - 1;
                }
                std::uint64_t bn = prod_word(wn, k);
                while (bn != 0) {
                  ++cyc[static_cast<std::size_t>(L) + k * 64 +
                        static_cast<unsigned>(std::countr_zero(bn))];
                  bn &= bn - 1;
                }
              }
            } else if (a != nullptr) {
              // Clean fast path: one fused multiply-popcount pass over the
              // packed words — the product stream is never materialized.
              direct += sc::simd::mac_popcount(a, wp, wn, wpl);
            } else {
              // Products were formed (and corrupted) above; count them.
              direct += static_cast<std::int64_t>(
                  sc::simd::popcount_words(wp, wpl));
              direct -= static_cast<std::int64_t>(
                  sc::simd::popcount_words(wn, wpl));
            }
          } else {
            int g = 0;
            if (cfg.accum == nn::AccumMode::kPbw)
              g = kx;
            else if (cfg.accum == nn::AccumMode::kPbhw)
              g = ky * shape.kw + kx;
            std::uint64_t* gp =
                &scratch[static_cast<std::size_t>(g) * 2 * wpl];
            std::uint64_t* gn = gp + wpl;
            if (a != nullptr) {
              sc::simd::or_and_into(gp, a, wp, wpl);
              sc::simd::or_and_into(gn, a, wn, wpl);
            } else {
              sc::simd::or_into(gp, wp, wpl);
              sc::simd::or_into(gn, wn, wpl);
            }
          }
        }
        std::int64_t total = direct;
        if (!cyc.empty()) {
          // Direct path under a stuck parallel-counter column: run each
          // per-cycle count through the defective counter.
          for (int t = 0; t < L; ++t) {
            total += fm->apply_stuck(cyc[static_cast<std::size_t>(t)]);
            total -= fm->apply_stuck(
                cyc[static_cast<std::size_t>(L) + t]);
          }
        }
        if (cfg.accum == nn::AccumMode::kOr ||
            cfg.accum == nn::AccumMode::kPbw ||
            cfg.accum == nn::AccumMode::kPbhw) {
          for (int g = 0; g < groups; ++g) {
            const std::uint64_t* gp =
                &scratch[static_cast<std::size_t>(g) * 2 * wpl];
            const std::uint64_t* gn = gp + wpl;
            if (stuck_faults) {
              // Each group's OR output is a 1-bit/cycle count into its
              // output-converter counter; the stuck column corrupts it
              // cycle by cycle.
              for (int t = 0; t < L; ++t) {
                const std::uint32_t bp =
                    static_cast<std::uint32_t>((gp[t >> 6] >> (t & 63)) &
                                               1u);
                const std::uint32_t bn =
                    static_cast<std::uint32_t>((gn[t >> 6] >> (t & 63)) &
                                               1u);
                total += fm->apply_stuck(bp);
                total -= fm->apply_stuck(bn);
              }
            } else {
              total += static_cast<std::int64_t>(
                  sc::simd::popcount_words(gp, wpl));
              total -= static_cast<std::int64_t>(
                  sc::simd::popcount_words(gn, wpl));
            }
          }
        }
        // Near-memory read-add-write of the partial sum (first slice
        // writes, later slices accumulate).
        result.counters[oidx] += static_cast<std::int32_t>(total);
        if (slices > 1 && p > 0) ++st.psum_ops;
      }
    }
  }

  {
    const std::lock_guard<std::mutex> lock(stats_mu);
    MachineStats& g = result.stats;
    g.passes += st.passes;
    g.compute_cycles += st.compute_cycles;
    g.stall_cycles += st.stall_cycles;
    g.retry_stall_cycles += st.retry_stall_cycles;
    g.io_stall_cycles += st.io_stall_cycles;
    g.act_buffer_fills += st.act_buffer_fills;
    g.wgt_buffer_fills += st.wgt_buffer_fills;
    g.psum_ops += st.psum_ops;
  }
  return st;
}

MachineResult ConvExecution::Impl::finish() {
  MachineStats& st = result.stats;
  auto& metrics = telemetry::MetricsRegistry::instance();

  // ---- near-memory BN + bounded ReLU + write-back ------------------------
  {
    telemetry::ScopedTimer bn_timer("machine.bn_relu", "machine");
    apply_bn_relu(result.counters, bn_scale, bn_shift, L, xy,
                  result.activations);
    if (hw.near_memory) st.bn_ops += static_cast<std::int64_t>(outputs);
  }

  const double lanes = std::max(1, hw.mem_port_bits / 16);
  st.nearmem_cycles = static_cast<std::int64_t>(
      2.0 * (st.psum_ops + st.bn_ops) / lanes);
  // ECC retries on faulty SRAM reads stall the fill network; they are
  // recovery work, so they land in the retry sub-bucket as well.
  if (fm != nullptr) {
    const std::int64_t ecc_retry =
        fm->stats().sram_retry_cycles - fault_retry0;
    st.stall_cycles += ecc_retry;
    st.retry_stall_cycles += ecc_retry;
  }
  st.total_cycles = st.compute_cycles + st.stall_cycles + st.nearmem_cycles;
  // The cycle ledger must balance: every total cycle is attributed to
  // exactly one of compute / stall / near-memory, the retry sub-bucket
  // must fit inside the stall bucket, and no bucket may go negative (a
  // negative bucket means an accounting bug or overflow). This check is
  // always on — in release builds a violation marks the stats invalid and
  // bumps machine.ledger_mismatch instead of aborting.
  st.ledger_ok =
      st.compute_cycles >= 0 && st.stall_cycles >= 0 &&
      st.nearmem_cycles >= 0 && st.total_cycles >= 0 &&
      st.retry_stall_cycles >= 0 && st.io_stall_cycles >= 0 &&
      st.retry_stall_cycles + st.io_stall_cycles <= st.stall_cycles &&
      st.total_cycles ==
          st.compute_cycles + st.stall_cycles + st.nearmem_cycles;
  if (!st.ledger_ok) metrics.counter("machine.ledger_mismatch").add(1);
  assert(st.ledger_ok && "machine cycle ledger must reconcile");

  // Mirror the per-run stats into the process-wide registry so telemetry
  // consumers see the same ledger MachineStats reports (the machine_test
  // reconciliation assertion depends on these staying in lockstep).
  metrics.counter("machine.passes").add(st.passes);
  metrics.counter("machine.compute_cycles").add(st.compute_cycles);
  metrics.counter("machine.stall_cycles").add(st.stall_cycles);
  metrics.counter("machine.retry_stall_cycles").add(st.retry_stall_cycles);
  metrics.counter("machine.io_stall_cycles").add(st.io_stall_cycles);
  metrics.counter("machine.nearmem_cycles").add(st.nearmem_cycles);
  metrics.counter("machine.total_cycles").add(st.total_cycles);
  metrics.counter("machine.act_buffer_fills").add(st.act_buffer_fills);
  metrics.counter("machine.wgt_buffer_fills").add(st.wgt_buffer_fills);
  metrics.counter("machine.psum_ops").add(st.psum_ops);
  metrics.counter("machine.bn_ops").add(st.bn_ops);
  metrics.counter("machine.layers_executed").add(1);
  // Feed the per-layer generation/execution breakdown (paper Fig. 6's
  // runtime analogue); the ledger republishes the attr.* gauges/counters.
  AttributionLedger::instance().record(
      shape.name.empty() ? "conv" : shape.name, st);
  finished = true;
  run_timer.reset();  // close the machine.run_conv span
  return std::move(result);
}

ConvExecution::ConvExecution(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}
ConvExecution::ConvExecution(ConvExecution&&) noexcept = default;
ConvExecution& ConvExecution::operator=(ConvExecution&&) noexcept = default;
ConvExecution::~ConvExecution() = default;

std::int64_t ConvExecution::tile_count() const {
  return impl_->tiles_cg * impl_->tiles_wg;
}

std::vector<std::size_t> ConvExecution::tile_outputs(std::int64_t tile) const {
  const Impl& im = *impl_;
  const int cg = static_cast<int>(tile / im.tiles_wg);
  const std::int64_t wg = tile % im.tiles_wg;
  std::vector<std::size_t> out;
  for (int c = 0; c < im.chans_at_once; ++c) {
    const int oc = cg * im.R + c;
    if (oc >= im.shape.cout) break;
    for (int wslot = 0; wslot < im.windows_per_pass; ++wslot) {
      const std::int64_t pos =
          wg * im.windows_per_pass + wslot;
      if (pos >= im.xy) break;
      out.push_back(static_cast<std::size_t>(oc) *
                        static_cast<std::size_t>(im.xy) +
                    static_cast<std::size_t>(pos));
    }
  }
  return out;
}

MachineStats ConvExecution::run_tile(std::int64_t tile) {
  return impl_->run_tile(tile);
}

// Enumerates the activation-stream slots feeding `tile` (with repeats:
// windows overlap). Shared by invalidation and tile_inputs.
template <typename Fn>
void ConvExecution::Impl::for_each_tile_input(std::int64_t tile,
                                              Fn&& fn) const {
  const std::int64_t wg = tile % tiles_wg;
  for (int wslot = 0; wslot < windows_per_pass; ++wslot) {
    const std::int64_t pos = wg * windows_per_pass + wslot;
    if (pos >= xy) break;
    const int oy = static_cast<int>(pos) / wo;
    const int ox = static_cast<int>(pos) % wo;
    for (int t = 0; t < K; ++t) {
      const int kx = t % shape.kw;
      const int ky = (t / shape.kw) % shape.kh;
      const int ic = t / (shape.kw * shape.kh);
      const int iy = oy * shape.stride - shape.pad + ky;
      const int ix = ox * shape.stride - shape.pad + kx;
      if (iy < 0 || iy >= shape.hin || ix < 0 || ix >= shape.win) continue;
      fn((static_cast<std::size_t>(ic) * shape.hin + iy) * shape.win + ix);
    }
  }
}

void ConvExecution::invalidate_tile_inputs(std::int64_t tile) {
  Impl& im = *impl_;
  // Every tap of every window in this tile: mark its activation stream
  // stale. Streams are shared across channel groups, so a neighbouring
  // tile's later first-use simply regenerates them (same seed, same SRAM
  // word — bit-identical unless a fault model intervenes).
  im.for_each_tile_input(tile, [&im](std::size_t aidx) {
    im.act_ready[aidx].store(0, std::memory_order_release);
    // Wake any act_stream() parked on state 1 so it re-runs the claim (no
    // waiter can exist on the serial resilience path, but the protocol stays
    // self-contained).
    im.act_ready[aidx].notify_all();
  });
}

std::vector<std::size_t> ConvExecution::tile_inputs(std::int64_t tile) const {
  std::vector<std::size_t> in;
  impl_->for_each_tile_input(tile,
                             [&in](std::size_t aidx) { in.push_back(aidx); });
  std::sort(in.begin(), in.end());
  in.erase(std::unique(in.begin(), in.end()), in.end());
  return in;
}

std::span<const std::int32_t> ConvExecution::counters() const {
  return impl_->result.counters;
}

const MachineStats& ConvExecution::stats() const {
  return impl_->result.stats;
}

void ConvExecution::add_stall_cycles(std::int64_t cycles) {
  // Injected stalls are always recovery work (retry backoff, scrubbing),
  // never generation cost, so they land in the retry sub-bucket too.
  impl_->result.stats.stall_cycles += cycles;
  impl_->result.stats.retry_stall_cycles += cycles;
}

void ConvExecution::add_io_stall_cycles(std::int64_t cycles) {
  impl_->result.stats.stall_cycles += cycles;
  impl_->result.stats.io_stall_cycles += cycles;
}

const nn::ScLayerConfig& ConvExecution::config() const { return impl_->cfg; }

MachineResult ConvExecution::finish() { return impl_->finish(); }

geo::Status ConvExecution::rebind_input(std::span<const float> input) {
  Impl& im = *impl_;
  if (input.size() != static_cast<std::size_t>(im.shape.activations()))
    return geo::Status::invalid_argument(
        "GeoMachine: rebind input size mismatch: got " +
        std::to_string(input.size()) + ", shape wants " +
        std::to_string(im.shape.activations()));
  im.input = input;
  // Empty the lazy activation cache: every slot regenerates from the new
  // input on first use. The buffers themselves are kept (generate_stream
  // zero-fills its destination before writing), so a rebind allocates only
  // the per-run result vectors.
  for (std::size_t i = 0; i < input.size(); ++i)
    im.act_ready[i].store(0, std::memory_order_relaxed);
  if (im.fused) {
    std::fill(im.act_rowp.begin(), im.act_rowp.end(), nullptr);
    const std::lock_guard<std::mutex> lock(im.act_fallback_mu);
    im.act_fallback.clear();
  }
  im.result.counters.assign(static_cast<std::size_t>(im.outputs), 0);
  im.result.activations.assign(static_cast<std::size_t>(im.outputs), 0);
  im.result.stats = MachineStats{};
  // Re-baseline the ECC retry charge: this run's finish() must charge only
  // the retries its own activation reads incur, not the previous member's.
  im.fault_retry0 =
      im.fm != nullptr ? im.fm->stats().sram_retry_cycles : 0;
  im.finished = false;
  im.run_timer.emplace("machine.run_conv", "machine");
  return geo::Status();
}

// ----------------------------------------------------------------- machine

GeoMachine::GeoMachine(const HwConfig& hw) : hw_(hw) {}

nn::ScLayerConfig GeoMachine::layer_config(const ConvShape& shape,
                                           std::uint64_t layer_salt) const {
  const Compiler compiler(hw_);
  nn::ScLayerConfig cfg;
  cfg.rng = hw_.lfsr_per_sng ? sc::RngKind::kTrng : sc::RngKind::kLfsr;
  cfg.sharing = hw_.sharing;
  cfg.accum = hw_.accum;
  cfg.stream_len = compiler.stream_len_for(shape);
  cfg.value_bits = static_cast<unsigned>(hw_.sng_value_bits);
  cfg.progressive = hw_.progressive;
  cfg.layer_salt = layer_salt;
  return cfg;
}

geo::Status GeoMachine::validate_conv(const ConvShape& shape,
                                      std::span<const float> weights,
                                      std::span<const float> input,
                                      std::span<const float> bn_scale,
                                      std::span<const float> bn_shift) const {
  auto fail = [](const std::string& msg) {
    return geo::Status::invalid_argument("GeoMachine: " + msg);
  };
  if (shape.cin < 1 || shape.cout < 1 || shape.hin < 1 || shape.win < 1 ||
      shape.kh < 1 || shape.kw < 1)
    return fail("shape '" + shape.name + "' has non-positive dimensions");
  if (shape.stride < 1)
    return fail("shape '" + shape.name + "' has stride < 1");
  if (shape.pad < 0)
    return fail("shape '" + shape.name + "' has negative padding");
  if (shape.kh > shape.hin + 2 * shape.pad ||
      shape.kw > shape.win + 2 * shape.pad)
    return fail("shape '" + shape.name + "' kernel exceeds padded input");
  if (shape.hout() < 1 || shape.wout() < 1)
    return fail("shape '" + shape.name + "' yields an empty output");
  if (weights.size() != static_cast<std::size_t>(shape.weights()))
    return fail("weight count mismatch: got " +
                std::to_string(weights.size()) + ", shape wants " +
                std::to_string(shape.weights()));
  if (input.size() != static_cast<std::size_t>(shape.activations()))
    return fail("input size mismatch: got " + std::to_string(input.size()) +
                ", shape wants " + std::to_string(shape.activations()));
  if (bn_scale.size() != static_cast<std::size_t>(shape.cout) ||
      bn_shift.size() != bn_scale.size())
    return fail("BN coefficient count mismatch: got " +
                std::to_string(bn_scale.size()) + "/" +
                std::to_string(bn_shift.size()) + ", shape wants " +
                std::to_string(shape.cout));
  return geo::Status();
}

MachineResult GeoMachine::run_conv(const ConvShape& shape,
                                   std::span<const float> weights,
                                   std::span<const float> input,
                                   std::span<const float> bn_scale,
                                   std::span<const float> bn_shift,
                                   std::uint64_t layer_salt) {
  auto result = try_run_conv(shape, weights, input, bn_scale, bn_shift,
                             layer_salt);
  if (!result.ok()) throw std::invalid_argument(result.status().to_string());
  return std::move(result).value();
}

geo::StatusOr<MachineResult> GeoMachine::try_run_conv(
    const ConvShape& shape, std::span<const float> weights,
    std::span<const float> input, std::span<const float> bn_scale,
    std::span<const float> bn_shift, std::uint64_t layer_salt) {
  auto exec = prepare_conv(shape, weights, input, bn_scale, bn_shift,
                           layer_salt);
  if (!exec.ok()) return exec.status();
  ConvExecution execution = std::move(exec).value();
  // Tiles are independent; the runner fans them across the GEO_THREADS pool
  // (bit-identical to the serial loop at any thread count, and exactly the
  // serial loop at GEO_THREADS=1). An exception escaping a tile — e.g. an
  // SC kernel rejecting a degenerate configuration — is rethrown on this
  // thread by the pool and converted to a Status here instead of tearing
  // down a worker.
  try {
    exec::ParallelConvRunner().run_all(execution);
    return execution.finish();
  } catch (const std::exception& e) {
    return geo::Status::internal(
        std::string("GeoMachine: conv execution failed: ") + e.what());
  }
}

geo::StatusOr<ConvExecution> GeoMachine::prepare_conv(
    const ConvShape& shape, std::span<const float> weights,
    std::span<const float> input, std::span<const float> bn_scale,
    std::span<const float> bn_shift, std::uint64_t layer_salt) {
  // Fail closed: reject malformed layers before any buffer is allocated or
  // any telemetry is emitted.
  if (geo::Status s =
          validate_conv(shape, weights, input, bn_scale, bn_shift);
      !s.ok())
    return s;

  auto impl = std::make_unique<ConvExecution::Impl>();
  impl->run_timer.emplace("machine.run_conv", "machine");
  impl->hw = hw_;
  impl->shape = shape;
  const Compiler compiler(hw_);
  impl->plan = compiler.plan_layer(shape, compiler.natural_dataflow());
  impl->cfg = layer_config(shape, layer_salt);
  impl->input = input;
  impl->bn_scale.assign(bn_scale.begin(), bn_scale.end());
  impl->bn_shift.assign(bn_shift.begin(), bn_shift.end());

  impl->fm = fault::active();
  impl->fault_retry0 =
      impl->fm != nullptr ? impl->fm->stats().sram_retry_cycles : 0;
  impl->use_stream_table = sc::stream_table_enabled();

  const nn::ScLayerConfig& cfg = impl->cfg;
  impl->L = cfg.stream_len;
  impl->wpl = static_cast<std::size_t>((impl->L + 63) / 64);
  const unsigned n = cfg.lfsr_bits();
  impl->K = shape.taps();
  impl->ho = shape.hout();
  impl->wo = shape.wout();
  impl->outputs = shape.outputs();
  impl->xy = static_cast<std::int64_t>(impl->ho) * impl->wo;

  const sc::KernelExtents ext{shape.cout, shape.cin, shape.kh, shape.kw};
  impl->alloc.emplace(cfg.sharing, n, ext, layer_salt);
  fault::FaultModel* const fm = impl->fm;
  const std::size_t wpl = impl->wpl;
  const int L = impl->L;

  // ---- weight memory -> weight SNG streams (whole filter bank) ----------
  impl->wpos.assign(weights.size() * wpl, 0);
  impl->wneg.assign(weights.size() * wpl, 0);
  {
    telemetry::ScopedTimer t("machine.weight_streams", "machine",
                             {{"streams", static_cast<double>(
                                   weights.size())}});
    // Each stream writes a disjoint slice of wpos/wneg and every fault site
    // is touched exactly once, so the fan-out is order-independent — byte-
    // identical to the old nested serial loop at any thread count.
    const std::int64_t kw = shape.kw, kh = shape.kh, cin = shape.cin;
    exec::parallel_for(
        static_cast<std::int64_t>(weights.size()), [&](std::int64_t i) {
          const std::size_t idx = static_cast<std::size_t>(i);
          const int kx = static_cast<int>(i % kw);
          const int ky = static_cast<int>((i / kw) % kh);
          const int ic = static_cast<int>((i / (kw * kh)) % cin);
          const int oc = static_cast<int>(i / (kw * kh * cin));
          const float w = std::clamp(weights[idx], -1.0f, 1.0f);
          std::uint32_t q =
              nn::quantize_unsigned(std::abs(w), cfg.value_bits);
          if (fm != nullptr)
            q = fm->sram_read(q, cfg.value_bits,
                              fault::FaultModel::Site::kWeightSram, idx);
          const sc::SeedSpec spec = impl->alloc->weight({oc, ic, ky, kx});
          generate_stream(
              (w >= 0.0f ? &impl->wpos : &impl->wneg)->data() + idx * wpl,
              wpl, static_cast<std::size_t>(L), cfg, spec, q, fm,
              fault::FaultModel::Site::kWeightStream, idx,
              impl->use_stream_table);
        });
  }

  // ---- activation streams, generated lazily per buffer slot -------------
  auto& metrics = telemetry::MetricsRegistry::instance();
  impl->act_gen_counter = &metrics.counter("machine.act_streams_generated");
  // Fused generate+execute eligibility: fault injection corrupts seeds and
  // stream buffers per-slot (the rows are shared), and progressive loading
  // composes masked row segments — both need a private materialized buffer.
  impl->fused = fm == nullptr && impl->use_stream_table && !cfg.progressive;
  if (impl->fused) {
    impl->act_rowp.assign(input.size(), nullptr);
    impl->zero_row.assign(wpl, 0);
  } else {
    impl->act.assign(input.size() * wpl, 0);
  }
  impl->act_ready =
      std::make_unique<std::atomic<std::uint8_t>[]>(input.size());
  for (std::size_t i = 0; i < input.size(); ++i)
    impl->act_ready[i].store(0, std::memory_order_relaxed);

  impl->result.counters.assign(static_cast<std::size_t>(impl->outputs), 0);
  impl->result.activations.assign(static_cast<std::size_t>(impl->outputs), 0);

  // ---- pass schedule ------------------------------------------------------
  impl->R = hw_.rows;
  impl->chans_at_once = std::min(shape.cout, impl->R);
  impl->windows_per_pass = impl->plan.windows_per_pass;
  impl->slices = impl->plan.kernel_slices;
  impl->M = hw_.macs_per_row;

  impl->groups = 1;
  switch (cfg.accum) {
    case nn::AccumMode::kOr: impl->groups = 1; break;
    case nn::AccumMode::kPbw: impl->groups = shape.kw; break;
    case nn::AccumMode::kPbhw: impl->groups = shape.kh * shape.kw; break;
    case nn::AccumMode::kFxp:
    case nn::AccumMode::kApc: impl->groups = 1; break;  // per tap
  }
  // Accumulator / fault-path scratch is allocated per run_tile call (tiles
  // may run concurrently, so they can't share work buffers); these flags
  // tell run_tile which buffers a run needs.
  impl->direct_accum = cfg.accum == nn::AccumMode::kFxp ||
                       cfg.accum == nn::AccumMode::kApc;
  impl->accum_faults = fm != nullptr && fm->accum_active();
  impl->stuck_faults = fm != nullptr && fm->stuck_enabled();

  impl->fill = hw_.buffer_fill_bits;
  impl->bits_per_value =
      hw_.progressive ? static_cast<double>(n) : hw_.sng_value_bits;

  impl->pass_hist = &metrics.histogram("machine.pass");
  impl->mac_hist = &metrics.histogram("machine.mac_rows");

  impl->tiles_cg = (shape.cout + impl->R - 1) / impl->R;
  impl->tiles_wg = (impl->xy + impl->windows_per_pass - 1) /
                   impl->windows_per_pass;

  return ConvExecution(std::move(impl));
}

}  // namespace geo::arch
