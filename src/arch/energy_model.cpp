#include "arch/energy_model.hpp"

namespace geo::arch {

double EnergyBreakdown::total() const {
  return mac_array + act_sng + act_sng_buffers + wgt_sng + wgt_sng_buffers +
         output_conv + near_memory + act_memory + wgt_memory +
         external_memory + leakage + other;
}

std::vector<std::pair<std::string, double>> EnergyBreakdown::items() const {
  return {
      {"SC MAC arrays", mac_array},
      {"Act. SNG", act_sng},
      {"Act. SNG buffers", act_sng_buffers},
      {"Wgt. SNG", wgt_sng},
      {"Wgt. SNG buffers", wgt_sng_buffers},
      {"Output conv.", output_conv},
      {"Near-memory compute", near_memory},
      {"Act. memory", act_memory},
      {"Wgt. memory", wgt_memory},
      {"External memory", external_memory},
      {"Leakage", leakage},
      {"Other", other},
  };
}

EnergyModel::EnergyModel(const HwConfig& hw, const TechParams& tech,
                         const ActivityFactors& act)
    : hw_(hw),
      tech_(tech),
      act_(act),
      area_(accelerator_area(hw, tech)),
      act_sram_{static_cast<double>(hw.act_mem_kb), hw.mem_port_bits, 2},
      wgt_sram_{static_cast<double>(hw.wgt_mem_kb), hw.mem_port_bits, 2} {}

double EnergyModel::ge_energy_j() const {
  return tech_.ge_energy_fj * 1e-15 *
         dynamic_energy_scale(hw_.vdd, tech_.vdd_nominal);
}

namespace {
// GE count implied by an area-breakdown entry (undo the mm2 conversion).
double ge_of(double mm2, const TechParams& tech) {
  return mm2 / (tech.ge_area_um2 * 1e-6 * tech.layout_overhead);
}
}  // namespace

double EnergyModel::mac_cycle_energy() const {
  return ge_of(area_.mac_array, tech_) * act_.mac_array * ge_energy_j();
}

double EnergyModel::act_sng_cycle_energy() const {
  return ge_of(area_.act_sng, tech_) * act_.sng * ge_energy_j();
}

double EnergyModel::wgt_sng_cycle_energy() const {
  return ge_of(area_.wgt_sng, tech_) * act_.sng * ge_energy_j();
}

double EnergyModel::buffer_cycle_energy() const {
  return ge_of(area_.act_sng_buffers + area_.wgt_sng_buffers +
                   area_.shadow_buffers,
               tech_) *
         act_.sng_buffers * ge_energy_j();
}

double EnergyModel::output_conv_cycle_energy() const {
  return ge_of(area_.output_converters + area_.pipeline, tech_) *
         act_.output_conv * ge_energy_j();
}

double EnergyModel::compute_cycle_energy() const {
  const double control = ge_of(area_.control, tech_) * act_.control;
  return mac_cycle_energy() + act_sng_cycle_energy() +
         wgt_sng_cycle_energy() + buffer_cycle_energy() +
         output_conv_cycle_energy() + control * ge_energy_j();
}

double EnergyModel::buffer_load_energy(int bits) const {
  return bits * ge_flip_flop() * ge_energy_j();
}

double EnergyModel::near_mem_add_energy() const {
  // The adder fires exactly when the instruction uses it, so no activity
  // factor applies here.
  return 16 * ge_full_adder() * ge_energy_j();
}

double EnergyModel::leakage_power() const {
  const double logic_ge = ge_of(area_.logic_total(), tech_);
  const double logic_w = logic_ge * tech_.ge_leak_nw * 1e-9 *
                         leakage_power_scale(hw_.vdd, tech_.vdd_nominal);
  const double sram_w =
      (act_sram_.leakage_mw() + wgt_sram_.leakage_mw()) * 1e-3 *
      leakage_power_scale(hw_.vdd, tech_.vdd_nominal);
  return logic_w + sram_w;
}

}  // namespace geo::arch
