// Critical-path timing and the Sec. III-D pipeline / DVFS optimization.
//
// The unpipelined critical path runs LFSR -> SNG comparator -> SC MAC ->
// partial-binary accumulation -> output counter. Inserting a pipeline stage
// between the SC MAC and the partial-binary stage cuts it by >30%; the
// recovered slack is spent lowering the supply voltage at a fixed 400 MHz.
#pragma once

#include "arch/hw_config.hpp"
#include "arch/tech.hpp"

namespace geo::arch {

struct TimingReport {
  double unpipelined_ns = 0;   // full path at nominal voltage
  double stage1_ns = 0;        // LFSR..SC MAC (with pipeline stage)
  double stage2_ns = 0;        // partial-binary acc..counter
  double pipelined_ns = 0;     // max(stage1, stage2)
  double critical_path_cut = 0;  // 1 - pipelined/unpipelined
  double achievable_vdd = 0;   // lowest V meeting the clock with pipelining
  double clock_period_ns = 0;
};

TimingReport analyze_timing(const HwConfig& hw, const TechParams& tech);

// Convenience: the vdd the design point runs at (nominal without the
// pipeline stage, DVFS-lowered with it, never below what the clock allows).
double operating_vdd(const HwConfig& hw, const TechParams& tech);

}  // namespace geo::arch
