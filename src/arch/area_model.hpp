// Gate-equivalent area model for GEO's blocks and the Fig. 5 MAC-unit
// comparison.
#pragma once

#include <string>
#include <vector>

#include "arch/hw_config.hpp"
#include "arch/tech.hpp"
#include "nn/sc_config.hpp"

namespace geo::arch {

// ---- gate-equivalent costs of primitive structures (in GE = NAND2) -------
double ge_inv();
double ge_and2();
double ge_or2();
double ge_xor2();
double ge_mux2();
double ge_full_adder();
double ge_flip_flop();

// n-input OR (or AND) reduction tree: n-1 two-input gates.
double or_tree_ge(int fan_in);

// Exact parallel counter summing n single-bit inputs: a full-adder
// compressor tree with ~ (n - popcount-width) adders, plus the accumulation
// adder of `acc_bits` bits.
double parallel_counter_ge(int inputs, int acc_bits);

// Approximate parallel counter [24]: one merge layer of n/2 gates feeding an
// exact counter of half the inputs (with one extra weight bit).
double apc_ge(int inputs, int acc_bits);

// n-bit magnitude comparator (SNG core).
double comparator_ge(int bits);

// n-bit maximal-length LFSR: n flip-flops + feedback XORs.
double lfsr_ge(int bits);

// n-bit register / up-down counter.
double register_ge(int bits);
double counter_ge(int bits);

// ---- Fig. 5: one SC MAC unit (one output's dot product) ------------------
// Area in GE of the multiply + accumulate structure for a (cin, kh, kw)
// kernel under the given accumulation mode. Split-unipolar with unipolar
// activations: 2 AND2 per product, two accumulation channels.
double sc_mac_unit_ge(int cin, int kh, int kw, nn::AccumMode mode);

// Same, in um^2 (without layout overhead — Fig. 5 compares structures).
double sc_mac_unit_um2(int cin, int kh, int kw, nn::AccumMode mode,
                       const TechParams& tech);

// ---- accelerator-level breakdown (Fig. 6 / Tables II-III) ----------------
struct AreaBreakdown {
  double mac_array = 0;       // mm^2 each
  double act_sng = 0;
  double act_sng_buffers = 0;
  double wgt_sng = 0;
  double wgt_sng_buffers = 0;
  double shadow_buffers = 0;
  double output_converters = 0;
  double near_memory = 0;
  double pipeline = 0;
  double control = 0;
  double act_memory = 0;
  double wgt_memory = 0;
  double ext_mem_phy = 0;

  double total() const;
  double logic_total() const;  // everything except the two SRAMs + PHY

  std::vector<std::pair<std::string, double>> items() const;
};

AreaBreakdown accelerator_area(const HwConfig& hw, const TechParams& tech);

}  // namespace geo::arch
