#include "arch/memory_model.hpp"

#include <cmath>

namespace geo::arch {

namespace {
// 28 nm SRAM macro density including periphery (bit cell ~0.12 um2, array
// efficiency ~60%): ~1.6 mm2 per MB.
constexpr double kMm2PerKb = 1.6 / 1024.0;

// Access-energy shape: E = (base + k * sqrt(bank_kb)) * (word_bits / 64).
constexpr double kReadBasePj = 1.1;
constexpr double kReadSlope = 0.55;
constexpr double kWriteFactor = 1.1;  // writes slightly above reads

constexpr double kLeakUwPerKb = 1.4;  // HVT retention leakage
}  // namespace

double SramModel::area_mm2() const {
  // Banking adds decoder/sense duplication: ~4% per extra bank.
  const double bank_overhead = 1.0 + 0.04 * (banks - 1);
  return capacity_kb * kMm2PerKb * bank_overhead;
}

double SramModel::read_energy_pj() const {
  const double bank_kb = capacity_kb / banks;
  return (kReadBasePj + kReadSlope * std::sqrt(bank_kb)) *
         (static_cast<double>(word_bits) / 64.0);
}

double SramModel::write_energy_pj() const {
  return read_energy_pj() * kWriteFactor;
}

double SramModel::leakage_mw() const {
  return capacity_kb * kLeakUwPerKb * 1e-3;
}

}  // namespace geo::arch
