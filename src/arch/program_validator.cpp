#include "arch/program_validator.hpp"

#include <bit>
#include <string>

namespace geo::arch {

namespace {

geo::Status at(std::size_t index, const Instruction& inst,
               const std::string& why) {
  return geo::Status::invalid_argument(
      "program[" + std::to_string(index) + "] " + mnemonic(inst.op) + ": " +
      why);
}

bool fits16(std::int32_t v) { return v >= -32768 && v <= 32767; }

}  // namespace

geo::Status validate_program(const Program& program) {
  if (program.empty())
    return geo::Status::invalid_argument("program is empty");

  bool configured = false;
  bool executed = false;
  bool halted = false;
  const auto& code = program.instructions();
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Instruction& inst = code[i];
    if (halted) return at(i, inst, "instruction after halt");
    if (!fits16(inst.arg0) || !fits16(inst.arg1) || !fits16(inst.arg2))
      return at(i, inst, "operand exceeds the 16-bit encoding");

    switch (inst.op) {
      case Opcode::kNop:
      case Opcode::kBarrier:
        break;
      case Opcode::kConfig: {
        const std::int32_t len = inst.arg0;
        if (len < 2 || len > 32768 ||
            !std::has_single_bit(static_cast<std::uint32_t>(len)))
          return at(i, inst,
                    "stream length " + std::to_string(len) +
                        " is not a power of two in [2, 32768]");
        if (inst.arg1 < 2 || inst.arg1 > 24)
          return at(i, inst,
                    "LFSR width " + std::to_string(inst.arg1) +
                        " outside [2, 24]");
        if (inst.arg2 < 0 || inst.arg2 > 4)
          return at(i, inst,
                    "unknown accumulation mode " + std::to_string(inst.arg2));
        configured = true;
        break;
      }
      case Opcode::kGenExec:
        if (!configured)
          return at(i, inst, "genexec before any config");
        if (inst.arg0 < 1)
          return at(i, inst, "stream cycle count must be >= 1");
        if (inst.arg1 < 1)
          return at(i, inst, "output count must be >= 1");
        executed = true;
        break;
      case Opcode::kNearMemAcc:
        if (!executed)
          return at(i, inst, "near-memory accumulate before any genexec");
        if (inst.arg0 < 0) return at(i, inst, "negative lane count");
        break;
      case Opcode::kStoreOut:
        if (!executed)
          return at(i, inst, "store before any genexec produced outputs");
        if (inst.arg0 < 0) return at(i, inst, "negative store count");
        break;
      case Opcode::kLoadWgt:
      case Opcode::kLoadAct:
      case Opcode::kNearMemBn:
      case Opcode::kPool:
      case Opcode::kLoadExt:
        if (inst.arg0 < 0) return at(i, inst, "negative count operand");
        break;
      case Opcode::kHalt:
        halted = true;
        break;
      default:
        return at(i, inst, "unknown opcode");
    }
  }
  if (!halted)
    return geo::Status::invalid_argument(
        "program does not end with halt (last is '" +
        std::string(mnemonic(code.back().op)) + "')");
  return geo::Status();
}

}  // namespace geo::arch
