#include "arch/timing_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace geo::arch {

namespace {
int log2_ceil(int n) {
  return n <= 1 ? 0 : std::bit_width(static_cast<unsigned>(n - 1));
}
}  // namespace

TimingReport analyze_timing(const HwConfig& hw, const TechParams& tech) {
  TimingReport r;
  const double g = tech.ge_delay_ps * 1e-3;  // ns per gate level

  // Stage depths in gate levels.
  const double lfsr_clk_q = 1.5;
  const double comparator = 0.8 * hw.lfsr_bits;  // ripple compare
  const double mac_and = 1.0;
  const double or_depth = log2_ceil(
      std::max(hw.macs_per_row / std::max(hw.pb_segments, 1), 2));
  const double pc_depth = 2.0 * log2_ceil(std::max(hw.pb_segments, 2));
  const double counter = 3.0;

  const double front = (lfsr_clk_q + comparator + mac_and + or_depth) * g;
  const double back = (pc_depth + counter) * g;

  r.unpipelined_ns = front + back;
  r.stage1_ns = front + 0.5 * g;  // launch flop setup
  r.stage2_ns = back + 0.5 * g;
  r.pipelined_ns = std::max(r.stage1_ns, r.stage2_ns);
  r.critical_path_cut = 1.0 - r.pipelined_ns / r.unpipelined_ns;
  r.clock_period_ns = 1e3 / hw.clock_mhz;

  // Without the pipeline stage the full path must meet the clock at nominal
  // voltage; with it, the slack lets vdd drop until the longer stage meets
  // the same clock.
  const double path = hw.pipeline_stage ? r.pipelined_ns : r.unpipelined_ns;
  // Scale so the *unpipelined* design exactly meets the clock at nominal V
  // (the paper's baseline closes timing at 400 MHz / 0.9 V).
  const double calib = r.clock_period_ns / r.unpipelined_ns;
  // DVFS guard band: low-voltage operation keeps extra timing margin against
  // variation, which is why the paper stops at 0.81 V despite a >30% cut.
  constexpr double kDvfsGuardBand = 1.22;
  r.achievable_vdd =
      min_vdd_for_delay(tech, path * calib * kDvfsGuardBand,
                        r.clock_period_ns);
  return r;
}

double operating_vdd(const HwConfig& hw, const TechParams& tech) {
  if (!hw.pipeline_stage) return tech.vdd_nominal;
  return analyze_timing(hw, tech).achievable_vdd;
}

}  // namespace geo::arch
