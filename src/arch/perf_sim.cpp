#include "arch/perf_sim.hpp"

#include <algorithm>
#include <cmath>

#include "fault/fault_model.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::arch {

namespace {
HwConfig with_dvfs(HwConfig hw, const TechParams& tech) {
  hw.vdd = operating_vdd(hw, tech);
  return hw;
}
}  // namespace

PerfSim::PerfSim(const HwConfig& hw, const TechParams& tech)
    : hw_(with_dvfs(hw, tech)),
      tech_(tech),
      energy_(hw_, tech_),
      compiler_(hw_) {}

double PerfSim::pass_stall_cycles(const LayerPlan& plan) const {
  // Bits that must enter the SNG buffers for one pass. Progressive
  // generation only fetches the bits the (stream-length-matched) LFSR can
  // resolve; normal generation always fetches the full stored value.
  const double bits_per_value =
      hw_.progressive ? plan.lfsr_bits : hw_.sng_value_bits;
  const double fill = hw_.buffer_fill_bits;
  const double act_cycles =
      std::ceil(plan.act_loads_per_pass * bits_per_value / fill);
  const double wgt_cycles =
      std::ceil(plan.wgt_loads_per_pass * bits_per_value / fill);
  const double reload = std::max(act_cycles, wgt_cycles);

  const double compute = plan.stream_cycles;
  if (hw_.shadow_buffers && hw_.progressive) {
    // Next-pass bits trickle into the shadow buffers during compute;
    // generation restarts as soon as the first 2-bit group is there.
    return std::max(0.0, reload - compute);
  }
  if (hw_.shadow_buffers) {
    // Full-size shadow buffers hide the reload the same way, at 4x the
    // buffer area (Sec. III-D).
    return std::max(0.0, reload - compute);
  }
  if (hw_.progressive) {
    // No overlap with the previous pass, but generation starts after the
    // first 2-bit group of every value has arrived.
    const double loads =
        std::max(plan.act_loads_per_pass, plan.wgt_loads_per_pass);
    return std::ceil(loads * 2.0 / fill);
  }
  return reload;  // fully serial reload
}

PerfResult PerfSim::simulate(const NetworkShape& net) const {
  return simulate(compiler_.compile(net));
}

PerfResult PerfSim::simulate(const std::vector<LayerPlan>& plans) const {
  telemetry::ScopedTimer sim_timer(
      "perfsim.simulate", "perfsim",
      {{"layers", static_cast<double>(plans.size())}});
  auto& metrics = telemetry::MetricsRegistry::instance();
  telemetry::Histogram& layer_hist = metrics.histogram("perfsim.layer");

  PerfResult result;
  result.vdd = hw_.vdd;
  const double lanes = std::max(1, hw_.mem_port_bits / 16);
  const double clock_hz = hw_.clock_mhz * 1e6;

  EnergyBreakdown& e = result.energy;

  for (std::size_t li = 0; li < plans.size(); ++li) {
    const auto& plan = plans[li];
    telemetry::ScopedTimer layer_timer(
        layer_hist, "perfsim.layer", "perfsim",
        {{"index", static_cast<double>(li)},
         {"passes", static_cast<double>(plan.passes)},
         {"macs", static_cast<double>(plan.shape.macs())}});
    LayerPerf lp;
    lp.name = plan.shape.name;

    const double stall = pass_stall_cycles(plan);
    lp.compute_cycles =
        static_cast<double>(plan.passes) *
        (plan.stream_cycles + (hw_.pipeline_stage ? 1 : 0));
    lp.stall_cycles = static_cast<double>(plan.passes) * stall;
    // Analytic counterpart of the machine's ECC retry accounting: SECDED
    // re-reads every detected-faulty SRAM word (2 cycles each), in
    // expectation p_word = 1 - (1 - rate)^bits per value read.
    if (fault::FaultModel* fm = fault::active();
        fm != nullptr && fm->sram_active() &&
        fm->config().ecc == fault::EccMode::kSecded) {
      const double p_word =
          1.0 - std::pow(1.0 - fm->config().sram_error_rate,
                         static_cast<double>(hw_.sng_value_bits));
      lp.stall_cycles +=
          2.0 * p_word *
          static_cast<double>(plan.accesses.act_reads +
                              plan.accesses.wgt_reads);
    }
    lp.nearmem_cycles =
        2.0 * (plan.nm_psum_ops + plan.nm_bn_ops) / lanes;
    lp.total_cycles = lp.compute_cycles + lp.stall_cycles + lp.nearmem_cycles;

    // External weight streaming overlaps compute (ping-pong weight banks);
    // the layer takes whichever is longer.
    if (hw_.external_memory && plan.accesses.ext_bytes > 0)
      lp.ext_seconds = energy_.ext_mem().transfer_seconds(
          static_cast<double>(plan.accesses.ext_bytes));
    const double layer_seconds =
        std::max(lp.total_cycles / clock_hz, lp.ext_seconds);
    lp.total_cycles = layer_seconds * clock_hz;

    // ---- energy ----------------------------------------------------------
    const double cc = lp.compute_cycles;
    e.mac_array += cc * energy_.mac_cycle_energy();
    e.act_sng += cc * energy_.act_sng_cycle_energy();
    e.wgt_sng += cc * energy_.wgt_sng_cycle_energy();
    const double buf = cc * energy_.buffer_cycle_energy();
    e.act_sng_buffers += 0.5 * buf;
    e.wgt_sng_buffers += 0.5 * buf;
    e.output_conv += cc * energy_.output_conv_cycle_energy();

    // Buffer fills (register writes) for every value loaded.
    const double bits_per_value =
        hw_.progressive ? plan.lfsr_bits : hw_.sng_value_bits;
    e.act_sng_buffers += static_cast<double>(plan.accesses.act_reads) *
                         energy_.buffer_load_energy(
                             static_cast<int>(bits_per_value));
    e.wgt_sng_buffers += static_cast<double>(plan.accesses.wgt_reads) *
                         energy_.buffer_load_energy(
                             static_cast<int>(bits_per_value));

    // SRAM word traffic: 8-bit values and 16-bit partial sums packed into
    // port-wide words.
    const double port_bytes = hw_.mem_port_bits / 8.0;
    const double act_words =
        (plan.accesses.act_reads + plan.accesses.act_writes) / port_bytes;
    const double psum_words =
        (plan.accesses.psum_reads + plan.accesses.psum_writes) * 2.0 /
        port_bytes;
    const double wgt_words = plan.accesses.wgt_reads / port_bytes;
    e.act_memory += act_words * energy_.act_read_energy() +
                    psum_words * energy_.act_read_energy();
    e.wgt_memory += wgt_words * energy_.wgt_read_energy();

    // Near-memory arithmetic.
    e.near_memory +=
        plan.nm_psum_ops * energy_.near_mem_add_energy() +
        plan.nm_bn_ops * 2.0 * energy_.near_mem_add_energy();

    // External memory.
    e.external_memory += plan.accesses.ext_bytes * 8.0 *
                         energy_.ext_energy_per_bit();

    lp.energy_j = 0;  // filled below once leakage is known
    result.accesses += plan.accesses;
    result.layers.push_back(lp);
    result.cycles += lp.total_cycles;
  }

  result.seconds = result.cycles / clock_hz;
  e.leakage = energy_.leakage_power() * result.seconds;

  // Distribute per-layer energy (dynamic share by cycles, for reporting).
  const double dyn_total = e.total() - e.leakage;
  for (auto& lp : result.layers)
    lp.energy_j = dyn_total * (result.cycles > 0
                                   ? lp.total_cycles / result.cycles
                                   : 0.0) +
                  energy_.leakage_power() * lp.total_cycles / clock_hz;

  result.frames_per_second = result.seconds > 0 ? 1.0 / result.seconds : 0.0;
  result.energy_per_frame_j = e.total();
  result.frames_per_joule =
      result.energy_per_frame_j > 0 ? 1.0 / result.energy_per_frame_j : 0.0;
  result.average_power_w =
      result.seconds > 0 ? result.energy_per_frame_j / result.seconds : 0.0;

  // Energy / access telemetry for the whole simulated inference.
  metrics.counter("perfsim.layers_simulated")
      .add(static_cast<std::int64_t>(plans.size()));
  metrics.counter("perfsim.act_reads").add(result.accesses.act_reads);
  metrics.counter("perfsim.act_writes").add(result.accesses.act_writes);
  metrics.counter("perfsim.wgt_reads").add(result.accesses.wgt_reads);
  metrics.counter("perfsim.psum_reads").add(result.accesses.psum_reads);
  metrics.counter("perfsim.psum_writes").add(result.accesses.psum_writes);
  metrics.counter("perfsim.ext_bytes").add(result.accesses.ext_bytes);
  metrics.gauge("perfsim.cycles").set(result.cycles);
  metrics.gauge("perfsim.energy_per_frame_j").set(result.energy_per_frame_j);
  metrics.gauge("perfsim.frames_per_second").set(result.frames_per_second);
  metrics.gauge("perfsim.average_power_w").set(result.average_power_w);
  return result;
}

void apply_retry_cycles(PerfResult& result,
                        std::span<const std::int64_t> per_layer_retry_cycles,
                        double clock_mhz) {
  const double clock_hz = clock_mhz * 1e6;
  std::int64_t applied = 0;
  const std::size_t n =
      std::min(result.layers.size(), per_layer_retry_cycles.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto rc = static_cast<double>(per_layer_retry_cycles[i]);
    if (rc <= 0) continue;
    result.layers[i].stall_cycles += rc;
    result.layers[i].total_cycles += rc;
    result.cycles += rc;
    applied += per_layer_retry_cycles[i];
  }
  if (clock_hz > 0) result.seconds = result.cycles / clock_hz;
  result.frames_per_second =
      result.seconds > 0 ? 1.0 / result.seconds : 0.0;
  result.average_power_w =
      result.seconds > 0 ? result.energy_per_frame_j / result.seconds : 0.0;
  telemetry::MetricsRegistry::instance()
      .counter("perfsim.retry_cycles")
      .add(applied);
}

double PerfSim::peak_gops() const {
  const double macs = hw_.total_macs();
  const double f = hw_.clock_mhz * 1e6;
  const int s_min = std::min(hw_.stream_len_pool, hw_.stream_len);
  // All-OR designs run both split-unipolar phases through the same OR tree
  // (2x cycles); partial-binary fabrics process both channels concurrently.
  const double cycles_per_op =
      hw_.accum == nn::AccumMode::kOr ? 2.0 * s_min : s_min;
  return 2.0 * macs * f / cycles_per_op / 1e9;
}

double PerfSim::peak_tops_per_watt() const {
  // Rated at full compute activity plus leakage.
  const double power = energy_.compute_cycle_energy() * hw_.clock_mhz * 1e6 +
                       energy_.leakage_power();
  return peak_gops() / 1e3 / power;
}

}  // namespace geo::arch
