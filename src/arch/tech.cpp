#include "arch/tech.hpp"

#include <algorithm>
#include <cmath>

namespace geo::arch {

double area_scale(double from_nm, double to_nm) {
  const double r = to_nm / from_nm;
  return r * r;  // area tracks feature size squared
}

double energy_scale(double from_nm, double to_nm) {
  // Energy per operation shrinks a little slower than linearly with feature
  // size in the post-Dennard nodes the paper spans (65 -> 28 nm).
  return std::pow(to_nm / from_nm, 1.3);
}

double delay_scale(double from_nm, double to_nm) {
  return std::pow(to_nm / from_nm, 0.7);
}

double dynamic_energy_scale(double v, double v_nominal) {
  const double r = v / v_nominal;
  return r * r;
}

double leakage_power_scale(double v, double v_nominal) {
  return std::pow(v / v_nominal, 3.0);
}

double gate_delay_scale(const TechParams& tech, double v) {
  const double nominal = tech.vdd_nominal /
                         std::pow(tech.vdd_nominal - tech.vth, tech.alpha);
  const double at_v = v / std::pow(v - tech.vth, tech.alpha);
  return at_v / nominal;
}

double min_vdd_for_delay(const TechParams& tech, double nominal_delay,
                         double target_delay) {
  if (nominal_delay >= target_delay) return tech.vdd_nominal;
  // Binary-search the alpha-power law; the floor keeps us out of
  // near-threshold territory the model is not meant for.
  const double floor_v = tech.vth + 0.2;
  double lo = floor_v, hi = tech.vdd_nominal;
  for (int i = 0; i < 60; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double d = nominal_delay * gate_delay_scale(tech, mid);
    if (d <= target_delay)
      hi = mid;
    else
      lo = mid;
  }
  return std::max(hi, floor_v);
}

}  // namespace geo::arch
