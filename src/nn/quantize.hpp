// Fixed-point quantization helpers (the Eyeriss baselines and the SC value
// domain both quantize to n-bit fixed point).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace geo::nn {

// Symmetric signed quantization of v in [-range, range] to `bits` bits:
// round(v / range * 2^(bits-1)) clamped to [-(2^(bits-1)), 2^(bits-1)-1].
std::int32_t quantize_signed(float v, unsigned bits, float range = 1.0f);

// The float value a quantized code represents.
float dequantize_signed(std::int32_t code, unsigned bits, float range = 1.0f);

// Unsigned quantization of v in [0, range] to `bits` bits.
std::uint32_t quantize_unsigned(float v, unsigned bits, float range = 1.0f);
float dequantize_unsigned(std::uint32_t code, unsigned bits,
                          float range = 1.0f);

// Fake-quantization: quantize-then-dequantize every element (straight-through
// training for the fixed-point baselines). Values are clamped to
// [-range, range] (signed) or [0, range] (unsigned).
Tensor fake_quantize_signed(const Tensor& t, unsigned bits,
                            float range = 1.0f);
Tensor fake_quantize_unsigned(const Tensor& t, unsigned bits,
                              float range = 1.0f);

}  // namespace geo::nn
