#include "nn/layers.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace geo::nn {

namespace {
int conv_out_dim(int in, int kernel, int stride, int pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

float quantize_sym(float v, unsigned bits, float scale) {
  if (bits == 0 || scale <= 0.0f) return v;
  const float levels = static_cast<float>(1 << (bits - 1));
  const float q = std::round(v / scale * levels);
  const float c = std::clamp(q, -levels, levels - 1.0f);
  return c * scale / levels;
}
}  // namespace

// ---------------------------------------------------------------- Conv2d

Conv2d::Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad,
               std::mt19937& rng)
    : in_ch_(in_ch),
      out_ch_(out_ch),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      weight_({out_ch, in_ch, kernel, kernel}) {
  const float fan_in = static_cast<float>(in_ch * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (auto& w : weight_.value.data()) w = dist(rng);
}

Tensor Conv2d::forward_float(const Tensor& x) const {
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int ho = conv_out_dim(h, kernel_, stride_, pad_);
  const int wo = conv_out_dim(w, kernel_, stride_, pad_);
  Tensor y({n, out_ch_, ho, wo});
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < out_ch_; ++oc)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox) {
          float acc = 0.0f;
          for (int ic = 0; ic < in_ch_; ++ic)
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = oy * stride_ - pad_ + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = ox * stride_ - pad_ + kx;
                if (ix < 0 || ix >= w) continue;
                acc += x.at(b, ic, iy, ix) * weight_.value.at(oc, ic, ky, kx);
              }
            }
          y.at(b, oc, oy, ox) = acc;
        }
  return y;
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  return forward_float(x);
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = input_;
  const int n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int ho = grad_out.dim(2), wo = grad_out.dim(3);
  Tensor grad_in({n, in_ch_, h, w});
  for (int b = 0; b < n; ++b)
    for (int oc = 0; oc < out_ch_; ++oc)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox) {
          const float g = grad_out.at(b, oc, oy, ox);
          if (g == 0.0f) continue;
          for (int ic = 0; ic < in_ch_; ++ic)
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = oy * stride_ - pad_ + ky;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = ox * stride_ - pad_ + kx;
                if (ix < 0 || ix >= w) continue;
                weight_.grad.at(oc, ic, ky, kx) += g * x.at(b, ic, iy, ix);
                grad_in.at(b, ic, iy, ix) +=
                    g * weight_.value.at(oc, ic, ky, kx);
              }
            }
        }
  return grad_in;
}

// ---------------------------------------------------------------- Linear

Linear::Linear(int in_features, int out_features, std::mt19937& rng)
    : in_(in_features),
      out_(out_features),
      weight_({out_features, in_features}),
      bias_({out_features}) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  std::uniform_real_distribution<float> dist(-bound, bound);
  for (auto& w : weight_.value.data()) w = dist(rng);
}

Tensor Linear::forward_float(const Tensor& x) const {
  const int n = x.dim(0);
  Tensor y({n, out_});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < out_; ++o) {
      float acc = bias_.value[static_cast<std::size_t>(o)];
      for (int i = 0; i < in_; ++i)
        acc += x.at(b, i) * weight_.value.at(o, i);
      y.at(b, o) = acc;
    }
  return y;
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  return forward_float(x);
}

Tensor Linear::backward(const Tensor& grad_out) {
  const int n = input_.dim(0);
  Tensor grad_in({n, in_});
  for (int b = 0; b < n; ++b)
    for (int o = 0; o < out_; ++o) {
      const float g = grad_out.at(b, o);
      bias_.grad[static_cast<std::size_t>(o)] += g;
      for (int i = 0; i < in_; ++i) {
        weight_.grad.at(o, i) += g * input_.at(b, i);
        grad_in.at(b, i) += g * weight_.value.at(o, i);
      }
    }
  return grad_in;
}

// ---------------------------------------------------------------- ReLU

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  Tensor y = x;
  for (auto& v : y.data()) v = std::max(v, 0.0f);
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i)
    if (input_[i] <= 0.0f) g[i] = 0.0f;
  return g;
}

Tensor BoundedReLU::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  Tensor y = x;
  for (auto& v : y.data()) v = std::clamp(v, 0.0f, 1.0f);
  return y;
}

Tensor BoundedReLU::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i)
    if (input_[i] <= 0.0f || input_[i] >= 1.0f) g[i] = 0.0f;
  return g;
}

// ---------------------------------------------------------------- Pooling

Tensor AvgPool2d::forward(const Tensor& x, bool /*train*/) {
  in_shape_ = x.shape();
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int ho = h / kernel_, wo = w / kernel_;
  Tensor y({n, c, ho, wo});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox) {
          float acc = 0.0f;
          for (int ky = 0; ky < kernel_; ++ky)
            for (int kx = 0; kx < kernel_; ++kx)
              acc += x.at(b, ch, oy * kernel_ + ky, ox * kernel_ + kx);
          y.at(b, ch, oy, ox) = acc * inv;
        }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  Tensor g(in_shape_);
  const int n = grad_out.dim(0), c = grad_out.dim(1);
  const int ho = grad_out.dim(2), wo = grad_out.dim(3);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox) {
          const float v = grad_out.at(b, ch, oy, ox) * inv;
          for (int ky = 0; ky < kernel_; ++ky)
            for (int kx = 0; kx < kernel_; ++kx)
              g.at(b, ch, oy * kernel_ + ky, ox * kernel_ + kx) += v;
        }
  return g;
}

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int ho = h / kernel_, wo = w / kernel_;
  Tensor y({n, c, ho, wo});
  argmax_.assign(y.size(), 0);
  std::size_t oi = 0;
  for (int b = 0; b < n; ++b)
    for (int ch = 0; ch < c; ++ch)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox, ++oi) {
          float best = -1e30f;
          std::size_t best_idx = 0;
          for (int ky = 0; ky < kernel_; ++ky)
            for (int kx = 0; kx < kernel_; ++kx) {
              const std::size_t idx =
                  x.index(b, ch, oy * kernel_ + ky, ox * kernel_ + kx);
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          y[oi] = best;
          argmax_[oi] = best_idx;
        }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor g(input_.shape());
  for (std::size_t i = 0; i < grad_out.size(); ++i)
    g[argmax_[i]] += grad_out[i];
  return g;
}

// ---------------------------------------------------------------- BatchNorm

BatchNorm2d::BatchNorm2d(int channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_({channels}),
      beta_({channels}),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  gamma_.value.fill(1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  const int n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  assert(c == channels_);
  const float count = static_cast<float>(n * h * w);
  Tensor y({n, c, h, w});

  if (train) {
    input_ = x;
    batch_mean_.assign(static_cast<std::size_t>(c), 0.0f);
    batch_inv_std_.assign(static_cast<std::size_t>(c), 0.0f);
    std::vector<float> var(static_cast<std::size_t>(c), 0.0f);
    for (int b = 0; b < n; ++b)
      for (int ch = 0; ch < c; ++ch)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j)
            batch_mean_[static_cast<std::size_t>(ch)] += x.at(b, ch, i, j);
    for (auto& m : batch_mean_) m /= count;
    for (int b = 0; b < n; ++b)
      for (int ch = 0; ch < c; ++ch)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const float d = x.at(b, ch, i, j) -
                            batch_mean_[static_cast<std::size_t>(ch)];
            var[static_cast<std::size_t>(ch)] += d * d;
          }
    for (auto& v : var) v /= count;
    for (int ch = 0; ch < c; ++ch) {
      batch_inv_std_[static_cast<std::size_t>(ch)] =
          1.0f / std::sqrt(var[static_cast<std::size_t>(ch)] + eps_);
      running_mean_[static_cast<std::size_t>(ch)] =
          (1 - momentum_) * running_mean_[static_cast<std::size_t>(ch)] +
          momentum_ * batch_mean_[static_cast<std::size_t>(ch)];
      running_var_[static_cast<std::size_t>(ch)] =
          (1 - momentum_) * running_var_[static_cast<std::size_t>(ch)] +
          momentum_ * var[static_cast<std::size_t>(ch)];
    }
    xhat_ = Tensor({n, c, h, w});
    for (int b = 0; b < n; ++b)
      for (int ch = 0; ch < c; ++ch)
        for (int i = 0; i < h; ++i)
          for (int j = 0; j < w; ++j) {
            const auto s = static_cast<std::size_t>(ch);
            const float xh =
                (x.at(b, ch, i, j) - batch_mean_[s]) * batch_inv_std_[s];
            xhat_.at(b, ch, i, j) = xh;
            y.at(b, ch, i, j) = gamma_.value[s] * xh + beta_.value[s];
          }
    return y;
  }

  // Inference: folded scale/shift, optionally quantized to the near-memory
  // fixed-point precision.
  for (int ch = 0; ch < c; ++ch) {
    const auto s = static_cast<std::size_t>(ch);
    const float inv_std = 1.0f / std::sqrt(running_var_[s] + eps_);
    float scale = gamma_.value[s] * inv_std;
    float shift = beta_.value[s] - running_mean_[s] * scale;
    if (quant_bits_ != 0) {
      // Fixed point with a per-channel power-of-two range (a barrel shift in
      // hardware, as in GEO's near-memory BN MACs): pick the smallest 2^k
      // covering the folded coefficients, then quantize the mantissas.
      const float mag = std::max(std::abs(scale), std::abs(shift));
      float range = 1.0f;
      while (range < mag && range < 256.0f) range *= 2.0f;
      scale = quantize_sym(scale, quant_bits_, range);
      shift = quantize_sym(shift, quant_bits_, range);
    }
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j)
          y.at(b, ch, i, j) = scale * x.at(b, ch, i, j) + shift;
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const int n = grad_out.dim(0), c = grad_out.dim(1);
  const int h = grad_out.dim(2), w = grad_out.dim(3);
  const float count = static_cast<float>(n * h * w);
  Tensor grad_in({n, c, h, w});

  for (int ch = 0; ch < c; ++ch) {
    const auto s = static_cast<std::size_t>(ch);
    float sum_g = 0.0f, sum_gx = 0.0f;
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float g = grad_out.at(b, ch, i, j);
          sum_g += g;
          sum_gx += g * xhat_.at(b, ch, i, j);
        }
    gamma_.grad[s] += sum_gx;
    beta_.grad[s] += sum_g;
    const float gamma = gamma_.value[s];
    const float inv_std = batch_inv_std_[s];
    for (int b = 0; b < n; ++b)
      for (int i = 0; i < h; ++i)
        for (int j = 0; j < w; ++j) {
          const float g = grad_out.at(b, ch, i, j);
          const float xh = xhat_.at(b, ch, i, j);
          grad_in.at(b, ch, i, j) =
              gamma * inv_std / count * (count * g - sum_g - xh * sum_gx);
        }
  }
  return grad_in;
}

// ---------------------------------------------------------------- Flatten

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  in_shape_ = x.shape();
  const int n = x.dim(0);
  return x.reshaped({n, static_cast<int>(x.size()) / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

}  // namespace geo::nn
