#include "nn/network.hpp"

#include <cstdint>
#include <fstream>

namespace geo::nn {

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad) {
  Tensor g = grad;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
  return g;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> out;
  for (auto& l : layers_)
    for (Param* p : l->params()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::state() {
  std::vector<Tensor*> out;
  for (auto& l : layers_)
    for (Tensor* t : l->state()) out.push_back(t);
  return out;
}

void Sequential::zero_grad() {
  for (Param* p : params()) p->grad.fill(0.0f);
}

namespace {
constexpr std::uint32_t kMagic = 0x47454F4E;  // "GEON"
}

void Sequential::save(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  if (!f) return;
  auto* self = const_cast<Sequential*>(this);
  std::vector<const Tensor*> tensors;
  for (const Param* p : self->params()) tensors.push_back(&p->value);
  for (const Tensor* t : self->state()) tensors.push_back(t);
  f.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const auto count = static_cast<std::uint32_t>(tensors.size());
  f.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const Tensor* t : tensors) {
    const auto n = static_cast<std::uint64_t>(t->size());
    f.write(reinterpret_cast<const char*>(&n), sizeof(n));
    f.write(reinterpret_cast<const char*>(t->data().data()),
            static_cast<std::streamsize>(n * sizeof(float)));
  }
}

bool Sequential::load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::uint32_t magic = 0, count = 0;
  f.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  f.read(reinterpret_cast<char*>(&count), sizeof(count));
  std::vector<Tensor*> tensors;
  for (Param* p : params()) tensors.push_back(&p->value);
  for (Tensor* t : state()) tensors.push_back(t);
  if (!f || magic != kMagic || count != tensors.size()) return false;
  for (Tensor* t : tensors) {
    std::uint64_t n = 0;
    f.read(reinterpret_cast<char*>(&n), sizeof(n));
    if (!f || n != t->size()) return false;
    f.read(reinterpret_cast<char*>(t->data().data()),
           static_cast<std::streamsize>(n * sizeof(float)));
    if (!f) return false;
  }
  return true;
}

std::size_t Sequential::parameter_count() const {
  std::size_t n = 0;
  auto* self = const_cast<Sequential*>(this);
  for (const Param* p : self->params()) n += p->value.size();
  return n;
}

}  // namespace geo::nn
