// Minimal dense float tensor (NCHW convention for 4-D data).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace geo::nn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape, float fill = 0.0f);

  static Tensor zeros_like(const Tensor& other) {
    return Tensor(other.shape_);
  }

  const std::vector<int>& shape() const noexcept { return shape_; }
  int rank() const noexcept { return static_cast<int>(shape_.size()); }
  int dim(int i) const;
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  // 2-D accessor (rank must be 2).
  float& at(int i, int j);
  float at(int i, int j) const;

  // 4-D NCHW accessor (rank must be 4).
  float& at(int n, int c, int h, int w);
  float at(int n, int c, int h, int w) const;

  // Flat index of an NCHW coordinate.
  std::size_t index(int n, int c, int h, int w) const;

  void fill(float v);

  // Returns a tensor with the same data and a new shape of equal size.
  Tensor reshaped(std::vector<int> shape) const;

  // Slice of the batch dimension: items [begin, end) of a rank>=1 tensor.
  Tensor batch_slice(int begin, int end) const;

  float max_abs() const noexcept;

  std::string shape_string() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

}  // namespace geo::nn
