// Configuration of the simulated compute mode for model building.
#pragma once

#include <cstdint>
#include <string>

#include "sc/rng_source.hpp"
#include "sc/seed_sharing.hpp"

namespace geo::nn {

// Where SC accumulation hands over to fixed point (Sec. III-B).
enum class AccumMode {
  kOr,    // all-OR accumulation (ACOUSTIC-style, fully stochastic)
  kPbw,   // fixed-point across the kernel W dimension, OR elsewhere (GEO)
  kPbhw,  // fixed-point across H and W, OR across Cin
  kFxp,   // every product converted and accumulated in fixed point
  kApc,   // approximate parallel counter [24] over all products
};

const char* to_string(AccumMode mode) noexcept;

struct ScModelConfig {
  enum class Mode { kFloat, kFixedPoint, kStochastic };

  // The paper: "While max pooling is possible, we use average pooling with
  // computation skipping to reduce stream length requirements". Average
  // pooling folds into the output converters' neighbor-add; max pooling
  // needs comparators and cannot skip computation, but is supported.
  enum class PoolMode { kAvg, kMax };

  Mode mode = Mode::kFloat;
  PoolMode pool = PoolMode::kAvg;

  // kFixedPoint: weight/activation precision (Eyeriss baselines: 8 or 4).
  unsigned fp_bits = 8;

  // kStochastic parameters.
  sc::RngKind rng = sc::RngKind::kLfsr;
  sc::Sharing sharing = sc::Sharing::kModerate;
  AccumMode accum = AccumMode::kPbw;
  int stream_len = 128;         // layers without pooling (s)
  int stream_len_pool = 128;    // layers with pooling (sp)
  int stream_len_output = 128;  // output layers always 128 (paper)
  bool progressive = false;
  unsigned value_bits = 8;  // stored fixed-point width of weights/activations
  int fc_group = 16;        // OR-group fan-in for fully-connected layers
  std::uint64_t seed = 1;   // base salt decorrelating layers

  // A config string usable as a cache key for trained models.
  std::string key() const;

  static ScModelConfig float_model() { return {}; }

  static ScModelConfig fixed_point(unsigned bits) {
    ScModelConfig c;
    c.mode = Mode::kFixedPoint;
    c.fp_bits = bits;
    return c;
  }

  static ScModelConfig stochastic(int stream_len_pool, int stream_len) {
    ScModelConfig c;
    c.mode = Mode::kStochastic;
    c.stream_len_pool = stream_len_pool;
    c.stream_len = stream_len;
    return c;
  }
};

}  // namespace geo::nn
