#include "nn/optimizer.hpp"

#include <algorithm>
#include <cmath>

namespace geo::nn {

void Optimizer::apply_clamp() {
  if (!clamp_) return;
  for (Param* p : params_)
    for (auto& w : p->value.data()) w = std::clamp(w, clamp_lo_, clamp_hi_);
}

Sgd::Sgd(std::vector<Param*> params, float lr, float momentum)
    : Optimizer(std::move(params)), lr_(lr), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const Param* p : params_)
    velocity_.emplace_back(p->value.size(), 0.0f);
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto& vel = velocity_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      vel[j] = momentum_ * vel[j] + p.grad[j];
      p.value[j] -= lr_ * vel[j];
    }
  }
  apply_clamp();
}

Adam::Adam(std::vector<Param*> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Param* p : params_) {
    m_.emplace_back(p->value.size(), 0.0f);
    v_.emplace_back(p->value.size(), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param& p = *params_[i];
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t j = 0; j < p.value.size(); ++j) {
      const float g = p.grad[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * g;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * g * g;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      p.value[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
  apply_clamp();
}

geo::Status Adam::restore_state(AdamState state) {
  if (state.t < 0)
    return geo::Status::invalid_argument("Adam state: negative step count");
  if (state.m.size() != params_.size() || state.v.size() != params_.size())
    return geo::Status::invalid_argument(
        "Adam state: " + std::to_string(state.m.size()) + "/" +
        std::to_string(state.v.size()) + " moment vectors for " +
        std::to_string(params_.size()) + " params");
  for (std::size_t i = 0; i < params_.size(); ++i)
    if (state.m[i].size() != params_[i]->value.size() ||
        state.v[i].size() != params_[i]->value.size())
      return geo::Status::invalid_argument(
          "Adam state: moment " + std::to_string(i) + " size mismatch");
  t_ = state.t;
  m_ = std::move(state.m);
  v_ = std::move(state.v);
  return geo::Status();
}

}  // namespace geo::nn
