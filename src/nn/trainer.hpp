// Stream-aware training loop (Sec. II-A / IV): the forward pass runs in the
// configured compute mode (float, fixed-point, or bit-level SC), while
// backpropagation uses floating-point gradients through the same layers —
// exactly the paper's training scheme, with epoch counts scaled to this
// machine (see DESIGN.md "Substitutions").
#pragma once

#include <cstdint>
#include <string>

#include "nn/dataset.hpp"
#include "nn/network.hpp"

namespace geo::nn {

struct TrainOptions {
  int epochs = 12;
  int batch_size = 32;
  float lr = 2e-3f;  // paper: ADAM, initial LR 2e-3
  std::uint32_t shuffle_seed = 7;
  bool clamp_weights = true;  // keep weights in the SC value domain
  float clamp_limit = 1.0f;   // clamp range; SC modes train best tighter
  bool verbose = false;

  // Optional directory for trained-parameter caching; empty disables.
  // Cache key must uniquely identify (model, dataset, config, options).
  std::string cache_dir;
  std::string cache_key;

  // Crash-safe epoch checkpointing (docs/RESILIENCE.md). Directory for the
  // snapshots; empty falls back to GEO_CHECKPOINT_DIR (and unset disables
  // checkpointing entirely). A snapshot is written atomically after every
  // `checkpoint_every`-th epoch under `<dir>/<checkpoint_key>.ckpt`; on the
  // next run a valid snapshot resumes training from the epoch after it, and
  // the resumed run's final weights are bit-identical to an uninterrupted
  // one (same GEO_SEED, same options). A corrupt / truncated /
  // foreign-version snapshot is rejected (with a stderr warning) and
  // training restarts from scratch — it is never partially applied.
  std::string checkpoint_dir;
  std::string checkpoint_key = "train";
  int checkpoint_every = 1;
};

struct TrainResult {
  double final_train_accuracy = 0.0;
  double test_accuracy = 0.0;
  bool from_cache = false;
  // Epoch index the run resumed from (-1 = started from scratch) and the
  // number of snapshots this run wrote.
  int resumed_from_epoch = -1;
  int checkpoints_written = 0;
};

// Trains `net` on `train` and evaluates on `test`. If a usable cache entry
// exists the training loop is skipped and only the evaluation runs.
TrainResult train(Sequential& net, const Dataset& train_set,
                  const Dataset& test_set, const TrainOptions& options);

// Accuracy of `net` on `data` (inference mode), in [0, 1].
double evaluate(Sequential& net, const Dataset& data, int batch_size = 64);

}  // namespace geo::nn
