// Stream-aware training loop (Sec. II-A / IV): the forward pass runs in the
// configured compute mode (float, fixed-point, or bit-level SC), while
// backpropagation uses floating-point gradients through the same layers —
// exactly the paper's training scheme, with epoch counts scaled to this
// machine (see DESIGN.md "Substitutions").
#pragma once

#include <cstdint>
#include <string>

#include "nn/dataset.hpp"
#include "nn/network.hpp"

namespace geo::nn {

struct TrainOptions {
  int epochs = 12;
  int batch_size = 32;
  float lr = 2e-3f;  // paper: ADAM, initial LR 2e-3
  std::uint32_t shuffle_seed = 7;
  bool clamp_weights = true;  // keep weights in the SC value domain
  float clamp_limit = 1.0f;   // clamp range; SC modes train best tighter
  bool verbose = false;

  // Optional directory for trained-parameter caching; empty disables.
  // Cache key must uniquely identify (model, dataset, config, options).
  std::string cache_dir;
  std::string cache_key;
};

struct TrainResult {
  double final_train_accuracy = 0.0;
  double test_accuracy = 0.0;
  bool from_cache = false;
};

// Trains `net` on `train` and evaluates on `test`. If a usable cache entry
// exists the training loop is skipped and only the evaluation runs.
TrainResult train(Sequential& net, const Dataset& train_set,
                  const Dataset& test_set, const TrainOptions& options);

// Accuracy of `net` on `data` (inference mode), in [0, 1].
double evaluate(Sequential& net, const Dataset& data, int batch_size = 64);

}  // namespace geo::nn
