#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace geo::nn {

namespace {

constexpr int kSize = 12;  // all synthetic sets are 12x12

// Classic 5x7 digit font, one row per string.
constexpr const char* kGlyphs[10][7] = {
    {"01110", "10001", "10011", "10101", "11001", "10001", "01110"},  // 0
    {"00100", "01100", "00100", "00100", "00100", "00100", "01110"},  // 1
    {"01110", "10001", "00001", "00010", "00100", "01000", "11111"},  // 2
    {"11111", "00010", "00100", "00010", "00001", "10001", "01110"},  // 3
    {"00010", "00110", "01010", "10010", "11111", "00010", "00010"},  // 4
    {"11111", "10000", "11110", "00001", "00001", "10001", "01110"},  // 5
    {"00110", "01000", "10000", "11110", "10001", "10001", "01110"},  // 6
    {"11111", "00001", "00010", "00100", "01000", "01000", "01000"},  // 7
    {"01110", "10001", "10001", "01110", "10001", "10001", "01110"},  // 8
    {"01110", "10001", "10001", "01111", "00001", "00010", "01100"},  // 9
};

void add_noise(Tensor& images, float sigma, std::mt19937& rng) {
  std::normal_distribution<float> noise(0.0f, sigma);
  for (auto& v : images.data()) v = std::clamp(v + noise(rng), 0.0f, 1.0f);
}

void stamp_glyph(Tensor& images, int n, int channel, int digit, int oy,
                 int ox, float intensity) {
  for (int gy = 0; gy < 7; ++gy)
    for (int gx = 0; gx < 5; ++gx) {
      if (kGlyphs[digit][gy][gx] != '1') continue;
      const int y = oy + gy, x = ox + gx;
      if (y < 0 || y >= kSize || x < 0 || x >= kSize) continue;
      float& px = images.at(n, channel, y, x);
      px = std::min(1.0f, px + intensity);
    }
}

}  // namespace

Dataset make_digits(int count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  Dataset d;
  d.name = "digits";
  d.images = Tensor({count, 1, kSize, kSize});
  d.labels.resize(static_cast<std::size_t>(count));
  std::uniform_int_distribution<int> digit(0, 9);
  // +/-1 jitter around center: enough variation to prevent pixel lookup,
  // small enough that laptop-scale training sets generalize.
  std::uniform_int_distribution<int> off_y(1, 3);
  std::uniform_int_distribution<int> off_x(2, 4);
  std::uniform_real_distribution<float> inten(0.7f, 1.0f);
  for (int n = 0; n < count; ++n) {
    const int label = digit(rng);
    d.labels[static_cast<std::size_t>(n)] = label;
    stamp_glyph(d.images, n, 0, label, off_y(rng), off_x(rng), inten(rng));
  }
  add_noise(d.images, 0.08f, rng);
  return d;
}

Dataset make_svhn_syn(int count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  Dataset d;
  d.name = "svhn_syn";
  d.images = Tensor({count, 3, kSize, kSize});
  d.labels.resize(static_cast<std::size_t>(count));
  std::uniform_int_distribution<int> digit(0, 9);
  std::uniform_int_distribution<int> off_y(1, 3);
  std::uniform_int_distribution<int> off_x(2, 4);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  for (int n = 0; n < count; ++n) {
    // Cluttered background: smooth gradient plus random blobs.
    const float gx = unit(rng) * 0.3f, gy = unit(rng) * 0.3f;
    const float base[3] = {unit(rng) * 0.35f, unit(rng) * 0.35f,
                           unit(rng) * 0.35f};
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < kSize; ++y)
        for (int x = 0; x < kSize; ++x)
          d.images.at(n, c, y, x) = base[c] + gx * x / kSize + gy * y / kSize;
    const int blobs = 1 + static_cast<int>(unit(rng) * 2);
    for (int bidx = 0; bidx < blobs; ++bidx) {
      const int by = static_cast<int>(unit(rng) * kSize);
      const int bx = static_cast<int>(unit(rng) * kSize);
      const float amp = unit(rng) * 0.22f;
      const int c = static_cast<int>(unit(rng) * 3);
      for (int y = std::max(0, by - 2); y < std::min(kSize, by + 2); ++y)
        for (int x = std::max(0, bx - 2); x < std::min(kSize, bx + 2); ++x)
          d.images.at(n, c, y, x) =
              std::min(1.0f, d.images.at(n, c, y, x) + amp);
    }
    // Foreground digit in a random (bright-ish) color.
    const int label = digit(rng);
    d.labels[static_cast<std::size_t>(n)] = label;
    const int oy = off_y(rng), ox = off_x(rng);
    for (int c = 0; c < 3; ++c) {
      const float inten = 0.60f + 0.40f * unit(rng);
      stamp_glyph(d.images, n, c, label, oy, ox, inten);
    }
  }
  add_noise(d.images, 0.08f, rng);
  return d;
}

Dataset make_cifar_syn(int count, std::uint32_t seed) {
  std::mt19937 rng(seed);
  Dataset d;
  d.name = "cifar_syn";
  d.images = Tensor({count, 3, kSize, kSize});
  d.labels.resize(static_cast<std::size_t>(count));
  std::uniform_int_distribution<int> cls(0, 9);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  std::uniform_int_distribution<int> jitter(-1, 1);
  for (int n = 0; n < count; ++n) {
    const int label = cls(rng);
    d.labels[static_cast<std::size_t>(n)] = label;
    const float fg[3] = {0.4f + 0.6f * unit(rng), 0.4f + 0.6f * unit(rng),
                         0.4f + 0.6f * unit(rng)};
    const float bg = unit(rng) * 0.3f;
    const int cy = kSize / 2 + jitter(rng), cx = kSize / 2 + jitter(rng);
    const float r1 = 2.5f + unit(rng) * 1.5f;
    for (int c = 0; c < 3; ++c)
      for (int y = 0; y < kSize; ++y)
        for (int x = 0; x < kSize; ++x) {
          const float dy = static_cast<float>(y - cy);
          const float dx = static_cast<float>(x - cx);
          const float r = std::sqrt(dy * dy + dx * dx);
          bool on = false;
          switch (label) {
            case 0: on = r < r1; break;                           // disk
            case 1: on = r < r1 + 1.2f && r > r1 - 1.2f; break;   // ring
            case 2:                                               // cross
              on = std::abs(dy) < 1.3f || std::abs(dx) < 1.3f;
              break;
            case 3: on = dy > 0 && std::abs(dx) < dy; break;      // triangle
            case 4: on = (y / 2) % 2 == 0; break;                 // h-stripes
            case 5: on = (x / 2) % 2 == 0; break;                 // v-stripes
            case 6: on = ((x + y) / 2) % 2 == 0; break;           // diagonal
            case 7: on = ((x / 2) + (y / 2)) % 2 == 0; break;     // checker
            case 8:                                               // square
              on = std::abs(dy) < r1 * 0.8f && std::abs(dx) < r1 * 0.8f;
              break;
            case 9:                                               // corners
              on = (y < 4 || y >= kSize - 4) && (x < 4 || x >= kSize - 4);
              break;
          }
          d.images.at(n, c, y, x) = on ? fg[c] : bg;
        }
  }
  add_noise(d.images, 0.14f, rng);
  return d;
}

Dataset make_dataset(const std::string& name, int count, std::uint32_t seed) {
  if (name == "digits") return make_digits(count, seed);
  if (name == "svhn") return make_svhn_syn(count, seed);
  if (name == "cifar") return make_cifar_syn(count, seed);
  throw std::invalid_argument("make_dataset: unknown dataset " + name);
}

}  // namespace geo::nn
