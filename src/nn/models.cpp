#include "nn/models.hpp"

#include <random>
#include <stdexcept>

#include "nn/sc_layers.hpp"

namespace geo::nn {

namespace {

// Helper that appends a conv of the right compute mode, followed by optional
// pooling, then BN and bounded ReLU (the paper places pooling before BN and
// activation on pooled layers, so BN sees pooled values — Sec. III-B).
struct Builder {
  Sequential& net;
  const ScModelConfig& cfg;
  std::mt19937 rng;
  int layer_index = 0;

  Builder(Sequential& net, const ScModelConfig& cfg, std::uint32_t seed)
      : net(net), cfg(cfg), rng(seed) {}

  void conv_block(int in_ch, int out_ch, int kernel, int pad, bool pool) {
    const int stream = pool ? cfg.stream_len_pool : cfg.stream_len;
    switch (cfg.mode) {
      case ScModelConfig::Mode::kFloat:
        net.add<Conv2d>(in_ch, out_ch, kernel, 1, pad, rng);
        break;
      case ScModelConfig::Mode::kFixedPoint:
        net.add<QuantConv2d>(in_ch, out_ch, kernel, 1, pad, rng, cfg.fp_bits);
        break;
      case ScModelConfig::Mode::kStochastic:
        net.add<ScConv2d>(in_ch, out_ch, kernel, 1, pad, rng,
                          ScLayerConfig::from_model(cfg, stream, layer_index));
        break;
    }
    ++layer_index;
    if (pool) {
      if (cfg.pool == ScModelConfig::PoolMode::kMax)
        net.add<MaxPool2d>(2);
      else
        net.add<AvgPool2d>(2);
    }
    auto& bn = net.add<BatchNorm2d>(out_ch);
    if (cfg.mode == ScModelConfig::Mode::kStochastic) bn.set_quantized(8);
    net.add<BoundedReLU>();
  }

  // `output` marks the final classifier layer (always 128-bit streams).
  void fc(int in, int out, bool output) {
    const int stream = output ? cfg.stream_len_output : cfg.stream_len;
    switch (cfg.mode) {
      case ScModelConfig::Mode::kFloat:
        net.add<Linear>(in, out, rng);
        break;
      case ScModelConfig::Mode::kFixedPoint:
        net.add<QuantLinear>(in, out, rng, cfg.fp_bits);
        break;
      case ScModelConfig::Mode::kStochastic:
        net.add<ScLinear>(in, out, rng,
                          ScLayerConfig::from_model(cfg, stream, layer_index));
        break;
    }
    ++layer_index;
    if (!output) net.add<BoundedReLU>();
  }
};

}  // namespace

Sequential make_cnn4(int in_channels, int num_classes,
                     const ScModelConfig& cfg, std::uint32_t init_seed) {
  Sequential net;
  Builder b(net, cfg, init_seed);
  b.conv_block(in_channels, 8, 3, 1, /*pool=*/true);   // 12 -> 6
  b.conv_block(8, 16, 3, 1, /*pool=*/true);            // 6 -> 3
  b.conv_block(16, 32, 3, 1, /*pool=*/false);          // 3 -> 3
  net.add<Flatten>();
  b.fc(32 * 3 * 3, num_classes, /*output=*/true);
  return net;
}

Sequential make_lenet5(int in_channels, int num_classes,
                       const ScModelConfig& cfg, std::uint32_t init_seed) {
  Sequential net;
  Builder b(net, cfg, init_seed);
  b.conv_block(in_channels, 6, 5, 2, /*pool=*/true);   // 12 -> 6
  b.conv_block(6, 16, 3, 1, /*pool=*/true);            // 6 -> 3
  net.add<Flatten>();
  b.fc(16 * 3 * 3, 32, /*output=*/false);
  b.fc(32, num_classes, /*output=*/true);
  return net;
}

Sequential make_vgg_slim(int in_channels, int num_classes,
                         const ScModelConfig& cfg, std::uint32_t init_seed) {
  Sequential net;
  Builder b(net, cfg, init_seed);
  b.conv_block(in_channels, 8, 3, 1, /*pool=*/false);
  b.conv_block(8, 8, 3, 1, /*pool=*/true);             // 12 -> 6
  b.conv_block(8, 16, 3, 1, /*pool=*/false);
  b.conv_block(16, 16, 3, 1, /*pool=*/true);           // 6 -> 3
  b.conv_block(16, 32, 3, 1, /*pool=*/false);
  b.conv_block(32, 32, 3, 1, /*pool=*/false);
  net.add<Flatten>();
  b.fc(32 * 3 * 3, 64, /*output=*/false);
  b.fc(64, num_classes, /*output=*/true);
  return net;
}

Sequential make_model(const std::string& name, int in_channels,
                      int num_classes, const ScModelConfig& cfg,
                      std::uint32_t init_seed) {
  if (name == "cnn4") return make_cnn4(in_channels, num_classes, cfg, init_seed);
  if (name == "lenet5")
    return make_lenet5(in_channels, num_classes, cfg, init_seed);
  if (name == "vgg") return make_vgg_slim(in_channels, num_classes, cfg, init_seed);
  throw std::invalid_argument("make_model: unknown model " + name);
}

}  // namespace geo::nn
