// Sequential network container with parameter (de)serialization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"

namespace geo::nn {

class Sequential {
 public:
  Sequential() = default;

  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }

  void append(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor forward(const Tensor& x, bool train);

  // Backpropagates d(loss)/d(logits); returns d(loss)/d(input).
  Tensor backward(const Tensor& grad);

  std::vector<Param*> params();

  // Non-trainable model state (BatchNorm running statistics, ...).
  std::vector<Tensor*> state();

  void zero_grad();

  std::size_t layer_count() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  // Binary parameter serialization (values only, shapes must match).
  void save(const std::string& path) const;
  bool load(const std::string& path);  // false if missing/incompatible

  // Total number of trainable scalars.
  std::size_t parameter_count() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace geo::nn
