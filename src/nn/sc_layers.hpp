// Bit-accurate SC-simulated convolution and fully-connected layers, plus the
// fixed-point (fake-quantized) variants used by the Eyeriss baselines.
//
// The SC layers implement the paper's forward pass exactly at stream level:
// split-unipolar streams from shared LFSR/TRNG SNGs (Sec. II-A), optional
// progressive generation (Sec. II-B), and OR / partial-binary / fixed-point
// accumulation (Sec. III-B). backward() is inherited from the float layers —
// SC forward guided by floating-point backpropagation, as in the paper.
//
// Activations are unipolar (post-ReLU values in [0, 1]); weights are signed,
// so each weight carries a positive or a negative channel stream and every
// product needs two ANDs. Per-channel accumulation runs over packed 64-bit
// words.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nn/layers.hpp"
#include "nn/sc_config.hpp"

namespace geo::nn {

// Per-layer slice of ScModelConfig (the {sp, s} stream-length choice has
// already been made by the model builder).
struct ScLayerConfig {
  sc::RngKind rng = sc::RngKind::kLfsr;
  sc::Sharing sharing = sc::Sharing::kModerate;
  AccumMode accum = AccumMode::kPbw;
  int stream_len = 128;
  unsigned value_bits = 8;
  bool progressive = false;
  std::uint64_t layer_salt = 0;
  int fc_group = 16;

  // GEO matches LFSR width to stream length: streams of 2^n use n bits.
  unsigned lfsr_bits() const;

  // Builds the per-layer config from a model config.
  static ScLayerConfig from_model(const ScModelConfig& model, int stream_len,
                                  int layer_index);
};

// Bit-exact fixed-point reference for one convolution layer: quantizes the
// operands exactly like the SC stream generators (|w| and a to `value_bits`
// unsigned codes) and returns the pos-neg counter totals an ideal noise-free
// stream computation of length `stream_len` converges to. This is the bottom
// rung of the resilience degradation ladder (docs/RESILIENCE.md): a layer
// whose SC execution cannot pass its detection guards is recomputed here,
// deterministically and independent of any fault injection.
//   weights (cout, cin, kh, kw) in [-1, 1];  input (cin, hin, win) in [0, 1]
// Returns (cout, hout, wout) counters, hout/wout derived from stride/pad.
std::vector<std::int32_t> fxp_reference_counters(
    int cin, int hin, int win, int cout, int kh, int kw, int stride, int pad,
    std::span<const float> weights, std::span<const float> input,
    unsigned value_bits, int stream_len);

class ScConv2d : public Conv2d {
 public:
  ScConv2d(int in_ch, int out_ch, int kernel, int stride, int pad,
           std::mt19937& rng, const ScLayerConfig& cfg);

  Tensor forward(const Tensor& x, bool train) override;

  // Straight-through backward, scaled per output by the OR-union
  // attenuation observed in the forward pass: for y = 1 - prod(1 - p_i),
  // dy/dp_i = prod_{j!=i}(1 - p_j) ~ (1 - y). Without this, saturated
  // unions receive gradients as if they were linear sums and all-OR
  // training diverges; with it, the backward is the "floating-point guided"
  // pass of Sec. IV. Partial-binary groups saturate less, so their
  // attenuation stays near 1 — one mechanical reason GEO trains better
  // than all-OR accumulation.
  Tensor backward(const Tensor& grad_out) override;

  std::string name() const override { return "sc_conv2d"; }

  const ScLayerConfig& config() const noexcept { return cfg_; }
  ScLayerConfig& config() noexcept { return cfg_; }

 private:
  ScLayerConfig cfg_;
  std::uint64_t forward_count_ = 0;
  Tensor atten_;  // per-output gradient attenuation, shaped like the output
};

class ScLinear : public Linear {
 public:
  ScLinear(int in_features, int out_features, std::mt19937& rng,
           const ScLayerConfig& cfg);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;  // see ScConv2d
  std::string name() const override { return "sc_linear"; }

  const ScLayerConfig& config() const noexcept { return cfg_; }
  ScLayerConfig& config() noexcept { return cfg_; }

 private:
  ScLayerConfig cfg_;
  std::uint64_t forward_count_ = 0;
  Tensor atten_;
};

// Fixed-point baseline layers: fake-quantize weights (signed) and input
// activations (unsigned) to `bits` bits in the forward pass,
// straight-through gradients in backward.
class QuantConv2d : public Conv2d {
 public:
  QuantConv2d(int in_ch, int out_ch, int kernel, int stride, int pad,
              std::mt19937& rng, unsigned bits)
      : Conv2d(in_ch, out_ch, kernel, stride, pad, rng), bits_(bits) {}

  Tensor forward(const Tensor& x, bool train) override;
  std::string name() const override { return "quant_conv2d"; }

 private:
  unsigned bits_;
};

class QuantLinear : public Linear {
 public:
  QuantLinear(int in_features, int out_features, std::mt19937& rng,
              unsigned bits)
      : Linear(in_features, out_features, rng), bits_(bits) {}

  Tensor forward(const Tensor& x, bool train) override;
  std::string name() const override { return "quant_linear"; }

 private:
  unsigned bits_;
};

}  // namespace geo::nn
