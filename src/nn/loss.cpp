#include "nn/loss.hpp"

#include <cmath>
#include <stdexcept>

namespace geo::nn {

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels) {
  const int n = logits.dim(0);
  const int classes = logits.dim(1);
  if (static_cast<std::size_t>(n) != labels.size())
    throw std::invalid_argument("softmax_cross_entropy: batch mismatch");
  LossResult out;
  out.grad = Tensor({n, classes});
  for (int b = 0; b < n; ++b) {
    float maxv = logits.at(b, 0);
    int argmax = 0;
    for (int c = 1; c < classes; ++c)
      if (logits.at(b, c) > maxv) {
        maxv = logits.at(b, c);
        argmax = c;
      }
    if (argmax == labels[static_cast<std::size_t>(b)]) ++out.correct;
    double denom = 0.0;
    for (int c = 0; c < classes; ++c)
      denom += std::exp(static_cast<double>(logits.at(b, c) - maxv));
    const int y = labels[static_cast<std::size_t>(b)];
    const double logp =
        static_cast<double>(logits.at(b, y) - maxv) - std::log(denom);
    out.loss -= logp;
    for (int c = 0; c < classes; ++c) {
      const double p =
          std::exp(static_cast<double>(logits.at(b, c) - maxv)) / denom;
      out.grad.at(b, c) =
          static_cast<float>((p - (c == y ? 1.0 : 0.0)) / n);
    }
  }
  out.loss /= n;
  return out;
}

int count_correct(const Tensor& logits, std::span<const int> labels) {
  const int n = logits.dim(0);
  const int classes = logits.dim(1);
  int correct = 0;
  for (int b = 0; b < n; ++b) {
    int argmax = 0;
    for (int c = 1; c < classes; ++c)
      if (logits.at(b, c) > logits.at(b, argmax)) argmax = c;
    if (argmax == labels[static_cast<std::size_t>(b)]) ++correct;
  }
  return correct;
}

}  // namespace geo::nn
