#include "nn/sc_layers.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "fault/fault_model.hpp"
#include "nn/quantize.hpp"
#include "sc/progressive.hpp"
#include "sc/sng.hpp"
#include "sc/stream_table.hpp"

namespace geo::nn {

const char* to_string(AccumMode mode) noexcept {
  switch (mode) {
    case AccumMode::kOr: return "or";
    case AccumMode::kPbw: return "pbw";
    case AccumMode::kPbhw: return "pbhw";
    case AccumMode::kFxp: return "fxp";
    case AccumMode::kApc: return "apc";
  }
  return "?";
}

std::string ScModelConfig::key() const {
  switch (mode) {
    case Mode::kFloat: return "float";
    case Mode::kFixedPoint: return "fxp" + std::to_string(fp_bits);
    case Mode::kStochastic:
      return std::string("sc_") + sc::to_string(rng) + "_" +
             sc::to_string(sharing) + "_" + to_string(accum) + "_" +
             std::to_string(stream_len_pool) + "-" +
             std::to_string(stream_len) +
             (progressive ? "_prog" : "") + "_s" + std::to_string(seed);
  }
  return "?";
}

unsigned ScLayerConfig::lfsr_bits() const {
  unsigned n = 0;
  int l = stream_len;
  while (l > 1) {
    l >>= 1;
    ++n;
  }
  if ((1 << n) != stream_len)
    throw std::invalid_argument("ScLayerConfig: stream_len must be 2^n");
  return n;
}

ScLayerConfig ScLayerConfig::from_model(const ScModelConfig& model,
                                        int stream_len, int layer_index) {
  ScLayerConfig cfg;
  cfg.rng = model.rng;
  cfg.sharing = model.sharing;
  cfg.accum = model.accum;
  cfg.stream_len = stream_len;
  cfg.value_bits = model.value_bits;
  cfg.progressive = model.progressive;
  cfg.layer_salt = model.seed * 1000003ull + static_cast<std::uint64_t>(layer_index);
  cfg.fc_group = model.fc_group;
  return cfg;
}

namespace {

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::size_t popcount_words(const std::uint64_t* w, std::size_t n) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < n; ++i)
    c += static_cast<std::size_t>(std::popcount(w[i]));
  return c;
}

// Flat storage for many equal-length packed streams.
struct StreamBank {
  std::vector<std::uint64_t> words;
  std::size_t wpl = 1;  // words per stream

  void resize(std::size_t count, std::size_t words_per_stream) {
    wpl = words_per_stream;
    words.assign(count * wpl, 0);
  }

  std::uint64_t* at(std::size_t i) { return &words[i * wpl]; }
  const std::uint64_t* at(std::size_t i) const { return &words[i * wpl]; }
};

// Generates one stream into `dst` (wpl words, length bits). `q` is the
// magnitude in the value_bits fixed-point domain. `fm` may be null; the
// (domain, site) pair matches the GeoMachine injection sites exactly so the
// bit-exactness contract holds with faults enabled too — the spec is
// corrupted before the stream-table cache is keyed, so corrupted seeds get
// their own (equally corrupted) tables. `use_table` routes through the
// shared-sequence cache; off, the thread's reusable generator ticks
// bit-serially. Both paths are bit-identical.
void generate_stream(std::uint64_t* dst, std::size_t wpl, std::size_t length,
                     const ScLayerConfig& cfg, sc::SeedSpec spec,
                     std::uint32_t q, fault::FaultModel* fm,
                     fault::FaultModel::Site domain, std::uint64_t site,
                     bool use_table) {
  std::fill(dst, dst + wpl, 0);
  if (fm != nullptr) spec = fm->corrupt_seed(spec, site);
  if (q != 0) {
    const unsigned n = spec.bits;
    sc::StreamGenerator& gen = sc::StreamGenerator::local();
    if (cfg.progressive) {
      sc::ProgressiveSchedule sched;
      sched.value_bits = cfg.value_bits;
      sched.lfsr_bits = n;
      gen.generate_progressive(dst, wpl, length, cfg.rng, spec, sched, q,
                               use_table);
    } else {
      const std::uint32_t vn = n >= cfg.value_bits
                                   ? q << (n - cfg.value_bits)
                                   : q >> (cfg.value_bits - n);
      gen.generate(dst, wpl, length, cfg.rng, spec, vn, use_table);
    }
  }
  if (fm != nullptr) fm->corrupt_stream(dst, length, domain, site);
}

// For TRNGs, a fresh pass must see fresh randomness while preserving the
// sharing structure (equal base seeds stay equal). Deterministic sources
// ignore the pass counter.
sc::SeedSpec pass_spec(const ScLayerConfig& cfg, sc::SeedSpec spec,
                       std::uint64_t pass) {
  if (cfg.rng == sc::RngKind::kTrng)
    spec.seed = static_cast<std::uint32_t>(
        mix64(spec.seed ^ (pass * 0xD1B54A32D192ED03ull)) | 1u);
  return spec;
}

// Streaming APC state (modeled after [24]): products are consumed in pairs,
// merged with alternating OR / AND at weight 2, so the over-count of OR
// merges and the under-count of AND merges cancel in expectation; see
// sc/parallel_counter.hpp. The positive and negative channels pair
// independently (they feed separate counter inputs in hardware).
struct ApcState {
  explicit ApcState(std::size_t wpl)
      : channels_{Channel(wpl), Channel(wpl)} {}

  void push(const std::uint64_t* prod, std::size_t wpl, std::int64_t sign) {
    Channel& ch = channels_[sign > 0 ? 0 : 1];
    if (!ch.has_pending) {
      std::copy(prod, prod + wpl, ch.pending.begin());
      ch.has_pending = true;
      return;
    }
    std::int64_t merged = 0;
    for (std::size_t i = 0; i < wpl; ++i) {
      const std::uint64_t m = ch.use_or ? (ch.pending[i] | prod[i])
                                        : (ch.pending[i] & prod[i]);
      merged += std::popcount(m);
    }
    total_ += 2 * merged * sign;
    ch.has_pending = false;
    ch.use_or = !ch.use_or;
  }

  std::int64_t finish(std::size_t wpl) {
    const std::int64_t signs[2] = {+1, -1};
    for (int c = 0; c < 2; ++c) {
      Channel& ch = channels_[c];
      if (ch.has_pending) {
        total_ += signs[c] * static_cast<std::int64_t>(
                                 popcount_words(ch.pending.data(), wpl));
        ch.has_pending = false;
      }
    }
    return total_;
  }

 private:
  struct Channel {
    explicit Channel(std::size_t wpl) : pending(wpl, 0) {}
    std::vector<std::uint64_t> pending;
    bool has_pending = false;
    bool use_or = true;
  };
  Channel channels_[2];
  std::int64_t total_ = 0;
};

}  // namespace

// ------------------------------------------------------------- ScConv2d

ScConv2d::ScConv2d(int in_ch, int out_ch, int kernel, int stride, int pad,
                   std::mt19937& rng, const ScLayerConfig& cfg)
    : Conv2d(in_ch, out_ch, kernel, stride, pad, rng), cfg_(cfg) {}

Tensor ScConv2d::forward(const Tensor& x, bool /*train*/) {
  input_ = x;  // float input for the inherited backward
  const std::uint64_t pass = forward_count_++;

  const int L = cfg_.stream_len;
  const std::size_t wpl = static_cast<std::size_t>((L + 63) / 64);
  const unsigned n = cfg_.lfsr_bits();
  const sc::KernelExtents ext{out_ch_, in_ch_, kernel_, kernel_};
  const sc::SeedAllocator alloc(cfg_.sharing, n, ext, cfg_.layer_salt);

  fault::FaultModel* const fm = fault::active();
  const bool accum_faults = fm != nullptr && fm->accum_active();
  const bool stuck_faults = fm != nullptr && fm->stuck_enabled();
  const bool use_table = sc::stream_table_enabled();

  // --- weight streams (fixed for the whole batch) -----------------------
  const std::size_t wcount =
      static_cast<std::size_t>(out_ch_) * in_ch_ * kernel_ * kernel_;
  StreamBank wpos, wneg;
  wpos.resize(wcount, wpl);
  wneg.resize(wcount, wpl);
  {
    std::size_t idx = 0;
    for (int oc = 0; oc < out_ch_; ++oc)
      for (int ic = 0; ic < in_ch_; ++ic)
        for (int ky = 0; ky < kernel_; ++ky)
          for (int kx = 0; kx < kernel_; ++kx, ++idx) {
            const float w =
                std::clamp(weight_.value.at(oc, ic, ky, kx), -1.0f, 1.0f);
            std::uint32_t q =
                quantize_unsigned(std::abs(w), cfg_.value_bits);
            if (fm != nullptr)
              q = fm->sram_read(q, cfg_.value_bits,
                                fault::FaultModel::Site::kWeightSram, idx);
            const sc::SeedSpec spec =
                pass_spec(cfg_, alloc.weight({oc, ic, ky, kx}), pass);
            generate_stream((w >= 0.0f ? wpos : wneg).at(idx), wpl,
                            static_cast<std::size_t>(L), cfg_, spec, q, fm,
                            fault::FaultModel::Site::kWeightStream, idx,
                            use_table);
          }
  }

  const int h = x.dim(2), w = x.dim(3), nb = x.dim(0);
  const int ho = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const int wo = (w + 2 * pad_ - kernel_) / stride_ + 1;
  Tensor y({nb, out_ch_, ho, wo});
  atten_ = Tensor({nb, out_ch_, ho, wo}, 1.0f);

  // Group count per output for the partial-binary accumulation mode.
  int groups = 1;
  switch (cfg_.accum) {
    case AccumMode::kOr: groups = 1; break;
    case AccumMode::kPbw: groups = kernel_; break;
    case AccumMode::kPbhw: groups = kernel_ * kernel_; break;
    case AccumMode::kFxp:
    case AccumMode::kApc: groups = 0; break;  // no OR scratch needed
  }
  std::vector<std::uint64_t> scratch(
      static_cast<std::size_t>(std::max(groups, 1)) * 2 * wpl);
  std::vector<std::uint64_t> prod(2 * wpl);
  // Per-cycle pos/neg counts, needed only when a stuck parallel-counter
  // column is modeled on the direct (kFxp) accumulation path.
  std::vector<std::uint32_t> cyc;
  if (stuck_faults && cfg_.accum == AccumMode::kFxp)
    cyc.resize(2 * static_cast<std::size_t>(L));
  const int K = in_ch_ * kernel_ * kernel_;

  StreamBank act;
  act.resize(static_cast<std::size_t>(in_ch_) * h * w, wpl);
  const double inv_len = 1.0 / static_cast<double>(L);

  for (int b = 0; b < nb; ++b) {
    // --- activation streams for this image ------------------------------
    // Fault sites are the buffer slot indices (no batch term): the same
    // physical SNG buffer slot misbehaves identically for every image.
    {
      std::size_t idx = 0;
      for (int ic = 0; ic < in_ch_; ++ic)
        for (int iy = 0; iy < h; ++iy)
          for (int ix = 0; ix < w; ++ix, ++idx) {
            const float a = std::clamp(x.at(b, ic, iy, ix), 0.0f, 1.0f);
            std::uint32_t q = quantize_unsigned(a, cfg_.value_bits);
            if (fm != nullptr)
              q = fm->sram_read(q, cfg_.value_bits,
                                fault::FaultModel::Site::kActSram, idx);
            const sc::SeedSpec spec = pass_spec(
                cfg_, alloc.activation(static_cast<int>(idx)), pass);
            generate_stream(act.at(idx), wpl, static_cast<std::size_t>(L),
                            cfg_, spec, q, fm,
                            fault::FaultModel::Site::kActStream, idx,
                            use_table);
          }
    }

    // --- MAC rows --------------------------------------------------------
    for (int oc = 0; oc < out_ch_; ++oc)
      for (int oy = 0; oy < ho; ++oy)
        for (int ox = 0; ox < wo; ++ox) {
          std::int64_t total = 0;
          if (cfg_.accum == AccumMode::kOr || cfg_.accum == AccumMode::kPbw ||
              cfg_.accum == AccumMode::kPbhw) {
            std::fill(scratch.begin(), scratch.end(), 0);
            for (int ic = 0; ic < in_ch_; ++ic)
              for (int ky = 0; ky < kernel_; ++ky) {
                const int iy = oy * stride_ - pad_ + ky;
                if (iy < 0 || iy >= h) continue;
                for (int kx = 0; kx < kernel_; ++kx) {
                  const int ix = ox * stride_ - pad_ + kx;
                  if (ix < 0 || ix >= w) continue;
                  int g = 0;
                  if (cfg_.accum == AccumMode::kPbw)
                    g = kx;
                  else if (cfg_.accum == AccumMode::kPbhw)
                    g = ky * kernel_ + kx;
                  const std::uint64_t* a = act.at(
                      (static_cast<std::size_t>(ic) * h + iy) * w + ix);
                  const std::size_t widx =
                      ((static_cast<std::size_t>(oc) * in_ch_ + ic) *
                           kernel_ +
                       ky) *
                          kernel_ +
                      kx;
                  const std::uint64_t* wp = wpos.at(widx);
                  const std::uint64_t* wn = wneg.at(widx);
                  std::uint64_t* gp = &scratch[static_cast<std::size_t>(g) *
                                               2 * wpl];
                  std::uint64_t* gn = gp + wpl;
                  if (accum_faults) {
                    for (std::size_t k = 0; k < wpl; ++k) {
                      prod[k] = a[k] & wp[k];
                      prod[wpl + k] = a[k] & wn[k];
                    }
                    const std::size_t oidx =
                        (static_cast<std::size_t>(oc) * ho + oy) * wo + ox;
                    const std::uint64_t asite =
                        (static_cast<std::uint64_t>(oidx) * K +
                         (static_cast<std::uint64_t>(ic) * kernel_ + ky) *
                             kernel_ +
                         kx) *
                        2;
                    fm->corrupt_accum_input(prod.data(),
                                            static_cast<std::size_t>(L),
                                            asite);
                    fm->corrupt_accum_input(prod.data() + wpl,
                                            static_cast<std::size_t>(L),
                                            asite + 1);
                    for (std::size_t k = 0; k < wpl; ++k) {
                      gp[k] |= prod[k];
                      gn[k] |= prod[wpl + k];
                    }
                  } else {
                    for (std::size_t k = 0; k < wpl; ++k) {
                      gp[k] |= a[k] & wp[k];
                      gn[k] |= a[k] & wn[k];
                    }
                  }
                }
              }
            const int used = std::max(groups, 1);
            double atten = 0.0;
            for (int g = 0; g < used; ++g) {
              const std::uint64_t* gp =
                  &scratch[static_cast<std::size_t>(g) * 2 * wpl];
              const std::uint64_t* gn = gp + wpl;
              const auto pos =
                  static_cast<std::int64_t>(popcount_words(gp, wpl));
              const auto neg =
                  static_cast<std::int64_t>(popcount_words(gn, wpl));
              if (stuck_faults) {
                // Each group's OR output feeds a 1-bit/cycle counter; the
                // stuck column corrupts it cycle by cycle (matches the
                // GeoMachine path exactly).
                for (int t = 0; t < L; ++t) {
                  total += fm->apply_stuck(static_cast<std::uint32_t>(
                      (gp[t >> 6] >> (t & 63)) & 1u));
                  total -= fm->apply_stuck(static_cast<std::uint32_t>(
                      (gn[t >> 6] >> (t & 63)) & 1u));
                }
              } else {
                total += pos - neg;
              }
              atten += 1.0 - static_cast<double>(std::max(pos, neg)) * inv_len;
            }
            atten_.at(b, oc, oy, ox) = static_cast<float>(
                std::max(atten / used, 0.05));
          } else {
            ApcState apc(wpl);
            if (!cyc.empty()) std::fill(cyc.begin(), cyc.end(), 0);
            for (int ic = 0; ic < in_ch_; ++ic)
              for (int ky = 0; ky < kernel_; ++ky) {
                const int iy = oy * stride_ - pad_ + ky;
                if (iy < 0 || iy >= h) continue;
                for (int kx = 0; kx < kernel_; ++kx) {
                  const int ix = ox * stride_ - pad_ + kx;
                  if (ix < 0 || ix >= w) continue;
                  const std::uint64_t* a = act.at(
                      (static_cast<std::size_t>(ic) * h + iy) * w + ix);
                  const std::size_t widx =
                      ((static_cast<std::size_t>(oc) * in_ch_ + ic) *
                           kernel_ +
                       ky) *
                          kernel_ +
                      kx;
                  const std::uint64_t* wp = wpos.at(widx);
                  const std::uint64_t* wn = wneg.at(widx);
                  const bool need_prod = accum_faults || !cyc.empty() ||
                                         cfg_.accum == AccumMode::kApc;
                  if (need_prod) {
                    for (std::size_t k = 0; k < wpl; ++k) {
                      prod[k] = a[k] & wp[k];
                      prod[wpl + k] = a[k] & wn[k];
                    }
                    if (accum_faults) {
                      const std::size_t oidx =
                          (static_cast<std::size_t>(oc) * ho + oy) * wo + ox;
                      const std::uint64_t asite =
                          (static_cast<std::uint64_t>(oidx) * K +
                           (static_cast<std::uint64_t>(ic) * kernel_ + ky) *
                               kernel_ +
                           kx) *
                          2;
                      fm->corrupt_accum_input(prod.data(),
                                              static_cast<std::size_t>(L),
                                              asite);
                      fm->corrupt_accum_input(prod.data() + wpl,
                                              static_cast<std::size_t>(L),
                                              asite + 1);
                    }
                  }
                  if (cfg_.accum == AccumMode::kFxp) {
                    if (!cyc.empty()) {
                      for (std::size_t k = 0; k < wpl; ++k) {
                        std::uint64_t bp = prod[k];
                        while (bp != 0) {
                          ++cyc[k * 64 + static_cast<unsigned>(
                                             std::countr_zero(bp))];
                          bp &= bp - 1;
                        }
                        std::uint64_t bn = prod[wpl + k];
                        while (bn != 0) {
                          ++cyc[static_cast<std::size_t>(L) + k * 64 +
                                static_cast<unsigned>(std::countr_zero(bn))];
                          bn &= bn - 1;
                        }
                      }
                    } else if (need_prod) {
                      for (std::size_t k = 0; k < wpl; ++k) {
                        total += std::popcount(prod[k]);
                        total -= std::popcount(prod[wpl + k]);
                      }
                    } else {
                      for (std::size_t k = 0; k < wpl; ++k) {
                        total += std::popcount(a[k] & wp[k]);
                        total -= std::popcount(a[k] & wn[k]);
                      }
                    }
                  } else {  // kApc
                    bool has_p = false, has_n = false;
                    for (std::size_t k = 0; k < wpl; ++k) {
                      has_p |= prod[k] != 0;
                      has_n |= prod[wpl + k] != 0;
                    }
                    if (has_p) apc.push(prod.data(), wpl, +1);
                    if (has_n) apc.push(prod.data() + wpl, wpl, -1);
                  }
                }
              }
            if (cfg_.accum == AccumMode::kApc) total = apc.finish(wpl);
            if (!cyc.empty()) {
              for (int t = 0; t < L; ++t) {
                total += fm->apply_stuck(cyc[static_cast<std::size_t>(t)]);
                total -= fm->apply_stuck(
                    cyc[static_cast<std::size_t>(L) + t]);
              }
            }
          }
          y.at(b, oc, oy, ox) = static_cast<float>(total * inv_len);
        }
  }
  return y;
}

Tensor ScConv2d::backward(const Tensor& grad_out) {
  if (atten_.empty()) return Conv2d::backward(grad_out);
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= atten_[i];
  return Conv2d::backward(g);
}

// ------------------------------------------------------------- ScLinear

ScLinear::ScLinear(int in_features, int out_features, std::mt19937& rng,
                   const ScLayerConfig& cfg)
    : Linear(in_features, out_features, rng), cfg_(cfg) {}

Tensor ScLinear::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  const std::uint64_t pass = forward_count_++;

  const int L = cfg_.stream_len;
  const std::size_t wpl = static_cast<std::size_t>((L + 63) / 64);
  const unsigned n = cfg_.lfsr_bits();
  // An FC layer maps onto the MAC row as a (in, 1, 1) kernel per output.
  const sc::KernelExtents ext{out_, in_, 1, 1};
  const sc::SeedAllocator alloc(cfg_.sharing, n, ext, cfg_.layer_salt);

  fault::FaultModel* const fm = fault::active();
  const bool accum_faults = fm != nullptr && fm->accum_active();
  const bool stuck_faults = fm != nullptr && fm->stuck_enabled();
  const bool use_table = sc::stream_table_enabled();

  StreamBank wposb, wnegb;
  const std::size_t wcount = static_cast<std::size_t>(out_) * in_;
  wposb.resize(wcount, wpl);
  wnegb.resize(wcount, wpl);
  for (int o = 0; o < out_; ++o)
    for (int i = 0; i < in_; ++i) {
      const std::size_t idx = static_cast<std::size_t>(o) * in_ + i;
      const float w = std::clamp(weight_.value.at(o, i), -1.0f, 1.0f);
      std::uint32_t q = quantize_unsigned(std::abs(w), cfg_.value_bits);
      if (fm != nullptr)
        q = fm->sram_read(q, cfg_.value_bits,
                          fault::FaultModel::Site::kWeightSram, idx);
      const sc::SeedSpec spec = pass_spec(cfg_, alloc.weight({o, i, 0, 0}), pass);
      generate_stream((w >= 0.0f ? wposb : wnegb).at(idx), wpl,
                      static_cast<std::size_t>(L), cfg_, spec, q, fm,
                      fault::FaultModel::Site::kWeightStream, idx,
                      use_table);
    }

  const int nb = x.dim(0);
  Tensor y({nb, out_});
  atten_ = Tensor({nb, out_}, 1.0f);
  const int group_size =
      cfg_.accum == AccumMode::kOr ? in_ : std::max(cfg_.fc_group, 1);
  const int groups = (in_ + group_size - 1) / group_size;
  std::vector<std::uint64_t> scratch(static_cast<std::size_t>(groups) * 2 *
                                     wpl);
  std::vector<std::uint64_t> prod(2 * wpl);
  std::vector<std::uint32_t> cyc;
  if (stuck_faults && cfg_.accum == AccumMode::kFxp)
    cyc.resize(2 * static_cast<std::size_t>(L));
  StreamBank act;
  act.resize(static_cast<std::size_t>(in_), wpl);
  const double inv_len = 1.0 / static_cast<double>(L);

  for (int b = 0; b < nb; ++b) {
    for (int i = 0; i < in_; ++i) {
      const float a = std::clamp(x.at(b, i), 0.0f, 1.0f);
      std::uint32_t q = quantize_unsigned(a, cfg_.value_bits);
      if (fm != nullptr)
        q = fm->sram_read(q, cfg_.value_bits,
                          fault::FaultModel::Site::kActSram,
                          static_cast<std::uint64_t>(i));
      const sc::SeedSpec spec = pass_spec(cfg_, alloc.activation(i), pass);
      generate_stream(act.at(static_cast<std::size_t>(i)), wpl,
                      static_cast<std::size_t>(L), cfg_, spec, q, fm,
                      fault::FaultModel::Site::kActStream,
                      static_cast<std::uint64_t>(i), use_table);
    }
    for (int o = 0; o < out_; ++o) {
      std::int64_t total = 0;
      if (cfg_.accum == AccumMode::kFxp || cfg_.accum == AccumMode::kApc) {
        ApcState apc(wpl);
        if (!cyc.empty()) std::fill(cyc.begin(), cyc.end(), 0);
        for (int i = 0; i < in_; ++i) {
          const std::uint64_t* a = act.at(static_cast<std::size_t>(i));
          const std::size_t widx = static_cast<std::size_t>(o) * in_ + i;
          const std::uint64_t* wp = wposb.at(widx);
          const std::uint64_t* wn = wnegb.at(widx);
          const bool need_prod = accum_faults || !cyc.empty() ||
                                 cfg_.accum == AccumMode::kApc;
          if (need_prod) {
            for (std::size_t k = 0; k < wpl; ++k) {
              prod[k] = a[k] & wp[k];
              prod[wpl + k] = a[k] & wn[k];
            }
            if (accum_faults) {
              const std::uint64_t asite = static_cast<std::uint64_t>(widx) * 2;
              fm->corrupt_accum_input(prod.data(),
                                      static_cast<std::size_t>(L), asite);
              fm->corrupt_accum_input(prod.data() + wpl,
                                      static_cast<std::size_t>(L), asite + 1);
            }
          }
          if (cfg_.accum == AccumMode::kFxp) {
            if (!cyc.empty()) {
              for (std::size_t k = 0; k < wpl; ++k) {
                std::uint64_t bp = prod[k];
                while (bp != 0) {
                  ++cyc[k * 64 +
                        static_cast<unsigned>(std::countr_zero(bp))];
                  bp &= bp - 1;
                }
                std::uint64_t bn = prod[wpl + k];
                while (bn != 0) {
                  ++cyc[static_cast<std::size_t>(L) + k * 64 +
                        static_cast<unsigned>(std::countr_zero(bn))];
                  bn &= bn - 1;
                }
              }
            } else if (need_prod) {
              for (std::size_t k = 0; k < wpl; ++k) {
                total += std::popcount(prod[k]);
                total -= std::popcount(prod[wpl + k]);
              }
            } else {
              for (std::size_t k = 0; k < wpl; ++k) {
                total += std::popcount(a[k] & wp[k]);
                total -= std::popcount(a[k] & wn[k]);
              }
            }
          } else {
            bool has_p = false, has_n = false;
            for (std::size_t k = 0; k < wpl; ++k) {
              has_p |= prod[k] != 0;
              has_n |= prod[wpl + k] != 0;
            }
            if (has_p) apc.push(prod.data(), wpl, +1);
            if (has_n) apc.push(prod.data() + wpl, wpl, -1);
          }
        }
        if (cfg_.accum == AccumMode::kApc) total = apc.finish(wpl);
        if (!cyc.empty()) {
          for (int t = 0; t < L; ++t) {
            total += fm->apply_stuck(cyc[static_cast<std::size_t>(t)]);
            total -= fm->apply_stuck(cyc[static_cast<std::size_t>(L) + t]);
          }
        }
      } else {
        std::fill(scratch.begin(), scratch.end(), 0);
        for (int i = 0; i < in_; ++i) {
          const int g = i / group_size;
          const std::uint64_t* a = act.at(static_cast<std::size_t>(i));
          const std::size_t widx = static_cast<std::size_t>(o) * in_ + i;
          const std::uint64_t* wp = wposb.at(widx);
          const std::uint64_t* wn = wnegb.at(widx);
          std::uint64_t* gp = &scratch[static_cast<std::size_t>(g) * 2 * wpl];
          std::uint64_t* gn = gp + wpl;
          if (accum_faults) {
            for (std::size_t k = 0; k < wpl; ++k) {
              prod[k] = a[k] & wp[k];
              prod[wpl + k] = a[k] & wn[k];
            }
            const std::uint64_t asite = static_cast<std::uint64_t>(widx) * 2;
            fm->corrupt_accum_input(prod.data(), static_cast<std::size_t>(L),
                                    asite);
            fm->corrupt_accum_input(prod.data() + wpl,
                                    static_cast<std::size_t>(L), asite + 1);
            for (std::size_t k = 0; k < wpl; ++k) {
              gp[k] |= prod[k];
              gn[k] |= prod[wpl + k];
            }
          } else {
            for (std::size_t k = 0; k < wpl; ++k) {
              gp[k] |= a[k] & wp[k];
              gn[k] |= a[k] & wn[k];
            }
          }
        }
        double atten = 0.0;
        for (int g = 0; g < groups; ++g) {
          const std::uint64_t* gp =
              &scratch[static_cast<std::size_t>(g) * 2 * wpl];
          const std::uint64_t* gn = gp + wpl;
          const auto pos =
              static_cast<std::int64_t>(popcount_words(gp, wpl));
          const auto neg =
              static_cast<std::int64_t>(popcount_words(gn, wpl));
          if (stuck_faults) {
            for (int t = 0; t < L; ++t) {
              total += fm->apply_stuck(static_cast<std::uint32_t>(
                  (gp[t >> 6] >> (t & 63)) & 1u));
              total -= fm->apply_stuck(static_cast<std::uint32_t>(
                  (gn[t >> 6] >> (t & 63)) & 1u));
            }
          } else {
            total += pos - neg;
          }
          atten += 1.0 - static_cast<double>(std::max(pos, neg)) * inv_len;
        }
        atten_.at(b, o) =
            static_cast<float>(std::max(atten / groups, 0.05));
      }
      y.at(b, o) = static_cast<float>(total * inv_len) +
                   bias_.value[static_cast<std::size_t>(o)];
    }
  }
  return y;
}

Tensor ScLinear::backward(const Tensor& grad_out) {
  if (atten_.empty()) return Linear::backward(grad_out);
  Tensor g = grad_out;
  for (std::size_t i = 0; i < g.size(); ++i) g[i] *= atten_[i];
  return Linear::backward(g);
}

// ------------------------------------------------------------- Quantized

Tensor QuantConv2d::forward(const Tensor& x, bool /*train*/) {
  input_ = x;  // straight-through: float input for backward
  const Tensor saved = weight_.value;
  weight_.value = fake_quantize_signed(saved, bits_);
  Tensor y = forward_float(fake_quantize_unsigned(x, bits_));
  weight_.value = saved;
  return y;
}

Tensor QuantLinear::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  const Tensor saved = weight_.value;
  weight_.value = fake_quantize_signed(saved, bits_);
  Tensor y = forward_float(fake_quantize_unsigned(x, bits_));
  weight_.value = saved;
  return y;
}

// ------------------------------------------------------------- Reference

std::vector<std::int32_t> fxp_reference_counters(
    int cin, int hin, int win, int cout, int kh, int kw, int stride, int pad,
    std::span<const float> weights, std::span<const float> input,
    unsigned value_bits, int stream_len) {
  if (cin <= 0 || hin <= 0 || win <= 0 || cout <= 0 || kh <= 0 || kw <= 0 ||
      stride <= 0 || pad < 0)
    throw std::invalid_argument("fxp_reference_counters: bad shape");
  const int ho = (hin + 2 * pad - kh) / stride + 1;
  const int wo = (win + 2 * pad - kw) / stride + 1;
  if (ho <= 0 || wo <= 0)
    throw std::invalid_argument("fxp_reference_counters: empty output");
  const std::size_t wsize = static_cast<std::size_t>(cout) * cin * kh * kw;
  const std::size_t isize = static_cast<std::size_t>(cin) * hin * win;
  if (weights.size() != wsize || input.size() != isize)
    throw std::invalid_argument("fxp_reference_counters: span size mismatch");

  // An ideal stream of length L carrying code q (of 2^vb levels) has
  // popcount q/2^vb * L; an AND of two independent ideal streams has the
  // product of the probabilities. The counters the machine accumulates are
  // pos-minus-neg popcounts, so the noise-free expectation per output is
  //   round(L * sum_taps sign(w) * (qw/2^vb) * (qa/2^vb)).
  // Same quantization as the stream generators above: |w| clamped to [0,1],
  // a clamped to [0,1], both to `value_bits` unsigned codes.
  const double scale = static_cast<double>(1u << value_bits);
  std::vector<std::int32_t> counters(
      static_cast<std::size_t>(cout) * ho * wo, 0);
  for (int oc = 0; oc < cout; ++oc) {
    for (int oy = 0; oy < ho; ++oy) {
      for (int ox = 0; ox < wo; ++ox) {
        double acc = 0.0;
        for (int ic = 0; ic < cin; ++ic) {
          for (int ky = 0; ky < kh; ++ky) {
            const int iy = oy * stride - pad + ky;
            if (iy < 0 || iy >= hin) continue;
            for (int kx = 0; kx < kw; ++kx) {
              const int ix = ox * stride - pad + kx;
              if (ix < 0 || ix >= win) continue;
              const float w = std::clamp(
                  weights[((static_cast<std::size_t>(oc) * cin + ic) * kh +
                           ky) *
                              kw +
                          kx],
                  -1.0f, 1.0f);
              const float a = std::clamp(
                  input[(static_cast<std::size_t>(ic) * hin + iy) * win + ix],
                  0.0f, 1.0f);
              const double pw =
                  quantize_unsigned(std::abs(w), value_bits) / scale;
              const double pa = quantize_unsigned(a, value_bits) / scale;
              acc += (w < 0.0f ? -1.0 : 1.0) * pw * pa;
            }
          }
        }
        counters[(static_cast<std::size_t>(oc) * ho + oy) * wo + ox] =
            static_cast<std::int32_t>(std::llround(acc * stream_len));
      }
    }
  }
  return counters;
}

}  // namespace geo::nn
