// Softmax cross-entropy loss.
#pragma once

#include <span>
#include <vector>

#include "nn/tensor.hpp"

namespace geo::nn {

struct LossResult {
  double loss = 0.0;      // mean over the batch
  Tensor grad;            // d(loss)/d(logits), same shape as logits
  int correct = 0;        // argmax hits
};

// logits: (N, classes); labels: N entries in [0, classes).
LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int> labels);

// Argmax accuracy without gradient computation.
int count_correct(const Tensor& logits, std::span<const int> labels);

}  // namespace geo::nn
