// Model zoo: the paper's three topologies, scaled to the synthetic 12x12
// datasets (the paper itself downscales VGG-16; see DESIGN.md).
//
// Each builder emits float, fixed-point (fake-quantized) or SC-simulated
// compute layers according to the ScModelConfig. Stream lengths follow the
// paper's {sp-s} convention: sp on layers followed by pooling (average
// pooling with computation skipping), s elsewhere, and always 128 on the
// output layer.
#pragma once

#include <cstdint>
#include <string>

#include "nn/network.hpp"
#include "nn/sc_config.hpp"

namespace geo::nn {

// CNN-4 [22]: three conv layers + one FC. Ours: conv3x3(C->8)+pool,
// conv3x3(8->16)+pool, conv3x3(16->32), FC(288->10); BN before every ReLU.
Sequential make_cnn4(int in_channels, int num_classes,
                     const ScModelConfig& cfg, std::uint32_t init_seed);

// LeNet-5-like [27]: conv5x5(1->6)+pool, conv3x3(6->16)+pool,
// FC(144->32), FC(32->10).
Sequential make_lenet5(int in_channels, int num_classes,
                       const ScModelConfig& cfg, std::uint32_t init_seed);

// VGG-16-slim [26]: six 3x3 conv layers in three blocks (8,8 / 16,16 /
// 32,32) with pooling after each of the first two blocks, then
// FC(288->64), FC(64->10) — the paper's downscaled-VGG spirit at our scale.
Sequential make_vgg_slim(int in_channels, int num_classes,
                         const ScModelConfig& cfg, std::uint32_t init_seed);

// Builds by name: "cnn4", "lenet5", "vgg".
Sequential make_model(const std::string& name, int in_channels,
                      int num_classes, const ScModelConfig& cfg,
                      std::uint32_t init_seed);

}  // namespace geo::nn
