// Synthetic datasets standing in for MNIST / SVHN / CIFAR-10.
//
// The evaluation machines carry no image corpora, so each paper dataset is
// replaced by a seeded procedural generator of matched *relative* difficulty
// (digits < svhn_syn < cifar_syn). Every accuracy claim reproduced from the
// paper is a delta between SC configurations, which depends on the stochastic
// arithmetic, not on the dataset identity; see DESIGN.md "Substitutions".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace geo::nn {

struct Dataset {
  std::string name;
  Tensor images;            // (N, C, H, W), values in [0, 1]
  std::vector<int> labels;  // N entries in [0, num_classes)
  int num_classes = 10;

  int count() const { return images.dim(0); }
  int channels() const { return images.dim(1); }
  int height() const { return images.dim(2); }
  int width() const { return images.dim(3); }
};

// MNIST stand-in: grayscale 12x12 digit glyphs with position jitter,
// intensity jitter and Gaussian noise.
Dataset make_digits(int count, std::uint32_t seed);

// SVHN stand-in: 12x12 RGB digit glyphs in random colors over cluttered
// backgrounds (gradients + blobs) with noise.
Dataset make_svhn_syn(int count, std::uint32_t seed);

// CIFAR-10 stand-in: 12x12 RGB textured-shape classes (disk, ring, cross,
// stripes, checker, ...) with heavy appearance variation — the hardest of
// the three.
Dataset make_cifar_syn(int count, std::uint32_t seed);

// Builds by name: "digits", "svhn", "cifar".
Dataset make_dataset(const std::string& name, int count, std::uint32_t seed);

}  // namespace geo::nn
