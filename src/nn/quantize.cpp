#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>

namespace geo::nn {

std::int32_t quantize_signed(float v, unsigned bits, float range) {
  const float levels = static_cast<float>(1 << (bits - 1));
  const float q = std::round(v / range * levels);
  return static_cast<std::int32_t>(std::clamp(q, -levels, levels - 1.0f));
}

float dequantize_signed(std::int32_t code, unsigned bits, float range) {
  return static_cast<float>(code) /
         static_cast<float>(1 << (bits - 1)) * range;
}

std::uint32_t quantize_unsigned(float v, unsigned bits, float range) {
  const float levels = static_cast<float>(1u << bits);
  const float q = std::round(v / range * levels);
  const float max = levels - 1.0f;
  return static_cast<std::uint32_t>(std::clamp(q, 0.0f, max));
}

float dequantize_unsigned(std::uint32_t code, unsigned bits, float range) {
  return static_cast<float>(code) / static_cast<float>(1u << bits) * range;
}

Tensor fake_quantize_signed(const Tensor& t, unsigned bits, float range) {
  Tensor out = t;
  for (auto& v : out.data())
    v = dequantize_signed(quantize_signed(v, bits, range), bits, range);
  return out;
}

Tensor fake_quantize_unsigned(const Tensor& t, unsigned bits, float range) {
  Tensor out = t;
  for (auto& v : out.data())
    v = dequantize_unsigned(quantize_unsigned(v, bits, range), bits, range);
  return out;
}

}  // namespace geo::nn
