#include "nn/tensor.hpp"

#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace geo::nn {

namespace {
std::size_t shape_size(const std::vector<int>& shape) {
  std::size_t n = 1;
  for (int d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= static_cast<std::size_t>(d);
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<int> shape, float fill)
    : shape_(std::move(shape)), data_(shape_size(shape_), fill) {}

int Tensor::dim(int i) const {
  if (i < 0 || i >= rank()) throw std::out_of_range("Tensor::dim");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(int i, int j) {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

float Tensor::at(int i, int j) const {
  assert(rank() == 2);
  return data_[static_cast<std::size_t>(i) * shape_[1] + j];
}

std::size_t Tensor::index(int n, int c, int h, int w) const {
  assert(rank() == 4);
  return ((static_cast<std::size_t>(n) * shape_[1] + c) * shape_[2] + h) *
             shape_[3] +
         w;
}

float& Tensor::at(int n, int c, int h, int w) { return data_[index(n, c, h, w)]; }

float Tensor::at(int n, int c, int h, int w) const {
  return data_[index(n, c, h, w)];
}

void Tensor::fill(float v) {
  for (auto& x : data_) x = v;
}

Tensor Tensor::reshaped(std::vector<int> shape) const {
  if (shape_size(shape) != size())
    throw std::invalid_argument("Tensor::reshaped: size mismatch");
  Tensor out;
  out.shape_ = std::move(shape);
  out.data_ = data_;
  return out;
}

Tensor Tensor::batch_slice(int begin, int end) const {
  if (rank() < 1 || begin < 0 || end > shape_[0] || begin > end)
    throw std::out_of_range("Tensor::batch_slice");
  std::vector<int> shape = shape_;
  shape[0] = end - begin;
  Tensor out(shape);
  const std::size_t stride = size() / static_cast<std::size_t>(shape_[0]);
  std::copy(data_.begin() + static_cast<std::ptrdiff_t>(begin * stride),
            data_.begin() + static_cast<std::ptrdiff_t>(end * stride),
            out.data_.begin());
  return out;
}

float Tensor::max_abs() const noexcept {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

std::string Tensor::shape_string() const {
  std::string s = "(";
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) s += ",";
    s += std::to_string(shape_[i]);
  }
  return s + ")";
}

}  // namespace geo::nn
