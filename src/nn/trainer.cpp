#include "nn/trainer.hpp"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <random>

#include "core/env.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::nn {

namespace {
std::string cache_path(const TrainOptions& o) {
  if (o.cache_dir.empty() || o.cache_key.empty()) return {};
  return o.cache_dir + "/" + o.cache_key + ".weights";
}
}  // namespace

TrainResult train(Sequential& net, const Dataset& train_set,
                  const Dataset& test_set, const TrainOptions& options) {
  TrainResult result;

  const std::string cache = cache_path(options);
  if (!cache.empty() && net.load(cache)) {
    result.from_cache = true;
    result.test_accuracy = evaluate(net, test_set);
    return result;
  }

  Adam opt(net.params(), options.lr);
  if (options.clamp_weights)
    opt.set_clamp(-options.clamp_limit, options.clamp_limit);

  const int n = train_set.count();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // GEO_SEED reseeds the epoch shuffle; unset keeps options.shuffle_seed.
  std::mt19937 shuffle_rng(static_cast<std::mt19937::result_type>(
      core::seed_or(options.shuffle_seed, "train.shuffle")));

  auto& metrics = telemetry::MetricsRegistry::instance();
  telemetry::Histogram& epoch_hist = metrics.histogram("train.epoch");
  telemetry::Counter& batch_counter = metrics.counter("train.batches");

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    telemetry::ScopedTimer epoch_timer(
        epoch_hist, "train.epoch", "train",
        {{"epoch", static_cast<double>(epoch)}});
    std::shuffle(order.begin(), order.end(), shuffle_rng);
    int correct = 0;
    double loss_sum = 0.0;
    int batches = 0;
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      const int bs = end - start;
      // Gather the shuffled batch.
      Tensor batch({bs, train_set.channels(), train_set.height(),
                    train_set.width()});
      std::vector<int> labels(static_cast<std::size_t>(bs));
      const std::size_t img = batch.size() / static_cast<std::size_t>(bs);
      for (int i = 0; i < bs; ++i) {
        const int src = order[static_cast<std::size_t>(start + i)];
        const auto s = train_set.images.data();
        std::copy(s.begin() + static_cast<std::ptrdiff_t>(src * img),
                  s.begin() + static_cast<std::ptrdiff_t>((src + 1) * img),
                  batch.data().begin() + static_cast<std::ptrdiff_t>(i * img));
        labels[static_cast<std::size_t>(i)] =
            train_set.labels[static_cast<std::size_t>(src)];
      }
      net.zero_grad();
      const Tensor logits = net.forward(batch, /*train=*/true);
      const LossResult loss = softmax_cross_entropy(logits, labels);
      net.backward(loss.grad);
      opt.step();
      correct += loss.correct;
      loss_sum += loss.loss;
      ++batches;
    }
    result.final_train_accuracy = static_cast<double>(correct) / n;
    batch_counter.add(batches);
    metrics.gauge("train.loss").set(loss_sum / std::max(batches, 1));
    metrics.gauge("train.accuracy").set(result.final_train_accuracy);
    if (options.verbose)
      std::printf("  epoch %2d  loss %.4f  train acc %.3f\n", epoch + 1,
                  loss_sum / std::max(batches, 1),
                  result.final_train_accuracy);
  }

  if (!cache.empty()) net.save(cache);
  result.test_accuracy = evaluate(net, test_set);
  return result;
}

double evaluate(Sequential& net, const Dataset& data, int batch_size) {
  telemetry::ScopedTimer timer(
      "train.evaluate", "train",
      {{"samples", static_cast<double>(data.count())}});
  const int n = data.count();
  int correct = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    const Tensor batch = data.images.batch_slice(start, end);
    const Tensor logits = net.forward(batch, /*train=*/false);
    correct += count_correct(
        logits, std::span<const int>(data.labels).subspan(
                    static_cast<std::size_t>(start),
                    static_cast<std::size_t>(end - start)));
  }
  return static_cast<double>(correct) / n;
}

}  // namespace geo::nn
