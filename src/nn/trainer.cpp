#include "nn/trainer.hpp"

#include <algorithm>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <random>
#include <sstream>

#include "core/env.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "resilience/checkpoint.hpp"
#include "resilience/crc32.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::nn {

namespace {
std::string cache_path(const TrainOptions& o) {
  if (o.cache_dir.empty() || o.cache_key.empty()) return {};
  return o.cache_dir + "/" + o.cache_key + ".weights";
}

std::string ckpt_path(const TrainOptions& o) {
  const std::string dir = !o.checkpoint_dir.empty()
                              ? o.checkpoint_dir
                              : resilience::checkpoint_dir();
  if (dir.empty() || o.checkpoint_key.empty()) return {};
  return dir + "/" + o.checkpoint_key + ".ckpt";
}

// Fingerprint of everything that must match for a snapshot to be resumable:
// the training options, the effective shuffle seed, and the model's
// parameter count. A snapshot from a different run configuration must be
// rejected, not silently grafted onto this one.
std::uint32_t train_fingerprint(const TrainOptions& o,
                                const Sequential& net) {
  resilience::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(o.epochs));
  w.u32(static_cast<std::uint32_t>(o.batch_size));
  w.f32(o.lr);
  w.u32(o.shuffle_seed);
  w.u32(o.clamp_weights ? 1u : 0u);
  w.f32(o.clamp_limit);
  w.u64(core::seed_or(o.shuffle_seed, "train.shuffle"));
  w.u64(net.parameter_count());
  return resilience::crc32(w.data());
}

geo::Status write_train_checkpoint(const std::string& path,
                                   std::uint32_t fingerprint, int next_epoch,
                                   Sequential& net, const Adam& opt,
                                   const std::mt19937& rng,
                                   const std::vector<int>& order) {
  resilience::ByteWriter w;
  w.u32(fingerprint);
  w.u32(static_cast<std::uint32_t>(next_epoch));
  std::ostringstream rng_os;
  rng_os << rng;  // the standard's textual engine state is exact
  w.bytes(rng_os.str());
  w.u64(order.size());
  for (const int i : order) w.u32(static_cast<std::uint32_t>(i));
  const auto params = net.params();
  w.u64(params.size());
  for (const Param* p : params) w.floats(p->value.data());
  const auto state = net.state();
  w.u64(state.size());
  for (const Tensor* t : state) w.floats(t->data());
  const AdamState adam = opt.snapshot_state();
  w.u64(static_cast<std::uint64_t>(adam.t));
  w.u64(adam.m.size());
  for (const auto& m : adam.m) w.floats(m);
  w.u64(adam.v.size());
  for (const auto& v : adam.v) w.floats(v);
  return resilience::write_checkpoint(path, w.data());
}

// Restores a snapshot into (net, opt, rng, order) and reports the epoch to
// resume from. Fail-closed: everything is parsed and validated before any
// live state is touched, so a rejected snapshot leaves the run untouched.
geo::StatusOr<int> resume_train_checkpoint(const std::string& path,
                                           std::uint32_t fingerprint,
                                           int epochs, Sequential& net,
                                           Adam& opt, std::mt19937& rng,
                                           std::vector<int>& order) {
  auto payload = resilience::read_checkpoint(path);
  if (!payload.ok()) return payload.status();
  resilience::ByteReader r(*payload);
  const std::uint32_t fp = r.u32();
  const int next_epoch = static_cast<int>(r.u32());
  const std::string rng_state = r.bytes();
  const std::uint64_t order_n = r.u64();
  std::vector<int> new_order;
  if (order_n == order.size()) {
    new_order.reserve(order.size());
    for (std::uint64_t i = 0; i < order_n; ++i)
      new_order.push_back(static_cast<int>(r.u32()));
  }
  const std::uint64_t param_n = r.u64();
  std::vector<std::vector<float>> params;
  for (std::uint64_t i = 0; i < param_n && r.read_status().ok(); ++i)
    params.push_back(r.floats());
  const std::uint64_t state_n = r.u64();
  std::vector<std::vector<float>> state;
  for (std::uint64_t i = 0; i < state_n && r.read_status().ok(); ++i)
    state.push_back(r.floats());
  AdamState adam;
  adam.t = static_cast<long>(r.u64());
  const std::uint64_t m_n = r.u64();
  for (std::uint64_t i = 0; i < m_n && r.read_status().ok(); ++i)
    adam.m.push_back(r.floats());
  const std::uint64_t v_n = r.u64();
  for (std::uint64_t i = 0; i < v_n && r.read_status().ok(); ++i)
    adam.v.push_back(r.floats());
  if (auto s = r.read_status(); !s.ok()) return s;

  if (fp != fingerprint)
    return geo::Status::failed_precondition(
        "train checkpoint '" + path +
        "' was written by a different run configuration");
  if (next_epoch < 1 || next_epoch > epochs)
    return geo::Status::failed_precondition(
        "train checkpoint '" + path + "' resumes at epoch " +
        std::to_string(next_epoch) + " of " + std::to_string(epochs));
  if (order_n != order.size() || new_order.size() != order.size())
    return geo::Status::data_loss("train checkpoint '" + path +
                                  "': shuffle order size mismatch");
  const auto live_params = net.params();
  if (params.size() != live_params.size())
    return geo::Status::data_loss("train checkpoint '" + path +
                                  "': parameter tensor count mismatch");
  for (std::size_t i = 0; i < params.size(); ++i)
    if (params[i].size() != live_params[i]->value.size())
      return geo::Status::data_loss("train checkpoint '" + path +
                                    "': parameter " + std::to_string(i) +
                                    " size mismatch");
  const auto live_state = net.state();
  if (state.size() != live_state.size())
    return geo::Status::data_loss("train checkpoint '" + path +
                                  "': state tensor count mismatch");
  for (std::size_t i = 0; i < state.size(); ++i)
    if (state[i].size() != live_state[i]->size())
      return geo::Status::data_loss("train checkpoint '" + path +
                                    "': state tensor " + std::to_string(i) +
                                    " size mismatch");
  std::mt19937 new_rng;
  std::istringstream rng_is(rng_state);
  rng_is >> new_rng;
  if (rng_is.fail())
    return geo::Status::data_loss("train checkpoint '" + path +
                                  "': unparseable RNG state");
  // All validated — apply atomically.
  if (auto s = opt.restore_state(std::move(adam)); !s.ok())
    return geo::Status::data_loss("train checkpoint '" + path +
                                  "': " + s.message());
  for (std::size_t i = 0; i < params.size(); ++i)
    std::copy(params[i].begin(), params[i].end(),
              live_params[i]->value.data().begin());
  for (std::size_t i = 0; i < state.size(); ++i)
    std::copy(state[i].begin(), state[i].end(),
              live_state[i]->data().begin());
  order = std::move(new_order);
  rng = new_rng;
  return next_epoch;
}

// GEO_CRASH_AFTER_EPOCH=<n>: hard-exit (code 42) right after the snapshot
// for epoch n lands — the resilience test's kill-and-resume hook. Checked
// parse: garbage or out-of-range values warn once and disable the hook
// instead of silently crashing after epoch 0 (atoi's "garbage -> 0").
int crash_after_epoch() {
  return static_cast<int>(
      core::env_int("GEO_CRASH_AFTER_EPOCH", 0, 0, INT_MAX));
}
}  // namespace

TrainResult train(Sequential& net, const Dataset& train_set,
                  const Dataset& test_set, const TrainOptions& options) {
  TrainResult result;

  const std::string cache = cache_path(options);
  if (!cache.empty() && net.load(cache)) {
    result.from_cache = true;
    result.test_accuracy = evaluate(net, test_set);
    return result;
  }

  Adam opt(net.params(), options.lr);
  if (options.clamp_weights)
    opt.set_clamp(-options.clamp_limit, options.clamp_limit);

  const int n = train_set.count();
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  // GEO_SEED reseeds the epoch shuffle; unset keeps options.shuffle_seed.
  std::mt19937 shuffle_rng(static_cast<std::mt19937::result_type>(
      core::seed_or(options.shuffle_seed, "train.shuffle")));

  auto& metrics = telemetry::MetricsRegistry::instance();
  telemetry::Histogram& epoch_hist = metrics.histogram("train.epoch");
  telemetry::Counter& batch_counter = metrics.counter("train.batches");

  const std::string ckpt = ckpt_path(options);
  const std::uint32_t fingerprint =
      ckpt.empty() ? 0u : train_fingerprint(options, net);
  int start_epoch = 0;
  if (!ckpt.empty()) {
    auto resumed = resume_train_checkpoint(ckpt, fingerprint, options.epochs,
                                           net, opt, shuffle_rng, order);
    if (resumed.ok()) {
      start_epoch = *resumed;
      result.resumed_from_epoch = start_epoch;
      if (options.verbose)
        std::printf("  resuming from checkpoint at epoch %d\n", start_epoch);
    } else if (resumed.status().code() != geo::StatusCode::kFailedPrecondition ||
               resumed.status().message().find("cannot open") ==
                   std::string::npos) {
      // A missing snapshot is the normal first run; anything else (corrupt,
      // truncated, foreign) is worth a warning before starting fresh.
      std::fprintf(stderr, "geo: ignoring %s\n",
                   resumed.status().message().c_str());
    }
  }

  for (int epoch = start_epoch; epoch < options.epochs; ++epoch) {
    telemetry::ScopedTimer epoch_timer(
        epoch_hist, "train.epoch", "train",
        {{"epoch", static_cast<double>(epoch)}});
    std::shuffle(order.begin(), order.end(), shuffle_rng);
    int correct = 0;
    double loss_sum = 0.0;
    int batches = 0;
    for (int start = 0; start < n; start += options.batch_size) {
      const int end = std::min(n, start + options.batch_size);
      const int bs = end - start;
      // Gather the shuffled batch.
      Tensor batch({bs, train_set.channels(), train_set.height(),
                    train_set.width()});
      std::vector<int> labels(static_cast<std::size_t>(bs));
      const std::size_t img = batch.size() / static_cast<std::size_t>(bs);
      for (int i = 0; i < bs; ++i) {
        const int src = order[static_cast<std::size_t>(start + i)];
        const auto s = train_set.images.data();
        std::copy(s.begin() + static_cast<std::ptrdiff_t>(src * img),
                  s.begin() + static_cast<std::ptrdiff_t>((src + 1) * img),
                  batch.data().begin() + static_cast<std::ptrdiff_t>(i * img));
        labels[static_cast<std::size_t>(i)] =
            train_set.labels[static_cast<std::size_t>(src)];
      }
      net.zero_grad();
      const Tensor logits = net.forward(batch, /*train=*/true);
      const LossResult loss = softmax_cross_entropy(logits, labels);
      net.backward(loss.grad);
      opt.step();
      correct += loss.correct;
      loss_sum += loss.loss;
      ++batches;
    }
    result.final_train_accuracy = static_cast<double>(correct) / n;
    batch_counter.add(batches);
    metrics.gauge("train.loss").set(loss_sum / std::max(batches, 1));
    metrics.gauge("train.accuracy").set(result.final_train_accuracy);
    if (options.verbose)
      std::printf("  epoch %2d  loss %.4f  train acc %.3f\n", epoch + 1,
                  loss_sum / std::max(batches, 1),
                  result.final_train_accuracy);

    if (!ckpt.empty() && options.checkpoint_every > 0 &&
        ((epoch + 1) % options.checkpoint_every == 0 ||
         epoch + 1 == options.epochs)) {
      if (auto s = write_train_checkpoint(ckpt, fingerprint, epoch + 1, net,
                                          opt, shuffle_rng, order);
          s.ok())
        ++result.checkpoints_written;
      else
        std::fprintf(stderr, "geo: %s\n", s.message().c_str());
    }
    if (crash_after_epoch() == epoch + 1) {
      std::fprintf(stderr,
                   "geo: GEO_CRASH_AFTER_EPOCH=%d hit, exiting hard\n",
                   epoch + 1);
      std::_Exit(42);
    }
  }

  if (!cache.empty()) net.save(cache);
  result.test_accuracy = evaluate(net, test_set);
  return result;
}

double evaluate(Sequential& net, const Dataset& data, int batch_size) {
  telemetry::ScopedTimer timer(
      "train.evaluate", "train",
      {{"samples", static_cast<double>(data.count())}});
  const int n = data.count();
  int correct = 0;
  for (int start = 0; start < n; start += batch_size) {
    const int end = std::min(n, start + batch_size);
    const Tensor batch = data.images.batch_slice(start, end);
    const Tensor logits = net.forward(batch, /*train=*/false);
    correct += count_correct(
        logits, std::span<const int>(data.labels).subspan(
                    static_cast<std::size_t>(start),
                    static_cast<std::size_t>(end - start)));
  }
  return static_cast<double>(correct) / n;
}

}  // namespace geo::nn
