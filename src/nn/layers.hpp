// Neural-network layers with forward and backward passes.
//
// The float path trains the models; the SC-simulated path (sc_layers.hpp)
// overrides the forward of Conv2d / Linear while reusing these backward
// implementations — exactly the paper's scheme of SC forward guided by
// floating-point backpropagation.
#pragma once

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace geo::nn {

struct Param {
  Tensor value;
  Tensor grad;

  explicit Param(std::vector<int> shape)
      : value(shape), grad(std::move(shape)) {}
};

class Layer {
 public:
  virtual ~Layer() = default;

  // `train` selects batch statistics in BatchNorm; layers must store
  // whatever they need for the following backward().
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // Consumes d(loss)/d(output), accumulates parameter gradients, returns
  // d(loss)/d(input).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<Param*> params() { return {}; }

  // Non-trainable tensors that still belong to the model (e.g. BatchNorm
  // running statistics); included in (de)serialization.
  virtual std::vector<Tensor*> state() { return {}; }

  virtual std::string name() const = 0;
};

class Conv2d : public Layer {
 public:
  // He-uniform initialized; `rng` makes initialization deterministic.
  Conv2d(int in_ch, int out_ch, int kernel, int stride, int pad,
         std::mt19937& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_}; }
  std::string name() const override { return "conv2d"; }

  int in_channels() const noexcept { return in_ch_; }
  int out_channels() const noexcept { return out_ch_; }
  int kernel() const noexcept { return kernel_; }
  int stride() const noexcept { return stride_; }
  int pad() const noexcept { return pad_; }

  Param& weight() noexcept { return weight_; }
  const Param& weight() const noexcept { return weight_; }

 protected:
  // Reference float convolution; also used by the SC subclass's backward.
  Tensor forward_float(const Tensor& x) const;

  int in_ch_, out_ch_, kernel_, stride_, pad_;
  Param weight_;  // (out, in, k, k); no bias — BatchNorm follows every conv
  Tensor input_;  // stored by forward for backward
};

class Linear : public Layer {
 public:
  Linear(int in_features, int out_features, std::mt19937& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&weight_, &bias_}; }
  std::string name() const override { return "linear"; }

  int in_features() const noexcept { return in_; }
  int out_features() const noexcept { return out_; }

  Param& weight() noexcept { return weight_; }
  Param& bias() noexcept { return bias_; }

 protected:
  Tensor forward_float(const Tensor& x) const;

  int in_, out_;
  Param weight_;  // (out, in)
  Param bias_;    // (out)
  Tensor input_;
};

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "relu"; }

 private:
  Tensor input_;
};

// ReLU clamped to [0, 1]: the hardware's activations are 8-bit unipolar
// probabilities, so the training graph sees the same bound.
class BoundedReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "bounded_relu"; }

 private:
  Tensor input_;
};

class AvgPool2d : public Layer {
 public:
  explicit AvgPool2d(int kernel) : kernel_(kernel) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "avgpool2d"; }

  int kernel() const noexcept { return kernel_; }

 private:
  int kernel_;
  std::vector<int> in_shape_;
};

class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(int kernel) : kernel_(kernel) {}

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "maxpool2d"; }

 private:
  int kernel_;
  Tensor input_;
  std::vector<std::size_t> argmax_;
};

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(int channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> state() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override { return "batchnorm2d"; }

  // GEO implements BN near-memory as an 8-bit fixed-point multiply-add
  // (Sec. III-B); enabling this quantizes the folded scale/shift used at
  // inference to `bits` bits.
  void set_quantized(unsigned bits) { quant_bits_ = bits; }

  int channels() const noexcept { return channels_; }

 private:
  int channels_;
  float momentum_, eps_;
  unsigned quant_bits_ = 0;  // 0 = float inference
  Param gamma_, beta_;
  Tensor running_mean_, running_var_;
  // saved for backward
  Tensor input_, xhat_;
  std::vector<float> batch_mean_, batch_inv_std_;
};

class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "flatten"; }

 private:
  std::vector<int> in_shape_;
};

}  // namespace geo::nn
