// Optimizers. The paper trains with ADAM at an initial learning rate of 2e-3.
#pragma once

#include <vector>

#include "core/status.hpp"
#include "nn/layers.hpp"

namespace geo::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Param*> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;

  // Clamps weights to [-lo, hi] after each step; SC values must stay in
  // [-1, 1], so the trainers enable this for stochastic models.
  void set_clamp(float lo, float hi) {
    clamp_lo_ = lo;
    clamp_hi_ = hi;
    clamp_ = true;
  }

 protected:
  void apply_clamp();

  std::vector<Param*> params_;
  bool clamp_ = false;
  float clamp_lo_ = -1.0f, clamp_hi_ = 1.0f;
};

class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Param*> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float lr_, momentum_;
  std::vector<std::vector<float>> velocity_;
};

// The optimizer's full internal state, exposed so the trainer checkpointer
// can make resumed runs bit-identical to uninterrupted ones (Adam without
// its moments restarts cold and diverges from the original trajectory).
struct AdamState {
  long t = 0;
  std::vector<std::vector<float>> m, v;
};

class Adam final : public Optimizer {
 public:
  Adam(std::vector<Param*> params, float lr = 2e-3f, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

  void set_lr(float lr) { lr_ = lr; }

  // Checkpoint support: snapshot/restore the step count and moment vectors.
  // restore_state validates the state's shape against this optimizer's
  // parameters and rejects mismatches without modifying anything.
  AdamState snapshot_state() const { return {t_, m_, v_}; }
  geo::Status restore_state(AdamState state);

 private:
  float lr_, beta1_, beta2_, eps_;
  long t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

}  // namespace geo::nn
