#include "exec/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/env.hpp"
#include "fault/fault_model.hpp"
#include "telemetry/trace.hpp"

namespace geo::exec {

namespace {

// Depth of parallel_for participation on this thread (worker or caller).
// Nonzero means nested parallel_for calls run inline.
thread_local int t_region_depth = 0;

}  // namespace

int default_threads() {
  int hw = static_cast<int>(std::thread::hardware_concurrency());
  if (hw < 1) hw = 1;
  const std::int64_t n = core::env_int("GEO_THREADS", hw, 1, kMaxThreads);
  return static_cast<int>(n);
}

bool ThreadPool::in_parallel_region() { return t_region_depth > 0; }

// One parallel_for in flight. Iterations are claimed in contiguous blocks
// via `next`; `done` counts finished (or cancelled) iterations. The first
// exception cancels the rest of the batch and is rethrown on the caller.
struct Batch {
  std::int64_t n = 0;
  std::int64_t grain = 1;
  const std::function<void(std::int64_t)>* fn = nullptr;
  // The submitting thread's effective fault model, installed thread-locally
  // on every worker that participates so scoped injections propagate.
  fault::FaultModel* fault_scope = nullptr;

  std::atomic<std::int64_t> next{0};
  std::atomic<std::int64_t> done{0};
  std::atomic<bool> cancelled{false};

  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // guarded by mu

  // Claims and runs blocks until the batch is drained. Returns once this
  // thread can contribute no further work (other threads may still be
  // finishing their claimed blocks).
  void participate() {
    t_region_depth++;
    for (;;) {
      const std::int64_t i0 = next.fetch_add(grain);
      if (i0 >= n) break;
      const std::int64_t i1 = std::min(n, i0 + grain);
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          for (std::int64_t i = i0; i < i1; ++i) (*fn)(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(mu);
          if (!error) error = std::current_exception();
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      if (done.fetch_add(i1 - i0) + (i1 - i0) == n) {
        const std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    }
    t_region_depth--;
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done.load() == n; });
  }
};

struct ThreadPool::Impl {
  struct WorkerQueue {
    std::mutex mu;
    std::deque<std::shared_ptr<Batch>> tasks;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> threads;
  std::mutex idle_mu;
  std::condition_variable idle_cv;
  std::atomic<int> pending{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rr{0};

  void worker_main(std::size_t self) {
    // Name this worker's Perfetto track up front, before any span can be
    // recorded from it (the name survives enable/disable cycles).
    telemetry::Tracer::instance().set_thread_name(
        "geo-worker-" + std::to_string(self));
    for (;;) {
      std::shared_ptr<Batch> batch = take(self);
      if (batch) {
        fault::ScopedFaultOverride scope(batch->fault_scope);
        batch->participate();
        continue;
      }
      std::unique_lock<std::mutex> lock(idle_mu);
      idle_cv.wait(lock, [&] {
        return stop.load(std::memory_order_relaxed) ||
               pending.load(std::memory_order_relaxed) > 0;
      });
      if (stop.load(std::memory_order_relaxed)) return;
    }
  }

  // Pop from the worker's own queue (LIFO), else steal the oldest task from
  // another queue (FIFO).
  std::shared_ptr<Batch> take(std::size_t self) {
    {
      WorkerQueue& q = *queues[self];
      const std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        std::shared_ptr<Batch> b = std::move(q.tasks.back());
        q.tasks.pop_back();
        pending.fetch_sub(1, std::memory_order_relaxed);
        return b;
      }
    }
    for (std::size_t k = 1; k < queues.size() + 1; ++k) {
      WorkerQueue& q = *queues[(self + k) % queues.size()];
      const std::lock_guard<std::mutex> lock(q.mu);
      if (!q.tasks.empty()) {
        std::shared_ptr<Batch> b = std::move(q.tasks.front());
        q.tasks.pop_front();
        pending.fetch_sub(1, std::memory_order_relaxed);
        return b;
      }
    }
    return nullptr;
  }

  void submit(std::shared_ptr<Batch> batch) {
    const std::size_t w = rr.fetch_add(1, std::memory_order_relaxed) %
                          queues.size();
    {
      const std::lock_guard<std::mutex> lock(queues[w]->mu);
      queues[w]->tasks.push_back(std::move(batch));
    }
    pending.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(idle_mu);
      idle_cv.notify_one();
    }
  }

  void shutdown() {
    {
      const std::lock_guard<std::mutex> lock(idle_mu);
      stop.store(true, std::memory_order_relaxed);
      idle_cv.notify_all();
    }
    for (std::thread& t : threads) t.join();
    threads.clear();
  }
};

ThreadPool::ThreadPool(int threads) : impl_(nullptr), size_(std::max(1, threads)) {
  if (size_ == 1) return;  // inline-only; never spawn
  impl_ = new Impl();
  const int workers = size_ - 1;
  impl_->queues.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    impl_->queues.push_back(std::make_unique<Impl::WorkerQueue>());
  impl_->threads.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i)
    impl_->threads.emplace_back(
        [impl = impl_, i] { impl->worker_main(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  impl_->shutdown();
  delete impl_;
}

void ThreadPool::parallel_for(std::int64_t n, std::int64_t grain,
                              const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (n == 1 || size_ == 1 || impl_ == nullptr || in_parallel_region()) {
    // The bit-identical serial path: same loop the pre-pool code ran. Still
    // marks the region so nesting behaves the same as on a worker.
    t_region_depth++;
    try {
      for (std::int64_t i = 0; i < n; ++i) fn(i);
    } catch (...) {
      t_region_depth--;
      throw;
    }
    t_region_depth--;
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->grain =
      grain > 0 ? grain : std::max<std::int64_t>(1, n / (4 * size_));
  batch->fn = &fn;
  batch->fault_scope = fault::active();
  // Wake enough workers to cover the batch; latecomers find `next >= n` and
  // return immediately.
  const int helpers = static_cast<int>(std::min<std::int64_t>(
      size_ - 1, (n + batch->grain - 1) / batch->grain));
  for (int i = 0; i < helpers; ++i) impl_->submit(batch);
  batch->participate();
  batch->wait();
  if (batch->error) std::rethrow_exception(batch->error);
}

// ----------------------------------------------------------- process pool

namespace {

std::mutex g_pool_mu;
ThreadPool* g_pool = nullptr;

}  // namespace

ThreadPool& ThreadPool::instance() {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool == nullptr) g_pool = new ThreadPool(default_threads());
  return *g_pool;
}

ScopedThreads::ScopedThreads(int threads) : prev_(1) {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  prev_ = g_pool != nullptr ? g_pool->size() : default_threads();
  delete g_pool;
  g_pool = new ThreadPool(std::max(1, threads));
}

ScopedThreads::~ScopedThreads() {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  delete g_pool;
  g_pool = new ThreadPool(prev_);
}

}  // namespace geo::exec
