// Tile-parallel dispatch for a prepared ConvExecution.
//
// Tiles of one conv layer are independent — disjoint output slices, a
// generate-once activation-stream cache, commutative integer stat merges —
// so the runner fans `run_tile` calls across the GEO_THREADS pool and the
// finished layer is byte-identical to the serial tile loop at any thread
// count (docs/PARALLELISM.md spells out the contract). With a fault model
// installed the determinism holds too: defect-mode injections are a pure
// function of the site, and transient-mode draws are keyed per site access
// sequence, which a single all-tiles pass leaves order-independent.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/machine.hpp"
#include "exec/cancel.hpp"

namespace geo::exec {

class ThreadPool;

class ParallelConvRunner {
 public:
  // `pool` = nullptr uses the process-wide pool (GEO_THREADS).
  explicit ParallelConvRunner(ThreadPool* pool = nullptr);

  // Runs every tile of `exec` exactly once. Serial (and bit-identical to
  // the plain loop) when the pool has one lane or the layer has one tile.
  // Exceptions from tiles are rethrown here, on the calling thread.
  //
  // `cancel` (may be nullptr) is polled at every tile boundary: once it
  // fires, the remaining tiles are skipped — no further tile charges a
  // cycle — and the call returns false. A cancelled execution is partial
  // and must be abandoned by the caller, never finished.
  bool run_all(arch::ConvExecution& exec, CancelToken* cancel = nullptr);

  // Same, but also records each tile's first-run cost delta (indexed by
  // tile). The resilience layer uses the deltas to reconstruct the serial
  // ledger on a rung that fails mid-walk.
  bool run_all_recording(arch::ConvExecution& exec,
                         std::vector<arch::MachineStats>& tile_costs,
                         CancelToken* cancel = nullptr);

 private:
  ThreadPool* pool_;
};

}  // namespace geo::exec
