// Cooperative cancellation for long-running executions.
//
// A CancelToken carries a manual cancel flag and an optional wall-clock
// deadline; execution engines poll it at natural preemption points — the
// machine's tile boundaries (exec::ParallelConvRunner, the resilience
// layer's serial retry loop) — so an expired or abandoned request stops
// charging cycles within one tile and frees its replica promptly
// (docs/SERVING.md). Cancellation is sticky: once `cancelled()` has
// returned true it returns true forever, so every observer of one token
// agrees on the outcome.
//
// All members are lock-free atomics; one token may be polled from many
// worker threads while another thread cancels it.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace geo::exec {

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // Requests cancellation; the next poll observes it.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  // Arms the wall-clock deadline; polls after `tp` report cancelled.
  void set_deadline(std::chrono::steady_clock::time_point tp) noexcept {
    deadline_ns_.store(tp.time_since_epoch().count(),
                       std::memory_order_relaxed);
  }
  bool has_deadline() const noexcept {
    return deadline_ns_.load(std::memory_order_relaxed) != 0;
  }

  // Test hook: the Nth `cancelled()` poll (1-based) trips the token, which
  // makes "the deadline expired between tiles K and K+1" deterministic.
  void trip_after(std::int64_t polls) noexcept {
    trip_after_.store(polls, std::memory_order_relaxed);
  }

  // Poll point. Counts the poll, then reports (stickily) whether the token
  // has been cancelled, tripped, or carried past its deadline.
  bool cancelled() noexcept {
    const std::int64_t n = polls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    const std::int64_t trip = trip_after_.load(std::memory_order_relaxed);
    if (trip > 0 && n >= trip) {
      cancel();
      return true;
    }
    const std::int64_t deadline =
        deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 &&
        std::chrono::steady_clock::now().time_since_epoch().count() >=
            deadline) {
      cancel();
      return true;
    }
    return false;
  }

  // Passive peek: the current flag without registering a poll (reporting
  // paths; does not re-evaluate the deadline).
  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  std::int64_t polls() const noexcept {
    return polls_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // steady_clock ns; 0 = none
  std::atomic<std::int64_t> trip_after_{0};   // 0 = disabled
  std::atomic<std::int64_t> polls_{0};
};

}  // namespace geo::exec
