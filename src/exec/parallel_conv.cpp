#include "exec/parallel_conv.hpp"

#include "exec/thread_pool.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::exec {

namespace {

// Wraps one tile in a `machine.tile` span on whichever worker runs it and
// ties it back to the submitting layer span with a Chrome-trace flow
// (ph:"s" under the parent, ph:"f" bp:"e" inside each tile span), so
// Perfetto draws an arrow from the layer to every tile even across
// steals. Returns 0 when tracing is off (one relaxed load; no flow id is
// burned).
std::uint64_t open_tile_flow(telemetry::Tracer& tracer) {
  if (!tracer.enabled()) return 0;
  const std::uint64_t flow = tracer.next_flow_id();
  tracer.flow_out("machine.tiles", "machine", flow);
  return flow;
}

}  // namespace

ParallelConvRunner::ParallelConvRunner(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::instance()) {}

bool ParallelConvRunner::run_all(arch::ConvExecution& exec,
                                 CancelToken* cancel) {
  const std::int64_t tiles = exec.tile_count();
  auto& tracer = telemetry::Tracer::instance();
  auto& tile_hist =
      telemetry::MetricsRegistry::instance().histogram("machine.tile");
  const std::uint64_t flow = open_tile_flow(tracer);
  // Tile grain 1: tiles are coarse units (a full channel-group x
  // window-group pass schedule each), so per-tile claiming balances best.
  pool_->parallel_for(
      tiles, 1, [&exec, &tracer, &tile_hist, flow, cancel](std::int64_t t) {
        if (cancel != nullptr && cancel->cancelled()) return;
        telemetry::ScopedTimer span(tile_hist, "machine.tile", "machine",
                                    {{"tile", static_cast<double>(t)}});
        if (flow != 0) tracer.flow_in("machine.tiles", "machine", flow);
        exec.run_tile(t);
      });
  return cancel == nullptr || !cancel->cancel_requested();
}

bool ParallelConvRunner::run_all_recording(
    arch::ConvExecution& exec, std::vector<arch::MachineStats>& tile_costs,
    CancelToken* cancel) {
  const std::int64_t tiles = exec.tile_count();
  auto& tracer = telemetry::Tracer::instance();
  auto& tile_hist =
      telemetry::MetricsRegistry::instance().histogram("machine.tile");
  const std::uint64_t flow = open_tile_flow(tracer);
  tile_costs.assign(static_cast<std::size_t>(tiles), arch::MachineStats{});
  pool_->parallel_for(
      tiles, 1,
      [&exec, &tile_costs, &tracer, &tile_hist, flow, cancel](std::int64_t t) {
        if (cancel != nullptr && cancel->cancelled()) return;
        telemetry::ScopedTimer span(tile_hist, "machine.tile", "machine",
                                    {{"tile", static_cast<double>(t)}});
        if (flow != 0) tracer.flow_in("machine.tiles", "machine", flow);
        tile_costs[static_cast<std::size_t>(t)] = exec.run_tile(t);
      });
  return cancel == nullptr || !cancel->cancel_requested();
}

}  // namespace geo::exec
