#include "exec/parallel_conv.hpp"

#include "exec/thread_pool.hpp"

namespace geo::exec {

ParallelConvRunner::ParallelConvRunner(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::instance()) {}

void ParallelConvRunner::run_all(arch::ConvExecution& exec) {
  const std::int64_t tiles = exec.tile_count();
  // Tile grain 1: tiles are coarse units (a full channel-group x
  // window-group pass schedule each), so per-tile claiming balances best.
  pool_->parallel_for(tiles, 1,
                      [&exec](std::int64_t t) { exec.run_tile(t); });
}

void ParallelConvRunner::run_all_recording(
    arch::ConvExecution& exec, std::vector<arch::MachineStats>& tile_costs) {
  const std::int64_t tiles = exec.tile_count();
  tile_costs.assign(static_cast<std::size_t>(tiles), arch::MachineStats{});
  pool_->parallel_for(tiles, 1, [&exec, &tile_costs](std::int64_t t) {
    tile_costs[static_cast<std::size_t>(t)] = exec.run_tile(t);
  });
}

}  // namespace geo::exec
