#include "exec/async_lane.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "fault/fault_model.hpp"

namespace geo::exec {

namespace {
// True on the lane's own thread, so nested submits run inline instead of
// deadlocking on the single worker.
thread_local const AsyncLane* t_current_lane = nullptr;
}  // namespace

struct AsyncLane::Impl {
  struct Task {
    std::packaged_task<void()> work;
    fault::FaultModel* fault_model;  // submitter's effective model
  };

  mutable std::mutex mu;
  std::condition_variable cv;
  std::deque<Task> queue;
  std::size_t in_flight = 0;  // queued + currently executing
  bool stopping = false;
  std::thread worker;
  const AsyncLane* owner = nullptr;

  void run() {
    t_current_lane = owner;
    std::unique_lock lock(mu);
    while (true) {
      cv.wait(lock, [&] { return stopping || !queue.empty(); });
      if (queue.empty()) {
        if (stopping) return;  // drained
        continue;
      }
      Task task = std::move(queue.front());
      queue.pop_front();
      lock.unlock();
      {
        // Inherit the submitter's fault scope for the task's duration, the
        // same way ThreadPool workers do for parallel_for iterations.
        fault::ScopedFaultOverride scope(task.fault_model);
        task.work();  // packaged_task captures exceptions into the future
      }
      lock.lock();
      --in_flight;
    }
  }
};

AsyncLane::AsyncLane() : impl_(new Impl) {
  impl_->owner = this;
  impl_->worker = std::thread([impl = impl_] { impl->run(); });
}

AsyncLane::~AsyncLane() {
  {
    std::lock_guard lock(impl_->mu);
    impl_->stopping = true;
  }
  impl_->cv.notify_all();
  impl_->worker.join();
  delete impl_;
}

std::future<void> AsyncLane::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> fut = task.get_future();
  if (t_current_lane == this) {
    // Nested submit from a lane task: run inline (the single worker is us).
    task();
    return fut;
  }
  {
    std::lock_guard lock(impl_->mu);
    impl_->queue.push_back({std::move(task), fault::active()});
    ++impl_->in_flight;
  }
  impl_->cv.notify_one();
  return fut;
}

std::size_t AsyncLane::pending() const {
  std::lock_guard lock(impl_->mu);
  return impl_->in_flight;
}

AsyncLane& AsyncLane::io() {
  static AsyncLane* lane = new AsyncLane();  // lives for the process
  return *lane;
}

}  // namespace geo::exec
