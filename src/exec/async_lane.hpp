// A serial background task lane — the asynchrony primitive the out-of-core
// store's prefetcher runs on.
//
// ThreadPool deliberately exposes only parallel_for: its shutdown joins
// workers *without draining queued tasks*, and at GEO_THREADS=1 it has no
// workers at all, so fire-and-forget work submitted to the pool can be
// silently dropped (ScopedThreads churn) or never overlap anything. The
// AsyncLane is the complement: one dedicated thread, FIFO order, and a
// destructor that drains every submitted task before joining — a submitted
// task always runs exactly once, and its future always becomes ready.
//
// Tasks inherit the *submitting* thread's effective fault model
// (fault::active()), mirroring ThreadPool's propagation contract: a
// prefetch issued under a test's ScopedFaultInjection sees the same
// injected I/O faults a synchronous load would.
//
// Tasks submitted from inside a lane task run inline (no self-deadlock),
// like nested parallel_for.
#pragma once

#include <functional>
#include <future>

namespace geo::exec {

class AsyncLane {
 public:
  AsyncLane();
  ~AsyncLane();  // drains the queue, then joins

  AsyncLane(const AsyncLane&) = delete;
  AsyncLane& operator=(const AsyncLane&) = delete;

  // Enqueues `fn` to run on the lane thread (FIFO). The returned future
  // becomes ready when fn returns; an exception thrown by fn is captured
  // into the future. Thread-safe.
  std::future<void> submit(std::function<void()> fn);

  // Tasks submitted and not yet finished.
  std::size_t pending() const;

  // The process-wide I/O lane (store prefetch, background scrub). Created
  // on first use; lives for the process.
  static AsyncLane& io();

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace geo::exec
