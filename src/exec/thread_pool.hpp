// Work-stealing thread pool behind the GEO_THREADS knob.
//
// The pool is the single concurrency primitive for the stack: the machine's
// tile dispatch (exec::ParallelConvRunner), weight/activation stream
// generation, and the bench harness's sweep-point fan-out all funnel through
// `parallel_for`. Design constraints, in priority order:
//
//   1. Determinism. `parallel_for` never changes *what* work runs, only
//      *where*; callers are responsible for making their iterations
//      order-independent (disjoint writes, commutative integer reductions).
//      With that contract held, every thread count produces byte-identical
//      results, and GEO_THREADS=1 executes the caller's loop inline — the
//      pool is never touched, so single-threaded runs are bit-identical to
//      builds without the pool.
//   2. No surprise nesting. A `parallel_for` issued from inside another
//      `parallel_for` (any thread) runs inline on the issuing thread; the
//      pool never deadlocks on itself and inner loops inherit the outer
//      iteration's thread-local state (notably fault::ScopedFaultInjection).
//   3. Fail-closed. An exception thrown by an iteration cancels the
//      remaining iterations; the first exception (in completion order) is
//      rethrown on the calling thread. Worker threads never die.
//
//   GEO_THREADS=<n>   pool size including the calling thread; default is
//                     hardware_concurrency, clamped to [1, 256]. Parsed via
//                     core::env_int (malformed values warn once, then the
//                     default applies).
//
// Scheduling is work-stealing over per-worker deques: submitters deal
// batches round-robin, owners pop LIFO, idle workers steal FIFO from
// victims. The calling thread participates in its own batch, so a pool of
// size N runs N-1 worker threads.
#pragma once

#include <cstdint>
#include <functional>

namespace geo::exec {

// The GEO_THREADS value (or hardware_concurrency when unset), clamped to
// [1, kMaxThreads]. Re-read on every call; the process pool snapshots it at
// first use and on ScopedThreads overrides.
int default_threads();

inline constexpr int kMaxThreads = 256;

class ThreadPool {
 public:
  // A pool of `threads` total lanes (callers count as one; `threads - 1`
  // worker threads are spawned). threads < 1 is clamped to 1.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return size_; }

  // Runs fn(0) .. fn(n-1) across the pool and the calling thread, returning
  // once every iteration finished (or was cancelled by a thrown exception,
  // which is rethrown here). Iterations are claimed in contiguous blocks of
  // `grain` (<= 0 picks a block size that gives each lane several blocks).
  // Runs inline — without touching the pool — when n <= 1, size() == 1, or
  // the caller is already inside a parallel_for.
  void parallel_for(std::int64_t n, std::int64_t grain,
                    const std::function<void(std::int64_t)>& fn);
  void parallel_for(std::int64_t n,
                    const std::function<void(std::int64_t)>& fn) {
    parallel_for(n, 0, fn);
  }

  // The process-wide pool, created on first use with default_threads()
  // lanes. Thread-safe.
  static ThreadPool& instance();

  // True when the calling thread is executing a parallel_for iteration
  // (worker or participating caller); nested loops run inline.
  static bool in_parallel_region();

 private:
  struct Impl;
  Impl* impl_;
  int size_;
};

// Test hook: temporarily resizes the process-wide pool (joining and
// respawning its workers), restoring the previous size on destruction. Lets
// the determinism suite run the same workload at GEO_THREADS=1,2,8 within
// one process. Not for concurrent use — resize only from a quiesced main
// thread.
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads);
  ~ScopedThreads();
  ScopedThreads(const ScopedThreads&) = delete;
  ScopedThreads& operator=(const ScopedThreads&) = delete;

 private:
  int prev_;
};

// Convenience forwarding to the process pool.
inline void parallel_for(std::int64_t n, std::int64_t grain,
                         const std::function<void(std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(n, grain, fn);
}
inline void parallel_for(std::int64_t n,
                         const std::function<void(std::int64_t)>& fn) {
  ThreadPool::instance().parallel_for(n, 0, fn);
}

}  // namespace geo::exec
