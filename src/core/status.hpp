// geo::Status / geo::StatusOr — structured, recoverable errors for the
// "expected failure" paths of the stack (malformed programs, shape
// mismatches, corrupted artifacts), as opposed to programming errors which
// keep throwing.
//
// Conventions (see README "Error handling"):
//   * APIs named `try_*` or `validate*` return Status/StatusOr and never
//     throw on bad input.
//   * Legacy throwing APIs (`run_conv`, `Instruction::parse`, ...) are kept
//     for convenience and are implemented on top of the Status layer; the
//     exception message is the Status message.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace geo {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    // caller passed malformed input
  kFailedPrecondition, // object/system state does not allow the operation
  kOutOfRange,         // value outside its representable/legal range
  kDataLoss,           // results were produced but are unusable (fail closed)
  kInternal,           // invariant violation inside the library
  kResourceExhausted,  // a bounded resource (queue slot, quota) was refused
  kDeadlineExceeded,   // the request's deadline expired before completion
  kUnavailable,        // the serving component is not accepting work
};

const char* to_string(StatusCode code) noexcept;

class Status {
 public:
  Status() = default;  // OK

  static Status invalid_argument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status failed_precondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status out_of_range(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status data_loss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status resource_exhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status deadline_exceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const noexcept { return code_ == StatusCode::kOk; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  // "<code>: <message>" (or "ok").
  std::string to_string() const;

  bool operator==(const Status& rhs) const = default;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Value-or-error. `value()` on an error state throws std::logic_error (that
// is a caller bug, not an expected failure). T need not be
// default-constructible (move-only execution handles are stored too).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {
    if (status_.ok())
      status_ = Status::internal("StatusOr constructed from OK status");
  }
  StatusOr(T value) : value_(std::move(value)) {}

  bool ok() const noexcept { return status_.ok(); }
  const Status& status() const noexcept { return status_; }

  T& value() & {
    check();
    return *value_;
  }
  const T& value() const& {
    check();
    return *value_;
  }
  T&& value() && {
    check();
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void check() const {
    if (!status_.ok())
      throw std::logic_error("StatusOr::value on error: " +
                             status_.to_string());
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace geo
