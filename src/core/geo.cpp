#include "core/geo.hpp"

#include "nn/models.hpp"

namespace geo::core {

GeoAccelerator::GeoAccelerator(GeoConfig config, const arch::TechParams& tech)
    : config_(std::move(config)), tech_(tech), sim_(config_.hw, tech_) {}

arch::AreaBreakdown GeoAccelerator::area() const {
  return arch::accelerator_area(config_.hw, tech_);
}

arch::TimingReport GeoAccelerator::timing() const {
  return arch::analyze_timing(config_.hw, tech_);
}

double GeoAccelerator::evaluate_accuracy(const std::string& model_name,
                                         const nn::Dataset& train_set,
                                         const nn::Dataset& test_set,
                                         const nn::TrainOptions& options)
    const {
  nn::Sequential net = nn::make_model(model_name, train_set.channels(),
                                      train_set.num_classes,
                                      config_.nn_config(), /*init_seed=*/42);
  return nn::train(net, train_set, test_set, options).test_accuracy;
}

}  // namespace geo::core
