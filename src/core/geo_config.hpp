// User-facing configuration of a GEO accelerator instance: a hardware
// design point plus the matching accuracy-model (training/inference)
// configuration, kept consistent by construction.
#pragma once

#include <string>

#include "arch/hw_config.hpp"
#include "nn/sc_config.hpp"

namespace geo::core {

struct GeoConfig {
  std::string name;
  arch::HwConfig hw;

  // --- factory methods for the paper's design points ----------------------

  // GEO-ULP at stream lengths {sp, s} (e.g. ulp(32, 64) = "GEO ULP-32,64").
  static GeoConfig ulp(int sp, int s);

  // GEO-LP at stream lengths {sp, s}.
  static GeoConfig lp(int sp, int s);

  // Fig. 6 design points.
  static GeoConfig base_ulp();      // Base-128,128
  static GeoConfig gen_ulp();       // GEO-GEN-128,128
  static GeoConfig gen_exec_ulp();  // GEO-GEN-EXEC-32,64

  // The nn-side model configuration that trains/evaluates networks the way
  // this hardware executes them.
  nn::ScModelConfig nn_config() const;
};

}  // namespace geo::core
