// Process-wide environment knobs: RNG seeding (GEO_SEED) and checked
// integer parsing for every numeric GEO_* variable.
//
// Every stochastic knob in the stack — the trainer's shuffle order, the
// bench model initializers, and the fault model's per-site RNG — derives its
// state through `seed_or`, so one documented environment variable reseeds
// the whole pipeline coherently:
//
//   GEO_SEED=<uint64>   master seed; unset keeps each component's historical
//                       default (bit-identical to builds before this knob)
//
// Components pass a `domain` string so different consumers of the same
// master seed stay decorrelated.
//
// Integer knobs (GEO_THREADS, GEO_RETRY, GEO_CRASH_AFTER_EPOCH, the
// GEO_BENCH_* sizes) go through `env_int`: a strict whole-string parse where
// malformed or out-of-range values are reported once per variable on stderr
// and then ignored, mirroring the `global_seed` contract. Silent `atoi`
// fallbacks (garbage -> 0, UB on overflow) are a bug; don't add new ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace geo::core {

// The GEO_SEED value, parsed once per process (empty/garbage counts as
// unset; a parse failure is reported once on stderr).
std::optional<std::uint64_t> global_seed();

// `fallback` when GEO_SEED is unset; otherwise a 64-bit value derived
// deterministically from (GEO_SEED, domain).
std::uint64_t seed_or(std::uint64_t fallback, std::string_view domain);

// Stateless 64-bit mix (splitmix64 finalizer) — shared by the seed
// derivation and the fault model's per-site RNG.
std::uint64_t mix64(std::uint64_t x) noexcept;

// Strict whole-string base-10 parses: no leading/trailing junk, no empty
// input; nullopt on any failure (including overflow). `parse_int` accepts a
// leading '-'.
std::optional<std::uint64_t> parse_uint(std::string_view text);
std::optional<std::int64_t> parse_int(std::string_view text);

// Checked integer environment knob. Returns `fallback` when `name` is unset
// or empty. A malformed value, or one outside [lo, hi], is reported once per
// variable on stderr (like global_seed) and treated as unset. The variable
// is re-read on every call so tests can vary it; only the warning is
// deduplicated.
std::int64_t env_int(const char* name, std::int64_t fallback,
                     std::int64_t lo = INT64_MIN, std::int64_t hi = INT64_MAX);

// Strict whole-string byte-size parse: a non-negative integer with an
// optional binary suffix (K/KB/KiB, M/MB/MiB, G/GB/GiB; case-insensitive,
// 1024-based). A bare number is multiplied by `unit` (1 = bytes), so knobs
// whose name bakes in a unit — GEO_STREAM_TABLE_MB, GEO_STORE_CACHE_MB —
// keep their historical plain-number meaning while newly accepting explicit
// suffixes. nullopt on any malformed input or multiply overflow.
std::optional<std::int64_t> parse_size(std::string_view text,
                                       std::int64_t unit = 1);

// Checked byte-size environment knob built on parse_size. Returns
// `fallback_bytes` when unset/empty. A malformed value, or one outside
// [lo, hi] bytes, is reported once per variable on stderr *and* recorded as
// a `config.invalid` journal entry (matching the GEO_RETRY precedent — a
// sweep whose cache silently ran on defaults must show up in postmortems),
// then treated as unset.
std::int64_t env_size(const char* name, std::int64_t fallback_bytes,
                      std::int64_t unit = 1, std::int64_t lo = 0,
                      std::int64_t hi = INT64_MAX);

}  // namespace geo::core
