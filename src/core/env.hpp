// Process-wide RNG seeding (GEO_SEED).
//
// Every stochastic knob in the stack — the trainer's shuffle order, the
// bench model initializers, and the fault model's per-site RNG — derives its
// state through `seed_or`, so one documented environment variable reseeds
// the whole pipeline coherently:
//
//   GEO_SEED=<uint64>   master seed; unset keeps each component's historical
//                       default (bit-identical to builds before this knob)
//
// Components pass a `domain` string so different consumers of the same
// master seed stay decorrelated.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace geo::core {

// The GEO_SEED value, parsed once per process (empty/garbage counts as
// unset; a parse failure is reported once on stderr).
std::optional<std::uint64_t> global_seed();

// `fallback` when GEO_SEED is unset; otherwise a 64-bit value derived
// deterministically from (GEO_SEED, domain).
std::uint64_t seed_or(std::uint64_t fallback, std::string_view domain);

// Stateless 64-bit mix (splitmix64 finalizer) — shared by the seed
// derivation and the fault model's per-site RNG.
std::uint64_t mix64(std::uint64_t x) noexcept;

}  // namespace geo::core
