#include "core/status.hpp"

namespace geo {

const char* to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kFailedPrecondition: return "failed-precondition";
    case StatusCode::kOutOfRange: return "out-of-range";
    case StatusCode::kDataLoss: return "data-loss";
    case StatusCode::kInternal: return "internal";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kDeadlineExceeded: return "deadline-exceeded";
    case StatusCode::kUnavailable: return "unavailable";
  }
  return "?";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = geo::to_string(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace geo
