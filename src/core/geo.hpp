// GeoAccelerator: the library's top-level facade.
//
// One object ties together the three views the paper evaluates:
//   * hardware estimation — area breakdown, peak throughput, timing/DVFS
//   * performance simulation — frames/s and energy/frame for a network shape
//   * accuracy — bit-level SC training/inference via the nn substrate
//
// Quickstart:
//   geo::core::GeoAccelerator acc(geo::core::GeoConfig::ulp(32, 64));
//   auto perf = acc.run(geo::arch::NetworkShape::cnn4_cifar());
//   auto area = acc.area();
//   double acc_pct = acc.evaluate_accuracy("cnn4", train_set, test_set, opts);
#pragma once

#include <string>

#include "arch/area_model.hpp"
#include "arch/perf_sim.hpp"
#include "arch/timing_model.hpp"
#include "core/geo_config.hpp"
#include "nn/dataset.hpp"
#include "nn/trainer.hpp"

namespace geo::core {

class GeoAccelerator {
 public:
  explicit GeoAccelerator(GeoConfig config,
                          const arch::TechParams& tech =
                              arch::TechParams::hvt28());

  const GeoConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }

  // --- hardware estimation -------------------------------------------------
  arch::AreaBreakdown area() const;
  arch::TimingReport timing() const;
  double peak_gops() const { return sim_.peak_gops(); }
  double peak_tops_per_watt() const { return sim_.peak_tops_per_watt(); }
  double operating_vdd() const { return sim_.hw().vdd; }

  // --- performance ---------------------------------------------------------
  arch::PerfResult run(const arch::NetworkShape& net) const {
    return sim_.simulate(net);
  }
  const arch::PerfSim& sim() const { return sim_; }

  // --- accuracy ------------------------------------------------------------
  // Builds the named model configured the way this accelerator computes,
  // trains it stream-aware on `train_set`, and returns test accuracy in
  // [0, 1]. Training cost is bit-level SC simulation: size datasets/epochs
  // accordingly.
  double evaluate_accuracy(const std::string& model_name,
                           const nn::Dataset& train_set,
                           const nn::Dataset& test_set,
                           const nn::TrainOptions& options) const;

 private:
  GeoConfig config_;
  arch::TechParams tech_;
  arch::PerfSim sim_;
};

}  // namespace geo::core
