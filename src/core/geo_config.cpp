#include "core/geo_config.hpp"

namespace geo::core {

GeoConfig GeoConfig::ulp(int sp, int s) {
  GeoConfig c;
  c.name = "GEO ULP-" + std::to_string(sp) + "," + std::to_string(s);
  c.hw = arch::HwConfig::ulp();
  c.hw.stream_len_pool = sp;
  c.hw.stream_len = s;
  return c;
}

GeoConfig GeoConfig::lp(int sp, int s) {
  GeoConfig c;
  c.name = "GEO LP-" + std::to_string(sp) + "," + std::to_string(s);
  c.hw = arch::HwConfig::lp();
  c.hw.stream_len_pool = sp;
  c.hw.stream_len = s;
  return c;
}

GeoConfig GeoConfig::base_ulp() {
  GeoConfig c;
  c.name = "Base-128,128";
  c.hw = arch::HwConfig::base_ulp();
  return c;
}

GeoConfig GeoConfig::gen_ulp() {
  GeoConfig c;
  c.name = "GEO-GEN-128,128";
  c.hw = arch::HwConfig::geo_gen_ulp();
  return c;
}

GeoConfig GeoConfig::gen_exec_ulp() {
  GeoConfig c;
  c.name = "GEO-GEN-EXEC-32,64";
  c.hw = arch::HwConfig::ulp();
  c.hw.stream_len_pool = 32;
  c.hw.stream_len = 64;
  return c;
}

nn::ScModelConfig GeoConfig::nn_config() const {
  nn::ScModelConfig c =
      nn::ScModelConfig::stochastic(hw.stream_len_pool, hw.stream_len);
  c.accum = hw.accum;
  c.sharing = hw.sharing;
  // A 16-bit unshared LFSR re-seeded per pass behaves like the paper's TRNG
  // emulation; GEO proper uses deterministic stream-length-matched LFSRs.
  c.rng = hw.lfsr_per_sng ? sc::RngKind::kTrng : sc::RngKind::kLfsr;
  c.progressive = hw.progressive;
  return c;
}

}  // namespace geo::core
