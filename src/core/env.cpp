#include "core/env.hpp"

#include <charconv>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

#include "telemetry/journal.hpp"

namespace geo::core {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::optional<std::uint64_t> global_seed() {
  static const std::optional<std::uint64_t> seed = []() -> std::optional<std::uint64_t> {
    const char* v = std::getenv("GEO_SEED");
    if (v == nullptr || v[0] == '\0') return std::nullopt;
    std::uint64_t parsed = 0;
    const char* end = v + std::strlen(v);
    const auto [ptr, ec] = std::from_chars(v, end, parsed);
    if (ec != std::errc() || ptr != end) {
      std::fprintf(stderr, "[geo] GEO_SEED='%s' is not a uint64; ignored\n",
                   v);
      return std::nullopt;
    }
    return parsed;
  }();
  return seed;
}

std::uint64_t seed_or(std::uint64_t fallback, std::string_view domain) {
  const std::optional<std::uint64_t> master = global_seed();
  if (!master.has_value()) return fallback;
  // FNV-1a over the domain, folded with the master seed.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : domain) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return mix64(*master ^ h);
}

namespace {

template <typename T>
std::optional<T> parse_whole(std::string_view text) {
  if (text.empty()) return std::nullopt;
  T parsed{};
  const char* first = text.data();
  const char* last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, parsed);
  if (ec != std::errc() || ptr != last) return std::nullopt;
  return parsed;
}

// Warn at most once per variable name, even though the value itself is
// re-read on every call (cheap, and lets tests exercise several values).
void warn_once(const char* name, const char* value, const char* what) {
  static std::mutex mu;
  static std::set<std::string>* warned = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(mu);
  if (!warned->insert(name).second) return;
  std::fprintf(stderr, "[geo] %s='%s' %s; ignored\n", name, value, what);
}

}  // namespace

std::optional<std::uint64_t> parse_uint(std::string_view text) {
  return parse_whole<std::uint64_t>(text);
}

std::optional<std::int64_t> parse_int(std::string_view text) {
  return parse_whole<std::int64_t>(text);
}

std::int64_t env_int(const char* name, std::int64_t fallback, std::int64_t lo,
                     std::int64_t hi) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  const std::optional<std::int64_t> parsed = parse_int(v);
  if (!parsed.has_value()) {
    warn_once(name, v, "is not an integer");
    return fallback;
  }
  if (*parsed < lo || *parsed > hi) {
    warn_once(name, v, "is out of range");
    return fallback;
  }
  return *parsed;
}

std::optional<std::int64_t> parse_size(std::string_view text,
                                       std::int64_t unit) {
  if (text.empty() || unit <= 0) return std::nullopt;
  // Split off a trailing alphabetic suffix; the rest must be a whole
  // non-negative integer.
  std::size_t digits = 0;
  while (digits < text.size() &&
         std::isdigit(static_cast<unsigned char>(text[digits])))
    ++digits;
  if (digits == 0) return std::nullopt;
  const std::optional<std::uint64_t> value =
      parse_whole<std::uint64_t>(text.substr(0, digits));
  if (!value.has_value()) return std::nullopt;
  std::string suffix;
  for (const char c : text.substr(digits))
    suffix.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  std::int64_t mult = unit;
  if (suffix == "b") {
    mult = 1;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    mult = 1ll << 10;
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    mult = 1ll << 20;
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    mult = 1ll << 30;
  } else if (!suffix.empty()) {
    return std::nullopt;
  }
  if (*value != 0 &&
      *value > static_cast<std::uint64_t>(INT64_MAX / mult))
    return std::nullopt;  // overflow
  return static_cast<std::int64_t>(*value) * mult;
}

std::int64_t env_size(const char* name, std::int64_t fallback_bytes,
                      std::int64_t unit, std::int64_t lo, std::int64_t hi) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback_bytes;
  const std::optional<std::int64_t> parsed = parse_size(v, unit);
  const char* what = nullptr;
  if (!parsed.has_value())
    what = "is not a size (want <uint>[K|M|G[B]|KiB|MiB|GiB])";
  else if (*parsed < lo || *parsed > hi)
    what = "is out of range";
  if (what != nullptr) {
    warn_once(name, v, what);
    // Mirror the GEO_RETRY precedent: a rejected knob must survive into
    // postmortems, not just scroll past on stderr.
    if (auto& journal = telemetry::Journal::instance(); journal.enabled())
      journal.record("config.invalid", name, {}, what);
    return fallback_bytes;
  }
  return *parsed;
}

}  // namespace geo::core
