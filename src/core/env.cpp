#include "core/env.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace geo::core {

std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::optional<std::uint64_t> global_seed() {
  static const std::optional<std::uint64_t> seed = []() -> std::optional<std::uint64_t> {
    const char* v = std::getenv("GEO_SEED");
    if (v == nullptr || v[0] == '\0') return std::nullopt;
    std::uint64_t parsed = 0;
    const char* end = v + std::strlen(v);
    const auto [ptr, ec] = std::from_chars(v, end, parsed);
    if (ec != std::errc() || ptr != end) {
      std::fprintf(stderr, "[geo] GEO_SEED='%s' is not a uint64; ignored\n",
                   v);
      return std::nullopt;
    }
    return parsed;
  }();
  return seed;
}

std::uint64_t seed_or(std::uint64_t fallback, std::string_view domain) {
  const std::optional<std::uint64_t> master = global_seed();
  if (!master.has_value()) return fallback;
  // FNV-1a over the domain, folded with the master seed.
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : domain) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return mix64(*master ^ h);
}

}  // namespace geo::core
