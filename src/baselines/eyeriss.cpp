#include "baselines/eyeriss.hpp"

#include <algorithm>
#include <cmath>

namespace geo::baselines {

double EyerissModel::area_mm2() const {
  // Per-PE footprint (datapath + RF + NoC + control share), anchored to the
  // real Eyeriss chip scaled to 28 nm (12.25 mm2 / 168 PEs at 65 nm ->
  // ~13.5k um2/PE at 8 bits) with a ~(bits)^1.8 width scaling. Reproduces
  // the paper's iso-area points: 0.59 mm2 (100 4-bit PEs + 108 KB) and
  // 9.3 mm2 (256 8-bit PEs + 512 KB + DRAM PHY).
  const double pe_um2 =
      3800.0 * std::pow(static_cast<double>(cfg_.bits) / 4.0, 1.8);
  const double logic_mm2 = cfg_.pe_count * pe_um2 * 1e-6;
  const double buffer_mm2 =
      arch::SramModel{static_cast<double>(cfg_.buffer_kb), 64, 4}.area_mm2();
  const double phy = cfg_.external_memory
                         ? arch::ExternalMemoryModel{}.phy_area_mm2
                         : 0.0;
  return logic_mm2 + buffer_mm2 + phy;
}

double EyerissModel::peak_gops() const {
  return 2.0 * cfg_.pe_count * cfg_.clock_mhz * 1e6 / 1e9;
}

double EyerissModel::peak_tops_per_watt() const {
  const double power =
      cfg_.pe_count * mac_energy_j() * cfg_.clock_mhz * 1e6;
  return peak_gops() / 1e3 / power;
}

double EyerissModel::utilization(const arch::ConvShape& shape) const {
  if (shape.hin == 1 && shape.win == 1) return 0.30;  // FC underutilization
  // Row-stationary maps kernel rows x output rows onto the array; small
  // layers strand PEs.
  const double work = static_cast<double>(shape.kh) * shape.hout();
  const double array_rows = std::sqrt(static_cast<double>(cfg_.pe_count));
  const double fit = std::min(1.0, work / array_rows);
  return std::clamp(0.55 + 0.35 * fit, 0.3, 0.9);
}

double EyerissModel::mac_energy_j() const {
  // Bits-squared datapath energy plus reuse-hierarchy overhead (RF, NoC,
  // buffer). Calibrated to the paper's frames/J anchors: 115k Fr/J on
  // CNN-4/CIFAR at 4 bits, 618 Fr/J on VGG at 8 bits (note the paper's
  // printed power row is not consistent with its own Fr/J row; we anchor on
  // the Fr/J values the headline ratios are computed from).
  const double datapath_pj = 0.10 * (cfg_.bits * cfg_.bits) / 16.0;
  const double hierarchy_pj =
      1.1 * std::pow(static_cast<double>(cfg_.bits) / 4.0, 1.5);
  return (datapath_pj + hierarchy_pj) * 1e-12 *
         arch::dynamic_energy_scale(cfg_.vdd, tech_.vdd_nominal);
}

EyerissResult EyerissModel::run(const arch::NetworkShape& net) const {
  EyerissResult r;
  double energy = 0.0;
  double ext_seconds = 0.0;
  const arch::ExternalMemoryModel ext;
  for (const auto& layer : net.layers) {
    const double macs = static_cast<double>(layer.macs());
    r.cycles += macs / (cfg_.pe_count * utilization(layer));
    energy += macs * mac_energy_j();
    if (cfg_.external_memory) {
      const double bytes =
          static_cast<double>(layer.weights()) * cfg_.bits / 8.0;
      energy += ext.access_energy_pj(bytes * 8.0) * 1e-12;
      ext_seconds += ext.transfer_seconds(bytes);
    }
  }
  r.seconds =
      std::max(r.cycles / (cfg_.clock_mhz * 1e6), ext_seconds);
  // Leakage / static overhead: ~12% of dynamic at this design point.
  energy *= 1.12;
  r.frames_per_second = 1.0 / r.seconds;
  r.energy_per_frame_j = energy;
  r.frames_per_joule = 1.0 / energy;
  r.average_power_w = energy / r.seconds;
  return r;
}

}  // namespace geo::baselines
