// ACOUSTIC [5] comparison point: an all-OR, split-unipolar SC accelerator
// sized to the same memory and compute as GEO, with none of GEO's
// generation/execution optimizations and longer streams to stay close to
// iso-accuracy (Sec. IV). Reuses the GEO performance simulator with the
// optimizations disabled — the same methodology the paper uses ("we use the
// same simulation framework, ensuring consistent results").
#pragma once

#include "arch/perf_sim.hpp"
#include "nn/sc_config.hpp"

namespace geo::baselines {

class AcousticModel {
 public:
  // ULP-class instance at the given stream length (paper uses 128/256).
  static AcousticModel ulp(int stream_len = 128) {
    return AcousticModel(arch::HwConfig::acoustic_ulp(stream_len));
  }

  static AcousticModel lp(int stream_len = 256) {
    return AcousticModel(arch::HwConfig::acoustic_lp(stream_len));
  }

  explicit AcousticModel(const arch::HwConfig& hw) : sim_(hw) {}

  arch::PerfResult run(const arch::NetworkShape& net) const {
    return sim_.simulate(net);
  }

  double area_mm2() const {
    return arch::accelerator_area(sim_.hw(), arch::TechParams::hvt28())
        .total();
  }

  double peak_gops() const { return sim_.peak_gops(); }
  double peak_tops_per_watt() const { return sim_.peak_tops_per_watt(); }

  const arch::PerfSim& sim() const { return sim_; }

  // The accuracy-model configuration matching this hardware: all-OR
  // accumulation with unshared generation (ACOUSTIC does not co-train for
  // shared deterministic seeds).
  nn::ScModelConfig nn_config() const {
    nn::ScModelConfig c = nn::ScModelConfig::stochastic(
        sim_.hw().stream_len_pool, sim_.hw().stream_len);
    c.accum = nn::AccumMode::kOr;
    c.sharing = sc::Sharing::kNone;
    c.rng = sc::RngKind::kLfsr;
    return c;
  }

 private:
  arch::PerfSim sim_;
};

}  // namespace geo::baselines
