// Published numbers for comparison points we cannot re-simulate (the paper
// also quotes these works' self-reported results): SCOPE [2], SM-SC [1],
// Conv-RAM [32], MDL-CNN [33]. All values as printed in Tables I-III of the
// GEO paper, already scaled to 28 nm where the paper did so.
#pragma once

namespace geo::baselines::reported {

struct ReportedPoint {
  const char* name;
  double voltage_v;
  double area_mm2;
  double power_mw;
  double clock_mhz;
  double peak_gops;
  double peak_tops_per_watt;
};

// Table II comparison points (mixed-signal / in-memory, ULP class).
inline constexpr ReportedPoint kConvRam{
    "Conv-RAM [32]", 0.9, 0.02, 0.016, 364, 10.7, 44.2};
inline constexpr ReportedPoint kMdlCnn{
    "MDL-CNN [33]", 0.537, 0.06, 0.02, 25, 0.365, 18.2};

// Table III comparison points (LP class).
inline constexpr ReportedPoint kSmSc{
    "SM-SC [1]", 0.9, 0.0, 0.0, 1536, 1700, 0.92};
inline constexpr ReportedPoint kScope{
    "SCOPE [2]", 0.0, 273.0, 0.0, 200, 7100, 0.0};

// Accuracy rows of Table I reported by the respective papers.
inline constexpr double kScopeLenetAccuracy = 0.993;      // MNIST, 128-bit
inline constexpr double kConvRamLenetAccuracy = 0.96;     // MNIST, 7a1w
inline constexpr double kMdlCnnLenetAccuracy = 0.984;     // MNIST, 4a1w
inline constexpr double kSmScCifarAccuracy = 0.80;        // CIFAR-10, 128-bit

// Frame rates the paper lists for the mixed-signal points on LeNet-5-class
// CNNs (Table II).
inline constexpr double kConvRamLenetFps = 15e3;
inline constexpr double kConvRamLenetFpj = 117e6;
inline constexpr double kMdlCnnLenetFps = 1e3;
inline constexpr double kMdlCnnLenetFpj = 50e6;

}  // namespace geo::baselines::reported
