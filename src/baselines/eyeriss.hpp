// Eyeriss-style fixed-point baseline [25], scaled to 4/8-bit precision and
// 28 nm, sized for iso-area comparison with GEO (Sec. IV). An analytical
// row-stationary model: throughput from PE count and per-layer utilization,
// energy from a bits-scaled per-MAC cost plus external-memory traffic.
#pragma once

#include "arch/compiler.hpp"
#include "arch/memory_model.hpp"
#include "arch/tech.hpp"

namespace geo::baselines {

struct EyerissConfig {
  int pe_count = 100;
  unsigned bits = 4;
  int buffer_kb = 108;
  double clock_mhz = 400.0;
  double vdd = 0.9;
  bool external_memory = false;

  // Iso-area counterpart of GEO-ULP (paper: 0.59 mm2, 20 mW, 80 GOPS peak).
  static EyerissConfig ulp_4bit() { return {}; }

  // Iso-area counterpart of GEO-LP (paper: 9.3 mm2, 848 mW, 204 GOPS peak).
  static EyerissConfig lp_8bit() {
    EyerissConfig c;
    c.pe_count = 256;
    c.bits = 8;
    c.buffer_kb = 512;
    c.external_memory = true;
    return c;
  }
};

struct EyerissResult {
  double cycles = 0;
  double seconds = 0;
  double frames_per_second = 0;
  double energy_per_frame_j = 0;
  double frames_per_joule = 0;
  double average_power_w = 0;
};

class EyerissModel {
 public:
  explicit EyerissModel(const EyerissConfig& cfg,
                        const arch::TechParams& tech =
                            arch::TechParams::hvt28())
      : cfg_(cfg), tech_(tech) {}

  double area_mm2() const;
  double peak_gops() const;  // 2 ops/MAC * PEs * f
  double peak_tops_per_watt() const;

  // Row-stationary utilization for a layer (convs map well; FC layers
  // under-utilize the array, as in the original design).
  double utilization(const arch::ConvShape& shape) const;

  // Energy of one MAC including the local-reuse hierarchy (RF + NoC +
  // buffer), excluding external memory.
  double mac_energy_j() const;

  EyerissResult run(const arch::NetworkShape& net) const;

  const EyerissConfig& config() const { return cfg_; }

 private:
  EyerissConfig cfg_;
  arch::TechParams tech_;
};

}  // namespace geo::baselines
