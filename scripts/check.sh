#!/usr/bin/env bash
# Local gate: the tier-1 build + test pass, then (optionally) a sanitizer
# configuration. Usage:
#
#   scripts/check.sh                # tier-1 only
#   scripts/check.sh address        # tier-1 + ASan build/test
#   scripts/check.sh undefined      # tier-1 + UBSan build/test
#   scripts/check.sh thread         # tier-1 + TSan build, exec suite at
#                                   #   GEO_THREADS=4 (the racy configuration)
#   scripts/check.sh all            # tier-1 + all three sanitizers
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"
  shift
  echo "== configure ${build_dir} ($*)"
  cmake -B "${build_dir}" -S "${repo}" "$@"
  echo "== build ${build_dir}"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== test ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

# TSan config: build everything, then drive the thread-pool paths hard —
# the exec suite plus the resilience suite at GEO_THREADS=4 (races only
# exist when tiles actually fan out across workers).
run_tsan() {
  local build_dir="${repo}/build-thread"
  echo "== configure ${build_dir} (-DGEO_SANITIZE=thread)"
  cmake -B "${build_dir}" -S "${repo}" -DGEO_SANITIZE=thread
  echo "== build ${build_dir}"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== tsan: exec suite at GEO_THREADS=4"
  GEO_THREADS=4 ctest --test-dir "${build_dir}" -L exec --output-on-failure
  echo "== tsan: resilience suite at GEO_THREADS=4 under ambient faults"
  GEO_THREADS=4 GEO_FAULTS="sram=2e-2,burst=2,ecc=secded,rng=99" \
    ctest --test-dir "${build_dir}" -L resilience --output-on-failure
}

run_config "${repo}/build"

case "${1:-}" in
  "") ;;
  address|undefined)
    run_config "${repo}/build-${1}" "-DGEO_SANITIZE=${1}"
    ;;
  thread)
    run_tsan
    ;;
  all)
    run_config "${repo}/build-address" -DGEO_SANITIZE=address
    run_config "${repo}/build-undefined" -DGEO_SANITIZE=undefined
    run_tsan
    ;;
  *)
    echo "usage: $0 [address|undefined|thread|all]" >&2
    exit 2
    ;;
esac

echo "== all checks passed"
