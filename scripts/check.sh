#!/usr/bin/env bash
# Local gate: the tier-1 build + test pass, then (optionally) a sanitizer
# configuration. Usage:
#
#   scripts/check.sh                # tier-1 only
#   scripts/check.sh address        # tier-1 + ASan build/test
#   scripts/check.sh undefined      # tier-1 + UBSan build/test
#   scripts/check.sh all            # tier-1 + both sanitizers
set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local build_dir="$1"
  shift
  echo "== configure ${build_dir} ($*)"
  cmake -B "${build_dir}" -S "${repo}" "$@"
  echo "== build ${build_dir}"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "== test ${build_dir}"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
}

run_config "${repo}/build"

case "${1:-}" in
  "") ;;
  address|undefined)
    run_config "${repo}/build-${1}" "-DGEO_SANITIZE=${1}"
    ;;
  all)
    run_config "${repo}/build-address" -DGEO_SANITIZE=address
    run_config "${repo}/build-undefined" -DGEO_SANITIZE=undefined
    ;;
  *)
    echo "usage: $0 [address|undefined|all]" >&2
    exit 2
    ;;
esac

echo "== all checks passed"
