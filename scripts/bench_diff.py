#!/usr/bin/env python3
"""Diff two trees of BENCH_*.json artifacts under per-metric tolerances.

Mirrors the in-tree C++ core (src/telemetry/bench_diff.cpp) so CI can gate
bench output against committed baselines without a built tree:

    python3 scripts/bench_diff.py bench/baselines bench_out [-v]

Exit codes: 0 no regressions, 1 regression(s) found, 2 usage/IO error.

Rules are ('glob', rel_tol, abs_tol, direction, ignore) matched first-wins
against the flattened metric path (e.g. "metrics.counters.machine.
total_cycles", "attr.layers.0.generation_cycles"). direction +1 flags
increases (cycles, energy, area), -1 flags decreases (accuracy, throughput,
ledger_ok), 0 flags any drift. Wall-clock measurements (histogram timings,
google-benchmark rows, *_ns) are ignored; everything else in a bench JSON
is a deterministic function of the model and seeds, so the default gate is
tight. Booleans flatten to 1/0; strings are skipped. Keep these rules in
sync with default_diff_rules() in src/telemetry/bench_diff.cpp.
"""

import fnmatch
import json
import pathlib
import sys

RULES = [
    ("metrics.histograms.*", 0.0, 0.0, 0, True),  # span timings (seconds)
    ("benchmarks.*", 0.0, 0.0, 0, True),          # raw google-benchmark rows
    ("*build_ns*", 0.0, 0.0, 0, True),
    ("*_wall_s*", 0.0, 0.0, 0, True),
    ("*per_s*", 0.0, 0.0, 0, True),               # measured, not simulated
    ("*_us", 0.0, 0.0, 0, True),                  # wall-clock latency (serve)
    # Run-shape diagnostics: trainer metrics only appear when the trained-
    # model cache misses, and stream-table hit/generation/fill counts depend
    # on that cache plus the pool width (GEO_THREADS). The cycle ledger and
    # attr.* gauges stay gated — deterministic at every thread count.
    ("metrics.counters.train.*", 0.0, 0.0, 0, True),
    ("metrics.gauges.train.*", 0.0, 0.0, 0, True),
    ("metrics.counters.*stream_table_*", 0.0, 0.0, 0, True),
    ("metrics.counters.*_streams_generated", 0.0, 0.0, 0, True),
    ("metrics.counters.*_buffer_fills", 0.0, 0.0, 0, True),
    ("*ledger_ok*", 0.0, 0.0, -1, False),
    # Measured speedup ratios (table-vs-tick, SIMD-vs-scalar, fused-vs-
    # materialized): wall-clock-derived, so noisy run to run, but a collapse
    # means an optimization silently stopped engaging. Gate loosely, higher
    # is better.
    # Batched-serving throughput ratio (bench/serve batch section): a
    # collapse below baseline means coalesced dispatch stopped amortizing
    # preparation. Same loose shrink-only gate as the other ratios.
    ("*batch_speedup*", 0.5, 0.0, -1, False),
    ("*speedup*", 0.5, 0.0, -1, False),
    ("*accuracy*", 0.0, 0.25, -1, False),         # percentage points
    ("*frames_per_joule*", 0.02, 0.0, -1, False),
    ("*frames_per_second*", 0.02, 0.0, -1, False),
    ("*fps*", 0.02, 0.0, -1, False),
    ("*throughput*", 0.02, 0.0, -1, False),
    ("*cycles*", 0.02, 0.0, 1, False),
    ("*energy*", 0.02, 0.0, 1, False),
    ("*joule*", 0.02, 0.0, 1, False),
    ("*area*", 0.02, 0.0, 1, False),
    ("*power*", 0.02, 0.0, 1, False),
    ("*seconds*", 0.02, 0.0, 1, False),           # simulated latency
    ("*", 0.02, 1e-12, 0, False),
]


def flatten(node, prefix=""):
    """Yield (path, value) for every numeric leaf; bools become 1/0."""
    if isinstance(node, dict):
        for key, value in node.items():
            yield from flatten(value, f"{prefix}.{key}" if prefix else key)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from flatten(value, f"{prefix}.{i}" if prefix else str(i))
    elif isinstance(node, bool):
        yield prefix, 1.0 if node else 0.0
    elif isinstance(node, (int, float)):
        yield prefix, float(node)


def match_rule(path):
    for pattern, rel, absolute, direction, ignore in RULES:
        if fnmatch.fnmatchcase(path, pattern):
            return rel, absolute, direction, ignore
    return 0.0, 0.0, 0, False


def diff_documents(base, current, verbose):
    base_flat = dict(flatten(base))
    cur_flat = dict(flatten(current))
    regressions = improvements = compared = ignored = 0
    lines = []
    for path, base_value in base_flat.items():
        rel, absolute, direction, ignore = match_rule(path)
        if ignore:
            ignored += 1
            continue
        if path not in cur_flat:
            regressions += 1
            lines.append(f"REGRESSION  {path:<60} {base_value:g} -> (missing)")
            continue
        cur_value = cur_flat[path]
        compared += 1
        tol = max(absolute, rel * abs(base_value))
        delta = cur_value - base_value
        if abs(delta) <= tol:
            if verbose:
                lines.append(f"ok          {path:<60} {base_value:g} -> {cur_value:g}")
            continue
        worse = direction == 0 or (direction > 0) == (delta > 0)
        if worse:
            regressions += 1
            lines.append(f"REGRESSION  {path:<60} {base_value:g} -> {cur_value:g}")
        else:
            improvements += 1
            lines.append(f"improvement {path:<60} {base_value:g} -> {cur_value:g}")
    for path in cur_flat:
        if path not in base_flat and verbose:
            lines.append(f"added       {path:<60} {cur_flat[path]:g}")
    lines.append(
        f"{compared} compared, {regressions} regression(s), "
        f"{improvements} improvement(s), {ignored} ignored"
    )
    return regressions, lines


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("-")]
    verbose = any(a in ("-v", "--verbose") for a in argv[1:])
    if len(args) != 2:
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: bench_diff.py BASE_DIR CURRENT_DIR [-v]", file=sys.stderr)
        return 2
    base_dir, cur_dir = pathlib.Path(args[0]), pathlib.Path(args[1])
    if not base_dir.is_dir() or not cur_dir.is_dir():
        print(f"bench_diff: {base_dir} and {cur_dir} must be directories",
              file=sys.stderr)
        return 2

    base_files = sorted(base_dir.glob("BENCH_*.json"))
    if not base_files:
        print(f"bench_diff: no BENCH_*.json under {base_dir}", file=sys.stderr)
        return 2

    total_regressions = 0
    for base_file in base_files:
        cur_file = cur_dir / base_file.name
        print(f"-- {base_file} vs {cur_file}")
        if not cur_file.exists():
            print("REGRESSION  missing from current tree")
            total_regressions += 1
            continue
        try:
            base = json.loads(base_file.read_text())
            current = json.loads(cur_file.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"REGRESSION  unparseable document: {err}")
            total_regressions += 1
            continue
        regressions, lines = diff_documents(base, current, verbose)
        print("\n".join(lines))
        total_regressions += regressions

    extras = {p.name for p in cur_dir.glob("BENCH_*.json")} - {
        p.name for p in base_files
    }
    for name in sorted(extras):
        print(f"-- {name}: only in current tree (no baseline; not gated)")

    print(f"== {len(base_files)} file(s): {total_regressions} regression(s)")
    return 0 if total_regressions == 0 else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
