#!/usr/bin/env bash
# Kill-and-resume smoke test (docs/RESILIENCE.md): trains the example LeNet
# with epoch checkpoints, kills the process mid-run via GEO_CRASH_AFTER_EPOCH
# (exit 42), resumes it, and requires the resumed run's final weight
# fingerprint to be bit-identical to an uninterrupted control run.
#
#   scripts/resume_smoke.sh [build_dir] [epochs]
set -uo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build="${1:-${repo}/build}"
epochs="${2:-4}"
driver="${build}/examples/example_geo_resilience"

if [[ ! -x "${driver}" ]]; then
  echo "resume_smoke: ${driver} not built" >&2
  exit 2
fi

workdir="$(mktemp -d)"
trap 'rm -rf "${workdir}"' EXIT

fingerprint() { sed -n 's/^weights_crc32 //p' "$1"; }

echo "== control run (no checkpoints)"
GEO_CHECKPOINT_DIR= GEO_CRASH_AFTER_EPOCH= \
  "${driver}" --train "${epochs}" > "${workdir}/control.out"
control="$(fingerprint "${workdir}/control.out")"
[[ -n "${control}" ]] || { echo "resume_smoke: control run printed no fingerprint" >&2; exit 1; }

echo "== interrupted run (killed after epoch 2)"
GEO_CHECKPOINT_DIR="${workdir}/ckpt" GEO_CRASH_AFTER_EPOCH=2 \
  "${driver}" --train "${epochs}" > "${workdir}/killed.out"
status=$?
if [[ "${status}" -ne 42 ]]; then
  echo "resume_smoke: expected the interrupted run to exit 42, got ${status}" >&2
  exit 1
fi
[[ -f "${workdir}/ckpt/resume_smoke.ckpt" ]] || { echo "resume_smoke: no snapshot written before the kill" >&2; exit 1; }

echo "== resumed run"
GEO_CHECKPOINT_DIR="${workdir}/ckpt" GEO_CRASH_AFTER_EPOCH= \
  "${driver}" --train "${epochs}" > "${workdir}/resumed.out" || exit 1
resumed="$(fingerprint "${workdir}/resumed.out")"
resumed_from="$(sed -n 's/^resumed_from_epoch //p' "${workdir}/resumed.out")"

if [[ "${resumed_from}" -lt 1 ]]; then
  echo "resume_smoke: resumed run did not pick up a snapshot (resumed_from_epoch=${resumed_from})" >&2
  exit 1
fi
if [[ "${resumed}" != "${control}" ]]; then
  echo "resume_smoke: weight fingerprints differ: resumed=${resumed} control=${control}" >&2
  exit 1
fi

echo "== resume smoke passed: resumed from epoch ${resumed_from}, weights_crc32 ${resumed}"
