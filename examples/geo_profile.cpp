// Telemetry demonstration driver: exercises every instrumented subsystem
// (GeoMachine, PerfSim, Compiler, the training loop) and writes the trace
// and metrics artifacts requested through the environment:
//
//   GEO_TRACE=trace.json GEO_METRICS=metrics.json GEO_JOURNAL=journal.jsonl \
//     ./geo_profile
//
// Open trace.json in Perfetto (https://ui.perfetto.dev) or chrome://tracing
// to see the per-pass machine spans, the machine.tile spans fanned out to
// geo-worker-N tracks (with flow arrows back to the submitting layer span),
// and the per-layer perfsim spans. journal.jsonl collects the structured
// runtime events (stream-table builds, checkpoint commits, resilience
// retries). With the variables unset the run still prints the in-process
// metrics, attribution and journal summaries; see docs/OBSERVABILITY.md.
#include <cstdio>
#include <random>
#include <vector>

#include "arch/attribution.hpp"
#include "arch/machine.hpp"
#include "arch/perf_sim.hpp"
#include "arch/report.hpp"
#include "exec/thread_pool.hpp"
#include "nn/dataset.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "telemetry/telemetry.hpp"

namespace {

// Runs one conv layer on the cycle-counting machine with random operands.
void profile_machine(const geo::arch::ConvShape& shape, std::uint64_t salt) {
  using namespace geo;
  arch::GeoMachine machine(arch::HwConfig::ulp());
  std::mt19937 rng(static_cast<unsigned>(salt));
  std::uniform_real_distribution<float> wdist(-0.6f, 0.6f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = adist(rng);
  std::vector<float> scale(static_cast<std::size_t>(shape.cout), 0.5f);
  std::vector<float> shift(static_cast<std::size_t>(shape.cout), 0.1f);
  const arch::MachineResult r =
      machine.run_conv(shape, weights, input, scale, shift, salt);
  std::printf("  machine %-8s %4lld passes  %8lld cycles\n",
              shape.name.c_str(), static_cast<long long>(r.stats.passes),
              static_cast<long long>(r.stats.total_cycles));
}

}  // namespace

int main() {
  using namespace geo;
  auto& tracer = telemetry::Tracer::instance();
  auto& journal = telemetry::Journal::instance();
  std::printf("geo_profile | tracing %s, metrics export %s, journal %s\n\n",
              tracer.enabled() ? "ON (GEO_TRACE)" : "off (set GEO_TRACE)",
              std::getenv("GEO_METRICS") != nullptr
                  ? "ON (GEO_METRICS)"
                  : "off (set GEO_METRICS)",
              journal.enabled() ? "ON (GEO_JOURNAL)"
                                : "off (set GEO_JOURNAL)");

  // 1) Cycle-accurate machine: a couple of CNN-4-sized layers. Tiles fan
  //    out to the process pool, so with tracing on each machine.tile span
  //    lands on a geo-worker-N track with a flow arrow from the submitting
  //    run_conv span. GEO_THREADS overrides the pool width; default to a
  //    4-lane pool so the worker tracks show up even without it.
  const bool pool_overridden = std::getenv("GEO_THREADS") != nullptr;
  std::printf("[1/3] GeoMachine per-pass spans (pool: %s)\n",
              pool_overridden ? "GEO_THREADS" : "4 lanes");
  {
    exec::ScopedThreads pool(pool_overridden ? exec::ThreadPool::instance().size()
                                             : 4);
    profile_machine(arch::ConvShape::conv("conv1", 3, 32, 16, 5, 2, true), 1);
    profile_machine(arch::ConvShape::conv("conv2", 16, 16, 16, 5, 2, false), 2);
  }

  // 2) Analytical performance simulator over the full CNN-4 network
  //    (compiler spans come from the embedded compile step).
  std::printf("\n[2/3] PerfSim per-layer spans\n");
  const arch::PerfSim sim(arch::HwConfig::ulp());
  const arch::PerfResult perf = sim.simulate(arch::NetworkShape::cnn4_cifar());
  std::printf("  cnn4_cifar: %.0f cycles, %.1f frames/s, %.2e J/frame\n",
              perf.cycles, perf.frames_per_second, perf.energy_per_frame_j);

  // 3) A short float-mode training run for the train.* spans and gauges.
  std::printf("\n[3/3] Trainer per-epoch spans\n");
  const nn::Dataset train_set = nn::make_dataset("digits", 64, 1);
  const nn::Dataset test_set = nn::make_dataset("digits", 32, 2);
  nn::Sequential net = nn::make_model("lenet5", train_set.channels(), 10,
                                      nn::ScModelConfig::float_model(), 42);
  nn::TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 16;
  const nn::TrainResult tr = nn::train(net, train_set, test_set, opts);
  std::printf("  lenet5/digits: train acc %.1f%%, test acc %.1f%%\n",
              tr.final_train_accuracy * 100.0, tr.test_accuracy * 100.0);

  // Metrics summary: every histogram the run populated.
  std::printf("\nmetrics summary (timings in ms):\n");
  arch::Table t({"metric", "count", "p50", "p95", "p99", "total"});
  for (const auto& m : telemetry::MetricsRegistry::instance().snapshot()) {
    if (m.kind != telemetry::MetricKind::kHistogram) continue;
    t.add_row({m.name, std::to_string(m.hist.count),
               arch::Table::num(m.hist.p50 * 1e3, 3),
               arch::Table::num(m.hist.p95 * 1e3, 3),
               arch::Table::num(m.hist.p99 * 1e3, 3),
               arch::Table::num(m.hist.sum * 1e3, 1)});
  }
  t.print();

  // Cycle attribution: where every machine cycle went, per layer (the
  // runtime Fig. 6 breakdown; benches attach the same table to their JSON).
  std::printf("\ncycle attribution (per layer):\n");
  arch::Table attr_table(
      {"layer", "generation", "execution", "stall", "memory", "total"});
  auto attr_row = [&attr_table](const std::string& name,
                                const geo::arch::CycleAttribution& a) {
    attr_table.add_row({name, std::to_string(a.generation_cycles),
                        std::to_string(a.execution_cycles),
                        std::to_string(a.stall_cycles),
                        std::to_string(a.memory_cycles),
                        std::to_string(a.total_cycles)});
  };
  const auto& ledger = arch::AttributionLedger::instance();
  for (const auto& [name, attr] : ledger.layers()) attr_row(name, attr);
  attr_row("TOTAL", ledger.total());
  attr_table.print();

  if (tracer.enabled())
    std::printf("\ntrace: %lld events buffered\n",
                static_cast<long long>(tracer.event_count()));
  if (journal.enabled())
    std::printf("journal: %lld entries buffered (%lld dropped by ring wrap)\n",
                static_cast<long long>(journal.event_count()),
                static_cast<long long>(journal.dropped()));

  // Flush the trace and export metrics now rather than relying on the
  // static-destruction path.
  telemetry::shutdown();
  return 0;
}
