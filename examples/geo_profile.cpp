// Telemetry demonstration driver: exercises every instrumented subsystem
// (GeoMachine, PerfSim, Compiler, the training loop) and writes the trace
// and metrics artifacts requested through the environment:
//
//   GEO_TRACE=trace.json GEO_METRICS=metrics.json ./geo_profile
//
// Open trace.json in Perfetto (https://ui.perfetto.dev) or chrome://tracing
// to see the per-pass machine spans and per-layer perfsim spans. With the
// variables unset the run still prints the in-process metrics summary; see
// docs/OBSERVABILITY.md.
#include <cstdio>
#include <random>
#include <vector>

#include "arch/machine.hpp"
#include "arch/perf_sim.hpp"
#include "arch/report.hpp"
#include "nn/dataset.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "telemetry/telemetry.hpp"

namespace {

// Runs one conv layer on the cycle-counting machine with random operands.
void profile_machine(const geo::arch::ConvShape& shape, std::uint64_t salt) {
  using namespace geo;
  arch::GeoMachine machine(arch::HwConfig::ulp());
  std::mt19937 rng(static_cast<unsigned>(salt));
  std::uniform_real_distribution<float> wdist(-0.6f, 0.6f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = adist(rng);
  std::vector<float> scale(static_cast<std::size_t>(shape.cout), 0.5f);
  std::vector<float> shift(static_cast<std::size_t>(shape.cout), 0.1f);
  const arch::MachineResult r =
      machine.run_conv(shape, weights, input, scale, shift, salt);
  std::printf("  machine %-8s %4lld passes  %8lld cycles\n",
              shape.name.c_str(), static_cast<long long>(r.stats.passes),
              static_cast<long long>(r.stats.total_cycles));
}

}  // namespace

int main() {
  using namespace geo;
  auto& tracer = telemetry::Tracer::instance();
  std::printf("geo_profile | tracing %s, metrics export %s\n\n",
              tracer.enabled() ? "ON (GEO_TRACE)" : "off (set GEO_TRACE)",
              std::getenv("GEO_METRICS") != nullptr
                  ? "ON (GEO_METRICS)"
                  : "off (set GEO_METRICS)");

  // 1) Cycle-accurate machine: a couple of CNN-4-sized layers.
  std::printf("[1/3] GeoMachine per-pass spans\n");
  profile_machine(arch::ConvShape::conv("conv1", 3, 32, 16, 5, 2, true), 1);
  profile_machine(arch::ConvShape::conv("conv2", 16, 16, 16, 5, 2, false), 2);

  // 2) Analytical performance simulator over the full CNN-4 network
  //    (compiler spans come from the embedded compile step).
  std::printf("\n[2/3] PerfSim per-layer spans\n");
  const arch::PerfSim sim(arch::HwConfig::ulp());
  const arch::PerfResult perf = sim.simulate(arch::NetworkShape::cnn4_cifar());
  std::printf("  cnn4_cifar: %.0f cycles, %.1f frames/s, %.2e J/frame\n",
              perf.cycles, perf.frames_per_second, perf.energy_per_frame_j);

  // 3) A short float-mode training run for the train.* spans and gauges.
  std::printf("\n[3/3] Trainer per-epoch spans\n");
  const nn::Dataset train_set = nn::make_dataset("digits", 64, 1);
  const nn::Dataset test_set = nn::make_dataset("digits", 32, 2);
  nn::Sequential net = nn::make_model("lenet5", train_set.channels(), 10,
                                      nn::ScModelConfig::float_model(), 42);
  nn::TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 16;
  const nn::TrainResult tr = nn::train(net, train_set, test_set, opts);
  std::printf("  lenet5/digits: train acc %.1f%%, test acc %.1f%%\n",
              tr.final_train_accuracy * 100.0, tr.test_accuracy * 100.0);

  // Metrics summary: every histogram the run populated.
  std::printf("\nmetrics summary (timings in ms):\n");
  arch::Table t({"metric", "count", "p50", "p95", "p99", "total"});
  for (const auto& m : telemetry::MetricsRegistry::instance().snapshot()) {
    if (m.kind != telemetry::MetricKind::kHistogram) continue;
    t.add_row({m.name, std::to_string(m.hist.count),
               arch::Table::num(m.hist.p50 * 1e3, 3),
               arch::Table::num(m.hist.p95 * 1e3, 3),
               arch::Table::num(m.hist.p99 * 1e3, 3),
               arch::Table::num(m.hist.sum * 1e3, 1)});
  }
  t.print();

  if (tracer.enabled())
    std::printf("\ntrace: %lld events buffered\n",
                static_cast<long long>(tracer.event_count()));

  // Flush the trace and export metrics now rather than relying on the
  // static-destruction path.
  telemetry::shutdown();
  return 0;
}
