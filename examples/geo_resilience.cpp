// Resilience walkthrough (docs/RESILIENCE.md): runs one convolution layer
// through the detect -> retry -> degrade runtime under a defect model (which
// exhausts the retry budget and bottoms out in the fixed-point reference)
// and under a transient model (which recovers), then prints the resilience
// report.
//
//   ./example_geo_resilience                       # built-in demo specs
//   ./example_geo_resilience 'sram=1e-3,ecc=secded,transient=1,rng=7'
//   GEO_RETRY='retries=4,backoff=64' ./example_geo_resilience
//
// The --train mode is the crash-safe checkpoint/resume driver used by
// scripts/resume_smoke.sh: it trains a small LeNet with epoch snapshots in
// GEO_CHECKPOINT_DIR and prints a CRC-32 fingerprint of the final weights
// (kill it mid-run with GEO_CRASH_AFTER_EPOCH=<n>, rerun, same fingerprint).
//
//   GEO_CHECKPOINT_DIR=ckpt ./example_geo_resilience --train [epochs]
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "arch/report.hpp"
#include "fault/fault_model.hpp"
#include "nn/dataset.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "resilience/crc32.hpp"
#include "resilience/resilience.hpp"

namespace {

int run_training(int epochs) {
  using namespace geo;
  const nn::Dataset train_set = nn::make_digits(192, 1);
  const nn::Dataset test_set = nn::make_digits(96, 2);
  nn::Sequential net =
      nn::make_lenet5(1, 10, nn::ScModelConfig::float_model(), 7);
  nn::TrainOptions o;
  o.epochs = epochs;
  o.batch_size = 16;
  o.checkpoint_key = "resume_smoke";  // under GEO_CHECKPOINT_DIR
  const nn::TrainResult r = nn::train(net, train_set, test_set, o);

  std::uint32_t crc = 0;
  for (nn::Param* p : net.params())
    crc = resilience::crc32(p->value.data().data(),
                            p->value.data().size() * sizeof(float), crc);
  std::printf("resumed_from_epoch %d\ncheckpoints_written %d\n"
              "test_accuracy %.4f\nweights_crc32 %08x\n",
              r.resumed_from_epoch, r.checkpoints_written, r.test_accuracy,
              crc);
  return 0;
}

int run_layer(geo::resilience::ResilientExecutor& exec,
              const geo::fault::FaultConfig& cfg, const std::string& label) {
  using namespace geo;
  const arch::ConvShape shape =
      arch::ConvShape::conv(label.c_str(), 4, 6, 5, 3, 1, false);
  std::mt19937 rng(77);
  std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = adist(rng);
  const std::vector<float> ones(static_cast<std::size_t>(shape.cout), 1.0f);
  const std::vector<float> zeros(static_cast<std::size_t>(shape.cout), 0.0f);

  fault::ScopedFaultInjection inject(cfg);
  auto r = exec.run_conv(shape, weights, input, ones, zeros, 9, label);
  if (!r.ok()) {
    std::fprintf(stderr, "%s: %s\n", label.c_str(),
                 r.status().to_string().c_str());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geo;

  if (argc > 1 && std::strcmp(argv[1], "--train") == 0)
    return run_training(argc > 2 ? std::atoi(argv[2]) : 4);

  const resilience::RetryPolicy policy = resilience::RetryPolicy::from_env();
  std::printf("retry policy: %s\n\n", policy.to_string().c_str());
  resilience::ResilientExecutor exec(arch::HwConfig::ulp(), policy);

  if (argc > 1) {
    auto parsed = fault::FaultConfig::parse(argv[1]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bad spec: %s\n",
                   parsed.status().to_string().c_str());
      return 1;
    }
    if (run_layer(exec, *parsed, "custom") != 0) return 1;
  } else {
    // Defect model: the same SRAM words misbehave on every retry, so the
    // budget exhausts and the layer degrades to the reference rung.
    fault::FaultConfig defect;
    defect.sram_error_rate = 2e-2;
    defect.sram_burst = 2;
    defect.ecc = fault::EccMode::kSecded;
    defect.rng_seed = 99;
    if (run_layer(exec, defect, "defect") != 0) return 1;

    // Transient model: each access re-rolls, so a retry from the input
    // snapshot comes back clean and the layer recovers on its native rung.
    fault::FaultConfig transient = defect;
    transient.sram_error_rate = 2e-4;
    transient.transient = true;
    if (run_layer(exec, transient, "transient") != 0) return 1;
  }

  const resilience::ResilienceReport& rep = exec.report();
  arch::Table table({"layer", "rung", "retried", "recovered", "retries",
                     "retry cycles", "ledger"});
  for (const auto& o : rep.layers)
    table.add_row({o.layer, resilience::to_string(o.rung),
                   std::to_string(o.tiles_retried),
                   std::to_string(o.tiles_recovered),
                   std::to_string(o.retries),
                   std::to_string(o.retry_cycles()),
                   o.ledger_ok ? "ok" : "MISMATCH"});
  table.print();
  std::printf("\n%s\n", rep.summary().c_str());
  return rep.ledger_ok() ? 0 : 1;
}
