// Stream-aware training walkthrough: trains the same CNN-4 under three
// compute modes (float, 4-bit fixed point, GEO stochastic) on the synthetic
// SVHN stand-in and compares test accuracy — a miniature of Table I.
//
//   ./example_train_sc_cnn [train_count] [epochs]
#include <cstdio>
#include <cstdlib>

#include "nn/dataset.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

int main(int argc, char** argv) {
  using namespace geo::nn;

  const int train_count = argc > 1 ? std::atoi(argv[1]) : 256;
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 8;

  const Dataset train_set = make_svhn_syn(train_count, 1);
  const Dataset test_set = make_svhn_syn(train_count / 2, 2);
  TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 16;
  opts.verbose = true;

  struct Row {
    const char* name;
    ScModelConfig cfg;
  };
  ScModelConfig sc_geo = ScModelConfig::stochastic(32, 64);
  const Row rows[] = {
      {"float", ScModelConfig::float_model()},
      {"fixed-point 4-bit", ScModelConfig::fixed_point(4)},
      {"GEO SC {32,64} (LFSR/moderate/PBW)", sc_geo},
  };

  std::printf("SVHN-syn, CNN-4, %d train images, %d epochs\n\n", train_count,
              epochs);
  for (const Row& row : rows) {
    std::printf("-- %s --\n", row.name);
    Sequential net = make_cnn4(train_set.channels(), 10, row.cfg, 42);
    const TrainResult r = train(net, train_set, test_set, opts);
    std::printf("   test accuracy: %.1f%%\n\n", r.test_accuracy * 100.0);
  }
  return 0;
}
