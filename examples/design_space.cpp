// Design-space exploration: sweeps stream lengths and optimization toggles
// across the ULP design point and prints the area / latency / energy
// landscape — the kind of study Sec. IV's Fig. 6 distills.
//
//   ./example_design_space
#include <cstdio>

#include "arch/report.hpp"
#include "core/geo.hpp"

int main() {
  using namespace geo;
  const arch::NetworkShape net = arch::NetworkShape::cnn4_svhn();

  arch::Table table({"configuration", "area mm2", "frames/s", "uJ/frame",
                     "avg mW", "vdd"});

  auto add = [&](const core::GeoConfig& cfg) {
    const core::GeoAccelerator acc(cfg);
    const arch::PerfResult perf = acc.run(net);
    table.add_row({cfg.name, arch::Table::num(acc.area().total(), 3),
                   arch::Table::si(perf.frames_per_second),
                   arch::Table::num(perf.energy_per_frame_j * 1e6, 2),
                   arch::Table::num(perf.average_power_w * 1e3, 1),
                   arch::Table::num(perf.vdd, 2)});
  };

  // Fig. 6 ladder.
  add(core::GeoConfig::base_ulp());
  add(core::GeoConfig::gen_ulp());
  add(core::GeoConfig::gen_exec_ulp());

  // Stream-length sweep on the full GEO ULP.
  for (const auto& [sp, s] :
       {std::pair{16, 32}, {32, 64}, {64, 128}, {128, 128}})
    add(core::GeoConfig::ulp(sp, s));

  // Single-optimization ablations on ULP-32,64.
  core::GeoConfig no_prog = core::GeoConfig::ulp(32, 64);
  no_prog.name = "ULP-32,64 -progressive";
  no_prog.hw.progressive = false;
  add(no_prog);

  core::GeoConfig no_shadow = core::GeoConfig::ulp(32, 64);
  no_shadow.name = "ULP-32,64 -shadow";
  no_shadow.hw.shadow_buffers = false;
  add(no_shadow);

  core::GeoConfig no_nm = core::GeoConfig::ulp(32, 64);
  no_nm.name = "ULP-32,64 -nearmem";
  no_nm.hw.near_memory = false;
  add(no_nm);

  core::GeoConfig no_pipe = core::GeoConfig::ulp(32, 64);
  no_pipe.name = "ULP-32,64 -pipeline";
  no_pipe.hw.pipeline_stage = false;
  add(no_pipe);

  std::printf("Design-space sweep on %s\n\n", net.name.c_str());
  table.print();
  return 0;
}
