// GeoMachine walkthrough: executes one convolutional layer bit-exactly on
// the modeled accelerator datapath and prints the pass schedule, reload
// behavior, and a cross-check against the bit-level SC reference layer.
//
//   ./example_machine_inspect
#include <cmath>
#include <cstdio>
#include <random>

#include "arch/machine.hpp"
#include "arch/report.hpp"
#include "nn/sc_layers.hpp"

int main() {
  using namespace geo;
  using arch::Table;

  // A CNN-4-style middle layer: 16x16x32 input, 5x5 kernels, 16 channels.
  const arch::ConvShape shape =
      arch::ConvShape::conv("conv2", 32, 16, 16, 5, 2, false);

  arch::HwConfig hw = arch::HwConfig::ulp();
  arch::GeoMachine machine(hw);

  // Random quantized operands.
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> wdist(-0.6f, 0.6f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = adist(rng);
  std::vector<float> scale(static_cast<std::size_t>(shape.cout), 0.5f);
  std::vector<float> shift(static_cast<std::size_t>(shape.cout), 0.1f);

  const arch::MachineResult r =
      machine.run_conv(shape, weights, input, scale, shift, /*salt=*/3);

  std::printf("GeoMachine | %s: %d taps, %lld outputs\n\n",
              shape.name.c_str(), shape.taps(),
              static_cast<long long>(shape.outputs()));
  Table t({"stat", "value"});
  t.add_row({"passes", std::to_string(r.stats.passes)});
  t.add_row({"compute cycles", std::to_string(r.stats.compute_cycles)});
  t.add_row({"stall cycles", std::to_string(r.stats.stall_cycles)});
  t.add_row({"near-mem cycles", std::to_string(r.stats.nearmem_cycles)});
  t.add_row({"total cycles", std::to_string(r.stats.total_cycles)});
  t.add_row({"act buffer fills", std::to_string(r.stats.act_buffer_fills)});
  t.add_row({"wgt buffer fills", std::to_string(r.stats.wgt_buffer_fills)});
  t.add_row({"psum read-add-writes", std::to_string(r.stats.psum_ops)});
  t.add_row({"near-mem BN ops", std::to_string(r.stats.bn_ops)});
  t.print();

  // Cross-check against the nn-level SC layer (identical configuration).
  std::mt19937 init(1);
  nn::ScConv2d ref(shape.cin, shape.cout, shape.kh, 1, shape.pad, init,
                   machine.layer_config(shape, 3));
  std::copy(weights.begin(), weights.end(),
            ref.weight().value.data().begin());
  nn::Tensor x({1, shape.cin, shape.hin, shape.win});
  std::copy(input.begin(), input.end(), x.data().begin());
  const nn::Tensor y = ref.forward(x, false);

  // This layer's kernel (800 taps) exceeds the 400-MAC row, so the machine
  // splits it into two slices whose OR unions accumulate in fixed point —
  // slightly *more* accurate than the single whole-kernel union of the
  // reference model. Report the divergence rather than asserting equality.
  double max_diff = 0, mean_diff = 0;
  const double L = machine.layer_config(shape, 3).stream_len;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double d = std::abs(r.counters[i] / L - y[i]);
    max_diff = std::max(max_diff, d);
    mean_diff += d;
  }
  mean_diff /= static_cast<double>(y.size());
  std::printf(
      "\ncross-check vs nn::ScConv2d (whole-kernel union): mean |diff| "
      "%.4f, max %.4f\n(kernel slicing adds implicit binary accumulation "
      "between the two 400-tap slices)\n",
      mean_diff, max_diff);
  return 0;
}
