// Dataflow explorer: per-layer memory-access accounting for the three
// dataflows of Sec. III-C on any of the paper networks, plus the compiled
// GEO instruction stream for one layer.
//
//   ./example_dataflow_explorer [cnn4|lenet5|vgg16]
#include <cstdio>
#include <cstring>

#include "arch/compiler.hpp"
#include "arch/report.hpp"

int main(int argc, char** argv) {
  using namespace geo::arch;

  NetworkShape net = NetworkShape::cnn4_cifar();
  if (argc > 1 && std::strcmp(argv[1], "lenet5") == 0)
    net = NetworkShape::lenet5();
  else if (argc > 1 && std::strcmp(argv[1], "vgg16") == 0)
    net = NetworkShape::vgg16();

  const Compiler compiler(HwConfig::ulp());

  std::printf("Per-layer memory accesses on %s (GEO ULP fabric)\n\n",
              net.name.c_str());
  Table table({"layer", "taps", "WS+nearmem", "output-stat", "input-stat",
               "OS/WS", "IS/WS"});
  AccessCounts ws_total, os_total, is_total;
  for (const auto& layer : net.layers) {
    const auto ws = compiler.plan_layer(layer, Dataflow::kWeightStationary);
    const auto os = compiler.plan_layer(layer, Dataflow::kOutputStationary);
    const auto is = compiler.plan_layer(layer, Dataflow::kInputStationary);
    ws_total += ws.accesses;
    os_total += os.accesses;
    is_total += is.accesses;
    table.add_row(
        {layer.name, std::to_string(layer.taps()),
         Table::si(static_cast<double>(ws.accesses.total())),
         Table::si(static_cast<double>(os.accesses.total())),
         Table::si(static_cast<double>(is.accesses.total())),
         Table::num(static_cast<double>(os.accesses.total()) /
                        static_cast<double>(ws.accesses.total()),
                    1),
         Table::num(static_cast<double>(is.accesses.total()) /
                        static_cast<double>(ws.accesses.total()),
                    1)});
  }
  table.add_row({"TOTAL", "",
                 Table::si(static_cast<double>(ws_total.total())),
                 Table::si(static_cast<double>(os_total.total())),
                 Table::si(static_cast<double>(is_total.total())),
                 Table::num(static_cast<double>(os_total.total()) /
                                static_cast<double>(ws_total.total()),
                            1),
                 Table::num(static_cast<double>(is_total.total()) /
                                static_cast<double>(ws_total.total()),
                            1)});
  table.print();

  std::printf("\nCompiled GEO program for layer '%s':\n\n",
              net.layers[1].name.c_str());
  const LayerPlan plan =
      compiler.plan_layer(net.layers[1], Dataflow::kWeightStationary);
  std::printf("%s", plan.program.to_text().c_str());
  std::printf("(x %lld passes, %d kernel slice(s), %d windows/pass)\n",
              static_cast<long long>(plan.passes), plan.kernel_slices,
              plan.windows_per_pass);
  return 0;
}
