// Quickstart: build a GEO accelerator, estimate its hardware, simulate a
// network, and run a (tiny) bit-level SC accuracy evaluation.
//
//   ./example_quickstart
#include <cstdio>

#include "arch/report.hpp"
#include "core/geo.hpp"

int main() {
  using namespace geo;

  // 1. Pick a design point: GEO-ULP with {sp=32, s=64} streams.
  core::GeoAccelerator acc(core::GeoConfig::ulp(32, 64));
  std::printf("== %s ==\n\n", acc.name().c_str());

  // 2. Hardware estimation.
  const arch::AreaBreakdown area = acc.area();
  std::printf("area:       %.3f mm^2 (logic %.3f + memories %.3f)\n",
              area.total(), area.logic_total(),
              area.act_memory + area.wgt_memory);
  std::printf("peak:       %.0f GOPS, %.1f TOPS/W\n", acc.peak_gops(),
              acc.peak_tops_per_watt());
  std::printf("DVFS:       pipeline cut %.0f%% of the critical path -> "
              "%.2f V at 400 MHz\n\n",
              acc.timing().critical_path_cut * 100.0, acc.operating_vdd());

  // 3. Performance simulation on the paper's CNN-4 (CIFAR-10 scale).
  const arch::PerfResult perf = acc.run(arch::NetworkShape::cnn4_cifar());
  std::printf("CNN-4/CIFAR: %.1fk frames/s, %.1f uJ/frame, %.1f mW\n\n",
              perf.frames_per_second / 1e3, perf.energy_per_frame_j * 1e6,
              perf.average_power_w * 1e3);

  // 4. Bit-level SC accuracy on the synthetic digits task (kept tiny here;
  //    see bench/table1_accuracy for the paper-style sweep).
  const nn::Dataset train_set = nn::make_digits(192, 1);
  const nn::Dataset test_set = nn::make_digits(96, 2);
  nn::TrainOptions opts;
  opts.epochs = 8;
  opts.batch_size = 16;
  std::printf("training LeNet-5 with stream-aware SC forward...\n");
  const double accuracy =
      acc.evaluate_accuracy("lenet5", train_set, test_set, opts);
  std::printf("digits test accuracy (SC, {32,64} streams): %.1f%%\n",
              accuracy * 100.0);
  return 0;
}
