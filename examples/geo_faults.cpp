// Fault-injection walkthrough: parses a GEO_FAULTS-style spec, runs one
// convolution layer clean and under the resulting fault model, and prints
// the injection ledger plus the output damage (docs/FAULT_INJECTION.md).
//
//   ./example_geo_faults                    # built-in demo spec
//   ./example_geo_faults 'sram=5e-3,ecc=parity'
//   GEO_FAULTS='stream=1e-2' ./example_geo_faults   # env knob, same model
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "arch/machine.hpp"
#include "arch/report.hpp"
#include "fault/fault_model.hpp"

int main(int argc, char** argv) {
  using namespace geo;

  const char* spec =
      argc > 1 ? argv[1] : "stream=5e-3,sram=1e-3,ecc=secded,rng=42";
  auto parsed = fault::FaultConfig::parse(spec);
  if (!parsed.ok()) {
    std::fprintf(stderr, "bad spec: %s\n", parsed.status().to_string().c_str());
    return 1;
  }
  const fault::FaultConfig cfg = std::move(parsed).value();
  std::printf("fault spec: %s\n\n", cfg.to_string().c_str());

  // A small conv layer with deterministic operands.
  const arch::ConvShape shape = arch::ConvShape::conv("demo", 8, 8, 8, 3, 1,
                                                      false);
  std::mt19937 rng(5);
  std::uniform_real_distribution<float> wdist(-0.6f, 0.6f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& a : input) a = adist(rng);
  const std::vector<float> ones(static_cast<std::size_t>(shape.cout), 1.0f);
  const std::vector<float> zeros(static_cast<std::size_t>(shape.cout), 0.0f);

  arch::GeoMachine machine(arch::HwConfig::ulp());
  arch::MachineResult clean, faulty;
  {
    fault::ScopedFaultInjection off(nullptr);
    clean = machine.run_conv(shape, weights, input, ones, zeros, 3);
  }
  fault::ScopedFaultInjection inject(cfg);
  faulty = machine.run_conv(shape, weights, input, ones, zeros, 3);

  const double L = machine.hw().stream_len;
  double mean = 0.0, worst = 0.0;
  std::size_t touched = 0;
  for (std::size_t i = 0; i < clean.counters.size(); ++i) {
    const double d =
        std::abs(faulty.counters[i] - clean.counters[i]) / L;
    mean += d;
    worst = std::max(worst, d);
    touched += faulty.counters[i] != clean.counters[i];
  }
  mean /= static_cast<double>(clean.counters.size());

  const fault::FaultStats st = inject.model().stats();
  arch::Table ledger({"event", "count"});
  ledger.add_row({"stream bits flipped",
                  std::to_string(st.stream_bits_flipped)});
  ledger.add_row({"accum bits flipped",
                  std::to_string(st.accum_bits_flipped)});
  ledger.add_row({"seed upsets", std::to_string(st.seed_upsets)});
  ledger.add_row({"sram words corrupted",
                  std::to_string(st.sram_words_corrupted)});
  ledger.add_row({"sram errors detected",
                  std::to_string(st.sram_errors_detected)});
  ledger.add_row({"sram errors corrected",
                  std::to_string(st.sram_errors_corrected)});
  ledger.add_row({"sram silent corruptions",
                  std::to_string(st.sram_silent_corruptions)});
  ledger.add_row({"sram retry cycles",
                  std::to_string(st.sram_retry_cycles)});
  ledger.add_row({"stuck-column events",
                  std::to_string(st.stuck_column_events)});
  ledger.print();

  std::printf(
      "\noutputs touched: %zu / %zu   mean |err| %.4f   worst |err| %.4f\n"
      "cycles: clean %lld, faulty %lld (SECDED retries land in stalls)\n",
      touched, clean.counters.size(), mean, worst,
      static_cast<long long>(clean.stats.total_cycles),
      static_cast<long long>(faulty.stats.total_cycles));
  return 0;
}
