# Bench binaries land in build/bench/ with nothing else, so the harness can
# execute every file in that directory. Included from the top-level
# CMakeLists (not add_subdirectory) to keep CMake's per-directory artifacts
# out of build/bench/.
set(GEO_BENCHES
  fig1_sharing
  fig2_progressive
  fig5_area
  fig6_breakdown
  table1_accuracy
  table2_ulp
  table3_lp
  ablation_generation
  ablation_dataflow
  ablation_ldseq
  ablation_pipeline
  micro_sc_kernels
  fault_sweep
  serve
  weight_store
)

foreach(name ${GEO_BENCHES})
  add_executable(bench_${name} ${CMAKE_CURRENT_LIST_DIR}/${name}.cpp)
  target_link_libraries(bench_${name} PRIVATE geo)
  set_target_properties(bench_${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench
    OUTPUT_NAME ${name})
endforeach()

target_link_libraries(bench_micro_sc_kernels PRIVATE benchmark::benchmark)
