// Shared helpers for the bench harnesses: environment-sized workloads and a
// trained-model cache so re-running benches is cheap.
//
// Environment knobs:
//   GEO_BENCH_TRAIN   training-set size          (default 256)
//   GEO_BENCH_TEST    test-set size              (default 128)
//   GEO_BENCH_EPOCHS  training epochs            (default 8)
//   GEO_BENCH_FULL    =1 adds the slow sweeps (VGG accuracy rows, ...)
//   GEO_CACHE_DIR     trained-weight cache dir   (default .geo_cache)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "nn/dataset.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"

namespace geo::bench {

inline int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline bool full_mode() { return env_int("GEO_BENCH_FULL", 0) != 0; }

struct BenchSizes {
  int train = env_int("GEO_BENCH_TRAIN", 320);
  int test = env_int("GEO_BENCH_TEST", 128);
  int epochs = env_int("GEO_BENCH_EPOCHS", 12);
};

inline std::string cache_dir() {
  const char* v = std::getenv("GEO_CACHE_DIR");
  const std::string dir = v != nullptr ? v : ".geo_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

// Trains (or loads from cache) `model_name` under `cfg` and returns test
// accuracy in percent.
inline double accuracy_percent(const std::string& model_name,
                               const nn::Dataset& train_set,
                               const nn::Dataset& test_set,
                               const nn::ScModelConfig& cfg,
                               const BenchSizes& sizes,
                               bool cache = true) {
  nn::Sequential net =
      nn::make_model(model_name, train_set.channels(), 10, cfg, 42);
  nn::TrainOptions opts;
  opts.epochs = sizes.epochs;
  if (cfg.mode == nn::ScModelConfig::Mode::kStochastic) {
    // Stochastic forward passes train best with a gentler optimizer and a
    // tighter weight range (keeps OR unions out of deep saturation).
    opts.lr = 1e-3f;
    opts.clamp_limit = 0.5f;
    if (cfg.accum == nn::AccumMode::kOr) {
      // All-OR is the most nonlinear configuration and converges slowest;
      // the paper trains everything for 1000 epochs, so at this reduced
      // budget OR configurations get gentler steps and proportionally more
      // of them.
      opts.lr = 5e-4f;
      opts.clamp_limit = 0.3f;
      opts.epochs *= 3;
    }
  }
  opts.batch_size = 16;
  if (cache) {
    opts.cache_dir = cache_dir();
    opts.cache_key = model_name + "_" + train_set.name + "_" + cfg.key() +
                     "_n" + std::to_string(train_set.count()) + "_e" +
                     std::to_string(sizes.epochs);
  }
  return nn::train(net, train_set, test_set, opts).test_accuracy * 100.0;
}

}  // namespace geo::bench
