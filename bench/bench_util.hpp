// Shared helpers for the bench harnesses: environment-sized workloads, a
// trained-model cache so re-running benches is cheap, and the machine-
// readable BENCH_<name>.json emitter every harness writes alongside its
// ASCII tables.
//
// Environment knobs (see docs/OBSERVABILITY.md):
//   GEO_BENCH_TRAIN     training-set size          (default 320)
//   GEO_BENCH_TEST      test-set size              (default 128)
//   GEO_BENCH_EPOCHS    training epochs            (default 12)
//   GEO_BENCH_FULL      =1 adds the slow sweeps (VGG accuracy rows, ...)
//   GEO_CACHE_DIR       trained-weight cache dir   (default .geo_cache)
//   GEO_BENCH_JSON_DIR  where BENCH_*.json lands   (default .)
//   GEO_BENCH_JSON      =0 disables the JSON artifacts
//   GEO_SEED            master seed; reseeds bench model init coherently
#pragma once

#include <climits>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "arch/attribution.hpp"
#include "arch/report.hpp"
#include "core/env.hpp"
#include "exec/thread_pool.hpp"
#include "nn/dataset.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "resilience/checkpoint.hpp"
#include "telemetry/telemetry.hpp"

namespace geo::bench {

// Checked parse (core::env_int): malformed values warn once on stderr and
// fall back, instead of atoi's silent garbage -> 0.
inline int env_int(const char* name, int fallback) {
  return static_cast<int>(core::env_int(name, fallback, INT_MIN, INT_MAX));
}

// Runs `n` independent sweep points across the process thread pool and
// returns fn(i)'s results in point order. Assembly stays on the caller, so
// the emitted tables are byte-identical at every GEO_THREADS as long as each
// point is self-contained: its own ScopedFaultInjection, no shared mutable
// state outside thread-safe facilities (SweepCheckpoint, the metrics
// registry). With GEO_THREADS=1 the points run serially inline, in order.
template <typename Result, typename Fn>
std::vector<Result> sweep_points(std::int64_t n, Fn&& fn) {
  std::vector<Result> out(static_cast<std::size_t>(n));
  exec::parallel_for(n, 1, [&](std::int64_t i) {
    out[static_cast<std::size_t>(i)] = fn(i);
  });
  return out;
}

inline bool full_mode() { return env_int("GEO_BENCH_FULL", 0) != 0; }

struct BenchSizes {
  int train = env_int("GEO_BENCH_TRAIN", 320);
  int test = env_int("GEO_BENCH_TEST", 128);
  int epochs = env_int("GEO_BENCH_EPOCHS", 12);
};

inline std::string cache_dir() {
  const char* v = std::getenv("GEO_CACHE_DIR");
  const std::string dir = v != nullptr ? v : ".geo_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

// Trains (or loads from cache) `model_name` under `cfg` and returns test
// accuracy in percent.
inline double accuracy_percent(const std::string& model_name,
                               const nn::Dataset& train_set,
                               const nn::Dataset& test_set,
                               const nn::ScModelConfig& cfg,
                               const BenchSizes& sizes,
                               bool cache = true) {
  // GEO_SEED reseeds the model initializer; unset keeps the historical 42.
  const auto model_seed = static_cast<unsigned>(
      core::seed_or(42, "bench.model") & 0x7FFFFFFFu);
  nn::Sequential net =
      nn::make_model(model_name, train_set.channels(), 10, cfg, model_seed);
  nn::TrainOptions opts;
  opts.epochs = sizes.epochs;
  if (cfg.mode == nn::ScModelConfig::Mode::kStochastic) {
    // Stochastic forward passes train best with a gentler optimizer and a
    // tighter weight range (keeps OR unions out of deep saturation).
    opts.lr = 1e-3f;
    opts.clamp_limit = 0.5f;
    if (cfg.accum == nn::AccumMode::kOr) {
      // All-OR is the most nonlinear configuration and converges slowest;
      // the paper trains everything for 1000 epochs, so at this reduced
      // budget OR configurations get gentler steps and proportionally more
      // of them.
      opts.lr = 5e-4f;
      opts.clamp_limit = 0.3f;
      opts.epochs *= 3;
    }
  }
  opts.batch_size = 16;
  if (cache) {
    opts.cache_dir = cache_dir();
    opts.cache_key = model_name + "_" + train_set.name + "_" + cfg.key() +
                     "_n" + std::to_string(train_set.count()) + "_e" +
                     std::to_string(sizes.epochs);
    // A reseeded run must not collide with the default-seed cache entries.
    if (core::global_seed().has_value())
      opts.cache_key += "_gs" + std::to_string(*core::global_seed());
  }
  return nn::train(net, train_set, test_set, opts).test_accuracy * 100.0;
}

// Crash-safe sweep memo (docs/RESILIENCE.md): a bench sweep records each
// completed point's result string under a stable key; a re-run after a crash
// skips straight past the completed points. Backed by the versioned,
// CRC-guarded checkpoint format in GEO_CHECKPOINT_DIR — unset disables the
// memo entirely (every lookup misses, record() is a no-op). A corrupt or
// foreign snapshot is rejected fail-closed and the sweep restarts from
// scratch; it is never partially trusted.
class SweepCheckpoint {
 public:
  explicit SweepCheckpoint(const std::string& bench_name) {
    const std::string dir = resilience::checkpoint_dir();
    if (dir.empty()) return;
    path_ = dir + "/sweep_" + bench_name + ".ckpt";
    auto payload = resilience::read_checkpoint(path_);
    if (!payload.ok()) {
      if (payload.status().message().find("cannot open") ==
          std::string::npos)
        std::fprintf(stderr, "[bench] ignoring %s\n",
                     payload.status().message().c_str());
      return;
    }
    resilience::ByteReader r(*payload);
    const std::uint64_t n = r.u64();
    std::map<std::string, std::string> loaded;
    for (std::uint64_t i = 0; i < n && r.read_status().ok(); ++i) {
      std::string key = r.bytes();
      loaded[std::move(key)] = r.bytes();
    }
    if (!r.read_status().ok() || !r.exhausted()) {
      std::fprintf(stderr, "[bench] ignoring corrupt sweep memo %s\n",
                   path_.c_str());
      return;
    }
    done_ = std::move(loaded);
    resumed_ = done_.size();
  }

  bool enabled() const noexcept { return !path_.empty(); }
  std::size_t resumed() const noexcept { return resumed_; }

  // The result recorded for `point`, or nullopt if it has not completed.
  // Thread-safe: sweep points fanned out via sweep_points() may look up and
  // record concurrently.
  std::optional<std::string> lookup(const std::string& point) const {
    std::lock_guard lock(mu_);
    const auto it = done_.find(point);
    if (it == done_.end()) return std::nullopt;
    return it->second;
  }

  // Records `point` and atomically persists the whole memo, so a kill at
  // any instant leaves either the previous or the new snapshot on disk. The
  // memo map is sorted, so the final snapshot's bytes are independent of
  // the order concurrent points complete in.
  void record(const std::string& point, const std::string& value) {
    if (path_.empty()) return;
    std::lock_guard lock(mu_);
    done_[point] = value;
    resilience::ByteWriter w;
    w.u64(done_.size());
    for (const auto& [k, v] : done_) {
      w.bytes(k);
      w.bytes(v);
    }
    if (auto s = resilience::write_checkpoint(path_, w.data()); !s.ok())
      std::fprintf(stderr, "[bench] %s\n", s.message().c_str());
  }

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::map<std::string, std::string> done_;
  std::size_t resumed_ = 0;
};

// Machine-readable companion to the ASCII output: each bench builds one
// BenchReport, mirrors its tables/scalars into it, and writes
// BENCH_<name>.json on exit so the perf trajectory can be tracked across
// runs without scraping stdout. Tables are embedded cell-for-cell (the same
// strings the ASCII table prints), plus a telemetry metrics snapshot.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), root_(telemetry::Json::object()) {
    root_.set("bench", name_);
    root_.set("schema", "geo-bench-v1");
  }

  telemetry::Json& root() { return root_; }

  BenchReport& set(const std::string& key, telemetry::Json value) {
    root_.set(key, std::move(value));
    return *this;
  }
  BenchReport& set(const std::string& key, double value) {
    return set(key, telemetry::Json(value));
  }
  BenchReport& set(const std::string& key, const std::string& value) {
    return set(key, telemetry::Json(value));
  }

  // Embeds `table` as {"header": [...], "rows": [[...], ...]} under `key`,
  // cell-for-cell identical to what Table::render() prints.
  BenchReport& add_table(const std::string& key, const arch::Table& table) {
    telemetry::Json header = telemetry::Json::array();
    for (const auto& cell : table.header())
      header.push(telemetry::Json(cell));
    telemetry::Json rows = telemetry::Json::array();
    for (const auto& row : table.rows()) {
      telemetry::Json r = telemetry::Json::array();
      for (const auto& cell : row) r.push(telemetry::Json(cell));
      rows.push(std::move(r));
    }
    telemetry::Json t = telemetry::Json::object();
    t.set("header", std::move(header));
    t.set("rows", std::move(rows));
    root_.set(key, std::move(t));
    return *this;
  }

  std::string path() const {
    const char* dir = std::getenv("GEO_BENCH_JSON_DIR");
    const std::string d = (dir != nullptr && dir[0] != '\0') ? dir : ".";
    return d + "/BENCH_" + name_ + ".json";
  }

  // Validates a rendered report document: structurally parseable JSON that
  // carries the geo-bench-v1 schema marker. Split out so tests can feed it
  // arbitrary text.
  static bool validate(const std::string& text) {
    return telemetry::json_valid(text) &&
           text.find("\"schema\": \"geo-bench-v1\"") != std::string::npos;
  }

  // Attaches the metrics snapshot, validates the rendered document with the
  // telemetry JSON validator, and writes the artifact. A report that fails
  // validation is not written and fails the bench (callers exit nonzero on
  // false). Honors GEO_BENCH_JSON=0; disabled counts as success.
  bool write() {
    if (env_int("GEO_BENCH_JSON", 1) == 0) return true;
    const std::string file = path();
    {
      std::error_code ec;
      std::filesystem::create_directories(
          std::filesystem::path(file).parent_path(), ec);
    }
    root_.set("metrics",
              telemetry::metrics_to_json(
                  telemetry::MetricsRegistry::instance()));
    // Per-layer generation/execution/stall/memory cycle split (empty
    // "layers" when the bench never ran the machine); keyed so bench_diff
    // gates the attribution buckets like any other scalar.
    root_.set("attr",
              arch::attribution_to_json(arch::AttributionLedger::instance()));
    if (!validate(root_.dump())) {
      std::fprintf(stderr, "[bench] %s failed JSON validation; not written\n",
                   file.c_str());
      return false;
    }
    const bool ok = root_.write_file(file);
    std::printf("\n[bench] %s %s\n", ok ? "wrote" : "FAILED to write",
                file.c_str());
    return ok;
  }

 private:
  std::string name_;
  telemetry::Json root_;
};

}  // namespace geo::bench
