// Out-of-core weight store bench (docs/STORAGE.md): does prefetch
// pipelining actually hide the disk, and what does the repair ladder cost
// as corruption ramps?
//
//   overlap      a layer pipeline loaded cold (synchronous pin before every
//                layer) vs prefetched (layer N+1's load rides the I/O lane
//                while layer N executes). Gated deterministically: every
//                prefetch must hit, the prefetched modeled stall is 0 by
//                construction, and the prefetched wall stall must be
//                < 0.5x the cold wall stall at every GEO_THREADS.
//   degradation  pin cost vs injected defect-model io_rot in {0, 0.25, 1.0}:
//                rereads, quarantines, rebuilds, fallback blocks, and the
//                modeled io stall, with byte-identity to the source asserted
//                at every point (repair or fallback, never silence).
//   out-of-core  one conv executed from store-pinned weights vs resident
//                weights under blanket rot — activations and counters must
//                be byte-identical, and the charged io stall must land in
//                the machine's io sub-bucket with the ledger reconciling.
//
// Every section installs its own fault scope (inert or injected), so the
// numbers are identical whether or not ambient GEO_FAULTS is set — the
// disk-fault soak CI job runs this binary under io corruption unchanged.
// Wall-clock keys (*_us) are excluded from the bench-diff gate; the modeled
// cycles and repair-ladder counts are deterministic and gate tightly.
//
// Sizes: GEO_BENCH_STORE_LAYERS (pipeline depth, default 6),
//        GEO_BENCH_STORE_KFLOATS (floats per layer /1024, default 256).
//
//   ./bench/weight_store
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"
#include "fault/fault_model.hpp"
#include "resilience/resilience.hpp"
#include "store/prefetch.hpp"
#include "store/weight_store.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using geo::fault::FaultConfig;
using geo::fault::ScopedFaultInjection;
using geo::store::Pinned;
using geo::store::Prefetcher;
using geo::store::StoreOptions;
using geo::store::WeightStore;

double micros_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

std::string fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

std::string fresh_dir(const std::string& name) {
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/geo_bench_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::vector<float> layer_payload(std::size_t floats, unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-0.8f, 0.8f);
  std::vector<float> v(floats);
  for (auto& x : v) x = dist(rng);
  return v;
}

// A compute stand-in with real cost: one small conv per pipeline stage, so
// the prefetcher has something to overlap the next layer's load with.
struct Compute {
  geo::arch::ConvShape shape =
      geo::arch::ConvShape::conv("ws", 4, 6, 5, 3, 1, false);
  geo::arch::HwConfig hw = geo::arch::HwConfig::ulp();
  std::vector<float> weights, input, scale, shift;

  Compute() {
    hw.accum = geo::nn::AccumMode::kPbw;
    hw.stream_len = 64;
    hw.stream_len_pool = 64;
    hw.stream_len_output = 64;
    weights = layer_payload(static_cast<std::size_t>(shape.weights()), 41);
    input = layer_payload(static_cast<std::size_t>(shape.activations()), 42);
    for (auto& a : input) a = (a + 0.8f) / 1.6f;  // unipolar activations
    scale.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    shift.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  geo::arch::MachineResult run(std::int64_t io_stall = 0) const {
    geo::resilience::ResilientExecutor executor(hw);
    geo::resilience::RunOptions options;
    options.io_stall_cycles = io_stall;
    auto r = executor.run_conv(shape, weights, input, scale, shift, 3, "ws",
                               options);
    if (!r.ok()) std::abort();  // fixed valid workload
    return *std::move(r);
  }
};

}  // namespace

int main() {
  using geo::arch::Table;
  geo::bench::BenchReport report("weight_store");
  const int layers = std::max(2, geo::bench::env_int("GEO_BENCH_STORE_LAYERS", 6));
  const std::size_t floats =
      1024u * static_cast<std::size_t>(
                  std::max(16, geo::bench::env_int("GEO_BENCH_STORE_KFLOATS", 256)));
  const std::int64_t layer_bytes = static_cast<std::int64_t>(floats) * 4;
  const Compute compute;

  std::printf("Weight-store bench | %d layers x %.1f MiB | threads=%d\n\n",
              layers, static_cast<double>(layer_bytes) / (1 << 20),
              geo::exec::ThreadPool::instance().size());

  StoreOptions opts;
  opts.dir = fresh_dir("weight_store");
  opts.block_bytes = 64 << 10;
  opts.shard_bytes = 1 << 20;
  opts.cache_bytes = 0;  // every pin exercises the disk path

  std::vector<std::string> names;
  std::vector<std::vector<float>> payloads;
  WeightStore store(opts);
  for (int i = 0; i < layers; ++i) {
    names.push_back("layer" + std::to_string(i));
    payloads.push_back(layer_payload(floats, 100u + static_cast<unsigned>(i)));
    if (!store.add_layer(names.back(), payloads.back()).ok()) return 1;
  }
  const std::int64_t beats_per_layer = (layer_bytes + 63) / 64;

  bool contract_ok = true;

  // --- overlap: cold pins vs prefetch pipelining ---------------------------
  double cold_stall_us = 0.0, prefetched_stall_us = 0.0;
  std::int64_t cold_stall_cycles = 0, prefetched_stall_cycles = 0;
  std::int64_t prefetch_hits = 0;
  bool overlap_ok = false;
  // Wall-clock overlap on shared hardware is noisy, so the comparison gets
  // up to three attempts; the gated cycle counts and hit tallies are
  // identical on every attempt, only the *_us keys move.
  for (int attempt = 0; attempt < 3 && !overlap_ok; ++attempt) {
    ScopedFaultInjection quiet{FaultConfig{}};  // shield ambient GEO_FAULTS
    cold_stall_us = prefetched_stall_us = 0.0;
    cold_stall_cycles = prefetched_stall_cycles = prefetch_hits = 0;

    // Cold: the pipeline stalls for every layer's full load.
    for (int i = 0; i < layers; ++i) {
      const auto t0 = Clock::now();
      auto p = store.pin(names[static_cast<std::size_t>(i)]);
      cold_stall_us += micros_since(t0);
      if (!p.ok()) return 1;
      cold_stall_cycles += p->stats().io_stall_cycles;
      compute.run(p->stats().io_stall_cycles);
    }

    // Calibrate the per-layer execution span to ~2x the measured load time,
    // so the pipeline has something real to hide the next load behind. Only
    // wall-clock keys see this; the gated cycle counts are rep-independent.
    const auto c0 = Clock::now();
    compute.run();
    const double compute_us = std::max(1.0, micros_since(c0));
    const double load_us = cold_stall_us / layers;
    const int compute_reps = static_cast<int>(
        std::clamp(2.0 * load_us / compute_us, 1.0, 64.0));

    // Prefetched: layer i+1 loads on the I/O lane while layer i executes.
    Prefetcher prefetcher(store);
    prefetcher.prefetch(names[0]);
    for (int i = 0; i < layers; ++i) {
      const auto t0 = Clock::now();
      auto p = prefetcher.get(names[static_cast<std::size_t>(i)]);
      prefetched_stall_us += micros_since(t0);
      if (!p.ok()) return 1;
      prefetched_stall_cycles += p->stats().io_stall_cycles;
      if (p->stats().prefetched) ++prefetch_hits;
      if (i + 1 < layers)
        prefetcher.prefetch(names[static_cast<std::size_t>(i + 1)]);
      for (int r = 0; r < compute_reps; ++r)
        compute.run(p->stats().io_stall_cycles);
    }

    // Modeled stall is exactly zero on hits by definition; the wall clock
    // must show the loads actually vanished behind execution.
    overlap_ok = prefetch_hits == layers && prefetched_stall_cycles == 0 &&
                 prefetched_stall_us < 0.5 * cold_stall_us;
  }
  if (!overlap_ok) contract_ok = false;

  Table overlap({"mode", "layers", "stall cycles", "stall us", "hits"});
  overlap.add_row({"cold", std::to_string(layers),
                   std::to_string(cold_stall_cycles), fmt(cold_stall_us),
                   "0"});
  overlap.add_row({"prefetched", std::to_string(layers),
                   std::to_string(prefetched_stall_cycles),
                   fmt(prefetched_stall_us), std::to_string(prefetch_hits)});
  std::printf("prefetch overlap (cache off, %d-layer pipeline)\n", layers);
  overlap.print();
  std::printf("overlap_ok=%d (prefetched wall stall %.1fus vs cold %.1fus)\n\n",
              overlap_ok ? 1 : 0, prefetched_stall_us, cold_stall_us);
  report.add_table("overlap_table", overlap);
  report.set("overlap.layers", static_cast<double>(layers));
  report.set("overlap.cold_stall_cycles",
             static_cast<double>(cold_stall_cycles));
  report.set("overlap.prefetched_stall_cycles",
             static_cast<double>(prefetched_stall_cycles));
  report.set("overlap.prefetch_hits", static_cast<double>(prefetch_hits));
  report.set("overlap.cold_stall_us", cold_stall_us);
  report.set("overlap.prefetched_stall_us", prefetched_stall_us);
  report.set("overlap.expected_stall_cycles",
             static_cast<double>(beats_per_layer * layers));
  report.set("overlap_ok", overlap_ok ? 1.0 : 0.0);

  // --- degradation: the repair ladder vs persistent corruption -------------
  Table curve({"io_rot", "rereads", "quarantined", "rebuilds",
               "fallback blocks", "stall cycles", "identical"});
  const double rot_points[] = {0.0, 0.25, 1.0};
  for (const double rot : rot_points) {
    FaultConfig cfg;
    cfg.io_rot_rate = rot;
    cfg.rng_seed = 77;  // fixed: the ladder counts below gate exactly
    ScopedFaultInjection scope(cfg);

    std::int64_t rereads = 0, quarantined = 0, rebuilds = 0, fallbacks = 0,
                 stall = 0;
    bool identical = true;
    for (int i = 0; i < layers; ++i) {
      auto p = store.pin(names[static_cast<std::size_t>(i)]);
      if (!p.ok()) return 1;
      rereads += p->stats().rereads;
      quarantined += p->stats().quarantined;
      rebuilds += p->stats().rebuilds;
      fallbacks += p->stats().fallback_blocks;
      stall += p->stats().io_stall_cycles;
      const auto& src = payloads[static_cast<std::size_t>(i)];
      identical = identical && p->span().size() == src.size() &&
                  std::equal(src.begin(), src.end(), p->span().begin());
    }
    if (!identical) contract_ok = false;
    curve.add_row({fmt(rot, "%.2f"), std::to_string(rereads),
                   std::to_string(quarantined), std::to_string(rebuilds),
                   std::to_string(fallbacks), std::to_string(stall),
                   identical ? "yes" : "NO"});
    const std::string key = "degradation.rot" + fmt(rot, "%.2f") + ".";
    report.set(key + "rereads", static_cast<double>(rereads));
    report.set(key + "quarantined", static_cast<double>(quarantined));
    report.set(key + "rebuilds", static_cast<double>(rebuilds));
    report.set(key + "fallback_blocks", static_cast<double>(fallbacks));
    report.set(key + "stall_cycles", static_cast<double>(stall));
    report.set(key + "identical", identical ? 1.0 : 0.0);
  }
  std::printf("degradation curve (defect-model io_rot, every pin verified)\n");
  curve.print();
  report.add_table("degradation_table", curve);

  // --- out-of-core conv: byte-identity + ledger attribution ----------------
  {
    ScopedFaultInjection quiet{FaultConfig{}};
    const geo::arch::MachineResult resident = compute.run();

    const std::string dir = fresh_dir("weight_store_conv");
    StoreOptions copts = opts;
    copts.dir = dir;
    WeightStore wstore(copts);
    if (!wstore.add_layer("conv", compute.weights).ok()) return 1;

    FaultConfig cfg;
    cfg.io_rot_rate = 1.0;  // blanket persistent rot: the worst case
    cfg.rng_seed = 19;
    ScopedFaultInjection scope(cfg);
    auto pinned = wstore.pin("conv");
    if (!pinned.ok()) return 1;

    Compute out_of_core = compute;
    out_of_core.weights.assign(pinned->span().begin(), pinned->span().end());
    const geo::arch::MachineResult result =
        out_of_core.run(pinned->stats().io_stall_cycles);

    const bool identical = result.activations == resident.activations &&
                           result.counters == resident.counters;
    const bool charged =
        result.stats.io_stall_cycles == pinned->stats().io_stall_cycles &&
        result.stats.stall_cycles >= result.stats.io_stall_cycles;
    if (!identical || !charged) contract_ok = false;

    Table conv({"weights", "fallback blocks", "io stall cycles", "identical",
                "charged"});
    conv.add_row({std::to_string(compute.weights.size()),
                  std::to_string(pinned->stats().fallback_blocks),
                  std::to_string(result.stats.io_stall_cycles),
                  identical ? "yes" : "NO", charged ? "yes" : "NO"});
    std::printf("\nout-of-core conv under blanket rot\n");
    conv.print();
    report.add_table("out_of_core_table", conv);
    report.set("out_of_core.identical", identical ? 1.0 : 0.0);
    report.set("out_of_core.io_stall_cycles",
               static_cast<double>(result.stats.io_stall_cycles));
    report.set("out_of_core.fallback_blocks",
               static_cast<double>(pinned->stats().fallback_blocks));
    report.set("out_of_core.charged", charged ? 1.0 : 0.0);
    std::filesystem::remove_all(dir);
  }

  report.set("contract_ok", contract_ok ? 1.0 : 0.0);
  std::printf("\ncontract_ok=%d\n", contract_ok ? 1 : 0);
  std::filesystem::remove_all(opts.dir);

  // Scrub wall time and per-run scheduling leave no trace in the gated
  // scalars, but the accumulated registry/attribution state does depend on
  // how many sections ran; reset both so the emitted snapshot is stable.
  geo::telemetry::MetricsRegistry::instance().reset();
  geo::arch::AttributionLedger::instance().reset();

  const bool wrote = report.write();
  return (wrote && contract_ok) ? 0 : 1;
}
