// Fig. 2 reproduction: RMS multiplication error vs cycle for normal and
// progressive stream generation, multiplying uniformly sampled 8-bit pairs,
// against the 8-bit integer product. Also emits a Fig. 3-style cycle trace
// of the generation pipeline (normal vs progressive SNG behavior).
#include <cstdio>
#include <random>
#include <vector>

#include "arch/gen_pipeline_sim.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"
#include "sc/progressive.hpp"
#include "sc/stream_stats.hpp"

namespace {

// RMS error of the running stream estimate of a*b after `cycles` cycles,
// averaged over `pairs` random 8-bit operand pairs.
double rms_at_cycle(unsigned lfsr_bits, bool progressive, std::size_t cycles,
                    int pairs, std::size_t stream_len) {
  using namespace geo::sc;
  std::mt19937 rng(1234);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = lfsr_bits};
  std::vector<double> errors;
  errors.reserve(static_cast<std::size_t>(pairs));
  for (int i = 0; i < pairs; ++i) {
    const std::uint32_t a = dist(rng), b = dist(rng);
    ProgressiveSng sa(RngKind::kLfsr,
                      SeedSpec{.bits = lfsr_bits,
                               .seed = 3 + 2 * static_cast<unsigned>(i)},
                      sched);
    ProgressiveSng sb(RngKind::kLfsr,
                      SeedSpec{.bits = lfsr_bits,
                               .seed = 101 + 5 * static_cast<unsigned>(i)},
                      sched);
    const Bitstream pa = progressive ? sa.generate(a, stream_len)
                                     : sa.generate_normal(a, stream_len);
    const Bitstream pb = progressive ? sb.generate(b, stream_len)
                                     : sb.generate_normal(b, stream_len);
    const Bitstream prod = pa & pb;
    const double est = static_cast<double>(prod.popcount_prefix(cycles)) /
                       static_cast<double>(cycles);
    const double exact =
        (static_cast<double>(a) / 256.0) * (static_cast<double>(b) / 256.0);
    errors.push_back(est - exact);
  }
  return rms(errors);
}

}  // namespace

int main() {
  using geo::arch::Table;
  std::printf(
      "Fig. 2 | RMS multiplication error vs cycle, normal vs progressive\n"
      "         (uniform 8-bit operands, error vs 8-bit integer product)\n\n");

  geo::bench::BenchReport report("fig2_progressive");

  const int pairs = 400;
  struct Config {
    unsigned lfsr_bits;
    std::size_t stream_len;
  };
  for (const Config cfg : {Config{5, 32}, Config{6, 64}, Config{7, 128}}) {
    std::printf("-- %u-bit LFSR, %zu-bit streams --\n", cfg.lfsr_bits,
                cfg.stream_len);
    Table t({"cycle", "normal RMS", "progressive RMS", "delta"});
    for (std::size_t cyc : {2ul, 4ul, 8ul, 16ul, 32ul, 64ul, 128ul}) {
      if (cyc > cfg.stream_len) continue;
      const double n = rms_at_cycle(cfg.lfsr_bits, false, cyc, pairs,
                                    cfg.stream_len);
      const double p = rms_at_cycle(cfg.lfsr_bits, true, cyc, pairs,
                                    cfg.stream_len);
      t.add_row({std::to_string(cyc), Table::num(n, 4), Table::num(p, 4),
                 Table::num(p - n, 4)});
    }
    t.print();
    std::printf("\n");
    report.add_table("rms_lfsr" + std::to_string(cfg.lfsr_bits) + "_stream" +
                         std::to_string(cfg.stream_len),
                     t);
  }
  std::printf(
      "paper: progressive error converges to normal within <=8 cycles; full\n"
      "streams are near-identical.\n\n");

  // Fig. 3 companion: cycle-level trace of the two SNG structures.
  std::printf("Fig. 3 | generation pipeline trace (800 values, 32 b/cy)\n\n");
  for (const bool progressive : {false, true}) {
    geo::arch::GenPipelineConfig g;
    g.values = 800;
    g.lfsr_bits = 7;
    g.stream_cycles = 256;
    g.passes = 3;
    g.progressive = progressive;
    g.shadow = progressive;  // GEO pairs them
    const auto r = geo::arch::simulate_generation(g, /*keep_trace=*/true);
    std::printf("%s SNG:\n", progressive ? "progressive+shadow" : "normal");
    for (const auto& line : r.trace) std::printf("  %s\n", line.c_str());
    std::printf("  total %lld cycles, %lld stalled, start latency %lld\n\n",
                static_cast<long long>(r.total_cycles),
                static_cast<long long>(r.stall_cycles),
                static_cast<long long>(r.reload_start_latency));
    geo::telemetry::Json pipe = geo::telemetry::Json::object();
    pipe.set("total_cycles", geo::telemetry::Json(r.total_cycles));
    pipe.set("stall_cycles", geo::telemetry::Json(r.stall_cycles));
    pipe.set("reload_start_latency",
             geo::telemetry::Json(r.reload_start_latency));
    report.set(progressive ? "pipeline_progressive_shadow" : "pipeline_normal",
               std::move(pipe));
  }
  return report.write() ? 0 : 1;
}
