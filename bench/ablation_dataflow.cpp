// Sec. III-C ablation: dataflow memory-access accounting. Reproduces the
// paper's in-text numbers — weight-stationary (+near-memory psums) vs
// input-stationary (up to 3.3x) and vs strict output-stationary (up to
// 10.3x) — and the partial-sum share of activation-memory accesses
// (paper: 13-20%).
#include <algorithm>
#include <cstdio>

#include "arch/compiler.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"

int main() {
  using namespace geo::arch;
  using geo::arch::Table;

  const NetworkShape nets[] = {NetworkShape::cnn4_cifar(),
                               NetworkShape::vgg16(),
                               NetworkShape::lenet5()};

  geo::bench::BenchReport report("ablation_dataflow");
  for (const NetworkShape& net : nets) {
    const HwConfig hw =
        net.name == "vgg16" ? HwConfig::lp() : HwConfig::ulp();
    const Compiler compiler(hw);
    std::printf("network %s on %s fabric\n\n", net.name.c_str(),
                net.name == "vgg16" ? "LP" : "ULP");

    Table t({"layer", "WS+nm", "OS", "IS", "OS/WS", "IS/WS", "psum frac"});
    AccessCounts ws_total, os_total, is_total;
    double worst_os = 0, worst_is = 0;
    for (const auto& layer : net.layers) {
      const auto ws = compiler.plan_layer(layer, Dataflow::kWeightStationary);
      const auto os = compiler.plan_layer(layer, Dataflow::kOutputStationary);
      const auto is = compiler.plan_layer(layer, Dataflow::kInputStationary);
      ws_total += ws.accesses;
      os_total += os.accesses;
      is_total += is.accesses;
      const double os_ratio = static_cast<double>(os.accesses.total()) /
                              static_cast<double>(ws.accesses.total());
      const double is_ratio = static_cast<double>(is.accesses.total()) /
                              static_cast<double>(ws.accesses.total());
      worst_os = std::max(worst_os, os_ratio);
      worst_is = std::max(worst_is, is_ratio);
      const double psum_frac =
          static_cast<double>(ws.accesses.psum_reads +
                              ws.accesses.psum_writes) /
          static_cast<double>(ws.accesses.act_memory_total());
      t.add_row({layer.name,
                 Table::si(static_cast<double>(ws.accesses.total())),
                 Table::si(static_cast<double>(os.accesses.total())),
                 Table::si(static_cast<double>(is.accesses.total())),
                 Table::num(os_ratio, 1), Table::num(is_ratio, 1),
                 Table::percent(psum_frac)});
    }
    const double psum_net =
        static_cast<double>(ws_total.psum_reads + ws_total.psum_writes) /
        static_cast<double>(ws_total.act_memory_total());
    t.add_row({"TOTAL", Table::si(static_cast<double>(ws_total.total())),
               Table::si(static_cast<double>(os_total.total())),
               Table::si(static_cast<double>(is_total.total())),
               Table::num(static_cast<double>(os_total.total()) /
                              static_cast<double>(ws_total.total()),
                          1),
               Table::num(static_cast<double>(is_total.total()) /
                              static_cast<double>(ws_total.total()),
                          1),
               Table::percent(psum_net)});
    t.print();
    std::printf(
        "worst layer: OS/WS %.1fx (paper: up to 10.3x), IS/WS %.1fx "
        "(paper: up to 3.3x)\n\n",
        worst_os, worst_is);
    report.add_table("accesses_" + net.name, t);
    report.set("worst_os_ratio_" + net.name, worst_os);
    report.set("worst_is_ratio_" + net.name, worst_is);
    report.set("psum_fraction_" + net.name, psum_net);
  }
  std::printf(
      "paper: WS+near-memory wins on virtually every conv layer; psums are "
      "13-20%% of\nactivation-memory accesses, so near-memory accumulation "
      "is not energy-critical.\n");
  return report.write() ? 0 : 1;
}
