// Table I reproduction: inference accuracy of fixed-point (Eyeriss-style
// 8/4-bit), ACOUSTIC-style all-OR SC (256/128 streams), and GEO ({64-128},
// {32-64}, {16-32} streams) across the synthetic dataset suite, plus the
// reported comparison points and the paper's in-text ablation (GEO at 32-64
// minus partial-binary accumulation, then additionally with TRNG).
//
// Default mode runs CNN-4 on the CIFAR/SVHN stand-ins and LeNet-5 on digits;
// GEO_BENCH_FULL=1 adds the VGG-slim rows.
#include <cstdio>
#include <string>
#include <vector>

#include "arch/report.hpp"
#include "baselines/reported.hpp"
#include "bench_util.hpp"

int main() {
  using namespace geo;
  const bench::BenchSizes sizes;

  struct Workload {
    const char* dataset;
    const char* model;
  };
  std::vector<Workload> workloads = {{"cifar", "cnn4"},
                                     {"svhn", "cnn4"},
                                     {"digits", "lenet5"}};
  if (bench::full_mode()) {
    workloads.push_back({"cifar", "vgg"});
    workloads.push_back({"svhn", "vgg"});
  }

  struct Column {
    std::string name;
    nn::ScModelConfig cfg;
  };
  auto geo_cfg = [](int sp, int s) {
    return nn::ScModelConfig::stochastic(sp, s);  // LFSR/moderate/PBW default
  };
  auto acoustic_cfg = [](int stream) {
    nn::ScModelConfig c = nn::ScModelConfig::stochastic(stream, stream);
    c.accum = nn::AccumMode::kOr;
    c.sharing = sc::Sharing::kNone;
    return c;
  };
  const std::vector<Column> columns = {
      {"Eyeriss 8b", nn::ScModelConfig::fixed_point(8)},
      {"Eyeriss 4b", nn::ScModelConfig::fixed_point(4)},
      {"ACOUSTIC 256", acoustic_cfg(256)},
      {"ACOUSTIC 128", acoustic_cfg(128)},
      {"GEO 64-128", geo_cfg(64, 128)},
      {"GEO 32-64", geo_cfg(32, 64)},
      {"GEO 16-32", geo_cfg(16, 32)},
  };

  std::printf(
      "Table I | accuracy (%%), synthetic stand-ins "
      "(train=%d test=%d epochs=%d)\n\n",
      sizes.train, sizes.test, sizes.epochs);

  std::vector<std::string> header = {"dataset", "model"};
  for (const auto& c : columns) header.push_back(c.name);
  arch::Table table(header);

  for (const Workload& w : workloads) {
    const nn::Dataset train_set = nn::make_dataset(w.dataset, sizes.train, 1);
    const nn::Dataset test_set = nn::make_dataset(w.dataset, sizes.test, 2);
    std::vector<std::string> row = {w.dataset, w.model};
    for (const Column& c : columns) {
      const double acc = bench::accuracy_percent(w.model, train_set,
                                                 test_set, c.cfg, sizes);
      row.push_back(arch::Table::num(acc, 1));
      std::fflush(stdout);
    }
    table.add_row(row);
  }
  table.print();

  std::printf(
      "\nreported comparison points (from the respective papers, MNIST-class "
      "task):\n  SCOPE 128-bit %.1f%% | Conv-RAM 7a1w %.1f%% | MDL-CNN 4a1w "
      "%.1f%% | SM-SC 128-bit CIFAR %.1f%%\n",
      baselines::reported::kScopeLenetAccuracy * 100.0,
      baselines::reported::kConvRamLenetAccuracy * 100.0,
      baselines::reported::kMdlCnnLenetAccuracy * 100.0,
      baselines::reported::kSmScCifarAccuracy * 100.0);

  // In-text ablation: "dropping binary accumulation lowers accuracy to
  // 79.6%, while using TRNG on top of that drops it further to 73.7%"
  // (CNN-4 / SVHN / 32-64).
  std::printf("\nablation | CNN-4 on svhn_syn at {32,64}:\n");
  const nn::Dataset train_set = nn::make_dataset("svhn", sizes.train, 1);
  const nn::Dataset test_set = nn::make_dataset("svhn", sizes.test, 2);
  arch::Table ab({"configuration", "accuracy"});
  nn::ScModelConfig full = geo_cfg(32, 64);
  nn::ScModelConfig no_pb = full;
  no_pb.accum = nn::AccumMode::kOr;
  nn::ScModelConfig no_pb_trng = no_pb;
  no_pb_trng.rng = sc::RngKind::kTrng;
  const struct {
    const char* name;
    nn::ScModelConfig cfg;
  } ablation[] = {
      {"GEO (LFSR + shared + PBW)", full},
      {"- partial binary (all-OR)", no_pb},
      {"- PB, - LFSR (TRNG)", no_pb_trng},
  };
  for (const auto& a : ablation) {
    const double acc =
        bench::accuracy_percent("cnn4", train_set, test_set, a.cfg, sizes);
    ab.add_row({a.name, arch::Table::num(acc, 1) + "%"});
    std::fflush(stdout);
  }
  ab.print();
  std::printf(
      "\npaper shape: GEO > all-OR > all-OR+TRNG (90.8 > 79.6 > 73.7 on real "
      "SVHN)\n");

  bench::BenchReport report("table1_accuracy");
  report.add_table("accuracy", table);
  report.add_table("ablation_svhn_32_64", ab);
  report.set("train", static_cast<double>(sizes.train));
  report.set("test", static_cast<double>(sizes.test));
  report.set("epochs", static_cast<double>(sizes.epochs));
  return report.write() ? 0 : 1;
}
