// Fault-injection sweep: accuracy and cycle overhead of one GeoMachine
// convolution layer as a function of injected fault rate.
//
//   Table 1  stream-bit flip rate sweep, SC (kPbw) vs fixed-point (kFxp)
//   Table 2  SRAM read-error rate sweep under each ECC mode
//
// Emits BENCH_fault_sweep.json with two machine-checkable scalars:
//   stream_accuracy_monotonic  1 if accuracy degrades monotonically with
//                              the stream flip rate in both accum modes
//   ecc_on_more_accurate       1 if SECDED beats ecc=none at every swept
//                              SRAM error rate
//
//   ./bench/fault_sweep
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"
#include "fault/fault_model.hpp"

namespace {

using geo::arch::ConvShape;
using geo::arch::GeoMachine;
using geo::arch::HwConfig;
using geo::arch::MachineResult;
using geo::fault::EccMode;
using geo::fault::FaultConfig;
using geo::fault::ScopedFaultInjection;

struct Workload {
  ConvShape shape = ConvShape::conv("fsweep", 8, 8, 8, 3, 1, false);
  std::vector<float> weights, input, scale, shift;

  Workload() {
    const auto seed = static_cast<unsigned>(
        geo::core::seed_or(7, "bench.fault_sweep") & 0x7FFFFFFFu);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.6f, 0.6f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    scale.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    shift.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  MachineResult run(const HwConfig& hw) const {
    GeoMachine machine(hw);
    return machine.run_conv(shape, weights, input, scale, shift, /*salt=*/3);
  }
};

// Mean |counter delta| per output, normalized by stream length, expressed as
// an accuracy percentage (100 = bit-identical to the clean run).
double accuracy_vs(const MachineResult& clean, const MachineResult& faulty,
                   double stream_len) {
  double err = 0.0;
  for (std::size_t i = 0; i < clean.counters.size(); ++i)
    err += std::abs(static_cast<double>(faulty.counters[i]) -
                    static_cast<double>(clean.counters[i]));
  err /= static_cast<double>(clean.counters.size()) * stream_len;
  return 100.0 * (1.0 - std::min(1.0, err));
}

std::string fmt(double v, const char* spec = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

}  // namespace

int main() {
  using geo::arch::Table;
  geo::bench::BenchReport report("fault_sweep");
  const Workload wl;

  const double rates[] = {0.0, 1e-3, 1e-2, 5e-2, 0.1};
  const struct {
    const char* name;
    geo::nn::AccumMode accum;
  } modes[] = {{"sc-pbw", geo::nn::AccumMode::kPbw},
               {"fxp", geo::nn::AccumMode::kFxp}};

  std::printf("Fault sweep | conv %dx%dx%d k%d, %lld outputs\n\n",
              wl.shape.cin, wl.shape.hin, wl.shape.win, wl.shape.kh,
              static_cast<long long>(wl.shape.outputs()));

  // --- stream-bit flips: SC vs fixed-point accumulation ---------------------
  Table stream_table(
      {"accum", "flip rate", "accuracy %", "flipped bits", "cycles",
       "overhead %"});
  bool monotonic = true;
  for (const auto& mode : modes) {
    HwConfig hw = HwConfig::ulp();
    hw.accum = mode.accum;
    const ScopedFaultInjection off(nullptr);  // clean reference
    const MachineResult clean = wl.run(hw);
    double prev_acc = 101.0;
    for (const double rate : rates) {
      double acc = 100.0;
      long long flipped = 0;
      long long cycles = clean.stats.total_cycles;
      if (rate > 0.0) {
        FaultConfig cfg;
        cfg.stream_flip_rate = rate;
        cfg.rng_seed = 99;
        ScopedFaultInjection inject(cfg);
        const MachineResult faulty = wl.run(hw);
        acc = accuracy_vs(clean, faulty, hw.stream_len);
        const auto st = inject.model().stats();
        flipped = st.stream_bits_flipped;
        cycles = faulty.stats.total_cycles;
      }
      if (acc > prev_acc + 1e-12) monotonic = false;
      prev_acc = acc;
      const double overhead =
          100.0 * (static_cast<double>(cycles) / clean.stats.total_cycles -
                   1.0);
      stream_table.add_row({mode.name, fmt(rate, "%.0e"), fmt(acc),
                            std::to_string(flipped), std::to_string(cycles),
                            fmt(overhead, "%.2f")});
    }
  }
  std::printf("stream-bit flips (SC vs fixed-point accumulation)\n");
  stream_table.print();
  report.add_table("stream_flips", stream_table);
  report.set("stream_accuracy_monotonic", monotonic ? 1.0 : 0.0);

  // --- SRAM read errors under each ECC mode ---------------------------------
  Table sram_table({"ecc", "error rate", "accuracy %", "detected",
                    "corrected", "silent", "retry cyc", "cycles"});
  bool ecc_wins = true;
  {
    HwConfig hw = HwConfig::ulp();
    const ScopedFaultInjection off(nullptr);
    const MachineResult clean = wl.run(hw);
    for (const double rate : {1e-3, 5e-3, 2e-2}) {
      double acc_none = 0.0, acc_secded = 0.0;
      for (const EccMode ecc :
           {EccMode::kNone, EccMode::kParity, EccMode::kSecded}) {
        FaultConfig cfg;
        cfg.sram_error_rate = rate;
        cfg.ecc = ecc;
        cfg.rng_seed = 99;
        ScopedFaultInjection inject(cfg);
        const MachineResult faulty = wl.run(hw);
        const double acc = accuracy_vs(clean, faulty, hw.stream_len);
        const auto st = inject.model().stats();
        sram_table.add_row(
            {geo::fault::to_string(ecc), fmt(rate, "%.0e"), fmt(acc),
             std::to_string(st.sram_errors_detected),
             std::to_string(st.sram_errors_corrected),
             std::to_string(st.sram_silent_corruptions),
             std::to_string(st.sram_retry_cycles),
             std::to_string(faulty.stats.total_cycles)});
        if (ecc == EccMode::kNone) acc_none = acc;
        if (ecc == EccMode::kSecded) acc_secded = acc;
      }
      if (acc_secded <= acc_none) ecc_wins = false;
    }
  }
  std::printf("\nSRAM read errors vs ECC mode\n");
  sram_table.print();
  report.add_table("sram_ecc", sram_table);
  report.set("ecc_on_more_accurate", ecc_wins ? 1.0 : 0.0);

  std::printf("\nstream_accuracy_monotonic=%d ecc_on_more_accurate=%d\n",
              monotonic ? 1 : 0, ecc_wins ? 1 : 0);
  return report.write() ? 0 : 1;
}
