// Fault-injection sweep: accuracy and cycle overhead of one GeoMachine
// convolution layer as a function of injected fault rate.
//
//   Table 1  stream-bit flip rate sweep, SC (kPbw) vs fixed-point (kFxp)
//   Table 2  SRAM read-error rate sweep under each ECC mode
//   Table 3  resilience runtime (detect -> retry -> degrade) under
//            uncorrectable SECDED faults
//
// Emits BENCH_fault_sweep.json with machine-checkable scalars:
//   stream_accuracy_monotonic  1 if accuracy degrades monotonically with
//                              the stream flip rate in both accum modes
//   ecc_on_more_accurate       1 if SECDED beats ecc=none at every swept
//                              SRAM error rate
//   resilience_tiles_retried   tiles the resilience runtime re-executed
//   resilience_layers_degraded layers that fell down the degradation ladder
//   resilience_ledger_ok       1 if every accepted cycle ledger reconciled
//   resilience_within_envelope 1 if no accepted output left the provable
//                              |counter| <= taps*L envelope and degraded
//                              layers matched the fixed-point reference
//
// With GEO_CHECKPOINT_DIR set, completed stream-sweep points are memoized in
// a crash-safe sweep checkpoint and skipped on re-run.
//
//   ./bench/fault_sweep
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"
#include "fault/fault_model.hpp"
#include "nn/sc_layers.hpp"
#include "resilience/resilience.hpp"

namespace {

using geo::arch::ConvShape;
using geo::arch::GeoMachine;
using geo::arch::HwConfig;
using geo::arch::MachineResult;
using geo::fault::EccMode;
using geo::fault::FaultConfig;
using geo::fault::ScopedFaultInjection;

struct Workload {
  ConvShape shape = ConvShape::conv("fsweep", 8, 8, 8, 3, 1, false);
  std::vector<float> weights, input, scale, shift;

  Workload() {
    const auto seed = static_cast<unsigned>(
        geo::core::seed_or(7, "bench.fault_sweep") & 0x7FFFFFFFu);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.6f, 0.6f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    scale.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    shift.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  MachineResult run(const HwConfig& hw) const {
    GeoMachine machine(hw);
    return machine.run_conv(shape, weights, input, scale, shift, /*salt=*/3);
  }
};

// Mean |counter delta| per output, normalized by stream length, expressed as
// an accuracy percentage (100 = bit-identical to the clean run).
double accuracy_vs(const MachineResult& clean, const MachineResult& faulty,
                   double stream_len) {
  double err = 0.0;
  for (std::size_t i = 0; i < clean.counters.size(); ++i)
    err += std::abs(static_cast<double>(faulty.counters[i]) -
                    static_cast<double>(clean.counters[i]));
  err /= static_cast<double>(clean.counters.size()) * stream_len;
  return 100.0 * (1.0 - std::min(1.0, err));
}

std::string fmt(double v, const char* spec = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

}  // namespace

int main() {
  using geo::arch::Table;
  geo::bench::BenchReport report("fault_sweep");
  const Workload wl;

  const double rates[] = {0.0, 1e-3, 1e-2, 5e-2, 0.1};
  const struct {
    const char* name;
    geo::nn::AccumMode accum;
  } modes[] = {{"sc-pbw", geo::nn::AccumMode::kPbw},
               {"fxp", geo::nn::AccumMode::kFxp}};

  std::printf("Fault sweep | conv %dx%dx%d k%d, %lld outputs\n\n",
              wl.shape.cin, wl.shape.hin, wl.shape.win, wl.shape.kh,
              static_cast<long long>(wl.shape.outputs()));

  // --- stream-bit flips: SC vs fixed-point accumulation ---------------------
  // Every (mode, rate) point is self-contained — its own fault scope, its
  // own machine — so the grid fans out over the process thread pool
  // (GEO_THREADS); table assembly and the monotonicity check stay serial and
  // in point order, keeping the output byte-identical at every thread count.
  Table stream_table(
      {"accum", "flip rate", "accuracy %", "flipped bits", "cycles",
       "overhead %"});
  geo::bench::SweepCheckpoint memo("fault_sweep");
  if (memo.resumed() > 0)
    std::printf("[bench] sweep memo: %zu completed point(s) skipped\n",
                memo.resumed());
  bool monotonic = true;
  constexpr int kNumModes = 2;
  constexpr int kNumRates = 5;
  MachineResult stream_clean[kNumModes];
  for (int m = 0; m < kNumModes; ++m) {
    HwConfig hw = HwConfig::ulp();
    hw.accum = modes[m].accum;
    const ScopedFaultInjection off(nullptr);  // clean reference
    stream_clean[m] = wl.run(hw);
  }
  struct StreamCell {
    double acc = 100.0;
    long long flipped = 0;
    long long cycles = 0;
  };
  const auto stream_cells = geo::bench::sweep_points<StreamCell>(
      kNumModes * kNumRates, [&](std::int64_t i) {
        const int m = static_cast<int>(i) / kNumRates;
        const double rate = rates[i % kNumRates];
        const MachineResult& clean = stream_clean[m];
        const std::string point =
            std::string(modes[m].name) + "@" + fmt(rate, "%.0e");
        StreamCell cell;
        cell.cycles = clean.stats.total_cycles;
        if (const auto hit = memo.lookup(point)) {
          std::istringstream is(*hit);
          is >> cell.acc >> cell.flipped >> cell.cycles;
          return cell;
        }
        if (rate > 0.0) {
          HwConfig hw = HwConfig::ulp();
          hw.accum = modes[m].accum;
          FaultConfig cfg;
          cfg.stream_flip_rate = rate;
          cfg.rng_seed = 99;
          ScopedFaultInjection inject(cfg);
          const MachineResult faulty = wl.run(hw);
          cell.acc = accuracy_vs(clean, faulty, hw.stream_len);
          const auto st = inject.model().stats();
          cell.flipped = st.stream_bits_flipped;
          cell.cycles = faulty.stats.total_cycles;
        }
        memo.record(point, fmt(cell.acc, "%.17g") + " " +
                               std::to_string(cell.flipped) + " " +
                               std::to_string(cell.cycles));
        return cell;
      });
  for (int m = 0; m < kNumModes; ++m) {
    double prev_acc = 101.0;
    for (int r = 0; r < kNumRates; ++r) {
      const StreamCell& cell =
          stream_cells[static_cast<std::size_t>(m * kNumRates + r)];
      if (cell.acc > prev_acc + 1e-12) monotonic = false;
      prev_acc = cell.acc;
      const double overhead =
          100.0 * (static_cast<double>(cell.cycles) /
                       stream_clean[m].stats.total_cycles -
                   1.0);
      stream_table.add_row({modes[m].name, fmt(rates[r], "%.0e"),
                            fmt(cell.acc), std::to_string(cell.flipped),
                            std::to_string(cell.cycles),
                            fmt(overhead, "%.2f")});
    }
  }
  std::printf("stream-bit flips (SC vs fixed-point accumulation)\n");
  stream_table.print();
  report.add_table("stream_flips", stream_table);
  report.set("stream_accuracy_monotonic", monotonic ? 1.0 : 0.0);

  // --- SRAM read errors under each ECC mode ---------------------------------
  Table sram_table({"ecc", "error rate", "accuracy %", "detected",
                    "corrected", "silent", "retry cyc", "cycles"});
  bool ecc_wins = true;
  {
    HwConfig hw = HwConfig::ulp();
    MachineResult clean;
    {
      const ScopedFaultInjection off(nullptr);
      clean = wl.run(hw);
    }
    const double sram_rates[] = {1e-3, 5e-3, 2e-2};
    const EccMode eccs[] = {EccMode::kNone, EccMode::kParity,
                            EccMode::kSecded};
    constexpr int kNumEccs = 3;
    struct SramCell {
      double acc = 0.0;
      geo::fault::FaultStats st;
      long long cycles = 0;
    };
    // 3 rates x 3 ECC modes, each with an independent fault model: another
    // self-contained grid for the pool.
    const auto sram_cells = geo::bench::sweep_points<SramCell>(
        static_cast<std::int64_t>(std::size(sram_rates)) * kNumEccs,
        [&](std::int64_t i) {
          FaultConfig cfg;
          cfg.sram_error_rate = sram_rates[i / kNumEccs];
          cfg.ecc = eccs[i % kNumEccs];
          cfg.rng_seed = 99;
          ScopedFaultInjection inject(cfg);
          const MachineResult faulty = wl.run(hw);
          SramCell cell;
          cell.acc = accuracy_vs(clean, faulty, hw.stream_len);
          cell.st = inject.model().stats();
          cell.cycles = faulty.stats.total_cycles;
          return cell;
        });
    for (std::size_t r = 0; r < std::size(sram_rates); ++r) {
      double acc_none = 0.0, acc_secded = 0.0;
      for (int e = 0; e < kNumEccs; ++e) {
        const SramCell& cell = sram_cells[r * kNumEccs +
                                          static_cast<std::size_t>(e)];
        sram_table.add_row(
            {geo::fault::to_string(eccs[e]), fmt(sram_rates[r], "%.0e"),
             fmt(cell.acc), std::to_string(cell.st.sram_errors_detected),
             std::to_string(cell.st.sram_errors_corrected),
             std::to_string(cell.st.sram_silent_corruptions),
             std::to_string(cell.st.sram_retry_cycles),
             std::to_string(cell.cycles)});
        if (eccs[e] == EccMode::kNone) acc_none = cell.acc;
        if (eccs[e] == EccMode::kSecded) acc_secded = cell.acc;
      }
      if (acc_secded <= acc_none) ecc_wins = false;
    }
  }
  std::printf("\nSRAM read errors vs ECC mode\n");
  sram_table.print();
  report.add_table("sram_ecc", sram_table);
  report.set("ecc_on_more_accurate", ecc_wins ? 1.0 : 0.0);

  // --- resilience runtime: detect -> retry -> degrade ----------------------
  long long tiles_retried = 0, layers_degraded = 0;
  bool ledger_ok = true, within_envelope = true;
  {
    using geo::resilience::ResilientExecutor;
    using geo::resilience::Rung;
    HwConfig hw = HwConfig::ulp();
    // Uncorrectable (multi-bit burst) SRAM faults: SECDED detects and
    // zeroes them, the runtime retries from snapshot and then walks the
    // degradation ladder. An ambient GEO_FAULTS spec (the CI fault-recovery
    // job pins one) takes precedence; otherwise install the canonical
    // double-bit spec here.
    std::optional<ScopedFaultInjection> inject;
    if (!FaultConfig::from_env().has_value()) {
      FaultConfig cfg;
      cfg.sram_error_rate = 2e-2;
      cfg.sram_burst = 2;
      cfg.ecc = EccMode::kSecded;
      cfg.rng_seed = 99;
      inject.emplace(cfg);
    }
    ResilientExecutor executor(hw);
    const auto result =
        executor.run_conv(wl.shape, wl.weights, wl.input, wl.scale, wl.shift,
                          /*salt=*/3, "fsweep");
    const auto& rep = executor.report();
    tiles_retried = rep.tiles_retried();
    layers_degraded = rep.layers_degraded();
    ledger_ok = rep.ledger_ok();
    within_envelope = result.ok();
    if (result.ok()) {
      const geo::nn::ScLayerConfig cfg =
          GeoMachine(hw).layer_config(wl.shape, /*salt=*/3);
      const long long bound =
          static_cast<long long>(wl.shape.taps()) * cfg.stream_len;
      for (const auto c : result->counters)
        if (std::abs(static_cast<long long>(c)) > bound)
          within_envelope = false;
      if (!rep.layers.empty() &&
          rep.layers.back().rung == Rung::kReference) {
        // A degraded-to-reference layer must be bit-exact against the
        // fault-free fixed-point reference — "no garbage outputs".
        const auto ref = geo::nn::fxp_reference_counters(
            wl.shape.cin, wl.shape.hin, wl.shape.win, wl.shape.cout,
            wl.shape.kh, wl.shape.kw, wl.shape.stride, wl.shape.pad,
            wl.weights, wl.input, cfg.value_bits, cfg.stream_len);
        if (ref != result->counters) within_envelope = false;
      }
    }

    Table res_table({"layer", "rung", "tiles", "retried", "recovered",
                     "retries", "retry cyc", "ledger"});
    for (const auto& l : rep.layers)
      res_table.add_row({l.layer, geo::resilience::to_string(l.rung),
                         std::to_string(l.tiles),
                         std::to_string(l.tiles_retried),
                         std::to_string(l.tiles_recovered),
                         std::to_string(l.retries),
                         std::to_string(l.retry_cycles()),
                         l.ledger_ok ? "ok" : "MISMATCH"});
    std::printf("\nresilience runtime (detect -> retry -> degrade)\n");
    res_table.print();
    report.add_table("resilience", res_table);
    if (rep.any_degraded()) std::printf("\n%s", rep.summary().c_str());
  }
  report.set("resilience_tiles_retried", static_cast<double>(tiles_retried));
  report.set("resilience_layers_degraded",
             static_cast<double>(layers_degraded));
  report.set("resilience_ledger_ok", ledger_ok ? 1.0 : 0.0);
  report.set("resilience_within_envelope", within_envelope ? 1.0 : 0.0);

  std::printf(
      "\nstream_accuracy_monotonic=%d ecc_on_more_accurate=%d "
      "resilience_tiles_retried=%lld resilience_layers_degraded=%lld "
      "resilience_ledger_ok=%d resilience_within_envelope=%d\n",
      monotonic ? 1 : 0, ecc_wins ? 1 : 0, tiles_retried, layers_degraded,
      ledger_ok ? 1 : 0, within_envelope ? 1 : 0);
  return report.write() ? 0 : 1;
}
