// Sec. II-A ablation: low-discrepancy (Sobol) sequences vs LFSRs.
//
// The paper argues LD sequences, although excellent for single operations
// [23], are "not suitable for OR accumulation due to the difficulty of
// generating multiple uncorrelated streams". This bench shows both halves:
//   1) single multiplication RMS error: Sobol converges faster than LFSR;
//   2) OR accumulation of K products: Sobol streams from the few available
//      dimensions correlate and the union collapses toward the maximum,
//      while seeded LFSRs stay near the independent-union expectation.
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "arch/report.hpp"
#include "bench_util.hpp"
#include "sc/ops.hpp"
#include "sc/sng.hpp"
#include "sc/sobol.hpp"
#include "sc/stream_stats.hpp"

namespace {

using namespace geo::sc;

Bitstream gen(RngKind kind, unsigned bits, std::uint32_t id, std::uint32_t q,
              std::size_t len) {
  SeedSpec spec{.bits = bits, .seed = 1 + 37 * id};
  if (kind == RngKind::kLfsr) {
    // Vary the characteristic polynomial as well as the seed, exactly as
    // GEO's seed allocator does: phase shifts of one m-sequence are not
    // enough to decorrelate comparator outputs.
    static const auto taps = Lfsr::find_maximal_taps(8, 6);
    spec.taps = taps[id % taps.size()];
  }
  if (kind == RngKind::kSobol) spec.seed = id;  // dimension select
  Sng sng(kind, spec);
  return sng.generate(q, len);
}

double mul_rmse(RngKind kind, std::size_t len, int pairs) {
  std::mt19937 rng(7);
  std::uniform_int_distribution<std::uint32_t> dist(0, 255);
  std::vector<double> errors;
  for (int i = 0; i < pairs; ++i) {
    const std::uint32_t a = dist(rng), b = dist(rng);
    const Bitstream sa =
        gen(kind, 8, 2 * static_cast<unsigned>(i), a, len);
    const Bitstream sb =
        gen(kind, 8, 2 * static_cast<unsigned>(i) + 1, b, len);
    errors.push_back((sa & sb).value() - (a / 256.0) * (b / 256.0));
  }
  return rms(errors);
}

}  // namespace

int main() {
  using geo::arch::Table;
  std::printf("Ablation | low-discrepancy (Sobol) vs LFSR generation\n\n");

  std::printf("1) single multiplication, RMS error vs stream length:\n");
  Table t1({"stream", "LFSR", "Sobol", "TRNG"});
  for (std::size_t len : {32ul, 64ul, 128ul, 256ul}) {
    t1.add_row({std::to_string(len),
                Table::num(mul_rmse(RngKind::kLfsr, len, 300), 4),
                Table::num(mul_rmse(RngKind::kSobol, len, 300), 4),
                Table::num(mul_rmse(RngKind::kTrng, len, 300), 4)});
  }
  t1.print();
  std::printf(
      "expected: Sobol <= LFSR < TRNG (LD sequences help single ops [23])\n\n");

  std::printf("2) OR accumulation of K=12 products (p=0.08 each):\n");
  Table t2({"generator", "union value", "expectation", "max p"});
  const std::size_t len = 256;
  const std::uint32_t q = quantize_unipolar(0.08, 8);
  for (RngKind kind : {RngKind::kLfsr, RngKind::kSobol}) {
    std::vector<Bitstream> products;
    for (unsigned i = 0; i < 12; ++i) {
      // Every product needs its own generator pair; Sobol only has
      // kDimensions distinct dimensions, so ids wrap and streams repeat.
      const Bitstream a = gen(kind, 8, 2 * i, q + 60, len);
      const Bitstream w = gen(kind, 8, 2 * i + 1, q + 60, len);
      products.push_back(a & w);
    }
    std::vector<double> ps;
    double maxp = 0;
    for (const auto& p : products) {
      ps.push_back(p.value());
      maxp = std::max(maxp, p.value());
    }
    t2.add_row({to_string(kind),
                Table::num(or_accumulate(products).value(), 3),
                Table::num(or_accumulate_expectation(ps), 3),
                Table::num(maxp, 3)});
  }
  t2.print();
  std::printf(
      "expected: the LFSR union tracks the independence expectation; the\n"
      "Sobol union collapses toward max(p) because its %u dimensions cannot\n"
      "provide 24 uncorrelated streams — the paper's reason to reject LD\n"
      "sequences for OR-accumulated SC.\n",
      SobolSource::kDimensions);

  // Cross-correlation evidence.
  std::printf("\n3) mean |SCC| between the 12 product streams:\n");
  Table t3({"generator", "mean |SCC|"});
  for (RngKind kind : {RngKind::kLfsr, RngKind::kSobol}) {
    std::vector<Bitstream> products;
    for (unsigned i = 0; i < 12; ++i)
      products.push_back(gen(kind, 8, 2 * i, q + 60, len) &
                         gen(kind, 8, 2 * i + 1, q + 60, len));
    double acc = 0;
    int count = 0;
    for (std::size_t i = 0; i < products.size(); ++i)
      for (std::size_t j = i + 1; j < products.size(); ++j) {
        acc += std::abs(scc(products[i], products[j]));
        ++count;
      }
    t3.add_row({to_string(kind), Table::num(acc / count, 3)});
  }
  t3.print();

  geo::bench::BenchReport report("ablation_ldseq");
  report.add_table("mul_rmse", t1);
  report.add_table("or_accumulation", t2);
  report.add_table("cross_correlation", t3);
  report.set("sobol_dimensions",
             static_cast<double>(SobolSource::kDimensions));
  return report.write() ? 0 : 1;
}
