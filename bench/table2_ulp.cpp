// Table II reproduction: GEO ULP vs iso-area Eyeriss (4-bit), ACOUSTIC-128,
// and the reported mixed-signal points (Conv-RAM, MDL-CNN) — voltage, area,
// power, frame rates on CNN-4/CIFAR and LeNet-5, peak GOPS and TOPS/W.
#include <cstdio>
#include <functional>
#include <iterator>

#include "arch/report.hpp"
#include "baselines/acoustic.hpp"
#include "baselines/eyeriss.hpp"
#include "baselines/reported.hpp"
#include "bench_util.hpp"
#include "core/geo.hpp"

int main() {
  using namespace geo;
  using arch::Table;
  const arch::NetworkShape cnn = arch::NetworkShape::cnn4_cifar();
  const arch::NetworkShape lenet = arch::NetworkShape::lenet5();

  Table t({"metric", "Eyeriss 4b", "GEO ULP-32,64", "Conv-RAM", "MDL-CNN",
           "ACOUSTIC-128", "GEO ULP-16,32"});

  // --- simulated columns ---------------------------------------------------
  // The eight model x network simulations are independent const calls on
  // stateless models, so they fan out over the process pool (GEO_THREADS);
  // each lands in its own slot and the table assembles serially below.
  const baselines::EyerissModel eye(baselines::EyerissConfig::ulp_4bit());
  const core::GeoAccelerator geo3264(core::GeoConfig::ulp(32, 64));
  const core::GeoAccelerator geo1632(core::GeoConfig::ulp(16, 32));
  const baselines::AcousticModel aco = baselines::AcousticModel::ulp(128);

  baselines::EyerissResult eye_cnn, eye_lenet;
  arch::PerfResult geo3264_cnn, geo3264_lenet;
  arch::PerfResult geo1632_cnn, geo1632_lenet;
  arch::PerfResult aco_cnn, aco_lenet;
  const std::function<void()> sim_points[] = {
      [&] { eye_cnn = eye.run(cnn); },
      [&] { eye_lenet = eye.run(lenet); },
      [&] { geo3264_cnn = geo3264.run(cnn); },
      [&] { geo3264_lenet = geo3264.run(lenet); },
      [&] { geo1632_cnn = geo1632.run(cnn); },
      [&] { geo1632_lenet = geo1632.run(lenet); },
      [&] { aco_cnn = aco.run(cnn); },
      [&] { aco_lenet = aco.run(lenet); },
  };
  exec::parallel_for(static_cast<std::int64_t>(std::size(sim_points)), 1,
                     [&](std::int64_t i) { sim_points[i](); });

  const auto& convram = baselines::reported::kConvRam;
  const auto& mdl = baselines::reported::kMdlCnn;

  t.add_row({"Voltage [V]", "0.90", Table::num(geo3264.operating_vdd(), 2),
             Table::num(convram.voltage_v, 2), Table::num(mdl.voltage_v, 3),
             "0.90", Table::num(geo1632.operating_vdd(), 2)});
  t.add_row({"Area [mm2]", Table::num(eye.area_mm2(), 2),
             Table::num(geo3264.area().total(), 2),
             Table::num(convram.area_mm2, 2), Table::num(mdl.area_mm2, 2),
             Table::num(aco.area_mm2(), 2),
             Table::num(geo1632.area().total(), 2)});
  t.add_row({"Power [mW]", Table::num(eye_cnn.average_power_w * 1e3, 0),
             Table::num(geo3264_cnn.average_power_w * 1e3, 0),
             Table::num(convram.power_mw, 3), Table::num(mdl.power_mw, 2),
             Table::num(aco_cnn.average_power_w * 1e3, 0),
             Table::num(geo1632_cnn.average_power_w * 1e3, 0)});
  t.add_row({"Clock [MHz]", "400", "400", Table::num(convram.clock_mhz, 0),
             Table::num(mdl.clock_mhz, 0), "400", "400"});
  t.add_row({"CIFAR-10 Fr/s", Table::si(eye_cnn.frames_per_second),
             Table::si(geo3264_cnn.frames_per_second), "-", "-",
             Table::si(aco_cnn.frames_per_second),
             Table::si(geo1632_cnn.frames_per_second)});
  t.add_row({"CIFAR-10 Fr/J", Table::si(eye_cnn.frames_per_joule),
             Table::si(geo3264_cnn.frames_per_joule), "-", "-",
             Table::si(aco_cnn.frames_per_joule),
             Table::si(geo1632_cnn.frames_per_joule)});
  t.add_row({"LeNet5 Fr/s", Table::si(eye_lenet.frames_per_second),
             Table::si(geo3264_lenet.frames_per_second),
             Table::si(baselines::reported::kConvRamLenetFps),
             Table::si(baselines::reported::kMdlCnnLenetFps),
             Table::si(aco_lenet.frames_per_second),
             Table::si(geo1632_lenet.frames_per_second)});
  t.add_row({"LeNet5 Fr/J", Table::si(eye_lenet.frames_per_joule),
             Table::si(geo3264_lenet.frames_per_joule),
             Table::si(baselines::reported::kConvRamLenetFpj),
             Table::si(baselines::reported::kMdlCnnLenetFpj),
             Table::si(aco_lenet.frames_per_joule),
             Table::si(geo1632_lenet.frames_per_joule)});
  t.add_row({"Peak GOPS", Table::num(eye.peak_gops(), 0),
             Table::num(geo3264.peak_gops(), 0),
             Table::num(convram.peak_gops, 1), Table::num(mdl.peak_gops, 3),
             Table::num(aco.peak_gops(), 0),
             Table::num(geo1632.peak_gops(), 0)});
  t.add_row({"Peak TOPS/W", Table::num(eye.peak_tops_per_watt(), 1),
             Table::num(geo3264.peak_tops_per_watt(), 1),
             Table::num(convram.peak_tops_per_watt, 1),
             Table::num(mdl.peak_tops_per_watt, 1),
             Table::num(aco.peak_tops_per_watt(), 2),
             Table::num(geo1632.peak_tops_per_watt(), 1)});

  std::printf("Table II | GEO ULP vs fixed-point / mixed-signal / SC "
              "(28 nm; Conv-RAM & MDL-CNN columns reported)\n\n");
  t.print();

  std::printf(
      "\nkey ratios: GEO-32,64 vs Eyeriss-4b: %.1fx Fr/s, %.1fx Fr/J "
      "(paper 2.7x / 2.6x)\n            GEO-32,64 vs ACOUSTIC-128: %.1fx "
      "Fr/s, %.1fx Fr/J (paper 4.4x / 5.3x)\n",
      geo3264_cnn.frames_per_second / eye_cnn.frames_per_second,
      geo3264_cnn.frames_per_joule / eye_cnn.frames_per_joule,
      geo3264_cnn.frames_per_second / aco_cnn.frames_per_second,
      geo3264_cnn.frames_per_joule / aco_cnn.frames_per_joule);

  bench::BenchReport report("table2_ulp");
  report.add_table("table2", t);
  report.set("geo3264_vs_eyeriss_fps",
             geo3264_cnn.frames_per_second / eye_cnn.frames_per_second);
  report.set("geo3264_vs_eyeriss_fpj",
             geo3264_cnn.frames_per_joule / eye_cnn.frames_per_joule);
  report.set("geo3264_vs_acoustic_fps",
             geo3264_cnn.frames_per_second / aco_cnn.frames_per_second);
  report.set("geo3264_vs_acoustic_fpj",
             geo3264_cnn.frames_per_joule / aco_cnn.frames_per_joule);
  return report.write() ? 0 : 1;
}
