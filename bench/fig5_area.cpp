// Fig. 5 reproduction: area of an SC MAC unit under different accumulation
// hardware (all-OR SC, PBW, PBHW, APC [24], full fixed-point) across kernel
// sizes, normalized to the all-OR unit.
#include <cstdio>

#include "arch/area_model.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"

int main() {
  using namespace geo::arch;
  using geo::nn::AccumMode;
  const TechParams tech = TechParams::hvt28();

  std::printf(
      "Fig. 5 | SC MAC-unit area vs kernel size and accumulation mode\n"
      "         (um^2 at 28 nm; parenthesized = normalized to all-OR)\n\n");

  struct Kernel {
    int cin, k;
  };
  const Kernel kernels[] = {{1, 3},  {4, 3},   {16, 3},  {64, 3},
                            {256, 3}, {1, 5},  {16, 5},  {64, 5},
                            {256, 5}, {512, 5}};

  Table t({"kernel (CinxHxW)", "SC (all-OR)", "PBW", "PBHW", "APC", "FXP"});
  for (const Kernel& k : kernels) {
    const double sc = sc_mac_unit_um2(k.cin, k.k, k.k, AccumMode::kOr, tech);
    auto cell = [&](AccumMode mode) {
      const double a = sc_mac_unit_um2(k.cin, k.k, k.k, mode, tech);
      return Table::si(a, 1) + " (" + Table::num(a / sc, 2) + "x)";
    };
    t.add_row({std::to_string(k.cin) + "x" + std::to_string(k.k) + "x" +
                   std::to_string(k.k),
               Table::si(sc, 1) + " (1.00x)", cell(AccumMode::kPbw),
               cell(AccumMode::kPbhw), cell(AccumMode::kApc),
               cell(AccumMode::kFxp)});
  }
  t.print();

  const double pbw_small =
      sc_mac_unit_ge(1, 3, 3, AccumMode::kPbw) /
      sc_mac_unit_ge(1, 3, 3, AccumMode::kOr);
  const double pbw_large =
      sc_mac_unit_ge(512, 5, 5, AccumMode::kPbw) /
      sc_mac_unit_ge(512, 5, 5, AccumMode::kOr);
  const double fxp_large =
      sc_mac_unit_ge(512, 5, 5, AccumMode::kFxp) /
      sc_mac_unit_ge(512, 5, 5, AccumMode::kOr);
  const double apc_vs_pbw =
      sc_mac_unit_ge(512, 5, 5, AccumMode::kApc) /
      sc_mac_unit_ge(512, 5, 5, AccumMode::kPbw);
  std::printf(
      "\nsummary: PBW overhead %.0f%% (small kernels) -> %.0f%% (512x5x5);\n"
      "         FXP %.1fx all-OR at 512x5x5; APC %.1fx PBW at 512x5x5\n"
      "paper:   PBW up to 1.4x small, ~4%% large; FXP >5x for most kernels;\n"
      "         APC >3x PBW/PBHW for larger kernels\n",
      (pbw_small - 1.0) * 100.0, (pbw_large - 1.0) * 100.0, fxp_large,
      apc_vs_pbw);

  geo::bench::BenchReport report("fig5_area");
  report.add_table("mac_unit_area", t);
  report.set("pbw_overhead_small", pbw_small - 1.0);
  report.set("pbw_overhead_large", pbw_large - 1.0);
  report.set("fxp_vs_or_large", fxp_large);
  report.set("apc_vs_pbw_large", apc_vs_pbw);
  return report.write() ? 0 : 1;
}
