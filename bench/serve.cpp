// Serving-runtime bench: throughput and tail latency of the fault-tolerant
// inference frontend (docs/SERVING.md) under increasing offered load, a
// deterministic saturation-knee section, and a chaos column proving the
// zero-failed-requests contract under persistent fault injection.
//
//   load      closed-loop clients (1/2/4/8 threads) against a replica pool:
//             throughput and p50/p95/p99 latency per offered-load point
//   overload  single-threaded burst against a paused server: the admission
//             ledger (admitted/steered/shed) is exact and regression-gated
//   chaos     every replica runs a persistent defect fault model; every
//             request must still complete (degraded is acceptable, failed
//             is not) — the bench exits nonzero otherwise
//
// Wall-clock latencies (*_us) and throughput (*per_s) are excluded from the
// bench-diff gate; the request-accounting scalars are deterministic at any
// GEO_THREADS / GEO_FAULTS and gate tightly.
//
// Sizes: GEO_BENCH_SERVE_REQS (requests per client, default 8),
//        GEO_SERVE_REPLICAS (pool size, default 2).
//
//   ./bench/serve
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/machine.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"
#include "fault/fault_model.hpp"
#include "serve/serve.hpp"

namespace {

using geo::arch::ConvShape;
using geo::arch::HwConfig;
using geo::fault::FaultConfig;
using geo::serve::InferenceServer;
using geo::serve::Request;
using geo::serve::Response;
using geo::serve::ServeOptions;
using geo::serve::ServeStats;

struct Workload {
  ConvShape shape = ConvShape::conv("serve", 4, 6, 5, 3, 1, false);
  std::vector<float> weights, input, scale, shift;

  Workload() {
    const auto seed = static_cast<unsigned>(
        geo::core::seed_or(7, "bench.serve") & 0x7FFFFFFFu);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.6f, 0.6f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    scale.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    shift.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  Request request(std::string tenant) const {
    Request r;
    r.tenant = std::move(tenant);
    r.shape = shape;
    r.weights = weights;
    r.input = input;
    r.bn_scale = scale;
    r.bn_shift = shift;
    r.layer_salt = 3;
    return r;
  }
};

HwConfig serve_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = geo::nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

// The canonical persistent-fault spec (matches the resilience suite): SECDED
// detects the double-bit bursts but cannot correct them, and the defect
// model reproduces them on every retry.
FaultConfig chaos_fault() {
  auto cfg = FaultConfig::parse("sram=2e-2,burst=2,ecc=secded,rng=99");
  if (!cfg.ok()) std::abort();  // the spec above is a compile-time constant
  return *cfg;
}

// Zero-rate override: shields a replica worker from ambient GEO_FAULTS so
// the load/overload sections report identical numbers in the chaos CI job.
void shield(InferenceServer& server) {
  for (int r = 0; r < server.options().replicas; ++r)
    server.set_replica_fault(r, FaultConfig{});
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

}  // namespace

int main() {
  using geo::arch::Table;
  geo::bench::BenchReport report("serve");
  const Workload wl;
  const HwConfig hw = serve_hw();
  const int reqs_per_client = geo::bench::env_int("GEO_BENCH_SERVE_REQS", 8);
  const int replicas =
      geo::bench::env_int("GEO_SERVE_REPLICAS", 2);

  std::printf("Serving bench | conv %dx%dx%d k%d | %d replica(s), %d req/client\n\n",
              wl.shape.cin, wl.shape.hin, wl.shape.win, wl.shape.kh, replicas,
              reqs_per_client);

  bool contract_ok = true;

  // --- load: closed-loop clients vs throughput and tail latency -------------
  Table load_table({"clients", "requests", "throughput/s", "p50 us", "p95 us",
                    "p99 us", "max us"});
  const int client_points[] = {1, 2, 4, 8};
  for (const int clients : client_points) {
    ServeOptions o;
    o.replicas = replicas;
    o.queue_capacity = 256;
    o.high_water = 256;  // no steering in the clean-load section
    o.tenant_quota = 256;
    o.retry_backoff_us = 0;
    InferenceServer server(hw, o);
    shield(server);

    std::vector<double> latencies;
    std::mutex lat_mu;
    std::atomic<int> failures{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c)
      pool.emplace_back([&, c] {
        std::vector<double> local;
        for (int i = 0; i < reqs_per_client; ++i) {
          Response r = server.run(wl.request("client" + std::to_string(c)));
          if (!r.status.ok()) failures.fetch_add(1);
          local.push_back(r.total_us);
        }
        std::lock_guard lock(lat_mu);
        latencies.insert(latencies.end(), local.begin(), local.end());
      });
    for (auto& t : pool) t.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const ServeStats s = server.stats();
    const int total = clients * reqs_per_client;
    if (failures.load() != 0 || s.failed != 0 || s.completed != total)
      contract_ok = false;
    std::sort(latencies.begin(), latencies.end());
    const double throughput = wall_s > 0.0 ? total / wall_s : 0.0;
    load_table.add_row(
        {std::to_string(clients), std::to_string(total), fmt(throughput),
         fmt(percentile(latencies, 0.50)), fmt(percentile(latencies, 0.95)),
         fmt(percentile(latencies, 0.99)),
         fmt(latencies.empty() ? 0.0 : latencies.back())});

    const std::string key = "load.c" + std::to_string(clients) + ".";
    report.set(key + "requests", static_cast<double>(total));
    report.set(key + "completed", static_cast<double>(s.completed));
    report.set(key + "ok", static_cast<double>(s.ok));
    report.set(key + "failed", static_cast<double>(s.failed));
    report.set(key + "shed", static_cast<double>(s.shed_queue + s.shed_quota));
    report.set(key + "throughput_per_s", throughput);
    report.set(key + "p50_us", percentile(latencies, 0.50));
    report.set(key + "p95_us", percentile(latencies, 0.95));
    report.set(key + "p99_us", percentile(latencies, 0.99));
  }
  std::printf("closed-loop offered load (clean replicas)\n");
  load_table.print();
  report.add_table("load", load_table);

  // --- overload: the saturation knee, deterministically ---------------------
  // A paused server turns the burst into pure admission accounting: exactly
  // queue_capacity requests are admitted, requests past the high-water mark
  // steer to the degraded rung, and the rest shed with kResourceExhausted.
  {
    ServeOptions o;
    o.replicas = replicas;
    o.queue_capacity = 8;
    o.high_water = 6;
    o.tenant_quota = 64;
    o.retry_backoff_us = 0;
    InferenceServer server(hw, o);
    shield(server);
    server.pause();

    const int offered = 16;
    std::vector<std::future<Response>> admitted;
    int shed = 0;
    for (int i = 0; i < offered; ++i) {
      auto fut = server.submit(wl.request("burst"));
      if (fut.ok())
        admitted.push_back(std::move(*fut));
      else
        ++shed;
    }
    server.resume();
    int degraded = 0, failed = 0;
    for (auto& fut : admitted) {
      Response r = fut.get();
      if (!r.status.ok()) ++failed;
      if (r.degraded) ++degraded;
    }
    const ServeStats s = server.stats();
    if (failed != 0 || s.failed != 0) contract_ok = false;

    Table knee({"offered", "admitted", "steered", "shed", "completed",
                "degraded", "failed"});
    knee.add_row({std::to_string(offered), std::to_string(admitted.size()),
                  std::to_string(s.steered), std::to_string(shed),
                  std::to_string(s.completed), std::to_string(degraded),
                  std::to_string(failed)});
    std::printf("\nsaturation knee (queue=8, high_water=6, paused burst)\n");
    knee.print();
    report.add_table("overload_table", knee);
    report.set("overload.offered", static_cast<double>(offered));
    report.set("overload.admitted", static_cast<double>(admitted.size()));
    report.set("overload.steered", static_cast<double>(s.steered));
    report.set("overload.shed", static_cast<double>(shed));
    report.set("overload.completed", static_cast<double>(s.completed));
    report.set("overload.degraded", static_cast<double>(degraded));
    report.set("overload.failed", static_cast<double>(failed));
  }

  // --- chaos: persistent faults on every replica ----------------------------
  // The serving contract under GEO_FAULTS-class injection: every request
  // completes (degraded, not failed). Request accounting is deterministic —
  // the defect model is a pure per-site function, identical on every
  // replica — even though which replica served what is scheduling noise.
  {
    ServeOptions o;
    o.replicas = replicas;
    o.queue_capacity = 64;
    o.high_water = 64;
    o.tenant_quota = 64;
    o.retries = 1;
    o.retry_backoff_us = 0;
    o.breaker_strikes = 2;
    o.probe_after = 4;
    InferenceServer server(hw, o);
    for (int r = 0; r < o.replicas; ++r)
      server.set_replica_fault(r, chaos_fault());

    const int requests = std::max(4, reqs_per_client);
    int degraded = 0, failed = 0;
    for (int i = 0; i < requests; ++i) {
      Response r = server.run(wl.request("chaos"));
      if (!r.status.ok()) ++failed;
      if (r.degraded) ++degraded;
    }
    const ServeStats s = server.stats();
    if (failed != 0 || s.failed != 0 || s.completed != requests)
      contract_ok = false;

    Table chaos({"requests", "completed", "degraded", "failed", "quarantines",
                 "failovers"});
    chaos.add_row({std::to_string(requests), std::to_string(s.completed),
                   std::to_string(degraded), std::to_string(failed),
                   std::to_string(s.quarantines), std::to_string(s.failovers)});
    std::printf("\nchaos (persistent defect faults on every replica)\n");
    chaos.print();
    report.add_table("chaos_table", chaos);
    report.set("chaos.requests", static_cast<double>(requests));
    report.set("chaos.completed", static_cast<double>(s.completed));
    report.set("chaos.degraded", static_cast<double>(degraded));
    report.set("chaos.failed", static_cast<double>(failed));
  }

  report.set("zero_failed_requests", contract_ok ? 1.0 : 0.0);
  std::printf("\nzero_failed_requests=%d\n", contract_ok ? 1 : 0);

  // The serving counters and cycle attribution accumulated here depend on
  // request-to-replica scheduling; reset both so the emitted metrics
  // snapshot stays deterministic for the bench-diff gate.
  geo::telemetry::MetricsRegistry::instance().reset();
  geo::arch::AttributionLedger::instance().reset();

  const bool wrote = report.write();
  return (wrote && contract_ok) ? 0 : 1;
}
