// Serving-runtime bench: throughput and tail latency of the fault-tolerant
// inference frontend (docs/SERVING.md) under increasing offered load, a
// deterministic saturation-knee section, and a chaos column proving the
// zero-failed-requests contract under persistent fault injection.
//
//   load      closed-loop clients (1/2/4/8 threads) against a replica pool:
//             throughput, p50/p95/p99 latency, and the queue-wait vs
//             service-time split per offered-load point
//   overload  single-threaded burst against a paused server: the admission
//             ledger (admitted/steered/shed) is exact and regression-gated
//   batch     the same paused burst served at batch=1 vs batch=8 on a
//             prepare-dominated head layer: coalesced dispatch must keep
//             outputs byte-identical and is expected to hold >= 1.5x
//             request throughput (batch.batch_speedup, gated direction -1)
//   chaos     every replica runs a persistent defect fault model; every
//             request must still complete (degraded is acceptable, failed
//             is not) — the bench exits nonzero otherwise. Honors
//             GEO_SERVE_BATCH so the CI chaos-soak matrix exercises the
//             batched dispatch path under faults.
//
// Wall-clock latencies (*_us) and throughput (*per_s) are excluded from the
// bench-diff gate; the request-accounting scalars are deterministic at any
// GEO_THREADS / GEO_FAULTS and gate tightly.
//
// Sizes: GEO_BENCH_SERVE_REQS (requests per client, default 8),
//        GEO_SERVE_REPLICAS (pool size, default 2).
//
//   ./bench/serve
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "arch/machine.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"
#include "fault/fault_model.hpp"
#include "serve/serve.hpp"

namespace {

using geo::arch::ConvShape;
using geo::arch::HwConfig;
using geo::fault::FaultConfig;
using geo::serve::InferenceServer;
using geo::serve::Request;
using geo::serve::Response;
using geo::serve::ServeOptions;
using geo::serve::ServeStats;

struct Workload {
  ConvShape shape;
  std::vector<float> weights, input, scale, shift;

  explicit Workload(
      ConvShape s = ConvShape::conv("serve", 4, 6, 5, 3, 1, false))
      : shape(std::move(s)) {
    const auto seed = static_cast<unsigned>(
        geo::core::seed_or(7, "bench.serve") & 0x7FFFFFFFu);
    std::mt19937 rng(seed);
    std::uniform_real_distribution<float> wdist(-0.6f, 0.6f);
    std::uniform_real_distribution<float> adist(0.0f, 1.0f);
    weights.resize(static_cast<std::size_t>(shape.weights()));
    for (auto& w : weights) w = wdist(rng);
    input.resize(static_cast<std::size_t>(shape.activations()));
    for (auto& a : input) a = adist(rng);
    scale.assign(static_cast<std::size_t>(shape.cout), 1.0f);
    shift.assign(static_cast<std::size_t>(shape.cout), 0.0f);
  }

  Request request(std::string tenant) const {
    Request r;
    r.tenant = std::move(tenant);
    r.shape = shape;
    r.weights = weights;
    r.input = input;
    r.bn_scale = scale;
    r.bn_shift = shift;
    r.layer_salt = 3;
    return r;
  }
};

HwConfig serve_hw() {
  HwConfig hw = HwConfig::ulp();
  hw.accum = geo::nn::AccumMode::kPbw;
  hw.stream_len = 64;
  hw.stream_len_pool = 64;
  hw.stream_len_output = 64;
  return hw;
}

// The canonical persistent-fault spec (matches the resilience suite): SECDED
// detects the double-bit bursts but cannot correct them, and the defect
// model reproduces them on every retry.
FaultConfig chaos_fault() {
  auto cfg = FaultConfig::parse("sram=2e-2,burst=2,ecc=secded,rng=99");
  if (!cfg.ok()) std::abort();  // the spec above is a compile-time constant
  return *cfg;
}

// Zero-rate override: shields a replica worker from ambient GEO_FAULTS so
// the load/overload sections report identical numbers in the chaos CI job.
void shield(InferenceServer& server) {
  for (int r = 0; r < server.options().replicas; ++r)
    server.set_replica_fault(r, FaultConfig{});
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

std::string fmt(double v, const char* spec = "%.1f") {
  char buf[64];
  std::snprintf(buf, sizeof buf, spec, v);
  return buf;
}

}  // namespace

int main() {
  using geo::arch::Table;
  geo::bench::BenchReport report("serve");
  const Workload wl;
  const HwConfig hw = serve_hw();
  const int reqs_per_client = geo::bench::env_int("GEO_BENCH_SERVE_REQS", 8);
  const int replicas =
      geo::bench::env_int("GEO_SERVE_REPLICAS", 2);

  std::printf("Serving bench | conv %dx%dx%d k%d | %d replica(s), %d req/client\n\n",
              wl.shape.cin, wl.shape.hin, wl.shape.win, wl.shape.kh, replicas,
              reqs_per_client);

  bool contract_ok = true;

  // --- load: closed-loop clients vs throughput and tail latency -------------
  Table load_table({"clients", "requests", "throughput/s", "p50 us", "p95 us",
                    "p99 us", "max us", "queue p50 us", "service p50 us"});
  const int client_points[] = {1, 2, 4, 8};
  for (const int clients : client_points) {
    ServeOptions o;
    o.replicas = replicas;
    o.queue_capacity = 256;
    o.high_water = 256;  // no steering in the clean-load section
    o.tenant_quota = 256;
    o.retry_backoff_us = 0;
    InferenceServer server(hw, o);
    shield(server);

    std::vector<double> latencies, queue_waits, services;
    std::mutex lat_mu;
    std::atomic<int> failures{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c)
      pool.emplace_back([&, c] {
        std::vector<double> local, local_queue, local_service;
        for (int i = 0; i < reqs_per_client; ++i) {
          Response r = server.run(wl.request("client" + std::to_string(c)));
          if (!r.status.ok()) failures.fetch_add(1);
          local.push_back(r.total_us);
          local_queue.push_back(r.queue_us);
          local_service.push_back(r.exec_us);
        }
        std::lock_guard lock(lat_mu);
        latencies.insert(latencies.end(), local.begin(), local.end());
        queue_waits.insert(queue_waits.end(), local_queue.begin(),
                           local_queue.end());
        services.insert(services.end(), local_service.begin(),
                        local_service.end());
      });
    for (auto& t : pool) t.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();

    const ServeStats s = server.stats();
    const int total = clients * reqs_per_client;
    if (failures.load() != 0 || s.failed != 0 || s.completed != total)
      contract_ok = false;
    std::sort(latencies.begin(), latencies.end());
    std::sort(queue_waits.begin(), queue_waits.end());
    std::sort(services.begin(), services.end());
    const double throughput = wall_s > 0.0 ? total / wall_s : 0.0;
    load_table.add_row(
        {std::to_string(clients), std::to_string(total), fmt(throughput),
         fmt(percentile(latencies, 0.50)), fmt(percentile(latencies, 0.95)),
         fmt(percentile(latencies, 0.99)),
         fmt(latencies.empty() ? 0.0 : latencies.back()),
         fmt(percentile(queue_waits, 0.50)), fmt(percentile(services, 0.50))});

    const std::string key = "load.c" + std::to_string(clients) + ".";
    report.set(key + "requests", static_cast<double>(total));
    report.set(key + "completed", static_cast<double>(s.completed));
    report.set(key + "ok", static_cast<double>(s.ok));
    report.set(key + "failed", static_cast<double>(s.failed));
    report.set(key + "shed", static_cast<double>(s.shed_queue + s.shed_quota));
    report.set(key + "throughput_per_s", throughput);
    report.set(key + "p50_us", percentile(latencies, 0.50));
    report.set(key + "p95_us", percentile(latencies, 0.95));
    report.set(key + "p99_us", percentile(latencies, 0.99));
    report.set(key + "queue_p50_us", percentile(queue_waits, 0.50));
    report.set(key + "service_p50_us", percentile(services, 0.50));
  }
  std::printf("closed-loop offered load (clean replicas)\n");
  load_table.print();
  report.add_table("load", load_table);

  // --- overload: the saturation knee, deterministically ---------------------
  // A paused server turns the burst into pure admission accounting: exactly
  // queue_capacity requests are admitted, requests past the high-water mark
  // steer to the degraded rung, and the rest shed with kResourceExhausted.
  {
    ServeOptions o;
    o.replicas = replicas;
    o.queue_capacity = 8;
    o.high_water = 6;
    o.tenant_quota = 64;
    o.retry_backoff_us = 0;
    InferenceServer server(hw, o);
    shield(server);
    server.pause();

    const int offered = 16;
    std::vector<std::future<Response>> admitted;
    int shed = 0;
    for (int i = 0; i < offered; ++i) {
      auto fut = server.submit(wl.request("burst"));
      if (fut.ok())
        admitted.push_back(std::move(*fut));
      else
        ++shed;
    }
    server.resume();
    int degraded = 0, failed = 0;
    for (auto& fut : admitted) {
      Response r = fut.get();
      if (!r.status.ok()) ++failed;
      if (r.degraded) ++degraded;
    }
    const ServeStats s = server.stats();
    if (failed != 0 || s.failed != 0) contract_ok = false;

    Table knee({"offered", "admitted", "steered", "shed", "completed",
                "degraded", "failed"});
    knee.add_row({std::to_string(offered), std::to_string(admitted.size()),
                  std::to_string(s.steered), std::to_string(shed),
                  std::to_string(s.completed), std::to_string(degraded),
                  std::to_string(failed)});
    std::printf("\nsaturation knee (queue=8, high_water=6, paused burst)\n");
    knee.print();
    report.add_table("overload_table", knee);
    report.set("overload.offered", static_cast<double>(offered));
    report.set("overload.admitted", static_cast<double>(admitted.size()));
    report.set("overload.steered", static_cast<double>(s.steered));
    report.set("overload.shed", static_cast<double>(shed));
    report.set("overload.completed", static_cast<double>(s.completed));
    report.set("overload.degraded", static_cast<double>(degraded));
    report.set("overload.failed", static_cast<double>(failed));
  }

  // --- batch: amortized preparation across coalesced dispatches -------------
  // A prepare-dominated head layer (16 output channels, 5x5 kernel, one
  // output pixel): weight-stream generation dwarfs per-request execution,
  // so coalescing a paused burst into shared-preparation batches amortizes
  // the dominant cost. One replica and a paused burst make the occupancy
  // and request accounting exact; the speedup scalar is wall-clock and
  // gated loosely in the shrink direction only (*batch_speedup*, -1).
  {
    const Workload head(ConvShape::conv("serve_head", 8, 5, 16, 5, 0, false));
    const int burst = 32;
    const int batch_size = 8;

    struct BurstRun {
      double wall_s = 0.0;
      ServeStats stats;
      std::vector<decltype(geo::arch::MachineResult{}.activations)> outputs;
      bool ok = true;
    };
    auto run_burst = [&](int batch) {
      ServeOptions o;
      o.replicas = 1;
      o.queue_capacity = 64;
      o.high_water = 64;
      o.tenant_quota = 64;
      o.retry_backoff_us = 0;
      o.batch = batch;
      InferenceServer server(hw, o);
      shield(server);
      server.pause();
      std::vector<std::future<Response>> futures;
      for (int i = 0; i < burst; ++i) {
        auto fut = server.submit(head.request("batch"));
        if (fut.ok()) futures.push_back(std::move(*fut));
      }
      BurstRun out;
      out.ok = static_cast<int>(futures.size()) == burst;
      const auto t0 = std::chrono::steady_clock::now();
      server.resume();
      for (auto& fut : futures) {
        Response r = fut.get();
        if (!r.status.ok()) out.ok = false;
        out.outputs.push_back(std::move(r.result.activations));
      }
      out.wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      out.stats = server.stats();
      return out;
    };

    const BurstRun solo = run_burst(1);
    const BurstRun coalesced = run_burst(batch_size);
    const bool identical =
        solo.ok && coalesced.ok && solo.outputs == coalesced.outputs;
    if (!identical || solo.stats.failed != 0 || coalesced.stats.failed != 0)
      contract_ok = false;

    const double solo_per_s = solo.wall_s > 0.0 ? burst / solo.wall_s : 0.0;
    const double coalesced_per_s =
        coalesced.wall_s > 0.0 ? burst / coalesced.wall_s : 0.0;
    const double speedup =
        coalesced.wall_s > 0.0 ? solo.wall_s / coalesced.wall_s : 0.0;
    const double occupancy =
        coalesced.stats.batches > 0
            ? static_cast<double>(coalesced.stats.batched_requests) /
                  static_cast<double>(coalesced.stats.batches)
            : 1.0;

    Table batch_table({"batch", "requests", "batches", "occupancy",
                       "req/s", "speedup", "identical"});
    batch_table.add_row({"1", std::to_string(burst), "0", "1.0",
                         fmt(solo_per_s), "1.00", "yes"});
    batch_table.add_row(
        {std::to_string(batch_size), std::to_string(burst),
         std::to_string(coalesced.stats.batches), fmt(occupancy),
         fmt(coalesced_per_s), fmt(speedup, "%.2f"),
         identical ? "yes" : "NO"});
    std::printf("\nbatched dispatch (head layer, paused burst, 1 replica)\n");
    batch_table.print();
    report.add_table("batch_table", batch_table);

    report.set("batch.requests", static_cast<double>(burst));
    report.set("batch.size", static_cast<double>(batch_size));
    report.set("batch.occupancy", occupancy);
    report.set("batch.unbatched_per_s", solo_per_s);
    report.set("batch.batched_per_s", coalesced_per_s);
    report.set("batch.batch_speedup", speedup);
    report.set("batch.outputs_identical", identical ? 1.0 : 0.0);
  }

  // --- chaos: persistent faults on every replica ----------------------------
  // The serving contract under GEO_FAULTS-class injection: every request
  // completes (degraded, not failed). Request accounting is deterministic —
  // the defect model is a pure per-site function, identical on every
  // replica — even though which replica served what is scheduling noise.
  {
    ServeOptions o;
    o.replicas = replicas;
    o.queue_capacity = 64;
    o.high_water = 64;
    o.tenant_quota = 64;
    o.retries = 1;
    o.retry_backoff_us = 0;
    o.breaker_strikes = 2;
    o.probe_after = 4;
    // The CI chaos-soak matrix sets GEO_SERVE_BATCH so this burst exercises
    // the coalesced dispatch (and its per-item demotion) under faults; the
    // request accounting below is identical at any batch size.
    o.batch = std::clamp(geo::bench::env_int("GEO_SERVE_BATCH", 1), 1, 64);
    InferenceServer server(hw, o);
    for (int r = 0; r < o.replicas; ++r)
      server.set_replica_fault(r, chaos_fault());

    const int requests = std::max(4, reqs_per_client);
    server.pause();
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < requests; ++i) {
      auto fut = server.submit(wl.request("chaos"));
      if (fut.ok()) futures.push_back(std::move(*fut));
    }
    server.resume();
    int degraded = 0, failed = 0;
    failed += requests - static_cast<int>(futures.size());
    for (auto& fut : futures) {
      Response r = fut.get();
      if (!r.status.ok()) ++failed;
      if (r.degraded) ++degraded;
    }
    const ServeStats s = server.stats();
    if (failed != 0 || s.failed != 0 || s.completed != requests)
      contract_ok = false;

    Table chaos({"requests", "completed", "degraded", "failed", "quarantines",
                 "failovers"});
    chaos.add_row({std::to_string(requests), std::to_string(s.completed),
                   std::to_string(degraded), std::to_string(failed),
                   std::to_string(s.quarantines), std::to_string(s.failovers)});
    std::printf("\nchaos (persistent defect faults on every replica)\n");
    chaos.print();
    report.add_table("chaos_table", chaos);
    report.set("chaos.requests", static_cast<double>(requests));
    report.set("chaos.completed", static_cast<double>(s.completed));
    report.set("chaos.degraded", static_cast<double>(degraded));
    report.set("chaos.failed", static_cast<double>(failed));
  }

  report.set("zero_failed_requests", contract_ok ? 1.0 : 0.0);
  std::printf("\nzero_failed_requests=%d\n", contract_ok ? 1 : 0);

  // The serving counters and cycle attribution accumulated here depend on
  // request-to-replica scheduling; reset both so the emitted metrics
  // snapshot stays deterministic for the bench-diff gate.
  geo::telemetry::MetricsRegistry::instance().reset();
  geo::arch::AttributionLedger::instance().reset();

  const bool wrote = report.write();
  return (wrote && contract_ok) ? 0 : 1;
}
