// Sec. III-D ablation: pipeline-stage timing study and the area cost of
// shadow buffers and pipeline registers; reports the critical-path cut, the
// DVFS voltage, and the resulting energy factor.
#include <cstdio>

#include "arch/area_model.hpp"
#include "arch/report.hpp"
#include "arch/timing_model.hpp"
#include "bench_util.hpp"

int main() {
  using namespace geo::arch;
  const TechParams tech = TechParams::hvt28();

  std::printf("Ablation | pipeline stage and DVFS (Sec. III-D)\n\n");

  const TimingReport r = analyze_timing(HwConfig::ulp(), tech);
  Table t({"quantity", "value"});
  t.add_row({"unpipelined path", Table::num(r.unpipelined_ns, 2) + " ns"});
  t.add_row({"stage 1 (LFSR..SC MAC)", Table::num(r.stage1_ns, 2) + " ns"});
  t.add_row({"stage 2 (PB acc..counter)", Table::num(r.stage2_ns, 2) + " ns"});
  t.add_row({"pipelined path", Table::num(r.pipelined_ns, 2) + " ns"});
  t.add_row({"critical-path cut", Table::percent(r.critical_path_cut)});
  t.add_row({"clock period (400 MHz)",
             Table::num(r.clock_period_ns, 2) + " ns"});
  t.add_row({"achievable vdd", Table::num(r.achievable_vdd, 2) + " V"});
  t.add_row({"dynamic energy factor",
             Table::num(dynamic_energy_scale(r.achievable_vdd, 0.9), 2)});
  t.print();
  std::printf("\npaper: >30%% path cut, <1%% area, 0.81 V at 400 MHz\n\n");

  // Area overheads of the two pipeline-era structures.
  HwConfig full = HwConfig::ulp();
  HwConfig no_shadow = full;
  no_shadow.shadow_buffers = false;
  HwConfig no_pipe = full;
  no_pipe.pipeline_stage = false;
  HwConfig full_shadow = full;
  full_shadow.progressive = false;  // shadow must be full-size (4x)

  const double a_full = accelerator_area(full, tech).total();
  const double a_no_shadow = accelerator_area(no_shadow, tech).total();
  const double a_no_pipe = accelerator_area(no_pipe, tech).total();
  const double a_full_shadow = accelerator_area(full_shadow, tech).total();

  Table a({"structure", "area cost", "paper"});
  a.add_row({"progressive shadow buffers",
             Table::percent((a_full - a_no_shadow) / a_no_shadow),
             "~4% of accelerator"});
  a.add_row({"full-size shadow buffers (no progressive)",
             Table::percent((a_full_shadow - a_no_shadow) / a_no_shadow),
             "4x the progressive cost"});
  a.add_row({"pipeline registers",
             Table::percent((a_full - a_no_pipe) / a_no_pipe), "<1%"});
  a.print();

  geo::bench::BenchReport report("ablation_pipeline");
  report.add_table("timing", t);
  report.add_table("area_overheads", a);
  report.set("critical_path_cut", r.critical_path_cut);
  report.set("achievable_vdd", r.achievable_vdd);
  report.set("shadow_area_cost", (a_full - a_no_shadow) / a_no_shadow);
  report.set("pipeline_reg_area_cost", (a_full - a_no_pipe) / a_no_pipe);
  return report.write() ? 0 : 1;
}
