// Fig. 6 reproduction: per-module area and energy breakdown plus latency for
// Base-128,128 / GEO-GEN-128,128 / GEO-GEN-EXEC-32,64 on the SVHN CNN,
// normalized to the baseline (the paper's bars).
#include <cstdio>
#include <vector>

#include "arch/report.hpp"
#include "bench_util.hpp"
#include "core/geo.hpp"

int main() {
  using namespace geo;
  const arch::NetworkShape net = arch::NetworkShape::cnn4_svhn();

  const core::GeoConfig configs[] = {core::GeoConfig::base_ulp(),
                                     core::GeoConfig::gen_ulp(),
                                     core::GeoConfig::gen_exec_ulp()};

  std::printf("Fig. 6 | area / energy / latency, normalized to %s\n\n",
              configs[0].name.c_str());

  struct Point {
    std::string name;
    arch::AreaBreakdown area;
    arch::PerfResult perf;
  };
  std::vector<Point> points;
  for (const auto& cfg : configs) {
    core::GeoAccelerator acc(cfg);
    points.push_back({cfg.name, acc.area(), acc.run(net)});
  }
  const double area0 = points[0].area.total();
  const double energy0 = points[0].perf.energy_per_frame_j;
  const double latency0 = points[0].perf.seconds;

  std::printf("area breakdown (fraction of baseline total area):\n");
  arch::Table ta({"module", "Base", "GEN", "GEN-EXEC"});
  for (std::size_t i = 0; i < points[0].area.items().size(); ++i) {
    std::vector<std::string> row{points[0].area.items()[i].first};
    for (const auto& p : points)
      row.push_back(arch::Table::percent(p.area.items()[i].second / area0));
    ta.add_row(row);
  }
  ta.print();

  std::printf("\nenergy breakdown (fraction of baseline frame energy):\n");
  arch::Table te({"module", "Base", "GEN", "GEN-EXEC"});
  for (std::size_t i = 0; i < points[0].perf.energy.items().size(); ++i) {
    std::vector<std::string> row{points[0].perf.energy.items()[i].first};
    for (const auto& p : points)
      row.push_back(
          arch::Table::percent(p.perf.energy.items()[i].second / energy0));
    te.add_row(row);
  }
  te.print();

  std::printf("\n");
  arch::Table s({"configuration", "norm. area", "norm. energy",
                 "norm. latency", "frames/s", "vdd"});
  for (const auto& p : points)
    s.add_row({p.name, arch::Table::num(p.area.total() / area0, 3),
               arch::Table::num(p.perf.energy_per_frame_j / energy0, 3),
               arch::Table::num(p.perf.seconds / latency0, 3),
               arch::Table::si(p.perf.frames_per_second),
               arch::Table::num(p.perf.vdd, 2)});
  s.print();

  std::printf("\nbars (latency, normalized):\n");
  for (const auto& p : points)
    std::printf("  %-22s %s %.2f\n", p.name.c_str(),
                arch::bar(p.perf.seconds / latency0, 1.0, 40).c_str(),
                p.perf.seconds / latency0);

  std::printf(
      "\npaper: GEN -1%% area, 1.7x speedup, 1.6x energy; GEN-EXEC +2%% "
      "area,\n       4.3x speedup, 5.2x energy vs base\n");

  bench::BenchReport report("fig6_breakdown");
  report.add_table("area_breakdown", ta);
  report.add_table("energy_breakdown", te);
  report.add_table("summary", s);
  telemetry::Json raw = telemetry::Json::array();
  for (const auto& p : points) {
    telemetry::Json row = telemetry::Json::object();
    row.set("name", telemetry::Json(p.name));
    row.set("area_mm2", telemetry::Json(p.area.total()));
    row.set("energy_per_frame_j", telemetry::Json(p.perf.energy_per_frame_j));
    row.set("seconds_per_frame", telemetry::Json(p.perf.seconds));
    row.set("frames_per_second", telemetry::Json(p.perf.frames_per_second));
    row.set("vdd", telemetry::Json(p.perf.vdd));
    raw.push(std::move(row));
  }
  report.set("configurations", std::move(raw));
  return report.write() ? 0 : 1;
}
