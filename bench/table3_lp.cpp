// Table III reproduction: GEO LP vs iso-area Eyeriss (8-bit), SM-SC and
// SCOPE (reported), and ACOUSTIC LP-256 — on the downscaled VGG-16.
#include <cstdio>

#include "arch/report.hpp"
#include "baselines/acoustic.hpp"
#include "baselines/eyeriss.hpp"
#include "baselines/reported.hpp"
#include "bench_util.hpp"
#include "core/geo.hpp"

int main() {
  using namespace geo;
  using arch::Table;
  const arch::NetworkShape vgg = arch::NetworkShape::vgg16();

  const baselines::EyerissModel eye(baselines::EyerissConfig::lp_8bit());
  const auto eye_vgg = eye.run(vgg);

  const core::GeoAccelerator geo64(core::GeoConfig::lp(64, 128));
  const auto geo64_vgg = geo64.run(vgg);
  const core::GeoAccelerator geo32(core::GeoConfig::lp(32, 64));
  const auto geo32_vgg = geo32.run(vgg);

  const baselines::AcousticModel aco = baselines::AcousticModel::lp(256);
  const auto aco_vgg = aco.run(vgg);

  const auto& smsc = baselines::reported::kSmSc;
  const auto& scope = baselines::reported::kScope;

  Table t({"metric", "Eyeriss 8b", "GEO LP-64,128", "SM-SC", "SCOPE",
           "ACOUSTIC LP-256", "GEO LP-32,64"});
  t.add_row({"Voltage [V]", "0.90", Table::num(geo64.operating_vdd(), 2),
             "0.90", "-", "0.90", Table::num(geo32.operating_vdd(), 2)});
  t.add_row({"Area [mm2]", Table::num(eye.area_mm2(), 1),
             Table::num(geo64.area().total(), 1), "-",
             Table::num(scope.area_mm2, 0), Table::num(aco.area_mm2(), 1),
             Table::num(geo32.area().total(), 1)});
  t.add_row({"Power [mW]", Table::num(eye_vgg.average_power_w * 1e3, 0),
             Table::num(geo64_vgg.average_power_w * 1e3, 0), "-", "-",
             Table::num(aco_vgg.average_power_w * 1e3, 0),
             Table::num(geo32_vgg.average_power_w * 1e3, 0)});
  t.add_row({"Clock [MHz]", "400", "400", Table::num(smsc.clock_mhz, 0),
             Table::num(scope.clock_mhz, 0), "400", "400"});
  t.add_row({"CIFAR VGG Fr/s", Table::si(eye_vgg.frames_per_second, 2),
             Table::si(geo64_vgg.frames_per_second, 2), "-", "-",
             Table::si(aco_vgg.frames_per_second, 2),
             Table::si(geo32_vgg.frames_per_second, 2)});
  t.add_row({"CIFAR VGG Fr/J", Table::si(eye_vgg.frames_per_joule, 2),
             Table::si(geo64_vgg.frames_per_joule, 2), "-", "-",
             Table::si(aco_vgg.frames_per_joule, 2),
             Table::si(geo32_vgg.frames_per_joule, 2)});
  t.add_row({"Peak GOPS", Table::num(eye.peak_gops(), 0),
             Table::si(geo64.peak_gops(), 1),
             Table::num(smsc.peak_gops, 0), Table::num(scope.peak_gops, 0),
             Table::num(aco.peak_gops(), 0),
             Table::si(geo32.peak_gops(), 1)});
  t.add_row({"Peak TOPS/W", Table::num(eye.peak_tops_per_watt(), 2),
             Table::num(geo64.peak_tops_per_watt(), 2),
             Table::num(smsc.peak_tops_per_watt, 2), "-",
             Table::num(aco.peak_tops_per_watt(), 2),
             Table::num(geo32.peak_tops_per_watt(), 2)});

  std::printf("Table III | GEO LP vs fixed-point and SC implementations "
              "(28 nm; SM-SC & SCOPE columns reported)\n\n");
  t.print();

  // External-memory sensitivity: the paper notes GEO would be up to 6.1x
  // more energy-efficient than Eyeriss with external accesses omitted.
  core::GeoConfig no_ext_cfg = core::GeoConfig::lp(64, 128);
  no_ext_cfg.hw.external_memory = false;
  const auto geo_no_ext =
      core::GeoAccelerator(no_ext_cfg).run(vgg);
  baselines::EyerissConfig eye_no_ext_cfg = baselines::EyerissConfig::lp_8bit();
  eye_no_ext_cfg.external_memory = false;
  const auto eye_no_ext =
      baselines::EyerissModel(eye_no_ext_cfg).run(vgg);

  std::printf(
      "\nkey ratios: GEO-64,128 vs Eyeriss-8b: %.1fx Fr/s, %.1fx Fr/J "
      "(paper 5.6x / 2.6x)\n"
      "            same, external memory omitted: %.1fx Fr/J (paper: up to "
      "6.1x)\n"
      "            GEO-32,64 vs ACOUSTIC-256: %.1fx Fr/s, %.1fx Fr/J "
      "(paper 2.4x / 1.6x)\n"
      "            GEO LP area = %.1f%% of SCOPE (paper: 3.3%%)\n",
      geo64_vgg.frames_per_second / eye_vgg.frames_per_second,
      geo64_vgg.frames_per_joule / eye_vgg.frames_per_joule,
      geo_no_ext.frames_per_joule / eye_no_ext.frames_per_joule,
      geo32_vgg.frames_per_second / aco_vgg.frames_per_second,
      geo32_vgg.frames_per_joule / aco_vgg.frames_per_joule,
      geo64.area().total() / scope.area_mm2 * 100.0);

  bench::BenchReport report("table3_lp");
  report.add_table("table3", t);
  report.set("geo64_vs_eyeriss_fps",
             geo64_vgg.frames_per_second / eye_vgg.frames_per_second);
  report.set("geo64_vs_eyeriss_fpj",
             geo64_vgg.frames_per_joule / eye_vgg.frames_per_joule);
  report.set("geo64_vs_eyeriss_fpj_no_ext",
             geo_no_ext.frames_per_joule / eye_no_ext.frames_per_joule);
  report.set("geo32_vs_acoustic_fps",
             geo32_vgg.frames_per_second / aco_vgg.frames_per_second);
  report.set("geo32_vs_acoustic_fpj",
             geo32_vgg.frames_per_joule / aco_vgg.frames_per_joule);
  report.set("geo_lp_area_fraction_of_scope",
             geo64.area().total() / scope.area_mm2);
  return report.write() ? 0 : 1;
}
