// Sec. II-B / III-D ablation: cycle-level generation-pipeline study of
// progressive loading and shadow buffering — reload start latency (the 4x
// claim), stall cycles, memory traffic, and sensitivity to the buffer-fill
// bandwidth. Also quantifies the network-level accuracy cost of progressive
// generation (paper: -0.42% at 32-bit, -0.16% at 64-bit streams).
#include <cstdio>

#include "arch/gen_pipeline_sim.hpp"
#include "arch/report.hpp"
#include "bench_util.hpp"

int main() {
  using namespace geo;
  using arch::Table;

  std::printf("Ablation | generation pipeline (800 values/pass, 7-bit LFSR, "
              "256-cycle passes)\n\n");
  Table t({"policy", "start latency", "stall cycles", "total cycles",
           "bits loaded", "speedup"});
  arch::GenPipelineConfig base;
  base.values = 800;
  base.lfsr_bits = 7;
  base.stream_cycles = 256;
  base.passes = 8;

  const auto serial = arch::simulate_generation(base);
  struct Policy {
    const char* name;
    bool progressive, shadow;
  };
  for (const Policy p : {Policy{"serial reload", false, false},
                         {"+shadow (full-size)", false, true},
                         {"+progressive", true, false},
                         {"+progressive +shadow (GEO)", true, true}}) {
    arch::GenPipelineConfig cfg = base;
    cfg.progressive = p.progressive;
    cfg.shadow = p.shadow;
    const auto r = arch::simulate_generation(cfg);
    t.add_row({p.name, std::to_string(r.reload_start_latency),
               std::to_string(r.stall_cycles),
               std::to_string(r.total_cycles),
               Table::si(static_cast<double>(r.bits_loaded)),
               Table::num(static_cast<double>(serial.total_cycles) /
                              static_cast<double>(r.total_cycles),
                          2) +
                   "x"});
  }
  t.print();

  std::printf("\nfill-bandwidth sensitivity (GEO policy):\n");
  Table bw({"fill bits/cycle", "stall cycles", "total cycles"});
  for (int bits : {4, 8, 16, 32, 64}) {
    arch::GenPipelineConfig cfg = base;
    cfg.progressive = true;
    cfg.shadow = true;
    cfg.fill_bits_per_cycle = bits;
    const auto r = arch::simulate_generation(cfg);
    bw.add_row({std::to_string(bits), std::to_string(r.stall_cycles),
                std::to_string(r.total_cycles)});
  }
  bw.print();

  // Network-level accuracy cost of progressive generation.
  const bench::BenchSizes sizes;
  std::printf(
      "\nnetwork accuracy cost of progressive generation (CNN-4, svhn_syn, "
      "all streams progressive = worst case):\n");
  const nn::Dataset train_set = nn::make_svhn_syn(sizes.train, 1);
  const nn::Dataset test_set = nn::make_svhn_syn(sizes.test, 2);
  Table acc({"stream", "normal", "progressive", "delta"});
  for (int stream : {32, 64}) {
    nn::ScModelConfig normal = nn::ScModelConfig::stochastic(stream, stream);
    nn::ScModelConfig prog = normal;
    prog.progressive = true;
    const double a_n =
        bench::accuracy_percent("cnn4", train_set, test_set, normal, sizes);
    const double a_p =
        bench::accuracy_percent("cnn4", train_set, test_set, prog, sizes);
    acc.add_row({std::to_string(stream), Table::num(a_n, 1) + "%",
                 Table::num(a_p, 1) + "%", Table::num(a_p - a_n, 2)});
    std::fflush(stdout);
  }
  acc.print();
  std::printf("\npaper: -0.42%% at 32-bit, -0.16%% at 64-bit streams\n");

  bench::BenchReport report("ablation_generation");
  report.add_table("pipeline_policies", t);
  report.add_table("fill_bandwidth", bw);
  report.add_table("progressive_accuracy", acc);
  report.set("serial_total_cycles", static_cast<double>(serial.total_cycles));
  return report.write() ? 0 : 1;
}
