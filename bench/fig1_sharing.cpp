// Fig. 1 reproduction: accuracy vs RNG seed-sharing level for TRNG- and
// LFSR-based generation at two stream lengths, on CNN-4 / SVHN-like data
// with all-OR accumulation (the Sec. II-A experimental setup), plus the
// "trained with TRNG, validated with LFSR" ablation.
//
// Expected shape (paper): LFSR+moderate is best (up to +6.1 pts over
// unshared TRNG); extreme sharing collapses both; TRNG gains nothing from
// sharing; un-co-trained LFSR validation gains nothing from moderate and
// collapses under extreme sharing.
#include <cstdio>

#include "arch/report.hpp"
#include "bench_util.hpp"
#include "nn/sc_layers.hpp"

int main() {
  using namespace geo;
  const bench::BenchSizes sizes;
  const nn::Dataset train_set = nn::make_svhn_syn(sizes.train, 1);
  const nn::Dataset test_set = nn::make_svhn_syn(sizes.test, 2);

  std::printf(
      "Fig. 1 | accuracy vs sharing, CNN-4 on %s, all-OR accumulation\n"
      "        (train=%d test=%d epochs=%d)\n\n",
      train_set.name.c_str(), sizes.train, sizes.test, sizes.epochs);

  const int stream_lens[] = {32, 128};
  const sc::Sharing levels[] = {sc::Sharing::kNone, sc::Sharing::kModerate,
                                sc::Sharing::kExtreme};
  const sc::RngKind rngs[] = {sc::RngKind::kTrng, sc::RngKind::kLfsr};

  arch::Table table({"rng", "sharing", "stream", "accuracy"});
  double lfsr_moderate[2] = {0, 0};
  double trng_none[2] = {0, 0};
  for (int li = 0; li < 2; ++li) {
    const int stream = stream_lens[li];
    for (sc::RngKind rng : rngs) {
      for (sc::Sharing sharing : levels) {
        nn::ScModelConfig cfg = nn::ScModelConfig::stochastic(stream, stream);
        cfg.accum = nn::AccumMode::kOr;  // Sec. II-A setup, as in [5]
        cfg.rng = rng;
        cfg.sharing = sharing;
        const double acc = bench::accuracy_percent("cnn4", train_set,
                                                   test_set, cfg, sizes);
        if (rng == sc::RngKind::kLfsr && sharing == sc::Sharing::kModerate)
          lfsr_moderate[li] = acc;
        if (rng == sc::RngKind::kTrng && sharing == sc::Sharing::kNone)
          trng_none[li] = acc;
        table.add_row({sc::to_string(rng), sc::to_string(sharing),
                       std::to_string(stream),
                       arch::Table::num(acc, 1) + "%"});
        std::fflush(stdout);
      }
    }
  }
  table.print();

  std::printf(
      "\nLFSR/moderate vs TRNG/none: %+.1f pts @32, %+.1f pts @128 "
      "(paper: up to +6.1 pts)\n",
      lfsr_moderate[0] - trng_none[0], lfsr_moderate[1] - trng_none[1]);

  // Ablation: model trained with TRNG, validated with (shared) LFSR — the
  // paper's evidence that the gains come from co-training.
  std::printf(
      "\nAblation: trained-with-TRNG, validated-with-LFSR (stream 32)\n");
  arch::Table ab({"validated as", "sharing", "accuracy"});
  for (sc::Sharing sharing :
       {sc::Sharing::kModerate, sc::Sharing::kExtreme}) {
    nn::ScModelConfig train_cfg = nn::ScModelConfig::stochastic(32, 32);
    train_cfg.accum = nn::AccumMode::kOr;
    train_cfg.rng = sc::RngKind::kTrng;
    train_cfg.sharing = sharing;
    nn::Sequential net = nn::make_model("cnn4", train_set.channels(), 10,
                                        train_cfg, 42);
    nn::TrainOptions opts;
    opts.epochs = sizes.epochs;
    opts.batch_size = 16;
    opts.cache_dir = bench::cache_dir();
    opts.cache_key = std::string("fig1_trng_train_") + sc::to_string(sharing);
    nn::train(net, train_set, test_set, opts);
    // Swap the compute mode to LFSR for validation only: rebuild the model
    // with LFSR config and copy the trained weights over.
    nn::ScModelConfig val_cfg = train_cfg;
    val_cfg.rng = sc::RngKind::kLfsr;
    nn::Sequential val_net = nn::make_model("cnn4", train_set.channels(), 10,
                                            val_cfg, 42);
    const std::string tmp = bench::cache_dir() + "/fig1_swap.weights";
    net.save(tmp);
    val_net.load(tmp);
    const double acc = nn::evaluate(val_net, test_set) * 100.0;
    ab.add_row({"lfsr (not trained for)", sc::to_string(sharing),
                arch::Table::num(acc, 1) + "%"});
    std::fflush(stdout);
  }
  ab.print();
  std::printf(
      "\npaper: no gain from moderate sharing without co-training; extreme "
      "sharing drops to ~20%%\n");

  bench::BenchReport report("fig1_sharing");
  report.add_table("accuracy_vs_sharing", table);
  report.add_table("trng_train_lfsr_validate", ab);
  report.set("lfsr_moderate_minus_trng_none_at_32",
             lfsr_moderate[0] - trng_none[0]);
  report.set("lfsr_moderate_minus_trng_none_at_128",
             lfsr_moderate[1] - trng_none[1]);
  return report.write() ? 0 : 1;
}
