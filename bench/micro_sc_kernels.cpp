// google-benchmark microbenchmarks of the SC substrate hot paths: stream
// generation (LFSR vs TRNG vs Sobol, normal vs progressive), packed-word
// MAC/OR kernels, parallel counting, and a full SC conv layer forward.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "arch/machine.hpp"
#include "bench_util.hpp"
#include "fault/fault_model.hpp"
#include "nn/sc_layers.hpp"
#include "sc/ops.hpp"
#include "sc/parallel_counter.hpp"
#include "sc/progressive.hpp"
#include "sc/simd.hpp"
#include "sc/sng.hpp"
#include "sc/stream_table.hpp"

namespace {

using namespace geo::sc;

void BM_StreamGeneration(benchmark::State& state) {
  const auto kind = static_cast<RngKind>(state.range(0));
  const auto len = static_cast<std::size_t>(state.range(1));
  Sng sng(kind, SeedSpec{.bits = 8, .seed = 7});
  for (auto _ : state) {
    benchmark::DoNotOptimize(sng.generate(100, len));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(len));
  state.SetLabel(std::string(to_string(kind)) + "/" + std::to_string(len));
}
BENCHMARK(BM_StreamGeneration)
    ->Args({static_cast<long>(RngKind::kLfsr), 128})
    ->Args({static_cast<long>(RngKind::kTrng), 128})
    ->Args({static_cast<long>(RngKind::kSobol), 128})
    ->Args({static_cast<long>(RngKind::kLfsr), 1024});

void BM_ProgressiveGeneration(benchmark::State& state) {
  const ProgressiveSchedule sched{.value_bits = 8, .lfsr_bits = 7};
  ProgressiveSng sng(RngKind::kLfsr, SeedSpec{.bits = 7, .seed = 3}, sched);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sng.generate(100, 128));
  }
  state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_ProgressiveGeneration);

// The table-driven engine against its own tick fallback, plain and
// progressive, at the paper's n=8 / L=256 operating point (the PR's
// headline: a table hit is a 4-word copy instead of 256 LFSR ticks).
void BM_TableStreamGeneration(benchmark::State& state) {
  const bool use_table = state.range(0) != 0;
  const bool progressive = state.range(1) != 0;
  const std::size_t len = 256;
  const SeedSpec spec{.bits = 8, .seed = 7};
  const ProgressiveSchedule sched{};
  auto& gen = StreamGenerator::local();
  std::uint64_t dst[4];
  std::uint32_t v = 1;
  for (auto _ : state) {
    std::fill(dst, dst + 4, 0);
    if (progressive) {
      gen.generate_progressive(dst, 4, len, RngKind::kLfsr, spec, sched, v,
                               use_table);
    } else {
      gen.generate(dst, 4, len, RngKind::kLfsr, spec, v, use_table);
    }
    benchmark::DoNotOptimize(dst[0]);
    v = (v % 255) + 1;
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(len));
  state.SetLabel(std::string(use_table ? "table" : "tick") +
                 (progressive ? "/progressive" : "/plain"));
}
BENCHMARK(BM_TableStreamGeneration)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({0, 1})
    ->Args({1, 1});

void BM_PackedMacOrAccumulate(benchmark::State& state) {
  // One OR-accumulation group: products ANDed and ORed at word level.
  const int taps = static_cast<int>(state.range(0));
  const std::size_t len = 128;
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 7, .seed = 5});
  std::vector<Bitstream> acts, wgts;
  for (int i = 0; i < taps; ++i) {
    acts.push_back(sng.generate(60 + static_cast<std::uint32_t>(i) % 40, len));
    wgts.push_back(sng.generate(30 + static_cast<std::uint32_t>(i) % 70, len));
  }
  for (auto _ : state) {
    Bitstream acc(len);
    for (int i = 0; i < taps; ++i)
      acc |= acts[static_cast<std::size_t>(i)] &
             wgts[static_cast<std::size_t>(i)];
    benchmark::DoNotOptimize(acc.popcount());
  }
  state.SetItemsProcessed(state.iterations() * taps *
                          static_cast<long>(len));
}
BENCHMARK(BM_PackedMacOrAccumulate)->Arg(9)->Arg(72)->Arg(400);

void BM_ParallelCount(benchmark::State& state) {
  const int streams = static_cast<int>(state.range(0));
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 9});
  std::vector<Bitstream> s;
  for (int i = 0; i < streams; ++i)
    s.push_back(sng.generate(128, 256));
  for (auto _ : state) benchmark::DoNotOptimize(parallel_count(s));
}
BENCHMARK(BM_ParallelCount)->Arg(8)->Arg(64);

void BM_ApcCount(benchmark::State& state) {
  Sng sng(RngKind::kLfsr, SeedSpec{.bits = 8, .seed = 9});
  std::vector<Bitstream> s;
  for (int i = 0; i < 64; ++i) s.push_back(sng.generate(128, 256));
  for (auto _ : state) benchmark::DoNotOptimize(apc_count_total(s));
}
BENCHMARK(BM_ApcCount);

void BM_ScConvForward(benchmark::State& state) {
  using namespace geo::nn;
  const int stream_len = static_cast<int>(state.range(0));
  std::mt19937 rng(1);
  ScLayerConfig cfg;
  cfg.stream_len = stream_len;
  cfg.accum = AccumMode::kPbw;
  ScConv2d conv(8, 8, 3, 1, 1, rng, cfg);
  Tensor x({1, 8, 12, 12});
  std::mt19937 xr(2);
  std::uniform_real_distribution<float> dist(0.0f, 1.0f);
  for (auto& v : x.data()) v = dist(xr);
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(x, false));
  state.SetLabel("stream " + std::to_string(stream_len));
}
BENCHMARK(BM_ScConvForward)->Arg(32)->Arg(128)->Unit(benchmark::kMillisecond);

// Directly measured streams/s for one engine configuration at n=8 / L=256.
// Kept outside google-benchmark so the table-vs-tick speedup always lands in
// BENCH_micro_sc_kernels.json, even under --benchmark_filter.
double measure_streams_per_s(bool progressive, bool use_table) {
  using clock = std::chrono::steady_clock;
  const std::size_t len = 256;
  const SeedSpec spec{.bits = 8, .seed = 7};
  const ProgressiveSchedule sched{};
  auto& gen = StreamGenerator::local();
  std::uint64_t dst[4];
  std::uint64_t sink = 0;
  std::uint32_t v = 1;
  auto one = [&] {
    std::fill(dst, dst + 4, 0);
    if (progressive) {
      gen.generate_progressive(dst, 4, len, RngKind::kLfsr, spec, sched, v,
                               use_table);
    } else {
      gen.generate(dst, 4, len, RngKind::kLfsr, spec, v, use_table);
    }
    sink ^= dst[0] ^ dst[3];
    v = (v % 255) + 1;
  };
  // Warm-up pays the one-time table build off the clock (it is amortized
  // over a whole layer in real runs) and faults the cache lines in.
  for (int i = 0; i < 2000; ++i) one();
  const int iters = use_table ? 400000 : 40000;
  const auto t0 = clock::now();
  for (int i = 0; i < iters; ++i) one();
  const auto t1 = clock::now();
  benchmark::DoNotOptimize(sink);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0.0 ? iters / secs : 0.0;
}

// ---- sc::simd kernel rates, scalar vs the best vector backend ------------

enum class SimdKernel { kPopcount, kAndPopcount, kMacPopcount, kOrAndInto };

const char* kernel_name(SimdKernel k) {
  switch (k) {
    case SimdKernel::kPopcount: return "popcount";
    case SimdKernel::kAndPopcount: return "and_popcount";
    case SimdKernel::kMacPopcount: return "mac_popcount";
    case SimdKernel::kOrAndInto: return "or_and_into";
  }
  return "?";
}

// Words/s for one kernel under one backend. The working set (a MAC row of
// wpl = 64 words, L = 4096) mirrors the machine's inner loop and stays L1-
// resident, so this measures the kernel, not the memory system. Rotating
// through 8 input rows keeps the compiler from hoisting the reduction.
double measure_kernel_words_per_s(geo::sc::simd::Backend backend,
                                  SimdKernel kernel) {
  using clock = std::chrono::steady_clock;
  const geo::sc::simd::ScopedSimdBackend scope(backend);
  constexpr std::size_t kWpl = 64;
  constexpr std::size_t kRows = 8;
  std::mt19937_64 rng(42);
  std::vector<std::uint64_t> a(kRows * kWpl), wp(kRows * kWpl),
      wn(kRows * kWpl), dst(kWpl, 0);
  for (auto& x : a) x = rng();
  for (auto& x : wp) x = rng();
  for (auto& x : wn) x = rng();
  std::uint64_t sink = 0;
  auto one = [&](std::size_t i) {
    const std::size_t row = (i % kRows) * kWpl;
    switch (kernel) {
      case SimdKernel::kPopcount:
        sink += geo::sc::simd::popcount_words(a.data() + row, kWpl);
        break;
      case SimdKernel::kAndPopcount:
        sink += geo::sc::simd::and_popcount(a.data() + row, wp.data() + row,
                                            kWpl);
        break;
      case SimdKernel::kMacPopcount:
        sink += static_cast<std::uint64_t>(geo::sc::simd::mac_popcount(
            a.data() + row, wp.data() + row, wn.data() + row, kWpl));
        break;
      case SimdKernel::kOrAndInto:
        geo::sc::simd::or_and_into(dst.data(), a.data() + row,
                                   wp.data() + row, kWpl);
        sink += dst[row % kWpl];
        break;
    }
  };
  for (std::size_t i = 0; i < 20000; ++i) one(i);
  const std::size_t iters = 400000;
  const auto t0 = clock::now();
  for (std::size_t i = 0; i < iters; ++i) one(i);
  const auto t1 = clock::now();
  benchmark::DoNotOptimize(sink);
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return secs > 0.0 ? static_cast<double>(iters * kWpl) / secs : 0.0;
}

// ---- fused generate+execute vs materialized conv -------------------------

struct ConvLeg {
  double wall_s = 0.0;
  std::vector<std::int32_t> counters;
};

// One machine conv (8x8x12x12, 3x3, L = 256), timed. `materialize` forces
// the pre-fused path by installing a zero-rate fault model: fault hooks all
// no-op at rate 0, so the bits are unchanged but the machine materializes
// every activation stream into its buffer instead of feeding table rows
// straight into the MAC.
ConvLeg measure_conv(bool materialize) {
  using clock = std::chrono::steady_clock;
  using namespace geo::arch;
  HwConfig hw = HwConfig::ulp();
  hw.accum = geo::nn::AccumMode::kFxp;
  hw.stream_len = 256;
  hw.stream_len_pool = 256;
  hw.stream_len_output = 256;
  const ConvShape shape = ConvShape::conv("bench", 8, 8, 12, 3, 1, false);
  std::mt19937 rng(7);
  std::uniform_real_distribution<float> wdist(-0.8f, 0.8f);
  std::uniform_real_distribution<float> adist(0.0f, 1.0f);
  std::vector<float> weights(static_cast<std::size_t>(shape.weights()));
  for (auto& w : weights) w = wdist(rng);
  std::vector<float> input(static_cast<std::size_t>(shape.activations()));
  for (auto& v : input) v = adist(rng);
  const std::vector<float> ones(static_cast<std::size_t>(shape.cout), 1.0f);
  const std::vector<float> zeros(static_cast<std::size_t>(shape.cout), 0.0f);

  std::optional<geo::fault::ScopedFaultInjection> scope;
  if (materialize)
    scope.emplace(geo::fault::FaultConfig{});  // all rates 0: bits unchanged
  else
    scope.emplace(nullptr);  // shield from ambient GEO_FAULTS

  ConvLeg leg;
  GeoMachine machine(hw);
  // Warm-up run pays the one-time comparator-table build off the clock and
  // captures the counters for the byte-identity cross-check below.
  leg.counters = machine.run_conv(shape, weights, input, ones, zeros, 1)
                     .counters;
  const int iters = 20;
  const auto t0 = clock::now();
  for (int i = 0; i < iters; ++i) {
    auto r = machine.run_conv(shape, weights, input, ones, zeros, 1);
    benchmark::DoNotOptimize(r.counters.data());
  }
  const auto t1 = clock::now();
  leg.wall_s = std::chrono::duration<double>(t1 - t0).count() / iters;
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  // Route the library's JSON reporter to a side file (unless the caller
  // already chose one) so BENCH_micro_sc_kernels.json can embed the raw
  // google-benchmark results alongside the metrics snapshot.
  bool caller_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0)
      caller_out = true;
  const std::string raw_path =
      (std::filesystem::temp_directory_path() / "geo_micro_sc_kernels.json")
          .string();
  std::string out_flag = "--benchmark_out=" + raw_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  if (!caller_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  geo::bench::BenchReport report("micro_sc_kernels");

  // Stream-generation section: table-vs-tick rates at n=8 / L=256 (the PR 5
  // acceptance metric is stream_table.plain_speedup >= 5).
  const double plain_tick = measure_streams_per_s(false, false);
  const double plain_table = measure_streams_per_s(false, true);
  const double prog_tick = measure_streams_per_s(true, false);
  const double prog_table = measure_streams_per_s(true, true);
  report.set("stream_table.bits", 8.0);
  report.set("stream_table.length", 256.0);
  report.set("stream_table.plain_tick_streams_per_s", plain_tick);
  report.set("stream_table.plain_table_streams_per_s", plain_table);
  report.set("stream_table.plain_speedup",
             plain_tick > 0.0 ? plain_table / plain_tick : 0.0);
  report.set("stream_table.progressive_tick_streams_per_s", prog_tick);
  report.set("stream_table.progressive_table_streams_per_s", prog_table);
  report.set("stream_table.progressive_speedup",
             prog_tick > 0.0 ? prog_table / prog_tick : 0.0);

  // SIMD section: per-kernel scalar-vs-vector rates on a MAC-row working
  // set (wpl = 64). The regression gate's *speedup* rule keeps the measured
  // ratios from collapsing; the *_per_s rates are informational (wall
  // clock). The tentpole acceptance metric is simd.mac_popcount_speedup.
  using geo::sc::simd::Backend;
  const Backend best = geo::sc::simd::detect_best();
  report.set("simd.vector_backend_available",
             best == Backend::kScalar ? 0.0 : 1.0);
  report.set("simd.words_per_row", 64.0);
  for (const SimdKernel k :
       {SimdKernel::kPopcount, SimdKernel::kAndPopcount,
        SimdKernel::kMacPopcount, SimdKernel::kOrAndInto}) {
    const double scalar_rate =
        measure_kernel_words_per_s(Backend::kScalar, k);
    const double simd_rate = measure_kernel_words_per_s(best, k);
    const std::string key = std::string("simd.") + kernel_name(k);
    report.set(key + "_scalar_words_per_s", scalar_rate);
    report.set(key + "_simd_words_per_s", simd_rate);
    report.set(key + "_speedup",
               scalar_rate > 0.0 ? simd_rate / scalar_rate : 0.0);
  }

  // Fused generate+execute vs materialized conv. The two legs must agree
  // byte for byte — a mismatch is a correctness break, not a perf delta,
  // so it fails the bench run outright.
  const ConvLeg fused = measure_conv(false);
  const ConvLeg materialized = measure_conv(true);
  if (fused.counters != materialized.counters) {
    std::fprintf(stderr,
                 "micro_sc_kernels: fused and materialized conv counters "
                 "diverged — bit-exactness contract broken\n");
    return 1;
  }
  report.set("conv.fused_wall_s", fused.wall_s);
  report.set("conv.materialized_wall_s", materialized.wall_s);
  report.set("conv.fused_speedup",
             fused.wall_s > 0.0 ? materialized.wall_s / fused.wall_s : 0.0);

  if (!caller_out) {
    std::ifstream in(raw_path);
    std::stringstream raw;
    raw << in.rdbuf();
    if (geo::telemetry::json_valid(raw.str()))
      report.set("benchmarks", geo::telemetry::Json::raw(raw.str()));
    std::error_code ec;
    std::filesystem::remove(raw_path, ec);
  }
  return report.write() ? 0 : 1;
}
