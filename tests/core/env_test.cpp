#include "core/env.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

namespace geo::core {
namespace {

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(1), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_NE(mix64(0x8000000000000000ull), mix64(0));
  // splitmix64's finalizer maps 0 to 0; any nonzero input must leave it.
  EXPECT_NE(mix64(1), 0u);
}

TEST(GlobalSeed, IsStableWithinTheProcess) {
  // The value is parsed once; repeated calls must agree (the trainer, bench
  // harness, and fault model all rely on reading the same master seed).
  EXPECT_EQ(global_seed(), global_seed());
}

TEST(SeedOr, FollowsGlobalSeed) {
  const auto master = global_seed();
  if (!master.has_value()) {
    // GEO_SEED unset (the tier-1 configuration): every component keeps its
    // historical default, whatever the domain string.
    EXPECT_EQ(seed_or(42, "bench.model"), 42u);
    EXPECT_EQ(seed_or(7, "train.shuffle"), 7u);
    EXPECT_EQ(seed_or(0, "fault.model"), 0u);
  } else {
    // GEO_SEED set: the fallback is ignored and domains are decorrelated.
    EXPECT_EQ(seed_or(1, "a"), seed_or(99, "a"));
    EXPECT_NE(seed_or(1, "a"), seed_or(1, "b"));
  }
}

TEST(SeedOr, IsDeterministicPerDomain) {
  EXPECT_EQ(seed_or(5, "x"), seed_or(5, "x"));
}

TEST(ParseUint, StrictWholeString) {
  EXPECT_EQ(parse_uint("0"), 0u);
  EXPECT_EQ(parse_uint("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_uint("").has_value());
  EXPECT_FALSE(parse_uint("12x").has_value());   // trailing junk
  EXPECT_FALSE(parse_uint(" 12").has_value());   // leading junk
  EXPECT_FALSE(parse_uint("-1").has_value());
  EXPECT_FALSE(parse_uint("18446744073709551616").has_value());  // overflow
}

TEST(ParseInt, StrictWholeString) {
  EXPECT_EQ(parse_int("-42"), -42);
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("two").has_value());
  EXPECT_FALSE(parse_int("99999999999999999999").has_value());  // overflow
}

// Regression: GEO_CRASH_AFTER_EPOCH (and every other numeric knob) used raw
// atoi, so "garbage" silently became 0 and out-of-range values were UB.
// env_int must treat both as unset, with the fallback applied.
TEST(EnvInt, FallsBackOnUnsetMalformedAndOutOfRange) {
  ::unsetenv("GEO_TEST_KNOB");
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 7);
  ::setenv("GEO_TEST_KNOB", "", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 7);  // empty counts as unset
  ::setenv("GEO_TEST_KNOB", "12", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 12);
  ::setenv("GEO_TEST_KNOB", "-3", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), -3);
  ::setenv("GEO_TEST_KNOB", "garbage", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 7);  // atoi would have said 0
  ::setenv("GEO_TEST_KNOB", "12junk", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7), 7);  // atoi would have said 12
  ::setenv("GEO_TEST_KNOB", "99", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7, 0, 64), 7);  // above hi
  ::setenv("GEO_TEST_KNOB", "-1", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7, 0, 64), 7);  // below lo
  ::setenv("GEO_TEST_KNOB", "64", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB", 7, 0, 64), 64);  // bounds inclusive
  ::unsetenv("GEO_TEST_KNOB");
}

TEST(EnvInt, ReReadsTheEnvironmentEachCall) {
  ::setenv("GEO_TEST_KNOB2", "1", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB2", 0), 1);
  ::setenv("GEO_TEST_KNOB2", "2", 1);
  EXPECT_EQ(env_int("GEO_TEST_KNOB2", 0), 2);
  ::unsetenv("GEO_TEST_KNOB2");
}

}  // namespace
}  // namespace geo::core
